//go:build linux

package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/loadgen"
	"repro/internal/sesslog"
	"repro/internal/sim"
	"repro/internal/simclient"
	"repro/internal/simcpu"
	"repro/internal/simnet"
	"repro/internal/simsrv"
	"repro/internal/surge"
)

// TestCrossSubstrateAgreement drives the *same recorded session log*
// through both execution substrates — the live epoll server over real
// TCP, and the simulated event-driven server on the virtual testbed —
// and checks they agree on what the workload transfers. This is the
// repository's strongest validity check: if the simulator's notion of a
// session, pipelining, or reply bytes drifted from the live stack, the
// totals would split.
func TestCrossSubstrateAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	// A fixed log: recorded once from the SURGE model with gaps and
	// thinks zeroed so both substrates can replay it quickly and the
	// byte totals are deterministic.
	cfg := surge.DefaultConfig()
	cfg.NumObjects = 64
	cfg.MaxObjectBytes = 64 << 10
	set, err := surge.BuildObjectSet(cfg, dist.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	sessions := sesslog.Record(surge.NewGenerator(cfg, set, dist.NewRNG(18)), 8)
	for i := range sessions {
		sessions[i].ThinkAfter = 0 // back-to-back sessions, one pass
		for j := range sessions[i].Requests {
			sessions[i].Requests[j].Gap = 0
		}
	}
	// Park the client after the final session so the replayer never
	// wraps around within the measurement window.
	sessions[len(sessions)-1].ThinkAfter = 100000
	wantBytes := sesslog.TotalBytes(sessions)
	wantReqs := sesslog.TotalRequests(sessions)

	// --- Live: one client replays all 8 sessions sequentially. ---
	liveBytes := func() int64 {
		store := core.NewSurgeStore(set, cfg.MaxObjectBytes, 19)
		srv, err := core.NewServer(core.DefaultConfig(store))
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Stop()
		res, err := loadgen.Run(loadgen.Options{
			Addr:     srv.Addr(),
			Clients:  1,
			Warmup:   0,
			Duration: 5 * time.Second,
			Timeout:  5 * time.Second,
			Seed:     1,
			Workload: cfg,
			SourceFactory: func(int, *dist.RNG) surge.SessionSource {
				return sesslog.NewReplayer(sessions, 0)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Replies != int64(wantReqs) {
			t.Fatalf("live replies = %d, want %d", res.Replies, wantReqs)
		}
		return res.BytesReceived
	}()

	// --- Simulated: same replay on the virtual testbed. ---
	simBytes := func() int64 {
		engine := sim.NewEngine()
		net := simnet.NewNetwork(engine, experiments.PaperNet(experiments.Gigabit))
		cpu := simcpu.NewPool(engine, experiments.PaperCPU(1))
		simsrv.NewEventDriven(engine, net, cpu, experiments.PaperCosts(), 1).Start()
		fleet, err := simclient.NewFleet(engine, net, cfg, set, dist.NewRNG(1), simclient.Options{
			Clients: 1, Timeout: 10, RampOver: 0, Warmup: 0, Duration: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		fleet.SourceFactory = func(int, *dist.RNG) surge.SessionSource {
			return sesslog.NewReplayer(sessions, 0)
		}
		rep := fleet.Run()
		if got := int64(rep.RepliesPerSec * rep.Duration); got != int64(wantReqs) {
			t.Fatalf("sim replies = %d, want %d", got, wantReqs)
		}
		return int64(rep.BandwidthBps * rep.Duration)
	}()

	if liveBytes != wantBytes {
		t.Errorf("live bytes = %d, log says %d", liveBytes, wantBytes)
	}
	if simBytes != wantBytes {
		t.Errorf("sim bytes = %d, log says %d", simBytes, wantBytes)
	}
	if liveBytes != simBytes {
		t.Errorf("substrates disagree: live %d vs sim %d", liveBytes, simBytes)
	}
}
