//go:build linux

package repro

// chaos_test.go is the scripted chaos harness: it runs the named
// degraded-network scenarios from internal/faultline/scenario against
// both live servers and holds them to the paper's claims on real
// sockets.
//
//   - The bandwidth sweep (100 Mbit → 200 Mbit → 1 Gbit, at 1/10 scale)
//     must reproduce the Figures 5–6 regime split live: goodput tracks
//     the link cap on the constrained links and tracks the pinned CPU
//     ceiling once the link opens up — and each live point must agree
//     with the discrete-event prediction within a stated, logged
//     tolerance (calibration drift between simulator and live stack).
//   - The fault scenarios (segment loss, jitter storm, reorder burst)
//     must be survivable: replies keep flowing, HTTP semantics stay
//     correct, the watchdog stays clean, and a post-run probe proves
//     neither server wedged.
//   - Conditional requests (ETag/304 revalidation) must stay coherent
//     through a lossy, reordering link.
//   - Identical seeds must replay identical link behaviour, asserted at
//     both the decision-stream and the live-proxy level.
//
// The emulated scenarios are seeded from CHAOS_SEED (default 1) so CI
// can run a seed matrix; on failure the faultline link stats and the
// obs trace ring are dumped to OBS_ARTIFACT_DIR as artifacts.

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/docroot"
	"repro/internal/experiments"
	"repro/internal/faultline"
	"repro/internal/faultline/scenario"
	"repro/internal/loadgen"
	"repro/internal/mtserver"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/surge"
)

// chaosSeed returns the scenario seed: CHAOS_SEED when set (the CI
// matrix), 1 otherwise.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
	}
	return seed
}

// dumpNetStatsOnFailure ships the proxy's link stats as a CI artifact
// when the test fails (same contract as dumpRingOnFailure).
func dumpNetStatsOnFailure(t *testing.T, name string, stats func() faultline.Stats) {
	t.Cleanup(func() {
		dir := os.Getenv("OBS_ARTIFACT_DIR")
		if !t.Failed() || dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		path := filepath.Join(dir, name+"-faultline.txt")
		if err := os.WriteFile(path, []byte(stats().String()+"\n"), 0o644); err != nil {
			t.Logf("writing faultline stats: %v", err)
			return
		}
		t.Logf("faultline stats dumped to %s", path)
	})
}

// cpuPin serializes request handling behind one mutex and charges each
// request a fixed service time — a single-CPU compute model that is the
// same for both architectures. On the event-driven core (Workers: 1)
// the worker thread already serializes and the mutex is free; on the
// thread pool it makes N parallel threads share one emulated processor,
// so both servers present the identical CPU ceiling the scenario's
// Predict model assumes (concurrency 1).
type cpuPin struct {
	mu sync.Mutex
	d  time.Duration
}

func (p *cpuPin) fault(string) core.Fault {
	p.mu.Lock()
	time.Sleep(p.d)
	p.mu.Unlock()
	return core.Fault{}
}

// chaosServer is one live server wired for the chaos suite: pinned CPU
// cost, stall watchdog, observability plane.
type chaosServer struct {
	addr string
	stop func()
	wd   *overload.Watchdog
	pl   *obs.Plane
}

// chaosStore serves the scenarios' fixed object.
func chaosStore(objectBytes int64) core.MapStore {
	return core.MapStore{"/obj/0": make([]byte, objectBytes)}
}

func startChaosServer(t *testing.T, kind string, store core.Store, svc time.Duration) chaosServer {
	t.Helper()
	wd, err := overload.NewWatchdog(overload.WatchdogConfig{Interval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pl := obs.NewPlane(4096)
	pin := &cpuPin{d: svc}
	switch kind {
	case "nio":
		cfg := core.DefaultConfig(store)
		cfg.Workers = 1
		cfg.HandlerFault = pin.fault
		cfg.Watchdog = wd
		cfg.Obs = pl
		srv, err := core.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return chaosServer{addr: srv.Addr(), stop: func() { srv.Stop(); wd.Stop() }, wd: wd, pl: pl}
	case "mt":
		cfg := mtserver.DefaultConfig(store)
		cfg.Threads = 16
		cfg.HandlerFault = pin.fault
		cfg.Watchdog = wd
		cfg.Obs = pl
		srv, err := mtserver.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return chaosServer{addr: srv.Addr(), stop: func() { srv.Stop(); wd.Stop() }, wd: wd, pl: pl}
	}
	t.Fatalf("unknown server kind %q", kind)
	return chaosServer{}
}

// requireAlive asserts the server still answers a plain request — the
// no-wedge check after every chaos run.
func requireAlive(t *testing.T, addr string) {
	t.Helper()
	status, _, err := rawGet(addr, "/obj/0", 2*time.Second)
	if err != nil {
		t.Fatalf("post-chaos probe failed: %v", err)
	}
	if status != 200 {
		t.Fatalf("post-chaos probe got %d, want 200", status)
	}
}

// requireWatchdogClean asserts no server loop is currently stalled.
func requireWatchdogClean(t *testing.T, wd *overload.Watchdog) {
	t.Helper()
	if st := wd.Stats(); st.Active != 0 {
		t.Errorf("watchdog reports %d loops still stalled (stalls=%d max=%v)",
			st.Active, st.Stalls, st.MaxStallAge)
	}
}

func mustScenario(t *testing.T, name string) scenario.Scenario {
	t.Helper()
	sc, err := scenario.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestChaosBandwidthSweepRegimes is the paper's Figures 5–6 on real
// sockets: both servers, three emulated link rates, goodput must switch
// from link-bound to CPU-bound, and every live point is cross-checked
// against the discrete-event prediction.
func TestChaosBandwidthSweepRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	seed := chaosSeed(t)
	sweep := []string{"bw-100mbit", "bw-200mbit", "bw-1gbit"}

	// The cross-check tolerance: live loadgen over loopback sockets
	// versus the idealized discrete-event model. Sleep overshoot on the
	// pinned service time, scheduler noise under -race, and TCP
	// buffering all land inside this budget; calibration drift beyond it
	// means the emulator and the simulator have diverged.
	const driftTolerance = 0.40

	for _, kind := range []string{"nio", "mt"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			base := mustScenario(t, sweep[0])
			srv := startChaosServer(t, kind, chaosStore(base.ObjectBytes), base.HandlerDelay)
			defer srv.stop()
			dumpRingOnFailure(t, "chaos-sweep-"+kind, srv.pl)

			goodput := make(map[string]float64, len(sweep))
			for _, name := range sweep {
				sc := mustScenario(t, name)
				out, err := scenario.Run(sc, srv.addr, seed)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				pred := scenario.Predict(sc, 1)
				drift := pred.Drift(out.GoodputBps())
				t.Logf("%s/%s: live=%.0f B/s predicted=%.0f B/s drift=%.1f%% (tolerance %.0f%%) replies/s=%.0f\n%s",
					kind, name, out.GoodputBps(), pred.BytesPerSec, drift*100,
					driftTolerance*100, out.Load.RepliesPerSec, out.Net)
				if drift > driftTolerance {
					t.Errorf("%s: live goodput %.0f B/s drifted %.1f%% from predicted %.0f B/s",
						name, out.GoodputBps(), drift*100, pred.BytesPerSec)
				}
				if out.Load.Replies == 0 {
					t.Fatalf("%s: no replies", name)
				}
				if out.Load.UnreachableErrors != 0 {
					t.Errorf("%s: %d unreachable errors on an emulated loopback link",
						name, out.Load.UnreachableErrors)
				}
				goodput[name] = out.GoodputBps()
				requireAlive(t, srv.addr)
			}
			requireWatchdogClean(t, srv.wd)

			g100, g200, g1g := goodput["bw-100mbit"], goodput["bw-200mbit"], goodput["bw-1gbit"]
			if !(g100 < g200 && g200 < g1g) {
				t.Errorf("regime ordering violated: 100mbit=%.0f 200mbit=%.0f 1gbit=%.0f", g100, g200, g1g)
			}
			// Link-bound: the constrained links carry goodput near their
			// cap (closed-loop RTT keeps it slightly under).
			cap100 := experiments.Mbit(100) / 10
			if g100 < 0.60*cap100 || g100 > 1.15*cap100 {
				t.Errorf("100mbit goodput %.0f does not track the link cap %.0f", g100, cap100)
			}
			// CPU-bound: with the link opened up, goodput must sit near
			// the pinned compute ceiling and far below the link cap.
			sc := mustScenario(t, "bw-1gbit")
			cpuCeiling := float64(sc.ObjectBytes) / sc.HandlerDelay.Seconds()
			cap1g := experiments.Mbit(1000) / 10
			if g1g > 0.75*cap1g {
				t.Errorf("1gbit goodput %.0f is link-bound (cap %.0f); regime split lost", g1g, cap1g)
			}
			if g1g < 0.50*cpuCeiling || g1g > 1.25*cpuCeiling {
				t.Errorf("1gbit goodput %.0f does not track the CPU ceiling %.0f", g1g, cpuCeiling)
			}
		})
	}
}

// TestChaosFaultScenariosSurvive runs the stochastic-fault scenarios —
// segment loss, jitter storm, reorder burst — against both servers:
// replies must keep flowing with honest error taxonomy, the injected
// fault must demonstrably have fired, and the server must come out
// unwedged.
func TestChaosFaultScenariosSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	seed := chaosSeed(t)

	for _, kind := range []string{"nio", "mt"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			base := mustScenario(t, "loss-1pct")
			srv := startChaosServer(t, kind, chaosStore(base.ObjectBytes), base.HandlerDelay)
			defer srv.stop()
			dumpRingOnFailure(t, "chaos-faults-"+kind, srv.pl)

			for _, name := range []string{"loss-1pct", "jitter-storm", "reorder-burst"} {
				sc := mustScenario(t, name)
				out, err := scenario.Run(sc, srv.addr, seed)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				t.Logf("%s/%s: replies/s=%.0f goodput=%.0f B/s timeouts=%d resets=%d unreachable=%d\n%s",
					kind, name, out.Load.RepliesPerSec, out.GoodputBps(),
					out.Load.TimeoutErrors, out.Load.ResetErrors,
					out.Load.UnreachableErrors, out.Net)
				if out.Load.Replies == 0 {
					t.Errorf("%s: no replies survived the link", name)
				}
				switch name {
				case "loss-1pct":
					if out.Net.Down.Lost == 0 {
						t.Errorf("%s: loss never fired: %s", name, out.Net.Down)
					}
				case "jitter-storm":
					if out.Net.Down.DelayInjected == 0 {
						t.Errorf("%s: no delay injected: %s", name, out.Net.Down)
					}
				case "reorder-burst":
					if out.Net.Down.Reordered == 0 {
						t.Errorf("%s: reordering never fired: %s", name, out.Net.Down)
					}
				}
				requireAlive(t, srv.addr)
			}
			requireWatchdogClean(t, srv.wd)
		})
	}
}

// TestChaosScenarioDeterministic is the acceptance criterion made
// executable: the same seed must replay byte-identical link behaviour.
// It asserts at two levels — the decision stream itself, and a live
// fixed-size transfer through two independent proxies, whose
// deterministic link stats (segments, losses, reorders, injected
// delay) must match exactly.
func TestChaosScenarioDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	seed := chaosSeed(t)
	sc := mustScenario(t, "loss-1pct")

	// Level 1: the decision stream for every connection the scenario
	// would open, replayed twice.
	for conn := 0; conn < sc.Clients; conn++ {
		for _, dir := range []faultline.Direction{faultline.DirUp, faultline.DirDown} {
			a := faultline.DecisionTrace(sc.Link(), faultline.StreamSeed(seed, conn, dir), 256)
			b := faultline.DecisionTrace(sc.Link(), faultline.StreamSeed(seed, conn, dir), 256)
			if a != b {
				t.Fatalf("conn %d %v: decision trace not reproducible", conn, dir)
			}
		}
	}

	// Level 2: a fixed HTTP workload through two fresh proxies.
	srv := startChaosServer(t, "nio", chaosStore(sc.ObjectBytes), 0)
	defer srv.stop()

	run := func() string {
		proxy, err := faultline.New(faultline.Config{
			Upstream: srv.addr, Seed: seed, Plan: sc.Plan(),
		})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", proxy.Addr())
		if err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(conn)
		for i := 0; i < 10; i++ {
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			if _, err := conn.Write(probeChaosRequest); err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			resp, err := http.ReadResponse(r, nil)
			if err != nil {
				t.Fatalf("response %d: %v", i, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("response %d: status %d", i, resp.StatusCode)
			}
		}
		conn.Close()
		proxy.Close() // waits for the pumps, so the counters are final
		st := proxy.Stats()
		if st.Down.Overflows != 0 {
			t.Fatalf("unexpected queue overflow in a fixed transfer: %s", st.Down)
		}
		return st.Down.String()
	}
	a, b := run(), run()
	t.Logf("deterministic link stats: %s", a)
	if a != b {
		t.Fatalf("same seed, same transfer, different link behaviour:\n run1 %s\n run2 %s", a, b)
	}
}

var probeChaosRequest = []byte("GET /obj/0 HTTP/1.1\r\nHost: sut\r\nUser-Agent: chaos/1.0\r\n\r\n")

// TestChaosConditionalRequestsThroughLossyLink drives the ETag/304
// revalidation path (PR 2) through a lossy, reordering link for the
// first time: browser-cache clients against a disk-backed docroot, on
// both servers. Revalidation must keep earning 304s and the error
// taxonomy must stay clean even when the link misbehaves.
func TestChaosConditionalRequestsThroughLossyLink(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	seed := chaosSeed(t)

	cfg := surge.DefaultConfig()
	cfg.NumObjects = 48
	cfg.MaxObjectBytes = 64 << 10
	set, err := surge.BuildObjectSet(cfg, dist.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := docroot.MaterializeSurge(dir, set, cfg.MaxObjectBytes, 32); err != nil {
		t.Fatal(err)
	}

	lossyReordering := faultline.Link{
		Delay:       time.Millisecond,
		LossProb:    0.02,
		LossPenalty: 20 * time.Millisecond,
		ReorderProb: 0.05,
	}

	for _, kind := range []string{"nio", "mt"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			root, err := docroot.New(docroot.Config{
				Dir: dir, CacheBytes: 1 << 20, MemLimit: 64 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			var addr string
			var notModified func() int64
			switch kind {
			case "nio":
				ccfg := core.DefaultConfig(nil)
				ccfg.Docroot = root
				srv, err := core.NewServer(ccfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := srv.Start(); err != nil {
					t.Fatal(err)
				}
				defer srv.Stop()
				addr, notModified = srv.Addr(), func() int64 { return srv.Stats().NotModified }
			case "mt":
				mcfg := mtserver.DefaultConfig(nil)
				mcfg.Threads = 8
				mcfg.Docroot = root
				srv, err := mtserver.NewServer(mcfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := srv.Start(); err != nil {
					t.Fatal(err)
				}
				defer srv.Stop()
				addr, notModified = srv.Addr(), func() int64 { return srv.Stats().NotModified }
			}

			proxy, err := faultline.New(faultline.Config{
				Upstream: addr,
				Seed:     seed,
				Plan:     faultline.LinkPlan(faultline.Link{}, lossyReordering),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()
			dumpNetStatsOnFailure(t, "chaos-conditional-"+kind, proxy.Stats)

			res, err := loadgen.Run(loadgen.Options{
				Addr:               proxy.Addr(),
				Clients:            4,
				Warmup:             150 * time.Millisecond,
				Duration:           1200 * time.Millisecond,
				Timeout:            10 * time.Second,
				ThinkScale:         0.01,
				Seed:               seed,
				Workload:           cfg,
				Objects:            set,
				RevalidateFraction: 0.6,
			})
			if err != nil {
				t.Fatal(err)
			}
			st := proxy.Stats()
			t.Logf("%s: replies=%d 304s=%d timeouts=%d resets=%d unreachable=%d server304=%d\n%s",
				kind, res.Replies, res.NotModified, res.TimeoutErrors,
				res.ResetErrors, res.UnreachableErrors, notModified(), st)

			if res.Replies == 0 {
				t.Fatal("no replies through the lossy link")
			}
			if res.NotModified == 0 {
				t.Error("revalidation earned no 304s through the lossy link")
			}
			if notModified() == 0 {
				t.Error("server reports no conditional hits")
			}
			if res.UnreachableErrors != 0 {
				t.Errorf("%d unreachable errors on an emulated link", res.UnreachableErrors)
			}
			if res.TimeoutErrors != 0 {
				t.Errorf("%d client watchdog timeouts with a 10s budget", res.TimeoutErrors)
			}
			if st.Down.Lost == 0 && st.Down.Reordered == 0 {
				t.Errorf("link faults never fired: %s", st.Down)
			}
		})
	}
}
