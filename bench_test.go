package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/simclient"
)

// The figure benchmarks regenerate each paper figure's operating points
// on the simulated testbed. Every benchmark reports the figure's
// headline metric via b.ReportMetric, so `go test -bench=.` prints the
// numbers EXPERIMENTS.md records. Points are scaled down from the paper
// sweep (one representative load level per series) to keep a full bench
// run in minutes; cmd/expsim regenerates the complete sweeps.

// benchScenario runs one scenario point inside a benchmark iteration.
func benchScenario(b *testing.B, sc experiments.Scenario) simclient.Report {
	b.Helper()
	sc.WarmupSec = 5
	sc.MeasureSec = 15
	var rep simclient.Report
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		rep = sc.Run()
	}
	return rep
}

func reportServer(b *testing.B, rep simclient.Report) {
	b.Helper()
	b.ReportMetric(rep.RepliesPerSec, "replies/s")
	b.ReportMetric(rep.MeanResponseSec*1000, "resp-ms")
	b.ReportMetric(rep.P50ResponseSec*1000, "p50-ms")
	b.ReportMetric(rep.P90ResponseSec*1000, "p90-ms")
	b.ReportMetric(rep.P99ResponseSec*1000, "p99-ms")
	b.ReportMetric(rep.MeanConnectSec*1000, "conn-ms")
	b.ReportMetric(rep.TimeoutErrPerSec, "timeouts/s")
	b.ReportMetric(rep.ResetErrPerSec, "resets/s")
}

// BenchmarkFig01_UPThroughput — figure 1: throughput on a uniprocessor,
// nio worker counts vs httpd pool sizes, at the top of the client sweep.
func BenchmarkFig01_UPThroughput(b *testing.B) {
	cases := []experiments.Scenario{
		{Kind: experiments.NIO, Workers: 1, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
		{Kind: experiments.NIO, Workers: 4, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
		{Kind: experiments.NIO, Workers: 8, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
		{Kind: experiments.HTTPD, Threads: 128, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
		{Kind: experiments.HTTPD, Threads: 896, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
		{Kind: experiments.HTTPD, Threads: 4096, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
		{Kind: experiments.HTTPD, Threads: 6000, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
	}
	for _, sc := range cases {
		b.Run(sc.Label(), func(b *testing.B) {
			reportServer(b, benchScenario(b, sc))
		})
	}
}

// BenchmarkFig02_UPResponseTime — figure 2: response time on a
// uniprocessor at moderate load, best config of each server.
func BenchmarkFig02_UPResponseTime(b *testing.B) {
	for _, sc := range []experiments.Scenario{
		{Kind: experiments.NIO, Workers: 1, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 1800},
		{Kind: experiments.HTTPD, Threads: 4096, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 1800},
	} {
		b.Run(sc.Label(), func(b *testing.B) {
			reportServer(b, benchScenario(b, sc))
		})
	}
}

// BenchmarkFig03_ConnectionErrors — figure 3: client-timeout and
// connection-reset rates at high load.
func BenchmarkFig03_ConnectionErrors(b *testing.B) {
	for _, sc := range []experiments.Scenario{
		{Kind: experiments.NIO, Workers: 1, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 4200},
		{Kind: experiments.HTTPD, Threads: 4096, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 4200},
	} {
		b.Run(sc.Label(), func(b *testing.B) {
			reportServer(b, benchScenario(b, sc))
		})
	}
}

// BenchmarkFig04_ConnectTime — figure 4: connection-establishment time;
// the httpd-896 pool shows the knee once clients exceed the pool.
func BenchmarkFig04_ConnectTime(b *testing.B) {
	for _, sc := range []experiments.Scenario{
		{Kind: experiments.NIO, Workers: 1, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
		{Kind: experiments.HTTPD, Threads: 896, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
		{Kind: experiments.HTTPD, Threads: 4096, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000},
	} {
		b.Run(sc.Label(), func(b *testing.B) {
			reportServer(b, benchScenario(b, sc))
		})
	}
}

// BenchmarkFig05_BandwidthThroughput — figure 5: throughput under the
// three link configurations at high load.
func BenchmarkFig05_BandwidthThroughput(b *testing.B) {
	type bwCase struct {
		name string
		bps  float64
	}
	for _, bw := range []bwCase{{"100Mbps", experiments.Mbit100}, {"200Mbps", experiments.Mbit200}, {"1Gbit", experiments.Gigabit}} {
		for _, sc := range []experiments.Scenario{
			{Kind: experiments.NIO, Workers: 1, Processors: 1, Bandwidth: bw.bps, Clients: 3000},
			{Kind: experiments.HTTPD, Threads: 4096, Processors: 1, Bandwidth: bw.bps, Clients: 3000},
		} {
			b.Run(fmt.Sprintf("%s-%s", sc.Kind, bw.name), func(b *testing.B) {
				rep := benchScenario(b, sc)
				reportServer(b, rep)
				b.ReportMetric(rep.BandwidthBps/1e6, "MB/s")
			})
		}
	}
}

// BenchmarkFig06_BandwidthResponse — figure 6: response time under the
// 100 Mbit/s link, where both servers converge.
func BenchmarkFig06_BandwidthResponse(b *testing.B) {
	for _, sc := range []experiments.Scenario{
		{Kind: experiments.NIO, Workers: 1, Processors: 1, Bandwidth: experiments.Mbit100, Clients: 1800},
		{Kind: experiments.HTTPD, Threads: 4096, Processors: 1, Bandwidth: experiments.Mbit100, Clients: 1800},
	} {
		b.Run(sc.Label(), func(b *testing.B) {
			reportServer(b, benchScenario(b, sc))
		})
	}
}

// BenchmarkFig07_SMPThroughput — figure 7: 4-way SMP throughput across
// the paper's configuration sweeps.
func BenchmarkFig07_SMPThroughput(b *testing.B) {
	for _, sc := range []experiments.Scenario{
		{Kind: experiments.NIO, Workers: 2, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 6000},
		{Kind: experiments.NIO, Workers: 3, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 6000},
		{Kind: experiments.NIO, Workers: 4, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 6000},
		{Kind: experiments.HTTPD, Threads: 2000, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 6000},
		{Kind: experiments.HTTPD, Threads: 4000, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 6000},
		{Kind: experiments.HTTPD, Threads: 6000, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 6000},
	} {
		b.Run(sc.Label(), func(b *testing.B) {
			reportServer(b, benchScenario(b, sc))
		})
	}
}

// BenchmarkFig08_SMPResponseTime — figure 8: SMP response time, best
// configurations.
func BenchmarkFig08_SMPResponseTime(b *testing.B) {
	for _, sc := range []experiments.Scenario{
		{Kind: experiments.NIO, Workers: 2, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 3000},
		{Kind: experiments.HTTPD, Threads: 4096, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 3000},
	} {
		b.Run(sc.Label(), func(b *testing.B) {
			reportServer(b, benchScenario(b, sc))
		})
	}
}

// BenchmarkFig09_CPUScalingThroughput — figure 9: UP vs SMP throughput
// for the best configuration of each server.
func BenchmarkFig09_CPUScalingThroughput(b *testing.B) {
	cases := []struct {
		name string
		sc   experiments.Scenario
	}{
		{"nio-UP", experiments.Scenario{Kind: experiments.NIO, Workers: 1, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 6000}},
		{"nio-SMP", experiments.Scenario{Kind: experiments.NIO, Workers: 2, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 6000}},
		{"httpd-UP", experiments.Scenario{Kind: experiments.HTTPD, Threads: 4096, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 6000}},
		{"httpd-SMP", experiments.Scenario{Kind: experiments.HTTPD, Threads: 4096, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 6000}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			reportServer(b, benchScenario(b, c.sc))
		})
	}
}

// BenchmarkFig10_CPUScalingResponse — figure 10: UP vs SMP response time
// for the best configuration of each server.
func BenchmarkFig10_CPUScalingResponse(b *testing.B) {
	cases := []struct {
		name string
		sc   experiments.Scenario
	}{
		{"nio-UP", experiments.Scenario{Kind: experiments.NIO, Workers: 1, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000}},
		{"nio-SMP", experiments.Scenario{Kind: experiments.NIO, Workers: 2, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 3000}},
		{"httpd-UP", experiments.Scenario{Kind: experiments.HTTPD, Threads: 4096, Processors: 1, Bandwidth: experiments.Gigabit, Clients: 3000}},
		{"httpd-SMP", experiments.Scenario{Kind: experiments.HTTPD, Threads: 4096, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 3000}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			reportServer(b, benchScenario(b, c.sc))
		})
	}
}

// ---------------------------------------------------------------------
// Ablations — design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

// BenchmarkAblationKeepAlive varies httpd's keep-alive timeout: shorter
// timeouts recycle threads faster but reset more clients. The paper
// fixes 15 s; this shows the trade-off around that choice.
func BenchmarkAblationKeepAlive(b *testing.B) {
	for _, ka := range []float64{5, 15, 60} {
		sc := experiments.Scenario{
			Kind: experiments.HTTPD, Threads: 4096, Processors: 1,
			Bandwidth: experiments.Gigabit, Clients: 3000, KeepAliveSec: ka,
		}
		b.Run(fmt.Sprintf("keepalive-%gs", ka), func(b *testing.B) {
			rep := benchScenario(b, sc)
			b.ReportMetric(rep.RepliesPerSec, "replies/s")
			b.ReportMetric(rep.ResetErrPerSec, "resets/s")
			b.ReportMetric(rep.TimeoutErrPerSec, "timeouts/s")
		})
	}
}

// BenchmarkAblationStagedAffinity compares the flat reactor against the
// §6 staged pipeline with and without per-stage processor affinity.
func BenchmarkAblationStagedAffinity(b *testing.B) {
	for _, sc := range []experiments.Scenario{
		{Kind: experiments.NIO, Workers: 2, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 4200},
		{Kind: experiments.STAGED, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 4200},
		{Kind: experiments.STAGEDAFF, Processors: 4, Bandwidth: experiments.Gigabit, Clients: 4200},
	} {
		b.Run(sc.Label(), func(b *testing.B) {
			reportServer(b, benchScenario(b, sc))
		})
	}
}

// BenchmarkAblationSelectorWorkers sweeps nio worker counts on the SMP
// testbed — the paper's "2 workers suffice" claim.
func BenchmarkAblationSelectorWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		sc := experiments.Scenario{
			Kind: experiments.NIO, Workers: w, Processors: 4,
			Bandwidth: experiments.Gigabit, Clients: 4200,
		}
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			reportServer(b, benchScenario(b, sc))
		})
	}
}

// BenchmarkLiveLoopback is the live-system smoke bench: both real
// servers under the real load generator on loopback for one short burst
// per iteration.
func BenchmarkLiveLoopback(b *testing.B) {
	for _, kind := range []string{"nio", "threadpool"} {
		b.Run(kind, func(b *testing.B) {
			var replies, p50, p95, p99 float64
			for i := 0; i < b.N; i++ {
				res := liveLoopback(b, kind, 400*time.Millisecond)
				replies += res.RepliesPerSec
				p50 += res.P50ResponseSec * 1000
				p95 += res.P95ResponseSec * 1000
				p99 += res.P99ResponseSec * 1000
			}
			n := float64(b.N)
			b.ReportMetric(replies/n, "replies/s")
			b.ReportMetric(p50/n, "p50-ms")
			b.ReportMetric(p95/n, "p95-ms")
			b.ReportMetric(p99/n, "p99-ms")
		})
	}
}
