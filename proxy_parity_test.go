//go:build linux

package repro

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/docroot"
	"repro/internal/httpwire"
	"repro/internal/loadgen"
	"repro/internal/mtserver"
	"repro/internal/obs"
	"repro/internal/obs/rollup"
	"repro/internal/proxy"
	"repro/internal/surge"
)

// These tests put the serving tier end-to-end: a real nioproxy balancing
// real backends, checked for content fidelity (a proxy must be invisible
// in the bytes), failover behavior (a dead backend must be ejected and
// traffic must converge on the survivor without client-visible errors),
// and shed attribution (the Via header must tell a tier refusal from a
// backend refusal).

// dumpRollupOnFailure mirrors dumpRingOnFailure for the tier's merged
// telemetry: when the test fails and OBS_ARTIFACT_DIR is set, the
// collector's merged + per-backend rollup view ships as a build
// artifact.
func dumpRollupOnFailure(t *testing.T, name string, coll *rollup.Collector) {
	t.Cleanup(func() {
		dir := os.Getenv("OBS_ARTIFACT_DIR")
		if !t.Failed() || dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		var b strings.Builder
		coll.RenderMerged(&b)
		path := filepath.Join(dir, name+"-rollup.txt")
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Logf("writing rollup dump: %v", err)
			return
		}
		t.Logf("merged rollup dumped to %s", path)
	})
}

// startProxyTier builds and starts a proxy tier of the given shard
// count over the given backends. Probing is off by default (tests that
// need it turn it on in mutate).
func startProxyTier(t *testing.T, shards int, backends []proxy.BackendConfig, mutate func(*proxy.Config)) *proxy.Tier {
	t.Helper()
	cfg := proxy.DefaultConfig(backends)
	cfg.ProbeEvery = 0
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := proxy.NewTier(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

// TestProxyContentParity proves the proxy is byte-invisible: every
// object served through a hash-balanced tier over one event-driven and
// one thread-pool backend must match a direct fetch exactly — status,
// body bytes, ETag, Last-Modified, Content-Type — and conditional GETs
// through the proxy must earn bodyless 304s on the raw wire. The
// backends' rollup exports, merged by the collector, must account for
// every reply the tier relayed.
//
// The matrix runs at 1 and 4 proxy shards: relay fidelity and the
// exactness of the shard-merged counters must survive SO_REUSEPORT
// sharding of the tier itself.
func TestProxyContentParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			proxyContentParity(t, shards)
		})
	}
}

func proxyContentParity(t *testing.T, shards int) {
	cfg := surge.DefaultConfig()
	cfg.NumObjects = 48
	cfg.MaxObjectBytes = 128 << 10
	set, err := surge.BuildObjectSet(cfg, dist.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := docroot.MaterializeSurge(dir, set, cfg.MaxObjectBytes, 24); err != nil {
		t.Fatal(err)
	}
	mkRoot := func() *docroot.Root {
		root, err := docroot.New(docroot.Config{Dir: dir, CacheBytes: 8 << 20, MemLimit: 32 << 10})
		if err != nil {
			t.Fatal(err)
		}
		return root
	}

	// Backend 1: the event-driven core, with an obs plane + admin so its
	// /rollup is scrapeable.
	nioPlane := obs.NewPlane(1 << 10)
	ncfg := core.DefaultConfig(nil)
	ncfg.Docroot = mkRoot()
	ncfg.Obs = nioPlane
	nio, err := core.NewServer(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	nioAdmin, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Stats: func() []obs.Field { return core.StatsFields(nio.Stats()) },
		Plane: nioPlane,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nioAdmin.Close()
	if err := nio.Start(); err != nil {
		t.Fatal(err)
	}
	defer nio.Stop()

	// Backend 2: the thread-pool architecture behind the same balancer.
	mtPlane := obs.NewPlane(1 << 10)
	mcfg := mtserver.DefaultConfig(nil)
	mcfg.Threads = 8
	mcfg.Docroot = mkRoot()
	mcfg.Obs = mtPlane
	mt, err := mtserver.NewServer(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	mtAdmin, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Stats: func() []obs.Field { return mtserver.StatsFields(mt.Stats()) },
		Plane: mtPlane,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mtAdmin.Close()
	if err := mt.Start(); err != nil {
		t.Fatal(err)
	}
	defer mt.Stop()

	p := startProxyTier(t, shards, []proxy.BackendConfig{
		{Addr: nio.Addr(), AdminAddr: nioAdmin.Addr(), Name: "nio"},
		{Addr: mt.Addr(), AdminAddr: mtAdmin.Addr(), Name: "mt"},
	}, func(c *proxy.Config) { c.Balance = proxy.HashPath })
	if p.NumShards() != shards {
		t.Fatalf("tier NumShards = %d, want %d", p.NumShards(), shards)
	}

	coll := rollup.NewCollector()
	dumpRollupOnFailure(t, "proxy-parity", coll)

	type reply struct {
		status                    int
		body                      []byte
		etag, lastMod, ctype, via string
	}
	client := &http.Client{Timeout: 10 * time.Second}
	fetch := func(addr, path, validator string) reply {
		t.Helper()
		req, err := http.NewRequest("GET", "http://"+addr+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if validator != "" {
			req.Header.Set("If-None-Match", validator)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("GET %s %s: %v", addr, path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s %s: %v", addr, path, err)
		}
		return reply{
			status:  resp.StatusCode,
			body:    body,
			etag:    resp.Header.Get("ETag"),
			lastMod: resp.Header.Get("Last-Modified"),
			ctype:   resp.Header.Get("Content-Type"),
			via:     resp.Header.Get("Via"),
		}
	}

	etags := make(map[string]string)
	for id := 0; id < set.Len(); id++ {
		path := set.Object(id).Path()
		direct := fetch(nio.Addr(), path, "")
		proxied := fetch(p.Addr(), path, "")
		if direct.status != 200 || proxied.status != 200 {
			t.Fatalf("%s: status direct=%d proxied=%d", path, direct.status, proxied.status)
		}
		if !bytes.Equal(direct.body, proxied.body) {
			t.Fatalf("%s: bodies differ through the proxy (%d vs %d bytes)",
				path, len(direct.body), len(proxied.body))
		}
		if direct.etag == "" || direct.etag != proxied.etag ||
			direct.lastMod != proxied.lastMod || direct.ctype != proxied.ctype {
			t.Fatalf("%s: validators differ: direct=(%q %q %q) proxied=(%q %q %q)",
				path, direct.etag, direct.lastMod, direct.ctype,
				proxied.etag, proxied.lastMod, proxied.ctype)
		}
		// Relayed responses pass through byte-untouched: no Via stamp.
		if proxied.via != "" {
			t.Fatalf("%s: relayed response was rewritten (Via %q)", path, proxied.via)
		}
		etags[path] = direct.etag
	}

	// Conditional GETs through the proxy: a learned validator must earn
	// a bodyless 304 on the raw wire, exactly as it does direct.
	for id := 0; id < set.Len(); id += 5 {
		path := set.Object(id).Path()
		c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "GET %s HTTP/1.1\r\nHost: sut\r\nIf-None-Match: %s\r\nConnection: close\r\n\r\n",
			path, etags[path])
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		raw, err := io.ReadAll(c)
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(raw, []byte("HTTP/1.1 304 ")) {
			t.Fatalf("%s: want 304 through proxy, got %q", path, raw[:min(len(raw), 60)])
		}
		if !bytes.HasSuffix(raw, []byte("\r\n\r\n")) || bytes.Count(raw, []byte("\r\n\r\n")) != 1 {
			t.Fatalf("%s: 304 through proxy carried a body: %q", path, raw)
		}
	}

	// Hash balancing must have spread the 48 paths across both
	// architectures — a proxy that parks everything on one backend would
	// pass the parity checks trivially.
	for _, st := range p.BackendStats() {
		if st.Relayed == 0 {
			t.Fatalf("backend %s relayed nothing: %+v", st.Name, st)
		}
	}

	// The merged rollup must account for every backend reply: scrape
	// both /rollup exports and require merged replies == the sum the
	// servers themselves report.
	sc := &http.Client{Timeout: 5 * time.Second}
	for name, addr := range map[string]string{"nio": nioAdmin.Addr(), "mt": mtAdmin.Addr()} {
		snap, err := rollup.Scrape(sc, addr)
		if err != nil {
			t.Fatalf("scraping %s rollup: %v", name, err)
		}
		snap.Name = name
		coll.Ingest(snap)
	}
	merged := coll.Merged("tier")
	var mergedReplies int64 = -1
	for _, f := range merged.Fields {
		if f.Name == "replies" {
			mergedReplies = f.Value
		}
	}
	want := nio.Stats().Replies + mt.Stats().Replies
	if mergedReplies != want {
		t.Fatalf("merged rollup replies = %d, backends report %d", mergedReplies, want)
	}
	// The proxy relayed one reply per proxied GET plus one per
	// conditional GET (the backends' totals are higher: they also served
	// the direct baseline fetches).
	proxied := int64(set.Len() + (set.Len()+4)/5)
	if got := p.Stats().Replies; got != proxied {
		t.Fatalf("proxy relayed %d replies, want %d", got, proxied)
	}
	if relayedSum := backendStats(p, "nio").Relayed + backendStats(p, "mt").Relayed; relayedSum != proxied {
		t.Fatalf("per-backend relay counts sum to %d, want %d", relayedSum, proxied)
	}
}

// TestProxyBackendKillFailover kills one of two live backends mid-run:
// the tier must eject it (passively or by probe), converge every
// subsequent request on the survivor with zero client-visible errors,
// and re-admit the backend when it comes back on the same port.
func TestProxyBackendKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 32
	scfg.MaxObjectBytes = 64 << 10
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	store := core.NewSurgeStore(set, scfg.MaxObjectBytes, 3)
	startBackend := func(port int) *core.Server {
		t.Helper()
		cfg := core.DefaultConfig(store)
		cfg.Port = port
		s, err := core.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := startBackend(0)
	b := startBackend(0)
	defer b.Stop()

	health := make(chan bool, 16)
	p := startProxyTier(t, 1, []proxy.BackendConfig{
		{Addr: a.Addr(), Name: "a"},
		{Addr: b.Addr(), Name: "b"},
	}, func(c *proxy.Config) {
		c.Balance = proxy.RoundRobin
		c.ProbeEvery = 20 * time.Millisecond
		c.ProbeTimeout = 250 * time.Millisecond
		c.FailAfter = 2
		c.ReviveAfter = 2
		c.ProbeSeed = 42
		c.OnHealthChange = func(name string, healthy bool) {
			if name == "a" {
				health <- healthy
			}
		}
	})
	waitHealth := func(want bool, what string) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case got := <-health:
				if got == want {
					return
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %s", what)
			}
		}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) int {
		t.Helper()
		resp, err := client.Get("http://" + p.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	paths := make([]string, set.Len())
	for i := range paths {
		paths[i] = set.Object(i).Path()
	}

	// Warm phase: both backends take traffic.
	for i := 0; i < 8; i++ {
		if code := get(paths[i]); code != 200 {
			t.Fatalf("warm request %d: status %d", i, code)
		}
	}
	for _, st := range p.BackendStats() {
		if st.Relayed == 0 {
			t.Fatalf("backend %s took no warm traffic: %+v", st.Name, st)
		}
	}

	// Kill backend a. The proxy's retry path hides dial failures from
	// clients while the health machinery converges.
	addrA := a.Addr()
	a.Stop()
	waitHealth(false, "ejection of the killed backend")

	// Every post-ejection request must succeed on the survivor: failover
	// is only real if the client never sees the corpse.
	survivorBefore := backendStats(p, "b").Relayed
	for i := 0; i < 30; i++ {
		if code := get(paths[i%len(paths)]); code != 200 {
			t.Fatalf("post-ejection request %d: status %d", i, code)
		}
	}
	if got := backendStats(p, "b").Relayed - survivorBefore; got != 30 {
		t.Fatalf("survivor relayed %d of 30 post-ejection requests", got)
	}
	if st := p.Stats(); st.BadGateway != 0 || st.Ejections == 0 {
		t.Fatalf("failover stats: %+v", st)
	}

	// Resurrect backend a on its original port: consecutive probe
	// successes must re-admit it and traffic must spread again.
	_, portStr, err := net.SplitHostPort(addrA)
	if err != nil {
		t.Fatal(err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		t.Fatal(err)
	}
	a2 := startBackend(port)
	defer a2.Stop()
	waitHealth(true, "re-admission of the revived backend")

	revivedBefore := backendStats(p, "a").Relayed
	for i := 0; i < 12; i++ {
		if code := get(paths[i]); code != 200 {
			t.Fatalf("post-revival request %d: status %d", i, code)
		}
	}
	if got := backendStats(p, "a").Relayed - revivedBefore; got == 0 {
		t.Fatal("revived backend took no traffic after re-admission")
	}
	if st := p.Stats(); st.Readmissions == 0 {
		t.Fatalf("re-admission not counted: %+v", st)
	}
}

// backendStats finds one backend's tier-merged snapshot by name.
func backendStats(p *proxy.Tier, name string) proxy.BackendStats {
	for _, st := range p.BackendStats() {
		if st.Name == name {
			return st
		}
	}
	return proxy.BackendStats{}
}

// TestProxyShedAttribution drives loadgen through a real proxy under
// both refusal modes and requires the Via-keyed split to attribute each
// 503 to the tier that issued it.
func TestProxyShedAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 16
	scfg.MaxObjectBytes = 32 << 10
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}

	// Mode 1: the backend sheds. A fake origin answers every request
	// with 503 + Retry-After and no Via; the proxy must relay it
	// byte-untouched, so loadgen attributes every shed to the backend.
	shedder, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shedder.Close()
	go func() {
		for {
			c, err := shedder.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 4096)
				if _, err := c.Read(buf); err != nil {
					return
				}
				c.Write(httpwire.AppendResponseHeaderExtra(nil, 503, "text/plain", 0, false,
					httpwire.Header{Name: "Retry-After", Value: "0"}))
			}()
		}
	}()
	p1 := startProxyTier(t, 1, []proxy.BackendConfig{{Addr: shedder.Addr().String(), Name: "shedder"}}, nil)
	res, err := loadgen.Run(loadgen.Options{
		Addr:       p1.Addr(),
		Clients:    2,
		Duration:   700 * time.Millisecond,
		Timeout:    5 * time.Second,
		ThinkScale: 0.01,
		Seed:       99,
		Workload:   scfg,
		Objects:    set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sheds == 0 {
		t.Fatalf("shedding backend produced no sheds: %+v", res)
	}
	if res.BackendSheds != res.Sheds || res.ProxySheds != 0 {
		t.Fatalf("relayed sheds misattributed: sheds=%d proxy=%d backend=%d",
			res.Sheds, res.ProxySheds, res.BackendSheds)
	}
	if st := p1.Stats(); st.Relayed503 == 0 || st.Shed != 0 {
		t.Fatalf("proxy counters disagree: %+v", st)
	}

	// Mode 2: the proxy sheds. MaxConns 1 with one connection held open
	// forces the tier to refuse further clients with a Via-stamped 503.
	store := core.NewSurgeStore(set, scfg.MaxObjectBytes, 3)
	bk, err := core.NewServer(core.DefaultConfig(store))
	if err != nil {
		t.Fatal(err)
	}
	if err := bk.Start(); err != nil {
		t.Fatal(err)
	}
	defer bk.Stop()
	p2 := startProxyTier(t, 1, []proxy.BackendConfig{{Addr: bk.Addr(), Name: "live"}},
		func(c *proxy.Config) { c.MaxConns = 1 })
	hold, err := net.DialTimeout("tcp", p2.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	time.Sleep(50 * time.Millisecond) // let the held conn land in the accept count
	res2, err := loadgen.Run(loadgen.Options{
		Addr:       p2.Addr(),
		Clients:    2,
		Duration:   700 * time.Millisecond,
		Timeout:    5 * time.Second,
		ThinkScale: 0.01,
		Seed:       99,
		Workload:   scfg,
		Objects:    set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ProxySheds == 0 || res2.BackendSheds != 0 {
		t.Fatalf("tier sheds misattributed: sheds=%d proxy=%d backend=%d",
			res2.Sheds, res2.ProxySheds, res2.BackendSheds)
	}
	if st := p2.Stats(); st.Shed == 0 {
		t.Fatalf("proxy shed counter not advanced: %+v", st)
	}
}
