// Obs: a live showcase of the observability plane — per-connection
// lifecycle tracing, phase-latency histograms, and the admin
// introspection endpoint — on the event-driven server under a short
// burst of SURGE load.
//
//	go run ./examples/obs
//
// The demo starts the nio server with tracing enabled and its admin
// endpoint bound, drives ~2 s of load, scrapes /stats mid-run to print
// the live phase decomposition (where inside the server the latency
// accrues: queue-wait vs parse vs handler vs write), then dumps the last
// few trace-ring events for one connection — the "why was this request
// slow?" answer external measurement cannot give.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/surge"
)

func main() {
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 500
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}

	plane := obs.NewPlane(1 << 14)
	cfg := core.DefaultConfig(core.NewSurgeStore(set, scfg.MaxObjectBytes, 8))
	cfg.Obs = plane
	srv, err := core.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	admin, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Stats: func() []obs.Field { return core.StatsFields(srv.Stats()) },
		Plane: plane,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()
	fmt.Printf("nio server on %s, admin on http://%s\n\n", srv.Addr(), admin.Addr())

	// Scrape mid-run, the way `wload -admin` does during a ramp.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			time.Sleep(500 * time.Millisecond)
			fmt.Printf("t+%0.1fs live phase p95s:\n", float64(i+1)*0.5)
			dump(admin.Addr(), "/stats", "phase.")
		}
	}()
	res, err := loadgen.Run(loadgen.Options{
		Addr:       srv.Addr(),
		Clients:    16,
		Warmup:     200 * time.Millisecond,
		Duration:   1800 * time.Millisecond,
		Timeout:    5 * time.Second,
		ThinkScale: 0.01,
		Seed:       42,
		Workload:   scfg,
		Objects:    set,
	})
	if err != nil {
		log.Fatal(err)
	}
	<-done
	fmt.Printf("\nclient view: %d replies (%.0f/s), p95 %.4fs — one number\n",
		res.Replies, res.RepliesPerSec, res.P95ResponseSec)
	fmt.Println("server view (/stats): that p95, decomposed by phase —")
	dump(admin.Addr(), "/stats", "phase.")
	fmt.Println("\ntrace ring: one connection's lifecycle (/trace?conn=1) —")
	dump(admin.Addr(), "/trace?conn=1", "")
	fmt.Println("\ncounters (/stats):")
	dump(admin.Addr(), "/stats", "trace.")
}

// dump fetches an admin path and prints the lines matching prefix
// (every line when prefix is empty), indented.
func dump(addr, path, prefix string) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if prefix == "" || strings.HasPrefix(line, prefix) {
			fmt.Printf("  %s\n", line)
		}
	}
}
