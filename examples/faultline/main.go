// Faultline: a live demonstration of the robustness gap between the two
// architectures. A seeded slowloris herd — full requests dribbled at a
// few bytes per second through the internal/faultline proxy — is aimed
// at each server while healthy clients measure goodput.
//
//	go run ./examples/faultline
//
// The thread-pool server's goodput collapses once the herd pins every
// worker thread in a blocking read; the event-driven server, armed with
// a HeaderTimeout, resets the attackers from its sweep loop and keeps
// serving. This is the paper's thesis provoked rather than measured:
// concurrency limited by threads fails closed, concurrency limited by
// file descriptors plus a header clock does not.
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultline"
	"repro/internal/mtserver"
)

const (
	attackers   = 32
	dribbleBps  = 8 // request bytes per second through the proxy
	probeWindow = 2 * time.Second
)

var request = []byte("GET /hello HTTP/1.1\r\nHost: sut\r\nUser-Agent: probe/1.0\r\n\r\n")

func main() {
	store := core.MapStore{"/hello": []byte("hello world")}

	// Thread-pool server: 8 workers, Apache-like 15 s keep-alive.
	mcfg := mtserver.DefaultConfig(store)
	mcfg.Threads = 8
	mcfg.KeepAlive = 15 * time.Second
	mt, err := mtserver.NewServer(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := mt.Start(); err != nil {
		log.Fatal(err)
	}
	defer mt.Stop()

	// Event-driven server with the slowloris defense armed.
	ccfg := core.DefaultConfig(store)
	ccfg.HeaderTimeout = 150 * time.Millisecond
	ev, err := core.NewServer(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ev.Start(); err != nil {
		log.Fatal(err)
	}
	defer ev.Stop()

	fmt.Printf("slowloris: %d attackers dribbling %d B/s through faultline\n\n", attackers, dribbleBps)
	fmt.Printf("%-34s %12s %12s %9s\n", "server", "baseline r/s", "attacked r/s", "kept")

	demo := func(name, addr string, stats func() string) {
		baseline := goodput(addr)
		proxy, stop := herd(addr)
		defer stop()
		waitPinned(proxy)
		attacked := goodput(addr)
		kept := 0.0
		if baseline > 0 {
			kept = attacked / baseline * 100
		}
		fmt.Printf("%-34s %12.0f %12.0f %8.1f%%   %s\n", name, baseline, attacked, kept, stats())
	}

	demo("thread pool (8 threads)", mt.Addr(), func() string {
		return fmt.Sprintf("conns-open=%d", mt.Stats().ConnsOpen)
	})
	demo("event-driven (header-timeout 150ms)", ev.Addr(), func() string {
		return fmt.Sprintf("header-timeouts=%d", ev.Stats().HeaderTimeouts)
	})
}

// goodput measures healthy-client replies/second over probeWindow.
func goodput(addr string) float64 {
	var replies atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var conn net.Conn
			var r *bufio.Reader
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn == nil {
					c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
					if err != nil {
						time.Sleep(5 * time.Millisecond)
						continue
					}
					conn, r = c, bufio.NewReader(c)
				}
				conn.SetDeadline(time.Now().Add(500 * time.Millisecond))
				if _, err := conn.Write(request); err != nil {
					conn.Close()
					conn = nil
					continue
				}
				resp, err := http.ReadResponse(r, nil)
				if err != nil {
					conn.Close()
					conn = nil
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == 200 {
					replies.Add(1)
				}
			}
		}()
	}
	time.Sleep(probeWindow)
	close(stop)
	wg.Wait()
	return float64(replies.Load()) / probeWindow.Seconds()
}

// herd launches persistent slowloris attackers through a faultline proxy.
func herd(upstream string) (*faultline.Proxy, func()) {
	p, err := faultline.New(faultline.Config{
		Upstream: upstream,
		Seed:     7,
		Plan:     faultline.Slowloris(dribbleBps),
	})
	if err != nil {
		log.Fatal(err)
	}
	stopc := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < attackers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopc:
					return
				default:
				}
				c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
				if err != nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				c.Write(request)
				c.SetReadDeadline(time.Now().Add(60 * time.Second))
				io.Copy(io.Discard, c) // hold until the server kills it
				c.Close()
			}
		}()
	}
	return p, func() {
		close(stopc)
		p.Close()
		wg.Wait()
	}
}

// waitPinned gives the herd a moment to connect and pin what it can.
func waitPinned(p *faultline.Proxy) {
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Conns < attackers && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)
}
