// Quickstart: start the event-driven server on an in-memory store, fetch
// a URL through a plain HTTP client, and print the server's counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"

	"repro/internal/core"
)

func main() {
	// 1. Content: any Store implementation works; MapStore is the
	//    simplest. The paper's experiments use a SURGE store instead
	//    (see examples/loadtest).
	store := core.MapStore{
		"/":      []byte("<html><body>hello from the nio server</body></html>"),
		"/about": []byte("event-driven web server, 1 acceptor + N reactor workers"),
	}

	// 2. Server: one reactor worker is the paper's best uniprocessor
	//    configuration. Port 0 picks a free port.
	cfg := core.DefaultConfig(store)
	srv, err := core.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()
	fmt.Println("serving on", srv.Addr())

	// 3. Client: the server speaks ordinary HTTP/1.1.
	for _, path := range []string{"/", "/about", "/missing"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %-8s → %d %q\n", path, resp.StatusCode, body)
	}

	st := srv.Stats()
	fmt.Printf("server stats: accepted=%d replies=%d bytes=%d notFound=%d\n",
		st.Accepted, st.Replies, st.BytesOut, st.NotFound)
}
