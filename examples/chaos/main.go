// Chaos: the paper's bandwidth-bounded figures on real sockets. Both
// live servers run behind the deterministic link emulator while the
// scenario harness sweeps the emulated link from the scaled 100 Mbit
// cap to the scaled gigabit cap, printing live goodput next to the
// discrete-event prediction for each point.
//
//	go run ./examples/chaos
//
// The table is the regime split of Figures 5–6: on the constrained
// links goodput tracks the link cap (and the two architectures tie —
// the wire is the bottleneck, not the server); once the link opens up,
// goodput tracks the pinned CPU ceiling instead. The drift column is
// the calibration gap between the live stack and internal/simnet.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultline/scenario"
	"repro/internal/mtserver"
)

const seed = 1

// cpuPin emulates a single CPU shared by all handler threads: requests
// serialize behind one mutex and each costs a fixed service time. This
// pins the same compute ceiling on both architectures, so the sweep
// isolates the link as the only moving part.
type cpuPin struct {
	mu sync.Mutex
	d  time.Duration
}

func (p *cpuPin) fault(string) core.Fault {
	p.mu.Lock()
	time.Sleep(p.d)
	p.mu.Unlock()
	return core.Fault{}
}

func main() {
	sweep := []string{"bw-100mbit", "bw-200mbit", "bw-1gbit"}
	base, err := scenario.ByName(sweep[0])
	if err != nil {
		log.Fatal(err)
	}
	store := core.MapStore{"/obj/0": make([]byte, base.ObjectBytes)}

	fmt.Printf("%d KiB objects, %v pinned service time, %d closed-loop clients, seed %d\n\n",
		base.ObjectBytes>>10, base.HandlerDelay, base.Clients, seed)
	fmt.Printf("%-8s %-12s %12s %12s %8s %10s\n",
		"server", "scenario", "live MB/s", "pred MB/s", "drift", "replies/s")

	for _, kind := range []string{"nio", "mt"} {
		addr, stop := startServer(kind, store, base.HandlerDelay)
		for _, name := range sweep {
			sc, err := scenario.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			out, err := scenario.Run(sc, addr, seed)
			if err != nil {
				log.Fatal(err)
			}
			pred := scenario.Predict(sc, 1)
			fmt.Printf("%-8s %-12s %12.2f %12.2f %7.1f%% %10.0f\n",
				kind, name, out.GoodputBps()/1e6, pred.BytesPerSec/1e6,
				pred.Drift(out.GoodputBps())*100, out.Load.RepliesPerSec)
		}
		stop()
	}
}

func startServer(kind string, store core.Store, svc time.Duration) (string, func()) {
	pin := &cpuPin{d: svc}
	switch kind {
	case "nio":
		cfg := core.DefaultConfig(store)
		cfg.Workers = 1
		cfg.HandlerFault = pin.fault
		srv, err := core.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		return srv.Addr(), func() { srv.Stop() }
	default:
		cfg := mtserver.DefaultConfig(store)
		cfg.Threads = 16
		cfg.HandlerFault = pin.fault
		srv, err := mtserver.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		return srv.Addr(), func() { srv.Stop() }
	}
}
