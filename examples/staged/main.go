// Staged: the paper's §6 future-work proposal as running code — a SEDA
// pipeline (parse → handle → format) processing synthetic requests, with
// per-stage thread pools and bounded queues. The "handle" stage waits on
// simulated backend I/O, so its worker count is the pipeline's capacity
// knob: a well-provisioned stage keeps up with the offered rate, an
// under-provisioned one shelters the rest of the server by shedding load
// at admission (SEDA's well-conditioned property).
//
//	go run ./examples/staged
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/seda"
)

// request flows through the pipeline, gathering stage results.
type request struct {
	id     int
	parsed bool
	body   int
}

func runPipeline(name string, handleWorkers int) {
	var served atomic.Int64
	p, err := seda.NewPipeline(
		func(seda.Event) { served.Add(1) },
		seda.StageConfig{Name: "parse", Workers: 1, QueueCap: 32,
			Handler: func(ev seda.Event, emit func(seda.Event)) {
				r := ev.(*request)
				r.parsed = true
				emit(r)
			}},
		seda.StageConfig{Name: "handle", Workers: handleWorkers, QueueCap: 32,
			Handler: func(ev seda.Event, emit func(seda.Event)) {
				r := ev.(*request)
				time.Sleep(2 * time.Millisecond) // simulated backend I/O
				r.body = r.id * 2
				emit(r)
			}},
		seda.StageConfig{Name: "format", Workers: 1, QueueCap: 32,
			Handler: func(ev seda.Event, emit func(seda.Event)) {
				emit(ev)
			}},
	)
	if err != nil {
		log.Fatal(err)
	}
	p.Start()

	// Offer ~1000 requests/s for half a second. Capacity of the handle
	// stage is workers/2ms: 4 workers keep up (2000/s), 1 worker (500/s)
	// falls behind and the front stage starts shedding.
	const offered = 500
	start := time.Now()
	admitted := 0
	for i := 0; i < offered; i++ {
		if p.Submit(&request{id: i}) {
			admitted++
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	elapsed := time.Since(start)

	fmt.Printf("%-22s offered %d, admitted %d, served %d in %v\n",
		name, offered, admitted, served.Load(), elapsed.Round(time.Millisecond))
	for _, st := range p.Stats() {
		fmt.Printf("    stage %-8s workers=%d processed=%d dropped=%d\n",
			st.Name, st.Workers, st.Processed, st.Dropped)
	}
}

func main() {
	fmt.Println("== staged event-driven pipeline (paper §6 future work) ==")
	runPipeline("balanced (4 handlers)", 4)
	runPipeline("starved (1 handler)", 1)
	fmt.Println("\nthe starved pipeline sheds load at admission (dropped > 0)")
	fmt.Println("instead of queueing unboundedly — SEDA's well-conditioned property")
}
