// Sysfault: seeded syscall-level fault injection against the live
// event-driven server. The demo arms the process-wide seam with a
// mixed plan — EMFILE at accept, short writes and transient ENOBUFS
// mid-response, sendfile failures on an in-flight file transfer — then
// fetches one object repeatedly and proves three things:
//
//		go run ./examples/sysfault [seed]
//
//	  - Survival: every served fetch completes with exact bytes; the
//	    rest are counted 503 sheds from the fd-exhaustion recovery drain
//	    (best-effort, so a shed can arrive truncated); nothing wedges.
//	  - Accounting: the server's hardening counters line up with the
//	    injector's fired-decision log.
//	  - Determinism: the fired decisions are re-enumerated offline from
//	    the same seed and plan, and the two streams are printed side by
//	    side — byte-identical, every run, for any seed.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/docroot"
	"repro/internal/sysfault"
)

const plan = "accept:emfile:0.3;write:short:0.2:len=7;write:enobufs:0.1;sendfile:eio:0.5"

func main() {
	seed := uint64(42)
	if len(os.Args) > 1 {
		v, err := strconv.ParseUint(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
		seed = v
	}

	body := make([]byte, 32<<10)
	for i := range body {
		body[i] = byte(i*31 + 7)
	}
	// A disk-backed object over the cache's MemLimit is served from its
	// fd, so delivery starts on the sendfile path — without that, the
	// plan's sendfile rules would never see a call.
	dir, err := os.MkdirTemp("", "sysfault-demo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.MkdirAll(filepath.Join(dir, "obj"), 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "obj", "0"), body, 0o644); err != nil {
		log.Fatal(err)
	}
	root, err := docroot.New(docroot.Config{Dir: dir, CacheBytes: 1 << 20, MemLimit: 8 << 10})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(nil)
	cfg.Docroot = root
	cfg.Workers = 1
	srv, err := core.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	rules, err := sysfault.ParsePlan(plan)
	if err != nil {
		log.Fatal(err)
	}
	inj := sysfault.New(seed, rules...)
	sysfault.Install(inj)
	defer sysfault.Uninstall()

	fmt.Printf("plan  %s\nseed  %d\n\n", plan, seed)

	oks, sheds, torn := 0, 0, 0
	for i := 0; i < 40; i++ {
		status, got, err := fetch(srv.Addr(), "/obj/0")
		switch {
		case err != nil:
			// The only lossy path in this plan: the fd-exhaustion
			// recovery drain sheds with one best-effort write, and that
			// write can itself draw a short-write injection — the shed
			// arrives truncated. Served responses never get here: their
			// short writes are resumed, not dropped.
			torn++
		case status == 200 && bytes.Equal(got, body):
			oks++
		case status == 503:
			sheds++ // the recovery drain's deliberate shed
		default:
			log.Fatalf("fetch %d: status %d, %d bytes (corrupted?)", i, status, len(got))
		}
	}
	sysfault.Uninstall()

	st := srv.Stats()
	fmt.Printf("%d fetches: %d exact-byte replies, %d recovery sheds (%d truncated mid-shed)\n",
		oks+sheds+torn, oks, sheds, torn)
	fmt.Printf("absorbed: accept_emfile=%d accept_backoffs=%d write_stalls=%d sendfile_fallbacks=%d\n\n",
		st.AcceptEMFILE, st.AcceptBackoffs, st.WriteStalls, st.SendfileFallbacks)

	// Re-enumerate the whole run offline from the same seed and plan:
	// the live stream and the replay must agree decision for decision.
	stats := inj.Stats()
	offline := sysfault.New(seed, sysfault.MustParsePlan(plan)...)
	replayed := map[sysfault.Site][]sysfault.Decision{}
	for s := sysfault.Site(0); int(s) < sysfault.NumSites; s++ {
		for i := uint64(0); i < stats[s].Calls; i++ {
			if d, ok := offline.Step(s); ok {
				replayed[s] = append(replayed[s], d)
			}
		}
	}
	fmt.Printf("%-28s %-28s\n", "live decision", "offline replay")
	mismatches := 0
	for _, d := range inj.Decisions() {
		rs := replayed[d.Site]
		var r sysfault.Decision
		for _, cand := range rs {
			if cand.Index == d.Index {
				r = cand
				break
			}
		}
		mark := ""
		if r != d {
			mark = "  <-- MISMATCH"
			mismatches++
		}
		fmt.Printf("%-28s %-28s%s\n", d, r, mark)
	}
	if mismatches > 0 {
		log.Fatalf("%d decisions diverged from the offline replay", mismatches)
	}
	fmt.Printf("\n%d fired decisions, all byte-identical to the offline replay of seed %d\n",
		len(inj.Decisions()), seed)
}

func fetch(addr, path string) (int, []byte, error) {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return 0, nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(3 * time.Second))
	fmt.Fprintf(c, "GET %s HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n", path)
	resp, err := http.ReadResponse(bufio.NewReader(c), nil)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}
