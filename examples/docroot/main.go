// Docroot: both live servers serving the same materialized SURGE file
// set from disk — the substrate the paper's httpd2 baseline actually
// ran on — with the bounded content cache, zero-copy sendfile delivery,
// and browser-style revalidation traffic earning 304s.
//
//	go run ./examples/docroot
//
// The run prints an httperf-style comparison plus each server's cache
// and 304 accounting, so the effect of the content cache and of
// conditional GETs on reply rate is directly visible.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/docroot"
	"repro/internal/loadgen"
	"repro/internal/mtserver"
	"repro/internal/surge"
)

func main() {
	// One SURGE population, materialized once as real files; each server
	// gets its own cache over the same directory.
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 500
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "surge-docroot-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := docroot.MaterializeSurge(dir, set, scfg.MaxObjectBytes, 8); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d objects (mean %.0f B) under %s\n\n", set.Len(), set.MeanBytes(), dir)

	run := func(name, addr string) loadgen.Result {
		res, err := loadgen.Run(loadgen.Options{
			Addr:     addr,
			Clients:  30,
			Warmup:   500 * time.Millisecond,
			Duration: 5 * time.Second,
			Timeout:  10 * time.Second,
			// Compressed think times so the 5 s window carries load.
			ThinkScale: 0.05,
			Seed:       99,
			Workload:   scfg,
			Objects:    set,
			// A third of repeat visits revalidate instead of re-fetching,
			// like a browser cache; fresh validators earn bodyless 304s.
			RevalidateFraction: 0.33,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-12s %8.1f replies/s  mean %.4fs  p99 %.4fs  %6.2f MB/s  304s %.1f/s\n",
			name, res.RepliesPerSec, res.MeanResponseSec, res.P99ResponseSec,
			res.BandwidthBps/1e6, res.NotModifiedPerSec)
		return res
	}

	// Both caches hold bodies up to 32 KiB in memory; the SURGE size
	// tail above that is delivered zero-copy, so both paths show up in
	// the accounting below.
	mkRoot := func() *docroot.Root {
		root, err := docroot.New(docroot.Config{
			Dir: dir, CacheBytes: 32 << 20, MemLimit: 32 << 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		return root
	}

	// Event-driven server: cache misses and fd-only entries go out
	// through non-blocking sendfile from the reactor loop.
	nioRoot := mkRoot()
	ncfg := core.DefaultConfig(nil)
	ncfg.Docroot = nioRoot
	nio, err := core.NewServer(ncfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := nio.Start(); err != nil {
		log.Fatal(err)
	}
	run("event-driven", nio.Addr())
	nst := nio.Stats()
	ncs := nioRoot.Stats()
	nio.Stop()
	fmt.Printf("             304s=%d sendfile=%d KiB cache hits=%d misses=%d evictions=%d\n\n",
		nst.NotModified, nst.SendfileBytes>>10, ncs.Hits, ncs.Misses, ncs.Evictions)

	// Thread-pool server: same directory, blocking sendfile per thread.
	mtRoot := mkRoot()
	mcfg := mtserver.DefaultConfig(nil)
	mcfg.Threads = 64
	mcfg.Docroot = mtRoot
	mt, err := mtserver.NewServer(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := mt.Start(); err != nil {
		log.Fatal(err)
	}
	run("thread-pool", mt.Addr())
	mst := mt.Stats()
	mcs := mtRoot.Stats()
	mt.Stop()
	fmt.Printf("             304s=%d sendfile=%d KiB cache hits=%d misses=%d evictions=%d\n",
		mst.NotModified, mst.SendfileBytes>>10, mcs.Hits, mcs.Misses, mcs.Evictions)
}
