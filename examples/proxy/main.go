// Proxy: a live showcase of the serving tier — one event-driven and one
// thread-pool backend behind the nioproxy balancer, under SURGE load,
// with a mid-run backend kill and revival.
//
//	go run ./examples/proxy
//
// The demo starts both server architectures with their telemetry planes
// exported, fronts them with a health-checked proxy, and drives a load
// ramp through the tier. Halfway in it kills the event-driven backend:
// the prober ejects it, traffic converges on the survivor with no
// client-visible errors, and when the backend comes back on the same
// port it is re-admitted and traffic spreads again. At the end it
// prints the client's view, the proxy's per-backend ledger, and the
// tier-merged rollup built from the backends' own histograms.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/loadgen"
	"repro/internal/mtserver"
	"repro/internal/obs"
	"repro/internal/obs/rollup"
	"repro/internal/proxy"
	"repro/internal/surge"
)

func main() {
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 500
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	store := core.NewSurgeStore(set, scfg.MaxObjectBytes, 8)

	// Backend 1: the event-driven core (this is the one we will kill).
	// The admin endpoint reads through an atomic pointer so the revived
	// instance's counters keep flowing into the tier rollup after the
	// restart.
	nioPlane := obs.NewPlane(1 << 12)
	ncfg := core.DefaultConfig(store)
	ncfg.Obs = nioPlane
	nio, err := core.NewServer(ncfg)
	if err != nil {
		log.Fatal(err)
	}
	var nioSrv atomic.Pointer[core.Server]
	nioSrv.Store(nio)
	nioAdmin, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Name:  "nio",
		Stats: func() []obs.Field { return core.StatsFields(nioSrv.Load().Stats()) },
		Plane: nioPlane,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer nioAdmin.Close()
	if err := nio.Start(); err != nil {
		log.Fatal(err)
	}

	// Backend 2: the thread-pool architecture (the survivor).
	mtPlane := obs.NewPlane(1 << 12)
	mcfg := mtserver.DefaultConfig(store)
	mcfg.Threads = 16
	mcfg.Obs = mtPlane
	mt, err := mtserver.NewServer(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	mtAdmin, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Name:  "mt",
		Stats: func() []obs.Field { return mtserver.StatsFields(mt.Stats()) },
		Plane: mtPlane,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mtAdmin.Close()
	if err := mt.Start(); err != nil {
		log.Fatal(err)
	}
	defer mt.Stop()

	// The tier: round-robin over both architectures, fast probes so the
	// kill/revive cycle fits in a short demo.
	start := time.Now()
	say := func(format string, args ...any) {
		fmt.Printf("t+%5.2fs  %s\n", time.Since(start).Seconds(), fmt.Sprintf(format, args...))
	}
	pcfg := proxy.DefaultConfig([]proxy.BackendConfig{
		{Addr: nio.Addr(), AdminAddr: nioAdmin.Addr(), Name: "nio"},
		{Addr: mt.Addr(), AdminAddr: mtAdmin.Addr(), Name: "mt"},
	})
	pcfg.Balance = proxy.RoundRobin
	pcfg.ProbeEvery = 100 * time.Millisecond
	pcfg.ProbeTimeout = 500 * time.Millisecond
	pcfg.FailAfter = 2
	pcfg.ReviveAfter = 2
	pcfg.ProbeSeed = 11
	pcfg.OnHealthChange = func(name string, healthy bool) {
		if healthy {
			say("health: backend %s re-admitted (consecutive probe successes)", name)
		} else {
			say("health: backend %s EJECTED", name)
		}
	}
	p, err := proxy.NewServer(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Start(); err != nil {
		log.Fatal(err)
	}
	defer p.Stop()

	coll := rollup.NewCollector()
	scraper := rollup.NewScraper(coll, []rollup.Target{
		{Name: "nio", Addr: nioAdmin.Addr()},
		{Name: "mt", Addr: mtAdmin.Addr()},
	}, 500*time.Millisecond)
	scraper.Start()
	defer scraper.Stop()

	fmt.Printf("serving tier on %s: rr over nio(%s) + mt(%s)\n\n", p.Addr(), nio.Addr(), mt.Addr())

	// The kill/revive script runs alongside the load ramp.
	nioAddr := nio.Addr()
	nioPort := nio.Port()
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(1500 * time.Millisecond)
		say("KILLING backend nio (%s) mid-ramp", nioAddr)
		nio.Stop()
		time.Sleep(1500 * time.Millisecond)
		say("restarting backend nio on the same port")
		ncfg2 := core.DefaultConfig(store)
		ncfg2.Port = nioPort
		ncfg2.Obs = nioPlane
		nio2, err := core.NewServer(ncfg2)
		if err != nil {
			say("restart failed: %v", err)
			return
		}
		if err := nio2.Start(); err != nil {
			say("restart failed: %v", err)
			return
		}
		nioSrv.Store(nio2)
		// Leaked deliberately until process exit: the demo ends right after.
	}()

	say("load ramp: 16 clients through the tier for 5s")
	res, err := loadgen.Run(loadgen.Options{
		Addr:       p.Addr(),
		Clients:    16,
		Warmup:     200 * time.Millisecond,
		Duration:   5 * time.Second,
		Timeout:    5 * time.Second,
		ThinkScale: 0.01,
		Seed:       42,
		Workload:   scfg,
		Objects:    set,
	})
	if err != nil {
		log.Fatal(err)
	}
	<-done
	scraper.Sweep() // final pull so the merged table includes the whole run

	fmt.Println("\nclient view:")
	fmt.Printf("  replies            %d (%.0f/s), p95 %.4fs\n", res.Replies, res.RepliesPerSec, res.P95ResponseSec)
	fmt.Printf("  errors             timeouts=%d resets=%d unreachable=%d\n",
		res.TimeoutErrors, res.ResetErrors, res.UnreachableErrors)
	fmt.Printf("  sheds              %d total (proxy=%d backend=%d), %d retries honored\n",
		res.Sheds, res.ProxySheds, res.BackendSheds, res.Retries)

	st := p.Stats()
	fmt.Println("\nproxy ledger:")
	fmt.Printf("  relayed            %d replies over %d dials + %d reuses\n", st.Replies, st.UpstreamDials, st.UpstreamReuses)
	fmt.Printf("  relay retries      %d (dial/read failures hidden from clients)\n", st.UpstreamRetries)
	fmt.Printf("  health transitions %d ejections, %d re-admissions\n", st.Ejections, st.Readmissions)
	fmt.Printf("  local refusals     shed=%d no-backend=%d bad-gateway=%d\n", st.Shed, st.NoBackend, st.BadGateway)
	for _, b := range p.Backends() {
		bs := b.Stats()
		fmt.Printf("  backend %-4s       healthy=%-5v relayed=%-6d errors=%-3d probes=%d (%d failed)\n",
			bs.Name, bs.Healthy, bs.Relayed, bs.Errors, bs.Probes, bs.ProbeFails)
	}

	fmt.Println("\ntier-merged rollup (per-backend histograms merged bucketwise):")
	var sb strings.Builder
	coll.RenderMerged(&sb)
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "==") || strings.HasPrefix(line, "server.replies") ||
			strings.HasPrefix(line, "phase.handler.") || strings.HasPrefix(line, "trace.accept") {
			fmt.Printf("  %s\n", line)
		}
	}
	_ = os.Stdout.Sync()
}
