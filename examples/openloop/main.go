// Openloop: drive the live event-driven server with httperf's open-loop
// mode — sessions arrive at a fixed Poisson rate regardless of how the
// server keeps up — and sweep the offered rate through saturation to
// print a goodput curve. A well-conditioned server's goodput plateaus
// instead of collapsing; this is the miniature live analogue of the
// extended experiment E3 (`go run ./cmd/expsim -fast -fig 13`).
//
//	go run ./examples/openloop
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/loadgen"
	"repro/internal/surge"
)

func main() {
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 300
	scfg.MaxObjectBytes = 128 << 10
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	store := core.NewSurgeStore(set, scfg.MaxObjectBytes, 8)
	srv, err := core.NewServer(core.DefaultConfig(store))
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	fmt.Println("open-loop sweep against the live nio server (loopback)")
	fmt.Printf("%-22s %12s %12s %10s\n", "offered sessions/s", "replies/s", "resp p90", "timeouts")
	for _, rate := range []float64{20, 60, 120} {
		res, err := loadgen.Run(loadgen.Options{
			Addr:        srv.Addr(),
			SessionRate: rate,
			Warmup:      300 * time.Millisecond,
			Duration:    3 * time.Second,
			Timeout:     5 * time.Second,
			ThinkScale:  0.01,
			Seed:        42,
			Workload:    scfg,
			Objects:     set,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22.0f %12.1f %11.4fs %10d\n",
			rate, res.RepliesPerSec, res.P90ResponseSec, res.TimeoutErrors)
	}
}
