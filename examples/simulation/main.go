// Simulation: run one point of the paper's uniprocessor experiment on the
// simulated testbed and print the httperf-style report — the smallest
// end-to-end use of the simulation stack (engine, CPUs, network, server
// model, client fleet). A second section drives one traced run and dumps
// the slowest replies from the lifecycle trace.
//
//	go run ./examples/simulation
package main

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/simclient"
	"repro/internal/simcpu"
	"repro/internal/simnet"
	"repro/internal/simsrv"
	"repro/internal/surge"
	"repro/internal/trace"
)

func main() {
	fmt.Println("simulated testbed: 1 CPU, 1 Gbit/s link, 3000 httperf clients")
	for _, sc := range []experiments.Scenario{
		{Kind: experiments.NIO, Workers: 1, Processors: 1,
			Bandwidth: experiments.Gigabit, Clients: 3000, Seed: 1,
			WarmupSec: 5, MeasureSec: 20},
		{Kind: experiments.HTTPD, Threads: 4096, Processors: 1,
			Bandwidth: experiments.Gigabit, Clients: 3000, Seed: 1,
			WarmupSec: 5, MeasureSec: 20},
	} {
		rep := sc.Run()
		fmt.Printf("%-14s %8.1f replies/s   resp %.4fs   conn %.4fs   timeouts %.2f/s   resets %.2f/s   %.1f MB/s\n",
			sc.Label(), rep.RepliesPerSec, rep.MeanResponseSec, rep.MeanConnectSec,
			rep.TimeoutErrPerSec, rep.ResetErrPerSec, rep.BandwidthBps/1e6)
	}

	// Tracing: rebuild the nio point by hand with a lifecycle trace
	// attached, then ask the ring for the slowest replies.
	fmt.Println("\ntraced run — three slowest replies:")
	engine := sim.NewEngine()
	cfg := experiments.PaperWorkload()
	set, err := surge.BuildObjectSet(cfg, dist.NewRNG(7))
	if err != nil {
		panic(err)
	}
	net := simnet.NewNetwork(engine, experiments.PaperNet(experiments.Gigabit))
	cpu := simcpu.NewPool(engine, experiments.PaperCPU(1))
	simsrv.NewEventDriven(engine, net, cpu, experiments.PaperCosts(), 1).Start()
	fleet, err := simclient.NewFleet(engine, net, cfg, set, dist.NewRNG(2), simclient.Options{
		Clients: 1500, Timeout: 10, RampOver: 2, Warmup: 3, Duration: 10,
	})
	if err != nil {
		panic(err)
	}
	ring := trace.NewRing(1 << 16)
	fleet.Trace = ring
	fleet.Run()
	for _, ev := range ring.SlowestReplies(3) {
		fmt.Printf("  t=%8.3fs client=%-5d response took %.4fs\n", ev.At, ev.Client, ev.Value)
	}

	fmt.Println("\nfull figure sweeps: go run ./cmd/expsim -fast")
}
