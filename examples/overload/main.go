// Overload: a live showcase of the robustness layer — adaptive
// latency-target admission control, panic isolation, and the stall
// watchdog — on the thread-pool server, where overload is easiest to
// provoke (a 4-thread pool with a 25 ms handler saturates at ~160
// conns/s).
//
//	go run ./examples/overload
//
// Act 1 ramps an open-loop arrival rate from half capacity to 4x
// capacity against the AIMD controller and prints how client p95 and
// the shed rate track the ramp. Act 2 injects a handler panic and a
// handler wedge and shows the blast radius: one connection for the
// panic (the server keeps serving), one flagged-and-recovered stall for
// the wedge.
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/loadgen"
	"repro/internal/mtserver"
	"repro/internal/overload"
	"repro/internal/surge"
)

// oneShotSource emits identical single-request sessions, so the offered
// open-loop load is the session rate exactly.
type oneShotSource struct{}

func (oneShotSource) NextSession() surge.Session {
	return surge.Session{Requests: []surge.Request{{Object: surge.Object{ID: 0}}}}
}

func main() {
	const (
		handlerDelay = 25 * time.Millisecond // capacity = threads/delay = 160/s
		targetP95    = 150 * time.Millisecond
	)
	store := core.MapStore{"/obj/0": []byte("pong"), "/hello": []byte("hello")}

	wedge := make(chan struct{})
	ctl, err := overload.NewController(overload.Config{
		TargetP95:      targetP95,
		InitialRate:    200,
		MinRate:        20,
		Increase:       10,
		DecreaseFactor: 0.5,
		AdaptEvery:     100 * time.Millisecond,
		RetryAfter:     time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	wd, err := overload.NewWatchdog(overload.WatchdogConfig{
		Interval: 50 * time.Millisecond,
		OnStall: func(s overload.Stall) {
			fmt.Printf("  watchdog: %s stalled (age %v)\n", s.Name, s.Age.Round(time.Millisecond))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer wd.Stop()

	cfg := mtserver.DefaultConfig(store)
	cfg.Threads = 4
	cfg.Admission = ctl
	cfg.Watchdog = wd
	cfg.HandlerFault = func(path string) core.Fault {
		switch path {
		case "/panic":
			return core.Fault{Panic: true}
		case "/wedge":
			return core.Fault{Wedge: wedge}
		default:
			return core.Fault{Delay: handlerDelay}
		}
	}
	srv, err := mtserver.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	fmt.Printf("4-thread pool, %v/request => capacity ~160 conns/s; controller target p95 = %v\n\n",
		handlerDelay, targetP95)
	fmt.Println("act 1: open-loop ramp against the AIMD admission controller")
	fmt.Printf("%10s %12s %12s %12s %12s %12s\n",
		"offered/s", "replies/s", "p95 ms", "sheds/s", "retries", "ctl rate/s")
	for _, rate := range []float64{80, 160, 320, 640} {
		res, err := loadgen.Run(loadgen.Options{
			Addr:        srv.Addr(),
			SessionRate: rate,
			Warmup:      time.Second,
			Duration:    2 * time.Second,
			Timeout:     2 * time.Second,
			Seed:        uint64(rate),
			SourceFactory: func(int, *dist.RNG) surge.SessionSource {
				return oneShotSource{}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f %12.1f %12.0f %12.1f %12d %12.0f\n",
			rate, res.RepliesPerSec, res.P95ResponseSec*1000, res.ShedsPerSec,
			res.Retries, ctl.Stats().Rate)
	}
	cs := ctl.Stats()
	fmt.Printf("controller: admitted=%d shed=%d steps=%d down/%d up last-p95=%v\n\n",
		cs.Admitted, cs.Shed, cs.Decreases, cs.Increases, cs.LastP95.Round(time.Millisecond))

	fmt.Println("act 2: panic isolation and the stall watchdog")
	status, closed := get(srv.Addr(), "/panic")
	fmt.Printf("  GET /panic  -> %d (close=%v), HandlerPanics=%d\n",
		status, closed, srv.Stats().HandlerPanics)
	status, _ = get(srv.Addr(), "/hello")
	fmt.Printf("  GET /hello  -> %d (the pool survived its panicking handler)\n", status)

	go get(srv.Addr(), "/wedge") // never completes until the wedge clears
	for wd.Stats().Stalls == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	status, _ = get(srv.Addr(), "/hello")
	fmt.Printf("  GET /hello  -> %d (served by a surviving thread during the wedge)\n", status)
	close(wedge)
	for wd.Stats().Recovered == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	ws := wd.Stats()
	fmt.Printf("  wedge cleared: stalls=%d recovered=%d max-stall=%v\n",
		ws.Stalls, ws.Recovered, ws.MaxStallAge.Round(time.Millisecond))
}

// get issues one GET on a fresh connection and reports the status code
// and whether the server asked to close.
func get(addr, path string) (status int, closed bool) {
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return 0, false
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(30 * time.Second))
	fmt.Fprintf(c, "GET %s HTTP/1.1\r\nHost: sut\r\n\r\n", path)
	resp, err := http.ReadResponse(bufio.NewReader(c), nil)
	if err != nil {
		return 0, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Close
}
