// Loadtest: a live head-to-head of the two architectures on loopback —
// the event-driven reactor server vs the thread-pool server — under the
// same SURGE workload, printing an httperf-style comparison.
//
//	go run ./examples/loadtest
//
// This is the live miniature of the paper's uniprocessor experiment; the
// full figures (controlled bandwidth, 4 CPUs, thousands of clients) come
// from the simulator: go run ./cmd/expsim -fast.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/loadgen"
	"repro/internal/mtserver"
	"repro/internal/surge"
)

func main() {
	// One SURGE population shared by both servers and the generator.
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 500
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	store := core.NewSurgeStore(set, scfg.MaxObjectBytes, 8)

	run := func(name, addr string) loadgen.Result {
		res, err := loadgen.Run(loadgen.Options{
			Addr:       addr,
			Clients:    30,
			Warmup:     500 * time.Millisecond,
			Duration:   5 * time.Second,
			Timeout:    10 * time.Second,
			ThinkScale: 0.02, // compress OFF times so the demo is quick
			Seed:       99,
			Workload:   scfg,
			Objects:    set,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8.1f replies/s   resp %.4fs   conn %.4fs   timeouts %d   resets %d\n",
			name, res.RepliesPerSec, res.MeanResponseSec, res.MeanConnectSec,
			res.TimeoutErrors, res.ResetErrors)
		return res
	}

	// Event-driven server (1 reactor worker, like the paper's best UP config).
	nio, err := core.NewServer(core.DefaultConfig(store))
	if err != nil {
		log.Fatal(err)
	}
	if err := nio.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== live head-to-head on loopback (30 clients, 5s) ==")
	nioRes := run("nio", nio.Addr())
	nio.Stop()

	// Thread-pool server with a deliberately short keep-alive so the
	// reset behaviour the paper describes is visible in seconds.
	mcfg := mtserver.DefaultConfig(store)
	mcfg.Threads = 32
	mcfg.KeepAlive = 200 * time.Millisecond
	mt, err := mtserver.NewServer(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := mt.Start(); err != nil {
		log.Fatal(err)
	}
	mtRes := run("thread-pool", mt.Addr())
	mt.Stop()

	fmt.Println()
	fmt.Println("paper's qualitative claims, observed live:")
	fmt.Printf("  nio resets = %d (the event-driven server never disconnects idle clients)\n", nioRes.ResetErrors)
	fmt.Printf("  thread-pool resets = %d (keep-alive recycling disconnects thinkers)\n", mtRes.ResetErrors)
}
