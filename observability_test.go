//go:build linux

package repro

// observability_test.go race-stress-tests the live observability plane:
// both servers run under real load while a scraper goroutine hammers the
// admin endpoint's /stats and /trace, and the scraped numbers must stay
// internally consistent the whole time. The consistency assertions are
// deliberately phrased across *consecutive* scrapes: every trace counter
// is monotone, so for any invariant "A never exceeds B" that holds at
// each instant, A's value in scrape i must not exceed B's value in scrape
// i+1 (scrape i finished before scrape i+1 began) — sound even though a
// scrape reads racing counters one at a time.
//
// The tracing overhead budget has two enforcement points: this file's
// integration gate is deliberately loose (wall-clock goodput on a busy
// CI box is noisy), while BenchmarkDocrootDelivery's traced modes carry
// the tight per-request comparison.

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/loadgen"
	"repro/internal/mtserver"
	"repro/internal/obs"
	"repro/internal/surge"
)

// dumpRingOnFailure registers a cleanup that, when the test has failed
// and OBS_ARTIFACT_DIR is set (the CI race job sets it), writes the
// plane's full ring dump there so the failure's event history ships as
// a build artifact.
func dumpRingOnFailure(t *testing.T, name string, pl *obs.Plane) {
	t.Cleanup(func() {
		dir := os.Getenv("OBS_ARTIFACT_DIR")
		if !t.Failed() || dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		var b strings.Builder
		obs.RenderTrace(&b, pl, obs.Filter{})
		path := filepath.Join(dir, name+"-trace.txt")
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Logf("writing ring dump: %v", err)
			return
		}
		t.Logf("trace ring dumped to %s", path)
	})
}

// scrapeAdmin fetches one /stats document and parses it into name →
// value. Numeric parse failures fail the test: the format is a contract.
func scrapeAdmin(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatalf("scraping /stats: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /stats: %v", err)
	}
	vals := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		name, raw, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable /stats line %q", line)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("unparseable /stats value in %q: %v", line, err)
		}
		vals[name] = v
	}
	return vals
}

// obsTarget is one server wired to a plane and an admin endpoint.
type obsTarget struct {
	name    string
	addr    string
	admin   string
	plane   *obs.Plane
	replies func() int64
	stop    func()
}

func startObsCore(t *testing.T, store core.Store, pl *obs.Plane) obsTarget {
	t.Helper()
	cfg := core.DefaultConfig(store)
	cfg.Obs = pl
	s, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Stats: func() []obs.Field { return core.StatsFields(s.Stats()) },
		Plane: pl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return obsTarget{"core", s.Addr(), ad.Addr(), pl,
		func() int64 { return s.Stats().Replies },
		func() { s.Stop(); ad.Close() }}
}

func startObsMt(t *testing.T, store core.Store, pl *obs.Plane) obsTarget {
	t.Helper()
	cfg := mtserver.DefaultConfig(store)
	cfg.Threads = 8
	cfg.Obs = pl
	s, err := mtserver.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Stats: func() []obs.Field { return mtserver.StatsFields(s.Stats()) },
		Plane: pl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return obsTarget{"mtserver", s.Addr(), ad.Addr(), pl,
		func() int64 { return s.Stats().Replies },
		func() { s.Stop(); ad.Close() }}
}

func TestObservabilityUnderLoad(t *testing.T) {
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 200
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	store := core.NewSurgeStore(set, scfg.MaxObjectBytes, 8)

	for _, mk := range []func(*testing.T, core.Store, *obs.Plane) obsTarget{startObsCore, startObsMt} {
		pl := obs.NewPlane(1 << 12)
		tgt := mk(t, store, pl)
		t.Run(tgt.name, func(t *testing.T) {
			defer tgt.stop()
			dumpRingOnFailure(t, "under-load-"+tgt.name, pl)

			// Scraper: hammer /stats and /trace as fast as the admin plane
			// answers while the data plane is under load.
			scrapes := make([]map[string]float64, 0, 256)
			scrapeDone := make(chan struct{})
			stopScrape := make(chan struct{})
			go func() {
				defer close(scrapeDone)
				for {
					select {
					case <-stopScrape:
						return
					default:
					}
					scrapes = append(scrapes, scrapeAdmin(t, tgt.admin))
					resp, err := http.Get("http://" + tgt.admin + "/trace?last=64")
					if err != nil {
						t.Errorf("scraping /trace: %v", err)
						return
					}
					if _, err := io.Copy(io.Discard, resp.Body); err != nil {
						t.Errorf("reading /trace: %v", err)
					}
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("/trace answered %d", resp.StatusCode)
						return
					}
				}
			}()

			res, err := loadgen.Run(loadgen.Options{
				Addr:       tgt.addr,
				Clients:    12,
				Warmup:     100 * time.Millisecond,
				Duration:   900 * time.Millisecond,
				Timeout:    5 * time.Second,
				ThinkScale: 0.001,
				Seed:       42,
				Workload:   scfg,
				Objects:    set,
			})
			close(stopScrape)
			<-scrapeDone
			if err != nil {
				t.Fatalf("load run: %v", err)
			}
			if res.Replies == 0 {
				t.Fatal("load run produced no replies")
			}
			if len(scrapes) < 2 {
				t.Fatalf("only %d scrapes completed", len(scrapes))
			}
			t.Logf("%d scrapes across %d replies", len(scrapes), res.Replies)

			monotone := []string{
				"server.accepted", "server.replies", "server.bytes_out",
				"trace.accept", "trace.close", "trace.handler", "trace.shed",
				"phase.handler.count", "phase.queue_wait.count",
			}
			for i, s := range scrapes {
				// Gauges and counters are never negative, at any instant.
				for name, v := range s {
					if v < 0 && !strings.HasSuffix(name, ".mean") {
						t.Fatalf("scrape %d: %s = %v went negative", i, name, v)
					}
				}
				// Phase histogram counts agree with the event counters that
				// feed them (same Record call bumps both; the scrape may
				// catch one bumped and not yet the other, hence the
				// cross-scrape comparison below).
				if i == 0 {
					continue
				}
				next := scrapes[i]
				prev := scrapes[i-1]
				for _, name := range monotone {
					if prev[name] > next[name] {
						t.Fatalf("scrape %d→%d: %s went backwards (%v → %v)",
							i-1, i, name, prev[name], next[name])
					}
				}
				// A handler-phase sample is recorded only after the reply
				// counter it explains was bumped, so no scrape may ever show
				// more handler samples than a later scrape shows replies.
				if prev["trace.handler"] > next["server.replies"] {
					t.Fatalf("scrape %d→%d: handler events (%v) exceed replies (%v)",
						i-1, i, prev["trace.handler"], next["server.replies"])
				}
				// Every Close has an earlier Accept.
				if prev["trace.close"] > next["trace.accept"] {
					t.Fatalf("scrape %d→%d: closes (%v) exceed accepts (%v)",
						i-1, i, prev["trace.close"], next["trace.accept"])
				}
				// The phase histograms are fed by the same Record calls that
				// bump the trace counters: the earlier scrape's phase count
				// cannot exceed the later scrape's event count.
				if prev["phase.handler.count"] > next["trace.handler"] {
					t.Fatalf("scrape %d→%d: phase.handler.count (%v) exceeds trace.handler (%v)",
						i-1, i, prev["phase.handler.count"], next["trace.handler"])
				}
			}

			// Quiesce: loadgen has exited, so every connection it opened
			// closes; the traced-connections gauge must return to zero and
			// the lifecycle must balance exactly.
			waitUntil(t, 5*time.Second, func() bool { return pl.OpenConns() == 0 },
				"traced open-connection gauge to drain to zero")
			if a, c := pl.Count(obs.Accept), pl.Count(obs.Close); a != c {
				t.Fatalf("lifecycle unbalanced after quiesce: %d accepts, %d closes", a, c)
			}
			// At quiescence the handler phase explains every reply.
			if h, r := pl.Count(obs.Handler), tgt.replies(); h != r {
				t.Fatalf("handler events (%d) != replies (%d) at quiescence", h, r)
			}
		})
	}
}

// TestObservabilityOverheadGate compares goodput with tracing enabled
// and disabled, interleaving trials to decorrelate machine noise. The
// gate is intentionally loose (enabled must stay above 75% of disabled):
// the tight 5% budget the plane is designed to meet is enforced by
// BenchmarkDocrootDelivery's traced modes, where per-request cost is
// measured without a wall-clock goodput proxy in the middle.
func TestObservabilityOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate needs quiet multi-second windows; run without -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the overhead ratio; the race run asserts correctness, not cost")
	}
	const trials = 3
	const window = 400 * time.Millisecond
	run := func(pl *obs.Plane) float64 {
		cfg := core.DefaultConfig(robustStore())
		cfg.Obs = pl
		s, err := core.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
		return measureGoodput(t, s.Addr(), 8, window)
	}
	var plain, traced []float64
	for i := 0; i < trials; i++ {
		plain = append(plain, run(nil))
		traced = append(traced, run(obs.NewPlane(1<<12)))
	}
	best := func(xs []float64) float64 {
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m
	}
	p, tr := best(plain), best(traced)
	t.Logf("goodput: plain=%.0f/s traced=%.0f/s (%.1f%%)", p, tr, 100*tr/p)
	if tr < 0.75*p {
		t.Fatalf("tracing overhead too high: traced %.0f/s vs plain %.0f/s", tr, p)
	}
}
