package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/loadgen"
	"repro/internal/mtserver"
	"repro/internal/surge"
)

// liveLoopback starts a real server, drives it briefly with the real
// load generator, and returns the measured run summary.
func liveLoopback(b *testing.B, kind string, duration time.Duration) loadgen.Result {
	b.Helper()
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 200
	scfg.MaxObjectBytes = 128 << 10
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(5))
	if err != nil {
		b.Fatal(err)
	}
	store := core.NewSurgeStore(set, scfg.MaxObjectBytes, 6)

	var addr string
	var stop func()
	switch kind {
	case "nio":
		srv, err := core.NewServer(core.DefaultConfig(store))
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		addr, stop = srv.Addr(), srv.Stop
	default:
		cfg := mtserver.DefaultConfig(store)
		cfg.Threads = 32
		srv, err := mtserver.NewServer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		addr, stop = srv.Addr(), srv.Stop
	}
	defer stop()

	res, err := loadgen.Run(loadgen.Options{
		Addr:       addr,
		Clients:    16,
		Warmup:     100 * time.Millisecond,
		Duration:   duration,
		Timeout:    5 * time.Second,
		ThinkScale: 0.01,
		Seed:       42,
		Workload:   scfg,
		Objects:    set,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}
