//go:build race

package repro

// raceEnabled reports whether the race detector is compiled in; timing
// gates skip themselves under its ~10x instrumentation cost.
const raceEnabled = true
