//go:build race

package repro

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// raceEnabled reports whether the race detector is compiled in; timing
// gates skip themselves under its ~10x instrumentation cost.
const raceEnabled = true

// TestShardedServerRaceStress exists only under the race detector: it
// drives a 4-shard reactor with concurrent keep-alive, pipelined and
// mid-stream-closing clients, so every cross-shard seam — the shared
// conn-budget counter, the per-shard stat blocks, the obs plane's ring
// and per-shard phase views — is exercised from four loops at once
// while the detector watches.
//
// Beyond "zero races", the counters must stay exact: a complete
// request is served exactly once no matter when its client hangs up,
// so shard-merged Replies must equal the requests sent, Accepted the
// connections opened, and the per-shard blocks must sum to the merged
// view with nothing lost and nothing double-counted.
func TestShardedServerRaceStress(t *testing.T) {
	store := core.MapStore{"/x.txt": []byte("stress-body")}
	plane := obs.NewPlane(1 << 15)
	cfg := core.DefaultConfig(store)
	cfg.Shards = 4
	cfg.Obs = plane
	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	req := "GET /x.txt HTTP/1.1\r\nHost: sut\r\nConnection: keep-alive\r\n\r\n"
	dial := func() (net.Conn, error) {
		c, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
		if err == nil {
			c.SetDeadline(time.Now().Add(30 * time.Second))
		}
		return c, err
	}

	var conns, requests atomic.Int64
	var wg sync.WaitGroup
	fail := make(chan error, 64)

	// Keep-alive clients: one long-lived connection each, sequential
	// request/response cycles.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := dial()
			if err != nil {
				fail <- err
				return
			}
			defer c.Close()
			conns.Add(1)
			br := bufio.NewReader(c)
			for n := 0; n < 50; n++ {
				if _, err := io.WriteString(c, req); err != nil {
					fail <- err
					return
				}
				requests.Add(1)
				resp, err := http.ReadResponse(br, nil)
				if err != nil {
					fail <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					fail <- fmt.Errorf("keep-alive status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	// Pipelined clients: bursts of 8 requests in a single write, a
	// fresh connection per burst.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < 10; b++ {
				c, err := dial()
				if err != nil {
					fail <- err
					return
				}
				conns.Add(1)
				var burst string
				for k := 0; k < 8; k++ {
					burst += req
				}
				if _, err := io.WriteString(c, burst); err != nil {
					fail <- err
					c.Close()
					return
				}
				requests.Add(8)
				br := bufio.NewReader(c)
				for k := 0; k < 8; k++ {
					resp, err := http.ReadResponse(br, nil)
					if err != nil {
						fail <- err
						c.Close()
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				c.Close()
			}
		}()
	}
	// Mid-stream closers: send one complete request, then hang up
	// without reading the response. The FIN follows the request bytes,
	// so the server parses and serves exactly once per connection —
	// these clients make the close/flush race constant while keeping
	// the reply count deterministic.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				c, err := dial()
				if err != nil {
					fail <- err
					return
				}
				conns.Add(1)
				if _, err := io.WriteString(c, req); err != nil {
					fail <- err
					c.Close()
					return
				}
				requests.Add(1)
				c.Close()
			}
		}()
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// Let every teardown land, then require exactness.
	wantConns, wantReqs := conns.Load(), requests.Load()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.Accepted == wantConns && st.Replies == wantReqs && st.ConnsOpen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never converged: accepted=%d/%d replies=%d/%d open=%d",
				st.Accepted, wantConns, st.Replies, wantReqs, st.ConnsOpen)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	if st.BadRequest != 0 || st.Shed != 0 || st.HandlerPanics != 0 {
		t.Fatalf("spurious failure counters: %+v", st)
	}

	// The merged view must be exactly the sum of the per-shard blocks.
	var accepted, replies, bytesOut int64
	for i := 0; i < srv.NumShards(); i++ {
		ss := srv.ShardStats(i)
		accepted += ss.Accepted
		replies += ss.Replies
		bytesOut += ss.BytesOut
	}
	if accepted != st.Accepted || replies != st.Replies || bytesOut != st.BytesOut {
		t.Fatalf("shard blocks sum to accepted=%d replies=%d bytes=%d; merged says %d/%d/%d",
			accepted, replies, bytesOut, st.Accepted, st.Replies, st.BytesOut)
	}
	// And the obs plane, fed from four shards concurrently, must agree.
	if got := plane.Count(obs.Accept); got != wantConns {
		t.Fatalf("plane accept count = %d, want %d", got, wantConns)
	}
	if got := plane.Count(obs.Close); got != wantConns {
		t.Fatalf("plane close count = %d, want %d", got, wantConns)
	}
}
