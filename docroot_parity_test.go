//go:build linux

package repro

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/docroot"
	"repro/internal/faultline"
	"repro/internal/mtserver"
	"repro/internal/surge"
)

// TestDocrootCrossServerParity serves the same materialized SURGE
// docroot from both live architectures and requires byte-identical
// bodies and identical validators — including after cache evictions
// (the budget is far smaller than the object set, so entries churn) and
// through a bandwidth-capped link. It then replays each learned
// validator as a conditional GET and requires both servers to answer
// 304 with an empty body.
//
// The whole matrix runs at 1 and 4 reactor shards: content fidelity
// must be invariant under kernel accept sharding, with the shard-merged
// counters accounting for every 304 and sendfile byte.
func TestDocrootCrossServerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			docrootParity(t, shards)
		})
	}
}

func docrootParity(t *testing.T, shards int) {
	cfg := surge.DefaultConfig()
	cfg.NumObjects = 64
	cfg.MaxObjectBytes = 256 << 10
	set, err := surge.BuildObjectSet(cfg, dist.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := docroot.MaterializeSurge(dir, set, cfg.MaxObjectBytes, 24); err != nil {
		t.Fatal(err)
	}
	// A budget this small holds only a handful of entries, so walking 64
	// objects twice guarantees eviction churn between the two passes.
	mkRoot := func() *docroot.Root {
		root, err := docroot.New(docroot.Config{
			Dir: dir, CacheBytes: 96 << 10, MemLimit: 16 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return root
	}

	ccfg := core.DefaultConfig(nil)
	ccfg.Shards = shards
	ccfg.Docroot = mkRoot()
	nio, err := core.NewServer(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := nio.Start(); err != nil {
		t.Fatal(err)
	}
	defer nio.Stop()
	if nio.NumShards() != shards {
		t.Fatalf("NumShards = %d, want %d", nio.NumShards(), shards)
	}

	mcfg := mtserver.DefaultConfig(nil)
	mcfg.Threads = 8
	mcfg.Docroot = mkRoot()
	mt, err := mtserver.NewServer(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Start(); err != nil {
		t.Fatal(err)
	}
	defer mt.Stop()

	type reply struct {
		status  int
		body    []byte
		etag    string
		lastMod string
		ctype   string
	}
	fetch := func(addr, path string) reply {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s %s: %v", addr, path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s %s: %v", addr, path, err)
		}
		return reply{
			status:  resp.StatusCode,
			body:    body,
			etag:    resp.Header.Get("ETag"),
			lastMod: resp.Header.Get("Last-Modified"),
			ctype:   resp.Header.Get("Content-Type"),
		}
	}

	etags := make(map[string]string)
	lastMods := make(map[string]string)
	for pass := 0; pass < 2; pass++ {
		for id := 0; id < set.Len(); id++ {
			path := set.Object(id).Path()
			a := fetch(nio.Addr(), path)
			b := fetch(mt.Addr(), path)
			if a.status != 200 || b.status != 200 {
				t.Fatalf("pass %d %s: status core=%d mtserver=%d", pass, path, a.status, b.status)
			}
			if !bytes.Equal(a.body, b.body) {
				t.Fatalf("pass %d %s: bodies differ (%d vs %d bytes)", pass, path, len(a.body), len(b.body))
			}
			if a.etag == "" || a.etag != b.etag || a.lastMod != b.lastMod || a.ctype != b.ctype {
				t.Fatalf("pass %d %s: validators differ: core=(%q %q %q) mtserver=(%q %q %q)",
					pass, path, a.etag, a.lastMod, a.ctype, b.etag, b.lastMod, b.ctype)
			}
			etags[path] = a.etag
			lastMods[path] = a.lastMod
		}
	}
	nioCache := ccfg.Docroot.Stats()
	if nioCache.Evictions == 0 {
		t.Fatalf("cache never evicted — budget too generous for the test: %+v", nioCache)
	}

	// Conditional GETs: every learned validator must earn a bodyless 304
	// from both servers, on the raw wire so an illegal body can't hide.
	cond304 := func(addr, path, header string) {
		t.Helper()
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		fmt.Fprintf(c, "GET %s HTTP/1.1\r\nHost: sut\r\n%s\r\nConnection: close\r\n\r\n", path, header)
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		raw, err := io.ReadAll(c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(raw, []byte("HTTP/1.1 304 ")) {
			t.Fatalf("%s %s [%s]: want 304, got %q", addr, path, header, raw[:min(len(raw), 60)])
		}
		if !bytes.HasSuffix(raw, []byte("\r\n\r\n")) || bytes.Count(raw, []byte("\r\n\r\n")) != 1 {
			t.Fatalf("%s %s [%s]: 304 carried a body: %q", addr, path, header, raw)
		}
	}
	for id := 0; id < set.Len(); id += 7 {
		path := set.Object(id).Path()
		for _, addr := range []string{nio.Addr(), mt.Addr()} {
			cond304(addr, path, "If-None-Match: "+etags[path])
			cond304(addr, path, "If-Modified-Since: "+lastMods[path])
		}
	}
	if nio.Stats().NotModified == 0 || mt.Stats().NotModified == 0 {
		t.Fatalf("304 counters not advanced: core=%d mtserver=%d",
			nio.Stats().NotModified, mt.Stats().NotModified)
	}

	// Through a capped link: the biggest object (forced onto the
	// sendfile path on both servers — it exceeds MemLimit) must arrive
	// intact when the client drains it at a fraction of loopback speed,
	// proving partial-write resumption delivers every byte in order.
	bigID, bigSize := 0, int64(0)
	for id := 0; id < set.Len(); id++ {
		if s := set.Object(id).Size; s > bigSize {
			bigID, bigSize = id, s
		}
	}
	if bigSize > cfg.MaxObjectBytes {
		bigSize = cfg.MaxObjectBytes
	}
	bigPath := set.Object(bigID).Path()
	capped := func(addr string) []byte {
		t.Helper()
		proxy, err := faultline.New(faultline.Config{
			Upstream: addr,
			Plan: func(int, *dist.RNG) faultline.Profile {
				return faultline.Profile{DownBytesPerSec: 1 << 20}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer proxy.Close()
		c, err := net.DialTimeout("tcp", proxy.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		fmt.Fprintf(c, "GET %s HTTP/1.1\r\nHost: sut\r\nConnection: close\r\n\r\n", bigPath)
		c.SetReadDeadline(time.Now().Add(30 * time.Second))
		resp, err := http.ReadResponse(bufio.NewReader(c), nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	a, b := capped(nio.Addr()), capped(mt.Addr())
	if int64(len(a)) != bigSize || !bytes.Equal(a, b) {
		t.Fatalf("capped-link bodies differ: core=%d bytes, mtserver=%d bytes, want %d",
			len(a), len(b), bigSize)
	}
	if nio.Stats().SendfileBytes == 0 || mt.Stats().SendfileBytes == 0 {
		t.Fatalf("sendfile path not exercised: core=%d mtserver=%d",
			nio.Stats().SendfileBytes, mt.Stats().SendfileBytes)
	}
}
