//go:build linux

package repro

// robustness_test.go is the active half of the paper's robustness claim.
// The loadgen integration tests observe how the two architectures degrade
// under honest overload; this suite *provokes* the failure modes with
// internal/faultline and checks the overload-control machinery holds:
//
//   - a slowloris herd (dribbled request bytes) exhausts the thread pool
//     and collapses mtserver goodput, while the event-driven core with a
//     HeaderTimeout sheds the attackers and keeps serving healthy
//     clients at line rate;
//   - a connection flood against MaxConns admission control is bounded:
//     ConnsOpen never exceeds the cap, excess clients get clean 503s,
//     and admitted clients keep being served;
//   - Drain delivers in-flight responses through a bandwidth-capped
//     client link before closing, on both servers — including responses
//     mid-sendfile from the disk-backed docroot;
//   - a 4x overload ramp against a small thread pool: the adaptive
//     admission controller holds client p95 near its target by shedding,
//     where the static configuration lets queueing delay blow through it;
//   - an injected handler panic costs one connection a 500, never the
//     process; an injected wedge is flagged by the stall watchdog within
//     about one heartbeat interval and recovers when the hang clears.

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/docroot"
	"repro/internal/faultline"
	"repro/internal/loadgen"
	"repro/internal/mtserver"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/surge"
)

func robustStore() core.MapStore {
	return core.MapStore{
		"/hello": []byte("hello world"),
		"/big":   make([]byte, 1<<20),
	}
}

var probeRequest = []byte("GET /hello HTTP/1.1\r\nHost: sut\r\nUser-Agent: probe/1.0\r\n\r\n")

// measureGoodput runs `clients` healthy keep-alive clients against addr
// for the window and returns successful replies/second. Clients redial
// after any error, so resets and timeouts cost time but never wedge the
// probe.
func measureGoodput(t *testing.T, addr string, clients int, window time.Duration) float64 {
	t.Helper()
	var replies atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var conn net.Conn
			var r *bufio.Reader
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn == nil {
					c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
					if err != nil {
						select {
						case <-stop:
							return
						case <-time.After(5 * time.Millisecond):
						}
						continue
					}
					conn, r = c, bufio.NewReader(c)
				}
				conn.SetDeadline(time.Now().Add(500 * time.Millisecond))
				if _, err := conn.Write(probeRequest); err != nil {
					conn.Close()
					conn = nil
					continue
				}
				resp, err := http.ReadResponse(r, nil)
				if err != nil {
					conn.Close()
					conn = nil
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == 200 {
					replies.Add(1)
				}
				if resp.Close {
					conn.Close()
					conn = nil
				}
			}
		}()
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	return float64(replies.Load()) / window.Seconds()
}

// slowlorisHerd aims `conns` persistent slow-read attackers at upstream
// through a faultline proxy that dribbles their request bytes at 8 B/s.
// Attackers redial whenever the server sheds them, so the pressure is
// continuous. The returned stop function tears everything down.
func slowlorisHerd(t *testing.T, upstream string, conns int) (proxy *faultline.Proxy, stop func()) {
	t.Helper()
	p, err := faultline.New(faultline.Config{
		Upstream: upstream,
		Seed:     7,
		Plan:     faultline.Slowloris(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	stopc := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopc:
					return
				default:
				}
				c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
				if err != nil {
					select {
					case <-stopc:
						return
					case <-time.After(10 * time.Millisecond):
					}
					continue
				}
				// The whole request reaches the proxy at once; the proxy
				// dribbles it upstream one byte every 125 ms.
				c.Write(probeRequest)
				c.SetReadDeadline(time.Now().Add(60 * time.Second))
				io.Copy(io.Discard, c) // hold until the server or proxy kills it
				c.Close()
			}
		}()
	}
	return p, func() {
		close(stopc)
		p.Close()
		wg.Wait()
	}
}

// TestSlowlorisCollapsesThreadPool pins every mtserver worker thread
// with dribbled headers and shows healthy-client goodput dropping to
// (near) zero — the paper's saturated-pool regime, provoked on demand.
func TestSlowlorisCollapsesThreadPool(t *testing.T) {
	cfg := mtserver.DefaultConfig(robustStore())
	cfg.Threads = 8
	cfg.KeepAlive = 15 * time.Second
	srv, err := mtserver.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	baseline := measureGoodput(t, srv.Addr(), 4, 700*time.Millisecond)
	if baseline < 50 {
		t.Fatalf("implausible loopback baseline %.0f replies/s", baseline)
	}

	_, stopAttack := slowlorisHerd(t, srv.Addr(), 32)
	defer stopAttack()

	// Wait until the herd has pinned the entire pool.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().ConnsOpen < int64(cfg.Threads) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if open := srv.Stats().ConnsOpen; open < int64(cfg.Threads) {
		t.Fatalf("herd failed to pin the pool: %d/%d threads", open, cfg.Threads)
	}

	attacked := measureGoodput(t, srv.Addr(), 4, 700*time.Millisecond)
	if attacked > baseline*0.05 {
		t.Fatalf("thread pool survived slowloris: %.0f replies/s attacked vs %.0f baseline",
			attacked, baseline)
	}
}

// TestSlowlorisRepelledByHeaderTimeout aims the same herd at the
// event-driven server with a HeaderTimeout and shows goodput holding at
// >= 80%% of the unattacked rate while the sweeper resets the attackers.
func TestSlowlorisRepelledByHeaderTimeout(t *testing.T) {
	cfg := core.DefaultConfig(robustStore())
	cfg.HeaderTimeout = 150 * time.Millisecond
	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	baseline := measureGoodput(t, srv.Addr(), 4, 700*time.Millisecond)
	if baseline < 50 {
		t.Fatalf("implausible loopback baseline %.0f replies/s", baseline)
	}

	proxy, stopAttack := slowlorisHerd(t, srv.Addr(), 32)
	defer stopAttack()

	// Wait for the defense to engage: attackers connected and the
	// header sweeper firing.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().HeaderTimeouts > 0 && proxy.Stats().Conns >= 32 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.HeaderTimeouts == 0 {
		t.Fatalf("header sweeper never engaged: %+v", st)
	}

	attacked := measureGoodput(t, srv.Addr(), 4, 700*time.Millisecond)
	if attacked < baseline*0.8 {
		t.Fatalf("event-driven goodput collapsed under slowloris: %.0f replies/s attacked vs %.0f baseline",
			attacked, baseline)
	}
	// The herd keeps redialing; the sweeper must keep mowing.
	if ht := srv.Stats().HeaderTimeouts; ht < 32 {
		t.Logf("note: only %d header timeouts so far (herd still queueing)", ht)
	}
}

// floodTarget abstracts over the two servers for the flood test.
type floodTarget struct {
	name     string
	addr     string
	maxConns int64
	conns    func() int64
	shed     func() int64
	stop     func()
}

// TestConnectionFloodBoundedByMaxConns floods both servers past their
// MaxConns cap and checks the bound holds at every sample, excess
// clients get 503s, and admitted clients keep being served.
func TestConnectionFloodBoundedByMaxConns(t *testing.T) {
	targets := []func(t *testing.T) floodTarget{
		func(t *testing.T) floodTarget {
			cfg := core.DefaultConfig(robustStore())
			cfg.MaxConns = 32
			s, err := core.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return floodTarget{
				name:     "core",
				addr:     s.Addr(),
				maxConns: 32,
				conns:    func() int64 { return s.Stats().ConnsOpen },
				shed:     func() int64 { return s.Stats().Shed },
				stop:     s.Stop,
			}
		},
		func(t *testing.T) floodTarget {
			cfg := mtserver.DefaultConfig(robustStore())
			// With a synchronous handoff the acceptor blocks once every
			// thread is busy, so a cap above Threads is unreachable; the
			// useful setting sheds instead of queueing in the backlog.
			cfg.Threads = 8
			cfg.MaxConns = 8
			s, err := mtserver.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return floodTarget{
				name:     "mtserver",
				addr:     s.Addr(),
				maxConns: 8,
				conns:    func() int64 { return s.Stats().ConnsOpen },
				shed:     func() int64 { return s.Stats().Shed },
				stop:     s.Stop,
			}
		},
	}
	for _, mk := range targets {
		mk := mk
		tgt := mk(t)
		t.Run(tgt.name, func(t *testing.T) {
			defer tgt.stop()
			var saw200, saw503 atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < 120; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						c, err := net.DialTimeout("tcp", tgt.addr, time.Second)
						if err != nil {
							continue
						}
						c.SetDeadline(time.Now().Add(time.Second))
						c.Write(probeRequest)
						resp, err := http.ReadResponse(bufio.NewReader(c), nil)
						if err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							switch resp.StatusCode {
							case 200:
								saw200.Add(1)
							case 503:
								saw503.Add(1)
							}
							if resp.StatusCode == 200 {
								// Hold the admitted slot briefly to keep
								// pressure on the cap.
								select {
								case <-stop:
									c.Close()
									return
								case <-time.After(100 * time.Millisecond):
								}
							}
						}
						c.Close()
					}
				}()
			}
			// Sample the cap while the flood runs.
			var maxOpen int64
			floodEnd := time.Now().Add(1200 * time.Millisecond)
			for time.Now().Before(floodEnd) {
				if open := tgt.conns(); open > maxOpen {
					maxOpen = open
				}
				time.Sleep(time.Millisecond)
			}
			close(stop)
			wg.Wait()

			if maxOpen > tgt.maxConns {
				t.Fatalf("ConnsOpen peaked at %d, above MaxConns %d", maxOpen, tgt.maxConns)
			}
			if tgt.shed() == 0 {
				t.Fatal("flood never tripped admission control")
			}
			if saw503.Load() == 0 {
				t.Fatal("no client observed a 503 shed response")
			}
			if saw200.Load() == 0 {
				t.Fatal("admitted clients starved during the flood")
			}
		})
	}
}

// TestDrainDeliversInFlightThroughCappedLink starts a large transfer
// over a bandwidth-capped client link, drains the server mid-transfer,
// and requires the full response to arrive before the close — on both
// architectures.
func TestDrainDeliversInFlightThroughCappedLink(t *testing.T) {
	type target struct {
		name  string
		addr  string
		drain func(time.Duration) bool
		stop  func()
	}
	mks := []func(t *testing.T) target{
		func(t *testing.T) target {
			s, err := core.NewServer(core.DefaultConfig(robustStore()))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"core", s.Addr(), s.Drain, s.Stop}
		},
		func(t *testing.T) target {
			s, err := mtserver.NewServer(mtserver.DefaultConfig(robustStore()))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"mtserver", s.Addr(), s.Drain, s.Stop}
		},
	}
	for _, mk := range mks {
		mk := mk
		tgt := mk(t)
		t.Run(tgt.name, func(t *testing.T) {
			defer tgt.stop()
			// 1 MiB body over a 2 MiB/s capped link: ~500 ms in flight.
			proxy, err := faultline.New(faultline.Config{
				Upstream: tgt.addr,
				Plan: func(int, *dist.RNG) faultline.Profile {
					return faultline.Profile{DownBytesPerSec: 2 << 20}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()

			c, err := net.DialTimeout("tcp", proxy.Addr(), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Write([]byte("GET /big HTTP/1.1\r\nHost: sut\r\n\r\n")); err != nil {
				t.Fatal(err)
			}

			type result struct {
				n    int64
				tail error
				err  error
			}
			done := make(chan result, 1)
			go func() {
				c.SetReadDeadline(time.Now().Add(30 * time.Second))
				r := bufio.NewReader(c)
				resp, err := http.ReadResponse(r, nil)
				if err != nil {
					done <- result{0, nil, err}
					return
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				_, tail := r.ReadByte()
				done <- result{n, tail, err}
			}()

			time.Sleep(100 * time.Millisecond) // transfer is now mid-flight
			if !tgt.drain(15 * time.Second) {
				t.Fatal("drain timed out with an in-flight transfer")
			}
			res := <-done
			if res.err != nil {
				t.Fatalf("in-flight response errored: %v", res.err)
			}
			if res.n != 1<<20 {
				t.Fatalf("in-flight response truncated: %d of %d bytes", res.n, 1<<20)
			}
			if res.tail != io.EOF {
				t.Fatalf("connection tail = %v, want EOF after the drain", res.tail)
			}
		})
	}
}

// rawGet issues one GET on a fresh connection and returns the status
// code, whether the server asked to close, and any transport error.
func rawGet(addr, path string, timeout time.Duration) (status int, closed bool, err error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, false, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	req := "GET " + path + " HTTP/1.1\r\nHost: sut\r\nUser-Agent: probe/1.0\r\n\r\n"
	if _, err := c.Write([]byte(req)); err != nil {
		return 0, false, err
	}
	resp, err := http.ReadResponse(bufio.NewReader(c), nil)
	if err != nil {
		return 0, false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Close, nil
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestHandlerPanicIsolated injects a panic into the handler of each
// server and requires the blast radius to be exactly one connection: the
// panicking request gets a best-effort 500 + close, the panic is
// counted, and the server keeps serving other clients.
func TestHandlerPanicIsolated(t *testing.T) {
	faults := func(path string) core.Fault {
		if path == "/panic" {
			return core.Fault{Panic: true}
		}
		return core.Fault{}
	}
	type target struct {
		name   string
		addr   string
		panics func() int64
		stop   func()
	}
	mks := []func(t *testing.T) target{
		func(t *testing.T) target {
			cfg := core.DefaultConfig(robustStore())
			cfg.HandlerFault = faults
			s, err := core.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"core", s.Addr(), func() int64 { return s.Stats().HandlerPanics }, s.Stop}
		},
		func(t *testing.T) target {
			cfg := mtserver.DefaultConfig(robustStore())
			cfg.Threads = 4
			cfg.HandlerFault = faults
			s, err := mtserver.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"mtserver", s.Addr(), func() int64 { return s.Stats().HandlerPanics }, s.Stop}
		},
	}
	for _, mk := range mks {
		tgt := mk(t)
		t.Run(tgt.name, func(t *testing.T) {
			defer tgt.stop()
			status, closed, err := rawGet(tgt.addr, "/panic", 5*time.Second)
			if err != nil {
				t.Fatalf("panicking request errored at transport level: %v", err)
			}
			if status != 500 || !closed {
				t.Fatalf("panicking request answered %d (close=%v), want 500 + close", status, closed)
			}
			if n := tgt.panics(); n != 1 {
				t.Fatalf("HandlerPanics = %d after one injected panic", n)
			}
			// The process and the serving loop must both have survived.
			status, _, err = rawGet(tgt.addr, "/hello", 5*time.Second)
			if err != nil || status != 200 {
				t.Fatalf("server wedged after isolated panic: status=%d err=%v", status, err)
			}
		})
	}
}

// TestWatchdogFlagsWedgedLoop hangs a handler on each server and checks
// the heartbeat watchdog flags the wedged loop promptly (the stall age
// proves it was caught within about one interval of wedging), names it,
// and records the recovery once the hang clears.
func TestWatchdogFlagsWedgedLoop(t *testing.T) {
	const interval = 25 * time.Millisecond
	type target struct {
		name    string
		stalled string // heartbeat name expected to stall
		addr    string
		alive   bool // whether /hello stays servable during the wedge
		stop    func()
	}
	mks := []func(t *testing.T, wd *overload.Watchdog, wedge <-chan struct{}) target{
		func(t *testing.T, wd *overload.Watchdog, wedge <-chan struct{}) target {
			cfg := core.DefaultConfig(robustStore())
			cfg.Watchdog = wd
			cfg.HandlerFault = func(path string) core.Fault {
				if path == "/wedge" {
					return core.Fault{Wedge: wedge}
				}
				return core.Fault{}
			}
			s, err := core.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			// One reactor worker: wedging it wedges the whole data plane —
			// exactly the outage class the watchdog exists to surface.
			return target{"core", "core-worker-0", s.Addr(), false, s.Stop}
		},
		func(t *testing.T, wd *overload.Watchdog, wedge <-chan struct{}) target {
			cfg := mtserver.DefaultConfig(robustStore())
			cfg.Threads = 2
			cfg.Watchdog = wd
			cfg.HandlerFault = func(path string) core.Fault {
				if path == "/wedge" {
					return core.Fault{Wedge: wedge}
				}
				return core.Fault{}
			}
			s, err := mtserver.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			// Two pool threads: one wedges, the other keeps serving.
			return target{"mtserver", "mt-worker-", s.Addr(), true, s.Stop}
		},
	}
	for _, mk := range mks {
		wd, err := overload.NewWatchdog(overload.WatchdogConfig{Interval: interval})
		if err != nil {
			t.Fatal(err)
		}
		wedge := make(chan struct{})
		tgt := mk(t, wd, wedge)
		t.Run(tgt.name, func(t *testing.T) {
			defer wd.Stop()
			defer tgt.stop()
			// Healthy traffic does not trip the watchdog.
			if status, _, err := rawGet(tgt.addr, "/hello", 5*time.Second); err != nil || status != 200 {
				t.Fatalf("healthy probe failed: status=%d err=%v", status, err)
			}
			time.Sleep(3 * interval)
			if st := wd.Stats(); st.Stalls != 0 {
				t.Fatalf("watchdog flagged %d stalls on a healthy server", st.Stalls)
			}

			// Wedge a handler. The request never completes, so issue it
			// from a goroutine and watch the watchdog instead.
			go rawGet(tgt.addr, "/wedge", 30*time.Second)
			waitUntil(t, 5*time.Second, func() bool { return wd.Stats().Stalls >= 1 }, "stall flag")
			stalled := wd.Stalled()
			if len(stalled) != 1 || !strings.HasPrefix(stalled[0].Name, tgt.stalled) {
				t.Fatalf("Stalled() = %+v, want one loop matching %q", stalled, tgt.stalled)
			}
			// Age >= interval proves detection waited for a full missed
			// heartbeat and no longer: the checker runs at interval/4, so a
			// freshly flagged stall cannot be much older than ~1.25x.
			if stalled[0].Age < interval {
				t.Fatalf("stall age %v below the interval", stalled[0].Age)
			}
			if tgt.alive {
				if status, _, err := rawGet(tgt.addr, "/hello", 5*time.Second); err != nil || status != 200 {
					t.Fatalf("surviving worker not serving during wedge: status=%d err=%v", status, err)
				}
			}

			// Clear the hang: the loop must recover.
			close(wedge)
			waitUntil(t, 5*time.Second, func() bool { return wd.Stats().Recovered >= 1 }, "recovery")
			if status, _, err := rawGet(tgt.addr, "/hello", 5*time.Second); err != nil || status != 200 {
				t.Fatalf("server not serving after recovery: status=%d err=%v", status, err)
			}
		})
	}
}

// oneShotSource emits identical single-request sessions; the open-loop
// arrival process turns each into one connection, so offered load is the
// session rate exactly.
type oneShotSource struct{}

func (oneShotSource) NextSession() surge.Session {
	return surge.Session{Requests: []surge.Request{{Object: surge.Object{ID: 0}}}}
}

// rampLoad offers a fixed open-loop arrival rate of single-request
// sessions — an overload ramp when the rate exceeds server capacity.
func rampLoad(t *testing.T, addr string, seed uint64) loadgen.Result {
	t.Helper()
	res, err := loadgen.Run(loadgen.Options{
		Addr:        addr,
		SessionRate: 640,
		Warmup:      time.Second,
		Duration:    2500 * time.Millisecond,
		Timeout:     2 * time.Second,
		Seed:        seed,
		SourceFactory: func(int, *dist.RNG) surge.SessionSource {
			return oneShotSource{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOverloadRampAdaptiveVsStatic drives a 4x overload ramp (640
// sessions/s against a 4-thread pool whose 25 ms/request handler caps it
// at ~160/s) at two configurations of the same server. The static one
// (no controller) hides the excess in queues, so client p95 blows far
// past the latency target; the adaptive controller sheds the excess with
// Retry-After and holds client p95 within 2x its target.
func TestOverloadRampAdaptiveVsStatic(t *testing.T) {
	const target = 150 * time.Millisecond
	store := core.MapStore{"/obj/0": []byte("pong")}
	newPool := func(ac *overload.Controller) *mtserver.Server {
		cfg := mtserver.DefaultConfig(store)
		cfg.Threads = 4
		cfg.Admission = ac
		cfg.HandlerFault = func(string) core.Fault {
			return core.Fault{Delay: 25 * time.Millisecond}
		}
		s, err := mtserver.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Static-only configuration: the ramp must actually hurt, or the
	// adaptive half of the comparison proves nothing.
	static := newPool(nil)
	staticRes := rampLoad(t, static.Addr(), 42)
	static.Stop()
	t.Logf("static:   p95=%.0fms replies=%d sheds=%d timeouts=%d",
		staticRes.P95ResponseSec*1000, staticRes.Replies, staticRes.Sheds, staticRes.TimeoutErrors)
	if staticRes.Replies == 0 {
		t.Fatalf("static pool served nothing: %+v", staticRes)
	}
	if staticRes.Sheds != 0 {
		t.Fatalf("static pool shed %d connections with no controller configured", staticRes.Sheds)
	}
	if staticRes.P95ResponseSec <= (2*target).Seconds() && staticRes.TimeoutErrors == 0 {
		t.Fatalf("overload ramp did not hurt the static pool (p95=%.0fms, no timeouts); nothing to discriminate",
			staticRes.P95ResponseSec*1000)
	}

	ac, err := overload.NewController(overload.Config{
		TargetP95:      target,
		InitialRate:    200,
		MinRate:        20,
		Increase:       10,
		DecreaseFactor: 0.5,
		AdaptEvery:     100 * time.Millisecond,
		RetryAfter:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := newPool(ac)
	adaptiveRes := rampLoad(t, adaptive.Addr(), 43)
	adaptive.Stop()
	st := ac.Stats()
	t.Logf("adaptive: p95=%.0fms replies=%d sheds=%d retries=%d rate=%.0f/s steps=%d down/%d up",
		adaptiveRes.P95ResponseSec*1000, adaptiveRes.Replies, adaptiveRes.Sheds,
		adaptiveRes.Retries, st.Rate, st.Decreases, st.Increases)

	if adaptiveRes.Replies == 0 {
		t.Fatalf("adaptive pool served nothing: %+v", adaptiveRes)
	}
	if adaptiveRes.Sheds == 0 || adaptiveRes.Retries == 0 {
		t.Fatalf("controller never shed under 4x overload (sheds=%d retries=%d)",
			adaptiveRes.Sheds, adaptiveRes.Retries)
	}
	if st.Decreases == 0 {
		t.Fatalf("controller never cut its rate under overload: %+v", st)
	}
	if got := adaptiveRes.P95ResponseSec; got > (2 * target).Seconds() {
		t.Fatalf("adaptive controller missed its target: client p95 = %.0f ms, want <= %.0f ms",
			got*1000, (2*target).Seconds()*1000)
	}
}

// TestDrainFlushesSendfileSegments queues a large file-range response
// through the zero-copy sendfile path over a bandwidth-capped link,
// drains the server mid-transfer, and requires the partial file range to
// flush to completion before the close — on both architectures. This is
// the drain guarantee of TestDrainDeliversInFlightThroughCappedLink
// extended to responses whose unsent remainder lives in the kernel, not
// in a user-space buffer.
func TestDrainFlushesSendfileSegments(t *testing.T) {
	const fileSize = 4 << 20
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "obj"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "obj", "0"), make([]byte, fileSize), 0o644); err != nil {
		t.Fatal(err)
	}

	type target struct {
		name     string
		addr     string
		sendfile func() int64
		drain    func(time.Duration) bool
		stop     func()
	}
	mks := []func(t *testing.T) target{
		func(t *testing.T) target {
			// cacheBytes=0 disables the content cache: every entry is
			// fd-only, so the body MUST travel as a resumable sendfile
			// segment — the state this test exists to drain.
			root, err := docroot.Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig(nil)
			cfg.Store = nil
			cfg.Docroot = root
			s, err := core.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"core", s.Addr(),
				func() int64 { return s.Stats().SendfileBytes }, s.Drain, s.Stop}
		},
		func(t *testing.T) target {
			root, err := docroot.Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			cfg := mtserver.DefaultConfig(nil)
			cfg.Store = nil
			cfg.Docroot = root
			s, err := mtserver.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"mtserver", s.Addr(),
				func() int64 { return s.Stats().SendfileBytes }, s.Drain, s.Stop}
		},
	}
	for _, mk := range mks {
		tgt := mk(t)
		t.Run(tgt.name, func(t *testing.T) {
			defer tgt.stop()
			// 4 MiB body over a 4 MiB/s capped link: ~1 s in flight.
			proxy, err := faultline.New(faultline.Config{
				Upstream: tgt.addr,
				Plan: func(int, *dist.RNG) faultline.Profile {
					return faultline.Profile{DownBytesPerSec: 4 << 20}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()

			c, err := net.DialTimeout("tcp", proxy.Addr(), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Write([]byte("GET /obj/0 HTTP/1.1\r\nHost: sut\r\n\r\n")); err != nil {
				t.Fatal(err)
			}

			type result struct {
				n    int64
				tail error
				err  error
			}
			done := make(chan result, 1)
			go func() {
				c.SetReadDeadline(time.Now().Add(30 * time.Second))
				r := bufio.NewReader(c)
				resp, err := http.ReadResponse(r, nil)
				if err != nil {
					done <- result{0, nil, err}
					return
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				_, tail := r.ReadByte()
				done <- result{n, tail, err}
			}()

			// Let the transfer get mid-file, then drain: the queued
			// sendfile segment must flush its remaining range.
			time.Sleep(150 * time.Millisecond)
			if !tgt.drain(15 * time.Second) {
				t.Fatal("drain timed out with an in-flight sendfile segment")
			}
			res := <-done
			if res.err != nil {
				t.Fatalf("in-flight sendfile response errored: %v", res.err)
			}
			if res.n != fileSize {
				t.Fatalf("in-flight sendfile response truncated: %d of %d bytes", res.n, fileSize)
			}
			if res.tail != io.EOF {
				t.Fatalf("connection tail = %v, want EOF after the drain", res.tail)
			}
			if sf := tgt.sendfile(); sf != fileSize {
				t.Fatalf("SendfileBytes = %d, want %d (body must travel the zero-copy path)", sf, fileSize)
			}
		})
	}
}

// TestTraceRecordsPanicAndDrain extends the panic-isolation and drain
// stories onto the observability plane: after an injected handler panic
// the trace ring must hold the panic and the victim connection's close;
// after a graceful drain the lifecycle must balance exactly — every
// traced accept has a close, and the derived open-connections gauge is
// back at zero.
func TestTraceRecordsPanicAndDrain(t *testing.T) {
	faults := func(path string) core.Fault {
		if path == "/panic" {
			return core.Fault{Panic: true}
		}
		return core.Fault{}
	}
	type target struct {
		name  string
		addr  string
		drain func(time.Duration) bool
		stop  func()
	}
	mks := []func(t *testing.T, pl *obs.Plane) target{
		func(t *testing.T, pl *obs.Plane) target {
			cfg := core.DefaultConfig(robustStore())
			cfg.HandlerFault = faults
			cfg.Obs = pl
			s, err := core.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"core", s.Addr(), s.Drain, s.Stop}
		},
		func(t *testing.T, pl *obs.Plane) target {
			cfg := mtserver.DefaultConfig(robustStore())
			cfg.Threads = 4
			cfg.HandlerFault = faults
			cfg.Obs = pl
			s, err := mtserver.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"mtserver", s.Addr(), s.Drain, s.Stop}
		},
	}
	for _, mk := range mks {
		pl := obs.NewPlane(256)
		tgt := mk(t, pl)
		t.Run(tgt.name, func(t *testing.T) {
			defer tgt.stop()
			dumpRingOnFailure(t, "panic-drain-"+tgt.name, pl)
			// A healthy request first, so the ring holds a full lifecycle.
			if status, _, err := rawGet(tgt.addr, "/hello", 5*time.Second); err != nil || status != 200 {
				t.Fatalf("healthy request: status=%d err=%v", status, err)
			}
			if status, _, err := rawGet(tgt.addr, "/panic", 5*time.Second); err != nil || status != 500 {
				t.Fatalf("panicking request: status=%d err=%v", status, err)
			}
			if n := pl.Count(obs.Panic); n != 1 {
				t.Fatalf("traced panics = %d after one injected panic", n)
			}
			panics := obs.Filter{Kind: obs.Panic, HasKind: true}.Apply(pl.Ring().Events())
			if len(panics) != 1 || panics[0].Conn == 0 {
				t.Fatalf("ring panic events = %+v, want one attributed to a connection", panics)
			}
			// The panicking connection's teardown reaches the ring too
			// (its Close may land just after rawGet sees the FIN).
			victim := panics[0].Conn
			waitUntil(t, 2*time.Second, func() bool {
				f := obs.Filter{Conn: victim, HasConn: true, Kind: obs.Close, HasKind: true}
				return len(f.Apply(pl.Ring().Events())) == 1
			}, "panicking connection's close event")

			if !tgt.drain(5 * time.Second) {
				t.Fatal("drain timed out")
			}
			if open := pl.OpenConns(); open != 0 {
				t.Fatalf("traced open-connections gauge = %d after drain, want 0", open)
			}
			if a, c := pl.Count(obs.Accept), pl.Count(obs.Close); a != c || a < 2 {
				t.Fatalf("lifecycle unbalanced after drain: %d accepts, %d closes", a, c)
			}
			closes := obs.Filter{Kind: obs.Close, HasKind: true}.Apply(pl.Ring().Events())
			if int64(len(closes)) != pl.Count(obs.Close) {
				t.Fatalf("ring holds %d close events, counters say %d", len(closes), pl.Count(obs.Close))
			}
		})
	}
}
