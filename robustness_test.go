//go:build linux

package repro

// robustness_test.go is the active half of the paper's robustness claim.
// The loadgen integration tests observe how the two architectures degrade
// under honest overload; this suite *provokes* the failure modes with
// internal/faultline and checks the overload-control machinery holds:
//
//   - a slowloris herd (dribbled request bytes) exhausts the thread pool
//     and collapses mtserver goodput, while the event-driven core with a
//     HeaderTimeout sheds the attackers and keeps serving healthy
//     clients at line rate;
//   - a connection flood against MaxConns admission control is bounded:
//     ConnsOpen never exceeds the cap, excess clients get clean 503s,
//     and admitted clients keep being served;
//   - Drain delivers in-flight responses through a bandwidth-capped
//     client link before closing, on both servers.

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faultline"
	"repro/internal/mtserver"
)

func robustStore() core.MapStore {
	return core.MapStore{
		"/hello": []byte("hello world"),
		"/big":   make([]byte, 1<<20),
	}
}

var probeRequest = []byte("GET /hello HTTP/1.1\r\nHost: sut\r\nUser-Agent: probe/1.0\r\n\r\n")

// measureGoodput runs `clients` healthy keep-alive clients against addr
// for the window and returns successful replies/second. Clients redial
// after any error, so resets and timeouts cost time but never wedge the
// probe.
func measureGoodput(t *testing.T, addr string, clients int, window time.Duration) float64 {
	t.Helper()
	var replies atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var conn net.Conn
			var r *bufio.Reader
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn == nil {
					c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
					if err != nil {
						select {
						case <-stop:
							return
						case <-time.After(5 * time.Millisecond):
						}
						continue
					}
					conn, r = c, bufio.NewReader(c)
				}
				conn.SetDeadline(time.Now().Add(500 * time.Millisecond))
				if _, err := conn.Write(probeRequest); err != nil {
					conn.Close()
					conn = nil
					continue
				}
				resp, err := http.ReadResponse(r, nil)
				if err != nil {
					conn.Close()
					conn = nil
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == 200 {
					replies.Add(1)
				}
				if resp.Close {
					conn.Close()
					conn = nil
				}
			}
		}()
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	return float64(replies.Load()) / window.Seconds()
}

// slowlorisHerd aims `conns` persistent slow-read attackers at upstream
// through a faultline proxy that dribbles their request bytes at 8 B/s.
// Attackers redial whenever the server sheds them, so the pressure is
// continuous. The returned stop function tears everything down.
func slowlorisHerd(t *testing.T, upstream string, conns int) (proxy *faultline.Proxy, stop func()) {
	t.Helper()
	p, err := faultline.New(faultline.Config{
		Upstream: upstream,
		Seed:     7,
		Plan:     faultline.Slowloris(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	stopc := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopc:
					return
				default:
				}
				c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
				if err != nil {
					select {
					case <-stopc:
						return
					case <-time.After(10 * time.Millisecond):
					}
					continue
				}
				// The whole request reaches the proxy at once; the proxy
				// dribbles it upstream one byte every 125 ms.
				c.Write(probeRequest)
				c.SetReadDeadline(time.Now().Add(60 * time.Second))
				io.Copy(io.Discard, c) // hold until the server or proxy kills it
				c.Close()
			}
		}()
	}
	return p, func() {
		close(stopc)
		p.Close()
		wg.Wait()
	}
}

// TestSlowlorisCollapsesThreadPool pins every mtserver worker thread
// with dribbled headers and shows healthy-client goodput dropping to
// (near) zero — the paper's saturated-pool regime, provoked on demand.
func TestSlowlorisCollapsesThreadPool(t *testing.T) {
	cfg := mtserver.DefaultConfig(robustStore())
	cfg.Threads = 8
	cfg.KeepAlive = 15 * time.Second
	srv, err := mtserver.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	baseline := measureGoodput(t, srv.Addr(), 4, 700*time.Millisecond)
	if baseline < 50 {
		t.Fatalf("implausible loopback baseline %.0f replies/s", baseline)
	}

	_, stopAttack := slowlorisHerd(t, srv.Addr(), 32)
	defer stopAttack()

	// Wait until the herd has pinned the entire pool.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().ConnsOpen < int64(cfg.Threads) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if open := srv.Stats().ConnsOpen; open < int64(cfg.Threads) {
		t.Fatalf("herd failed to pin the pool: %d/%d threads", open, cfg.Threads)
	}

	attacked := measureGoodput(t, srv.Addr(), 4, 700*time.Millisecond)
	if attacked > baseline*0.05 {
		t.Fatalf("thread pool survived slowloris: %.0f replies/s attacked vs %.0f baseline",
			attacked, baseline)
	}
}

// TestSlowlorisRepelledByHeaderTimeout aims the same herd at the
// event-driven server with a HeaderTimeout and shows goodput holding at
// >= 80%% of the unattacked rate while the sweeper resets the attackers.
func TestSlowlorisRepelledByHeaderTimeout(t *testing.T) {
	cfg := core.DefaultConfig(robustStore())
	cfg.HeaderTimeout = 150 * time.Millisecond
	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	baseline := measureGoodput(t, srv.Addr(), 4, 700*time.Millisecond)
	if baseline < 50 {
		t.Fatalf("implausible loopback baseline %.0f replies/s", baseline)
	}

	proxy, stopAttack := slowlorisHerd(t, srv.Addr(), 32)
	defer stopAttack()

	// Wait for the defense to engage: attackers connected and the
	// header sweeper firing.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().HeaderTimeouts > 0 && proxy.Stats().Conns >= 32 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.HeaderTimeouts == 0 {
		t.Fatalf("header sweeper never engaged: %+v", st)
	}

	attacked := measureGoodput(t, srv.Addr(), 4, 700*time.Millisecond)
	if attacked < baseline*0.8 {
		t.Fatalf("event-driven goodput collapsed under slowloris: %.0f replies/s attacked vs %.0f baseline",
			attacked, baseline)
	}
	// The herd keeps redialing; the sweeper must keep mowing.
	if ht := srv.Stats().HeaderTimeouts; ht < 32 {
		t.Logf("note: only %d header timeouts so far (herd still queueing)", ht)
	}
}

// floodTarget abstracts over the two servers for the flood test.
type floodTarget struct {
	name     string
	addr     string
	maxConns int64
	conns    func() int64
	shed     func() int64
	stop     func()
}

// TestConnectionFloodBoundedByMaxConns floods both servers past their
// MaxConns cap and checks the bound holds at every sample, excess
// clients get 503s, and admitted clients keep being served.
func TestConnectionFloodBoundedByMaxConns(t *testing.T) {
	targets := []func(t *testing.T) floodTarget{
		func(t *testing.T) floodTarget {
			cfg := core.DefaultConfig(robustStore())
			cfg.MaxConns = 32
			s, err := core.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return floodTarget{
				name:     "core",
				addr:     s.Addr(),
				maxConns: 32,
				conns:    func() int64 { return s.Stats().ConnsOpen },
				shed:     func() int64 { return s.Stats().Shed },
				stop:     s.Stop,
			}
		},
		func(t *testing.T) floodTarget {
			cfg := mtserver.DefaultConfig(robustStore())
			// With a synchronous handoff the acceptor blocks once every
			// thread is busy, so a cap above Threads is unreachable; the
			// useful setting sheds instead of queueing in the backlog.
			cfg.Threads = 8
			cfg.MaxConns = 8
			s, err := mtserver.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return floodTarget{
				name:     "mtserver",
				addr:     s.Addr(),
				maxConns: 8,
				conns:    func() int64 { return s.Stats().ConnsOpen },
				shed:     func() int64 { return s.Stats().Shed },
				stop:     s.Stop,
			}
		},
	}
	for _, mk := range targets {
		mk := mk
		tgt := mk(t)
		t.Run(tgt.name, func(t *testing.T) {
			defer tgt.stop()
			var saw200, saw503 atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < 120; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						c, err := net.DialTimeout("tcp", tgt.addr, time.Second)
						if err != nil {
							continue
						}
						c.SetDeadline(time.Now().Add(time.Second))
						c.Write(probeRequest)
						resp, err := http.ReadResponse(bufio.NewReader(c), nil)
						if err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							switch resp.StatusCode {
							case 200:
								saw200.Add(1)
							case 503:
								saw503.Add(1)
							}
							if resp.StatusCode == 200 {
								// Hold the admitted slot briefly to keep
								// pressure on the cap.
								select {
								case <-stop:
									c.Close()
									return
								case <-time.After(100 * time.Millisecond):
								}
							}
						}
						c.Close()
					}
				}()
			}
			// Sample the cap while the flood runs.
			var maxOpen int64
			floodEnd := time.Now().Add(1200 * time.Millisecond)
			for time.Now().Before(floodEnd) {
				if open := tgt.conns(); open > maxOpen {
					maxOpen = open
				}
				time.Sleep(time.Millisecond)
			}
			close(stop)
			wg.Wait()

			if maxOpen > tgt.maxConns {
				t.Fatalf("ConnsOpen peaked at %d, above MaxConns %d", maxOpen, tgt.maxConns)
			}
			if tgt.shed() == 0 {
				t.Fatal("flood never tripped admission control")
			}
			if saw503.Load() == 0 {
				t.Fatal("no client observed a 503 shed response")
			}
			if saw200.Load() == 0 {
				t.Fatal("admitted clients starved during the flood")
			}
		})
	}
}

// TestDrainDeliversInFlightThroughCappedLink starts a large transfer
// over a bandwidth-capped client link, drains the server mid-transfer,
// and requires the full response to arrive before the close — on both
// architectures.
func TestDrainDeliversInFlightThroughCappedLink(t *testing.T) {
	type target struct {
		name  string
		addr  string
		drain func(time.Duration) bool
		stop  func()
	}
	mks := []func(t *testing.T) target{
		func(t *testing.T) target {
			s, err := core.NewServer(core.DefaultConfig(robustStore()))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"core", s.Addr(), s.Drain, s.Stop}
		},
		func(t *testing.T) target {
			s, err := mtserver.NewServer(mtserver.DefaultConfig(robustStore()))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			return target{"mtserver", s.Addr(), s.Drain, s.Stop}
		},
	}
	for _, mk := range mks {
		mk := mk
		tgt := mk(t)
		t.Run(tgt.name, func(t *testing.T) {
			defer tgt.stop()
			// 1 MiB body over a 2 MiB/s capped link: ~500 ms in flight.
			proxy, err := faultline.New(faultline.Config{
				Upstream: tgt.addr,
				Plan: func(int, *dist.RNG) faultline.Profile {
					return faultline.Profile{DownBytesPerSec: 2 << 20}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()

			c, err := net.DialTimeout("tcp", proxy.Addr(), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Write([]byte("GET /big HTTP/1.1\r\nHost: sut\r\n\r\n")); err != nil {
				t.Fatal(err)
			}

			type result struct {
				n    int64
				tail error
				err  error
			}
			done := make(chan result, 1)
			go func() {
				c.SetReadDeadline(time.Now().Add(30 * time.Second))
				r := bufio.NewReader(c)
				resp, err := http.ReadResponse(r, nil)
				if err != nil {
					done <- result{0, nil, err}
					return
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				_, tail := r.ReadByte()
				done <- result{n, tail, err}
			}()

			time.Sleep(100 * time.Millisecond) // transfer is now mid-flight
			if !tgt.drain(15 * time.Second) {
				t.Fatal("drain timed out with an in-flight transfer")
			}
			res := <-done
			if res.err != nil {
				t.Fatalf("in-flight response errored: %v", res.err)
			}
			if res.n != 1<<20 {
				t.Fatalf("in-flight response truncated: %d of %d bytes", res.n, 1<<20)
			}
			if res.tail != io.EOF {
				t.Fatalf("connection tail = %v, want EOF after the drain", res.tail)
			}
		})
	}
}
