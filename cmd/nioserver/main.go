// Command nioserver runs the live event-driven web server (the paper's
// "nio server") on a SURGE object population.
//
// Usage:
//
//	nioserver -port 8080 -shards 4 -objects 2000 -seed 7
//
// The server exposes /obj/<id> for id in [0, objects). Stop with SIGINT:
// the server drains (finishes in-flight responses, up to -drain) before
// exiting; final stats are printed on exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/docroot"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/surge"
)

func main() {
	port := flag.Int("port", 8080, "port to listen on (0 picks a free port)")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "reactor shards, each a full event loop with its own epoll fd (0 = legacy -workers fan-out mode)")
	workers := flag.Int("workers", 1, "legacy fan-out mode only (-shards 0): reactor worker threads fed by one acceptor")
	objects := flag.Int("objects", 2000, "SURGE object population size")
	seed := flag.Uint64("seed", 7, "object-set seed")
	docrootDir := flag.String("docroot", "", `serve real files from disk instead of memory: a directory path, or "tmp" to materialize the SURGE set into a fresh temp dir ("" = in-memory store)`)
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "docroot content-cache budget in bytes (0 disables caching)")
	idle := flag.Duration("idle-timeout", 0, "disconnect idle connections after this long (0 = never, the paper's configuration)")
	header := flag.Duration("header-timeout", 0, "reset connections that have not delivered a complete request this long after their first byte (0 = never; slowloris defense)")
	maxConns := flag.Int("max-conns", 0, "shed connections above this many with an immediate 503 (0 = unlimited)")
	targetP95 := flag.Duration("target-p95", 0, "adaptive overload control: shed accepts as needed to hold p95 first-response latency near this target (0 = disabled)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After advertised on adaptive sheds (rounded up to whole seconds)")
	watchdog := flag.Duration("watchdog", 0, "flag reactor loops that stall longer than this (0 = disabled)")
	admin := flag.String("admin", "", `admin introspection listener, e.g. "127.0.0.1:9090": serves /stats, /trace, and /debug/pprof/ and enables lifecycle tracing ("" = disabled)`)
	traceRing := flag.Int("trace-ring", 1<<14, "trace ring capacity in events (rounded up to a power of two)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain budget on SIGINT")
	flag.Parse()

	scfg := surge.DefaultConfig()
	scfg.NumObjects = *objects
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(*seed))
	if err != nil {
		log.Fatalf("building object set: %v", err)
	}
	cfg := core.DefaultConfig(nil)
	var root *docroot.Root
	if *docrootDir != "" {
		var cleanup func()
		root, cleanup = setupDocroot(*docrootDir, set, scfg.MaxObjectBytes, *seed+1, *cacheBytes)
		defer cleanup()
		cfg.Docroot = root
	} else {
		cfg.Store = core.NewSurgeStore(set, scfg.MaxObjectBytes, *seed+1)
	}
	cfg.Port = *port
	cfg.Shards = *shards
	cfg.Workers = *workers
	cfg.IdleTimeout = *idle
	cfg.HeaderTimeout = *header
	cfg.MaxConns = *maxConns
	var ctl *overload.Controller
	if *targetP95 > 0 {
		ctl, err = overload.NewController(overload.Config{TargetP95: *targetP95, RetryAfter: *retryAfter})
		if err != nil {
			log.Fatalf("overload controller: %v", err)
		}
		cfg.Admission = ctl
	}
	var wd *overload.Watchdog
	if *watchdog > 0 {
		wd, err = overload.NewWatchdog(overload.WatchdogConfig{
			Interval: *watchdog,
			OnStall: func(s overload.Stall) {
				log.Printf("watchdog: %s stalled for %v", s.Name, s.Age)
			},
		})
		if err != nil {
			log.Fatalf("watchdog: %v", err)
		}
		defer wd.Stop()
		cfg.Watchdog = wd
	}
	var plane *obs.Plane
	if *admin != "" {
		if *traceRing <= 0 {
			log.Fatalf("-trace-ring must be positive, got %d", *traceRing)
		}
		plane = obs.NewPlane(*traceRing)
		cfg.Obs = plane
	}
	srv, err := core.NewServer(cfg)
	if err != nil {
		log.Fatalf("starting server: %v", err)
	}
	if plane != nil {
		ad, err := obs.NewAdmin(*admin, obs.AdminConfig{
			Stats: func() []obs.Field { return core.StatsFields(srv.Stats()) },
			Plane: plane,
		})
		if err != nil {
			log.Fatalf("admin endpoint: %v", err)
		}
		defer ad.Close()
		fmt.Printf("admin endpoint on http://%s (/stats /trace /debug/pprof/)\n", ad.Addr())
	}
	if err := srv.Start(); err != nil {
		log.Fatalf("starting server: %v", err)
	}
	fmt.Printf("nio server listening on %s (%d shards, %s accept, %d objects, mean %.0f B)\n",
		srv.Addr(), srv.NumShards(), srv.AcceptMode(), set.Len(), set.MeanBytes())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if !srv.Drain(*drain) {
		fmt.Fprintf(os.Stderr, "drain budget %v exceeded; remaining connections cut\n", *drain)
	}
	st := srv.Stats()
	fmt.Printf("accepted=%d replies=%d bytes=%d 404s=%d 400s=%d shed=%d header-timeouts=%d panics=%d\n",
		st.Accepted, st.Replies, st.BytesOut, st.NotFound, st.BadRequest, st.Shed, st.HeaderTimeouts, st.HandlerPanics)
	if ctl != nil {
		cs := ctl.Stats()
		fmt.Printf("overload: admitted=%d shed=%d rate=%.0f/s last-p95=%v steps=%d down/%d up\n",
			cs.Admitted, cs.Shed, cs.Rate, cs.LastP95, cs.Decreases, cs.Increases)
	}
	if wd != nil {
		ws := wd.Stats()
		fmt.Printf("watchdog: stalls=%d recovered=%d active=%d max-stall=%v\n",
			ws.Stalls, ws.Recovered, ws.Active, ws.MaxStallAge)
	}
	if root != nil {
		cs := root.Stats()
		fmt.Printf("304s=%d sendfile-bytes=%d cache: hits=%d misses=%d evictions=%d cached-bytes=%d\n",
			st.NotModified, st.SendfileBytes, cs.Hits, cs.Misses, cs.Evictions, cs.CachedBytes)
	}
}

// setupDocroot resolves the -docroot flag: "tmp" materializes the SURGE
// set into a fresh temp directory (removed by the returned cleanup);
// anything else is served as-is.
func setupDocroot(spec string, set *surge.ObjectSet, maxObjectBytes int64, seed uint64, cacheBytes int64) (*docroot.Root, func()) {
	cleanup := func() {}
	dir := spec
	if spec == "tmp" {
		d, err := os.MkdirTemp("", "surge-docroot-")
		if err != nil {
			log.Fatalf("docroot: %v", err)
		}
		if err := docroot.MaterializeSurge(d, set, maxObjectBytes, seed); err != nil {
			os.RemoveAll(d)
			log.Fatalf("docroot: %v", err)
		}
		dir = d
		cleanup = func() { os.RemoveAll(d) }
	}
	root, err := docroot.Open(dir, cacheBytes)
	if err != nil {
		cleanup()
		log.Fatalf("docroot: %v", err)
	}
	return root, cleanup
}
