// Command nioserver runs the live event-driven web server (the paper's
// "nio server") on a SURGE object population.
//
// Usage:
//
//	nioserver -port 8080 -workers 1 -objects 2000 -seed 7
//
// The server exposes /obj/<id> for id in [0, objects). Stop with SIGINT:
// the server drains (finishes in-flight responses, up to -drain) before
// exiting; final stats are printed on exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/docroot"
	"repro/internal/surge"
)

func main() {
	port := flag.Int("port", 8080, "port to listen on (0 picks a free port)")
	workers := flag.Int("workers", 1, "reactor worker threads")
	objects := flag.Int("objects", 2000, "SURGE object population size")
	seed := flag.Uint64("seed", 7, "object-set seed")
	docrootDir := flag.String("docroot", "", `serve real files from disk instead of memory: a directory path, or "tmp" to materialize the SURGE set into a fresh temp dir ("" = in-memory store)`)
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "docroot content-cache budget in bytes (0 disables caching)")
	idle := flag.Duration("idle-timeout", 0, "disconnect idle connections after this long (0 = never, the paper's configuration)")
	header := flag.Duration("header-timeout", 0, "reset connections that have not delivered a complete request this long after their first byte (0 = never; slowloris defense)")
	maxConns := flag.Int("max-conns", 0, "shed connections above this many with an immediate 503 (0 = unlimited)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain budget on SIGINT")
	flag.Parse()

	scfg := surge.DefaultConfig()
	scfg.NumObjects = *objects
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(*seed))
	if err != nil {
		log.Fatalf("building object set: %v", err)
	}
	cfg := core.DefaultConfig(nil)
	var root *docroot.Root
	if *docrootDir != "" {
		var cleanup func()
		root, cleanup = setupDocroot(*docrootDir, set, scfg.MaxObjectBytes, *seed+1, *cacheBytes)
		defer cleanup()
		cfg.Docroot = root
	} else {
		cfg.Store = core.NewSurgeStore(set, scfg.MaxObjectBytes, *seed+1)
	}
	cfg.Port = *port
	cfg.Workers = *workers
	cfg.IdleTimeout = *idle
	cfg.HeaderTimeout = *header
	cfg.MaxConns = *maxConns
	srv, err := core.NewServer(cfg)
	if err != nil {
		log.Fatalf("starting server: %v", err)
	}
	if err := srv.Start(); err != nil {
		log.Fatalf("starting server: %v", err)
	}
	fmt.Printf("nio server listening on %s (%d workers, %d objects, mean %.0f B)\n",
		srv.Addr(), *workers, set.Len(), set.MeanBytes())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if !srv.Drain(*drain) {
		fmt.Fprintf(os.Stderr, "drain budget %v exceeded; remaining connections cut\n", *drain)
	}
	st := srv.Stats()
	fmt.Printf("accepted=%d replies=%d bytes=%d 404s=%d 400s=%d shed=%d header-timeouts=%d\n",
		st.Accepted, st.Replies, st.BytesOut, st.NotFound, st.BadRequest, st.Shed, st.HeaderTimeouts)
	if root != nil {
		cs := root.Stats()
		fmt.Printf("304s=%d sendfile-bytes=%d cache: hits=%d misses=%d evictions=%d cached-bytes=%d\n",
			st.NotModified, st.SendfileBytes, cs.Hits, cs.Misses, cs.Evictions, cs.CachedBytes)
	}
}

// setupDocroot resolves the -docroot flag: "tmp" materializes the SURGE
// set into a fresh temp directory (removed by the returned cleanup);
// anything else is served as-is.
func setupDocroot(spec string, set *surge.ObjectSet, maxObjectBytes int64, seed uint64, cacheBytes int64) (*docroot.Root, func()) {
	cleanup := func() {}
	dir := spec
	if spec == "tmp" {
		d, err := os.MkdirTemp("", "surge-docroot-")
		if err != nil {
			log.Fatalf("docroot: %v", err)
		}
		if err := docroot.MaterializeSurge(d, set, maxObjectBytes, seed); err != nil {
			os.RemoveAll(d)
			log.Fatalf("docroot: %v", err)
		}
		dir = d
		cleanup = func() { os.RemoveAll(d) }
	}
	root, err := docroot.Open(dir, cacheBytes)
	if err != nil {
		cleanup()
		log.Fatalf("docroot: %v", err)
	}
	return root, cleanup
}
