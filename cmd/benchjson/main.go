// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document — the recorded perf trajectory the
// zero-allocation hot-path work (ROADMAP item 3) measures itself
// against. Each run commits one BENCH_<date>.json; diffing two of them
// shows exactly which benchmark moved, in which metric, by how much.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x ./... | benchjson > BENCH_2026-01-02.json
//	benchjson -in bench.txt -out BENCH_2026-01-02.json
//	go test -bench=. -benchmem -benchtime=1x ./... | benchjson -check BENCH_2026-01-02.json
//
// The -check form is the regression gate (`make bench-check`): instead
// of emitting JSON it diffs the fresh run against a committed baseline
// and exits nonzero if replies/s fell or p99-ms rose by more than the
// tolerance (15% by default) on any benchmark present in both runs.
// Baselines only gate runs from the same CPU — on other machines the
// gate reports and skips, because cross-machine numbers do not diff.
//
// It parses the standard benchmark line grammar
//
//	BenchmarkName/sub-case-8   	      10	 12345 ns/op	  67 B/op	   8 allocs/op	  9.1 replies/s
//
// keeping every metric pair (standard ns/op, B/op, allocs/op plus any
// custom b.ReportMetric unit such as replies/s or p99-ms), and the
// goos/goarch/pkg/cpu header lines, which scope the benchmarks that
// follow them. Lines that are not benchmark results (test PASS/ok
// trailers, compile output) pass through unparsed; a run with zero
// benchmark lines is an error, so a silently-broken pipeline cannot
// commit an empty trajectory point.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Package is the import path from the preceding "pkg:" header.
	Package string `json:"package"`
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (it is recorded separately as Procs).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the name (1 if absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every value/unit pair on the line:
	// ns/op, B/op, allocs/op, and custom b.ReportMetric units
	// (replies/s, p50-ms, p95-ms, p99-ms, …).
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the whole run.
type Document struct {
	// GeneratedAt is the conversion time, RFC 3339 UTC.
	GeneratedAt string `json:"generated_at"`
	// GoVersion/GOOS/GOARCH/CPU describe the machine the run came from.
	// Header lines in the input win over the converter's own runtime
	// (they describe the benchmarking process, which is what matters).
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	// Benchmarks holds every parsed result line, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "read benchmark text from this file instead of stdin")
	out := flag.String("out", "", "write JSON to this file instead of stdout")
	check := flag.String("check", "", "compare the parsed run against this committed BENCH_*.json baseline and exit nonzero on regression instead of emitting JSON")
	tol := flag.Float64("tolerance", 0.15, "fractional regression tolerance for -check (0.15 = a 15% drop in replies/s or rise in p99-ms fails)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}

	doc, err := parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines in input (did the bench run fail upstream of the pipe?)")
	}

	if *check != "" {
		os.Exit(checkAgainst(doc, *check, *tol))
	}

	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(doc.Benchmarks))
}

// parse consumes `go test -bench` output and keeps headers and results.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // "BenchmarkX ran in short mode" and friends
			}
			b.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line:
//
//	name-P   iterations   value unit   value unit   ...
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Shortest legal line: name, iterations, one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Iterations: iters,
		Procs:      1,
		Metrics:    map[string]float64{},
	}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// guardedMetric is one metric the -check gate watches, with its
// direction of badness.
type guardedMetric struct {
	unit        string
	higherWorse bool
}

// guarded are the regression-gated metrics: delivered throughput and
// tail latency, the two axes the paper's figures are drawn in. The
// other recorded metrics (allocs, mid-quantiles, connect times) ride
// along in the JSON for diffing but do not gate — they are too noisy
// at -benchtime=1x to fail a build on.
var guarded = []guardedMetric{
	{unit: "replies/s", higherWorse: false},
	{unit: "p99-ms", higherWorse: true},
}

// benchKey addresses one benchmark across runs.
func benchKey(b Benchmark) string {
	return fmt.Sprintf("%s %s-%d", b.Package, b.Name, b.Procs)
}

// checkAgainst diffs the fresh run against a committed baseline and
// returns the process exit code: 0 when every guarded metric of every
// benchmark present in both runs is within tolerance, 1 on any
// regression. Benchmarks that exist on only one side are reported but
// do not fail (the suite grows; the gate must not punish new
// coverage). If the baseline was recorded on a different CPU, the
// comparison is meaningless and is skipped with exit 0 — the gate
// guards a machine's own trajectory, not cross-machine folklore.
func checkAgainst(fresh *Document, baselinePath string, tol float64) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatalf("benchjson: reading baseline: %v", err)
	}
	var base Document
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("benchjson: parsing baseline %s: %v", baselinePath, err)
	}
	if base.CPU != "" && fresh.CPU != "" && base.CPU != fresh.CPU {
		fmt.Printf("benchjson: baseline CPU %q != this machine %q; skipping regression gate (record a local baseline with `make bench-json` first)\n",
			base.CPU, fresh.CPU)
		return 0
	}

	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[benchKey(b)] = b
	}

	regressions := 0
	compared := 0
	for _, b := range fresh.Benchmarks {
		key := benchKey(b)
		old, ok := baseBy[key]
		if !ok {
			fmt.Printf("  new       %s (not in baseline)\n", key)
			continue
		}
		delete(baseBy, key)
		for _, g := range guarded {
			was, okOld := old.Metrics[g.unit]
			now, okNew := b.Metrics[g.unit]
			if !okOld || !okNew || was == 0 {
				continue
			}
			compared++
			delta := (now - was) / was
			bad := delta > tol
			if !g.higherWorse {
				bad = delta < -tol
			}
			mark := "ok"
			if bad {
				mark = "REGRESSION"
				regressions++
			}
			fmt.Printf("  %-10s %s %s: %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)\n",
				mark, key, g.unit, was, now, delta*100, tol*100)
		}
	}
	for key := range baseBy {
		fmt.Printf("  gone      %s (in baseline, not in this run)\n", key)
	}
	fmt.Printf("benchjson: %d guarded comparisons vs %s, %d regressions\n", compared, baselinePath, regressions)
	if compared == 0 {
		fmt.Println("benchjson: nothing compared — baseline and run share no guarded benchmarks")
		return 1
	}
	if regressions > 0 {
		return 1
	}
	return 0
}
