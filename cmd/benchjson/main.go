// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document — the recorded perf trajectory the
// zero-allocation hot-path work (ROADMAP item 3) measures itself
// against. Each run commits one BENCH_<date>.json; diffing two of them
// shows exactly which benchmark moved, in which metric, by how much.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x ./... | benchjson > BENCH_2026-01-02.json
//	benchjson -in bench.txt -out BENCH_2026-01-02.json
//
// It parses the standard benchmark line grammar
//
//	BenchmarkName/sub-case-8   	      10	 12345 ns/op	  67 B/op	   8 allocs/op	  9.1 replies/s
//
// keeping every metric pair (standard ns/op, B/op, allocs/op plus any
// custom b.ReportMetric unit such as replies/s or p99-ms), and the
// goos/goarch/pkg/cpu header lines, which scope the benchmarks that
// follow them. Lines that are not benchmark results (test PASS/ok
// trailers, compile output) pass through unparsed; a run with zero
// benchmark lines is an error, so a silently-broken pipeline cannot
// commit an empty trajectory point.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Package is the import path from the preceding "pkg:" header.
	Package string `json:"package"`
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (it is recorded separately as Procs).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the name (1 if absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every value/unit pair on the line:
	// ns/op, B/op, allocs/op, and custom b.ReportMetric units
	// (replies/s, p50-ms, p95-ms, p99-ms, …).
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the whole run.
type Document struct {
	// GeneratedAt is the conversion time, RFC 3339 UTC.
	GeneratedAt string `json:"generated_at"`
	// GoVersion/GOOS/GOARCH/CPU describe the machine the run came from.
	// Header lines in the input win over the converter's own runtime
	// (they describe the benchmarking process, which is what matters).
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	// Benchmarks holds every parsed result line, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "read benchmark text from this file instead of stdin")
	out := flag.String("out", "", "write JSON to this file instead of stdout")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}

	doc, err := parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines in input (did the bench run fail upstream of the pipe?)")
	}

	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(doc.Benchmarks))
}

// parse consumes `go test -bench` output and keeps headers and results.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // "BenchmarkX ran in short mode" and friends
			}
			b.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line:
//
//	name-P   iterations   value unit   value unit   ...
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Shortest legal line: name, iterations, one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Iterations: iters,
		Procs:      1,
		Metrics:    map[string]float64{},
	}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
