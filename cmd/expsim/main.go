// Command expsim regenerates the paper's evaluation figures (1–10) on the
// simulated testbed and prints each as a text table.
//
// Usage:
//
//	expsim                    # all ten figures at paper scale (minutes)
//	expsim -fig 1             # one figure (11 = E1 bandwidth, 12 = E2 staged)
//	expsim -fast              # reduced sweep for a quick look (seconds)
//	expsim -format plot       # terminal ASCII charts instead of tables
//	expsim -format csv        # CSV for external plotting
//	expsim -replicates 3      # average each point over 3 seeds
//	expsim -v                 # print per-run progress
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 1-10, 11=E1 … 14=E4 (0 = all paper figures)")
	fast := flag.Bool("fast", false, "reduced sweep and shorter runs")
	format := flag.String("format", "table", "output format: table, csv, plot")
	outDir := flag.String("out", "", "also write one CSV file per figure into this directory")
	replicates := flag.Int("replicates", 1, "seeds averaged per point")
	verbose := flag.Bool("v", false, "print one line per completed run")
	flag.Parse()

	writeCSV := func(f experiments.Figure) {
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*outDir, "fig"+f.ID+".csv")
		if err := os.WriteFile(path, []byte(f.RenderCSV()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	render := func(f experiments.Figure) string {
		switch *format {
		case "csv":
			return f.RenderCSV()
		case "plot":
			return f.RenderPlot()
		case "table":
			return f.Render()
		default:
			log.Fatalf("unknown -format %q (want table, csv, or plot)", *format)
			return ""
		}
	}

	var suite *experiments.Suite
	if *fast {
		suite = experiments.NewFastSuite()
	} else {
		suite = experiments.NewSuite()
	}
	suite.Replicates = *replicates
	if *verbose {
		suite.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	if *fig == 0 {
		for n := 1; n <= 10; n++ {
			figs, err := suite.Figures(n)
			if err != nil {
				log.Fatal(err)
			}
			for _, f := range figs {
				fmt.Println(render(f))
				writeCSV(f)
			}
		}
		return
	}
	figs, err := suite.Figures(*fig)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range figs {
		fmt.Println(render(f))
		writeCSV(f)
	}
}
