// Command mtserver runs the live thread-pool baseline (the paper's
// "httpd2" analogue: Apache 2 worker-MPM behaviour) on a SURGE object
// population.
//
// Usage:
//
//	mtserver -port 8081 -threads 64 -keepalive 15s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mtserver"
	"repro/internal/surge"
)

func main() {
	port := flag.Int("port", 8081, "port to listen on (0 picks a free port)")
	threads := flag.Int("threads", 64, "worker-pool size")
	keepAlive := flag.Duration("keepalive", 15*time.Second, "idle keep-alive timeout")
	objects := flag.Int("objects", 2000, "SURGE object population size")
	seed := flag.Uint64("seed", 7, "object-set seed")
	flag.Parse()

	scfg := surge.DefaultConfig()
	scfg.NumObjects = *objects
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(*seed))
	if err != nil {
		log.Fatalf("building object set: %v", err)
	}
	store := core.NewSurgeStore(set, scfg.MaxObjectBytes, *seed+1)

	cfg := mtserver.DefaultConfig(store)
	cfg.Port = *port
	cfg.Threads = *threads
	cfg.KeepAlive = *keepAlive
	srv, err := mtserver.NewServer(cfg)
	if err != nil {
		log.Fatalf("starting server: %v", err)
	}
	if err := srv.Start(); err != nil {
		log.Fatalf("starting server: %v", err)
	}
	fmt.Printf("thread-pool server listening on %s (%d threads, keep-alive %v)\n",
		srv.Addr(), *threads, *keepAlive)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Stop()
	st := srv.Stats()
	fmt.Printf("accepted=%d replies=%d bytes=%d idle-closes=%d 400s=%d\n",
		st.Accepted, st.Replies, st.BytesOut, st.IdleCloses, st.BadRequest)
}
