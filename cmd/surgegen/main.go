// Command surgegen inspects the SURGE workload model: it builds an object
// population, samples sessions, and prints the statistics that matter for
// reproducing the paper (mean reply size, session length, think times).
//
// Usage:
//
//	surgegen -objects 2000 -sessions 10000 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/surge"
)

func main() {
	objects := flag.Int("objects", 2000, "object population size")
	sessions := flag.Int("sessions", 10000, "sessions to sample")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	cfg := surge.DefaultConfig()
	cfg.NumObjects = *objects
	rng := dist.NewRNG(*seed)
	set, err := surge.BuildObjectSet(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	gen := surge.NewGenerator(cfg, set, rng.Split())
	st := surge.SampleStats(gen, *sessions)

	fmt.Printf("objects:             %d\n", set.Len())
	fmt.Printf("total bytes:         %d\n", set.TotalBytes())
	fmt.Printf("mean object size:    %.0f B\n", set.MeanBytes())
	fmt.Printf("sessions sampled:    %d\n", st.Sessions)
	fmt.Printf("requests:            %d\n", st.Requests)
	fmt.Printf("mean session length: %.2f requests (paper: ~6.5)\n", st.MeanSessionLen)
	fmt.Printf("mean reply size:     %.0f B\n", st.MeanObjectBytes)
	fmt.Printf("mean think time:     %.2f s\n", st.MeanThink)
}
