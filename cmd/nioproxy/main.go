// Command nioproxy runs the serving tier: an event-driven reverse proxy
// balancing across health-checked backends, with merged telemetry.
//
// Usage:
//
//	nioproxy -port 8000 -backends 127.0.0.1:8080@127.0.0.1:9090,127.0.0.1:8081 \
//	         -balance least -admin 127.0.0.1:9000
//
// Each -backends element is "addr" or "addr@adminAddr"; when an admin
// address is given, the proxy's rollup collector scrapes that backend's
// /rollup export and the proxy's admin plane serves the tier-merged
// view at /backends alongside its own /stats. Stop with SIGINT: the
// proxy drains (finishes in-flight relays, up to -drain) before
// exiting; final stats are printed on exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/rollup"
	"repro/internal/overload"
	"repro/internal/proxy"
)

func main() {
	port := flag.Int("port", 8000, "port to listen on (0 picks a free port)")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "proxy shards sharing the port via SO_REUSEPORT, each a full event loop with its own upstream pool")
	backends := flag.String("backends", "", `comma-separated backends: "addr" or "addr@adminAddr" (required)`)
	balance := flag.String("balance", "least", "balancing policy: rr | least | hash")
	maxPer := flag.Int("max-per-backend", 64, "max open upstream sockets per backend")
	maxIdle := flag.Int("max-idle", 16, "max parked keep-alive upstream sockets per backend")
	maxWait := flag.Int("max-wait", 256, "max relays queued per backend before shedding")
	attempts := flag.Int("relay-attempts", 3, "relay attempts per request before a 502")
	probeEvery := flag.Duration("probe-every", time.Second, "active health-probe interval (0 disables probing)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "health-probe timeout")
	probePath := flag.String("probe-path", "/", "health-probe request path")
	probeSeed := flag.Uint64("probe-seed", 7, "health-probe jitter seed")
	failAfter := flag.Int("fail-after", 3, "consecutive failures before ejecting a backend")
	reviveAfter := flag.Int("revive-after", 2, "consecutive probe successes before re-admitting a backend")
	readmitAfter := flag.Duration("readmit-after", 5*time.Second, "with probing disabled, cooldown before an ejected backend re-enters rotation on probation")
	maxConns := flag.Int("max-conns", 4096, "shed client connections above this many with 503 + Via")
	targetP95 := flag.Duration("target-p95", 0, "tier-level adaptive overload control: shed accepts to hold p95 first-response latency near this target (0 = disabled)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After advertised on tier sheds (rounded up to whole seconds)")
	watchdog := flag.Duration("watchdog", 0, "flag a proxy loop stalled longer than this (0 = disabled)")
	admin := flag.String("admin", "", `admin listener, e.g. "127.0.0.1:9000": serves /stats, /trace, /rollup, /backends, /debug/pprof/ ("" = disabled)`)
	traceRing := flag.Int("trace-ring", 1<<14, "trace ring capacity in events (rounded up to a power of two)")
	scrapeEvery := flag.Duration("scrape-every", time.Second, "backend /rollup scrape interval")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain budget on SIGINT")
	flag.Parse()

	bcfgs, targets, err := parseBackends(*backends)
	if err != nil {
		log.Fatalf("parsing -backends: %v", err)
	}
	cfg := proxy.DefaultConfig(bcfgs)
	cfg.Port = *port
	cfg.MaxPerBackend = *maxPer
	cfg.MaxIdlePerBackend = *maxIdle
	cfg.MaxWaitPerBackend = *maxWait
	cfg.RelayAttempts = *attempts
	cfg.ProbeEvery = *probeEvery
	cfg.ProbeTimeout = *probeTimeout
	cfg.ProbePath = *probePath
	cfg.ProbeSeed = *probeSeed
	cfg.FailAfter = *failAfter
	cfg.ReviveAfter = *reviveAfter
	cfg.ReadmitAfter = *readmitAfter
	cfg.MaxConns = *maxConns
	cfg.Balance, err = proxy.ParsePolicy(*balance)
	if err != nil {
		log.Fatal(err)
	}
	cfg.RetryAfterSec = int((*retryAfter + time.Second - 1) / time.Second)
	cfg.OnHealthChange = func(name string, healthy bool) {
		if healthy {
			log.Printf("backend %s re-admitted", name)
		} else {
			log.Printf("backend %s ejected", name)
		}
	}

	var ctl *overload.Controller
	if *targetP95 > 0 {
		ctl, err = overload.NewController(overload.Config{TargetP95: *targetP95, RetryAfter: *retryAfter})
		if err != nil {
			log.Fatalf("overload controller: %v", err)
		}
		cfg.Admission = ctl
	}
	var wd *overload.Watchdog
	if *watchdog > 0 {
		wd, err = overload.NewWatchdog(overload.WatchdogConfig{
			Interval: *watchdog,
			OnStall: func(s overload.Stall) {
				log.Printf("watchdog: %s stalled for %v", s.Name, s.Age)
			},
		})
		if err != nil {
			log.Fatalf("watchdog: %v", err)
		}
		defer wd.Stop()
		cfg.Watchdog = wd
	}
	var plane *obs.Plane
	if *admin != "" {
		if *traceRing <= 0 {
			log.Fatalf("-trace-ring must be positive, got %d", *traceRing)
		}
		plane = obs.NewPlane(*traceRing)
		cfg.Obs = plane
	}

	p, err := proxy.NewTier(cfg, *shards)
	if err != nil {
		log.Fatalf("starting proxy: %v", err)
	}

	var coll *rollup.Collector
	if *admin != "" {
		coll = rollup.NewCollector()
		if len(targets) > 0 {
			sc := rollup.NewScraper(coll, targets, *scrapeEvery)
			sc.Start()
			defer sc.Stop()
		}
		// /backends is the tier view: the proxy's own counters, the live
		// pool state, and the merged-from-rollups backend telemetry.
		backendsView := func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "== proxy ==\n")
			obs.RenderStats(w, proxy.StatsFields(p.Stats()), plane)
			for _, s := range p.BackendStats() {
				fmt.Fprintf(w, "backend.%s.healthy %v\n", s.Name, s.Healthy)
				fmt.Fprintf(w, "backend.%s.relayed %d\n", s.Name, s.Relayed)
				fmt.Fprintf(w, "backend.%s.relayed_503 %d\n", s.Name, s.Relayed503)
				fmt.Fprintf(w, "backend.%s.errors %d\n", s.Name, s.Errors)
				fmt.Fprintf(w, "backend.%s.inflight %d\n", s.Name, s.Inflight)
			}
			coll.RenderMerged(w)
		}
		ad, err := obs.NewAdmin(*admin, obs.AdminConfig{
			Name:  "nioproxy",
			Stats: func() []obs.Field { return proxy.StatsFields(p.Stats()) },
			Plane: plane,
			Extra: map[string]http.HandlerFunc{"/backends": backendsView},
		})
		if err != nil {
			log.Fatalf("admin endpoint: %v", err)
		}
		defer ad.Close()
		fmt.Printf("admin endpoint on http://%s (/stats /trace /rollup /backends /debug/pprof/)\n", ad.Addr())
	}

	if err := p.Start(); err != nil {
		log.Fatalf("starting proxy: %v", err)
	}
	names := make([]string, len(bcfgs))
	for i, b := range bcfgs {
		names[i] = fmt.Sprintf("%s(%s)", b.Name, b.Addr)
	}
	fmt.Printf("nioproxy listening on %s (%d shards, %s accept, %s over %s)\n",
		p.Addr(), p.NumShards(), p.AcceptMode(), cfg.Balance, strings.Join(names, ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if !p.Drain(*drain) {
		fmt.Fprintf(os.Stderr, "drain budget %v exceeded; remaining connections cut\n", *drain)
	}
	st := p.Stats()
	fmt.Printf("accepted=%d replies=%d shed=%d no-backend=%d 502s=%d relayed-503s=%d dials=%d reuses=%d up-errors=%d retries=%d ejections=%d readmissions=%d\n",
		st.Accepted, st.Replies, st.Shed, st.NoBackend, st.BadGateway, st.Relayed503,
		st.UpstreamDials, st.UpstreamReuses, st.UpstreamErrors, st.UpstreamRetries,
		st.Ejections, st.Readmissions)
	for _, s := range p.BackendStats() {
		fmt.Printf("backend %s: healthy=%v relayed=%d relayed-503s=%d errors=%d dials=%d reuses=%d\n",
			s.Name, s.Healthy, s.Relayed, s.Relayed503, s.Errors, s.Dials, s.Reuses)
	}
	if ctl != nil {
		cs := ctl.Stats()
		fmt.Printf("overload: admitted=%d shed=%d rate=%.0f/s last-p95=%v steps=%d down/%d up\n",
			cs.Admitted, cs.Shed, cs.Rate, cs.LastP95, cs.Decreases, cs.Increases)
	}
}

// parseBackends resolves the -backends flag: "addr" or "addr@adminAddr"
// elements, comma-separated. Backends with admin addresses become
// rollup scrape targets.
func parseBackends(spec string) ([]proxy.BackendConfig, []rollup.Target, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil, fmt.Errorf("at least one backend is required")
	}
	var cfgs []proxy.BackendConfig
	var targets []rollup.Target
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name := fmt.Sprintf("b%d", i)
		addr, adminAddr, _ := strings.Cut(part, "@")
		if addr == "" {
			return nil, nil, fmt.Errorf("backend %d has an empty address", i)
		}
		cfgs = append(cfgs, proxy.BackendConfig{Addr: addr, AdminAddr: adminAddr, Name: name})
		if adminAddr != "" {
			targets = append(targets, rollup.Target{Name: name, Addr: adminAddr})
		}
	}
	if len(cfgs) == 0 {
		return nil, nil, fmt.Errorf("at least one backend is required")
	}
	return cfgs, targets, nil
}
