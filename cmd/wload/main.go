// Command wload is the httperf-equivalent load generator: it drives a
// live server (nioserver or mtserver) with SURGE-distributed sessions and
// prints the measurements the paper's figures are built from.
//
// Usage:
//
//	wload -addr 127.0.0.1:8080 -clients 50 -duration 30s
//
// The -objects and -seed flags must match the server's so the generator
// requests paths that exist.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/faultline"
	"repro/internal/faultline/scenario"
	"repro/internal/loadgen"
	"repro/internal/sesslog"
	"repro/internal/surge"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "server address")
	targetAddr := flag.String("target", "", `dial this address instead of -addr — point it at a nioproxy front to drive a serving tier ("" = -addr). Composes with -chaos: the emulated link sits between the clients and the target.`)
	clients := flag.Int("clients", 50, "concurrent emulated clients (closed loop)")
	rate := flag.Float64("rate", 0, "open-loop session arrival rate/s (overrides -clients)")
	duration := flag.Duration("duration", 30*time.Second, "measurement window")
	warmup := flag.Duration("warmup", 3*time.Second, "warmup before measuring")
	timeout := flag.Duration("timeout", 10*time.Second, "client watchdog (httperf --timeout)")
	thinkScale := flag.Float64("think-scale", 1.0, "multiplier on SURGE OFF times")
	objects := flag.Int("objects", 2000, "SURGE object population size (match the server)")
	seed := flag.Uint64("seed", 7, "object-set seed (match the server)")
	genSeed := flag.Uint64("gen-seed", 99, "request-stream seed")
	record := flag.String("record", "", "record N sessions to this file and exit (see -record-sessions)")
	recordN := flag.Int("record-sessions", 100, "sessions to record with -record")
	replay := flag.String("replay", "", "replay sessions from this log (httperf --wsesslog)")
	revalidate := flag.Float64("revalidate", 0, "fraction of repeat requests carrying If-None-Match (0..1; needs a docroot-backed server for 304s)")
	adminAddr := flag.String("admin", "", `server admin endpoint to scrape mid-run, e.g. "127.0.0.1:9090" (matches the server's -admin flag; "" = no scraping)`)
	adminEvery := flag.Duration("admin-every", 2*time.Second, "scrape interval for -admin")
	chaos := flag.String("chaos", "", "route the load through the named emulated link scenario (see -chaos-list)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the emulated link's deterministic fault decisions")
	chaosList := flag.Bool("chaos-list", false, "list the chaos scenario catalog and exit")
	flag.Parse()

	if *chaosList {
		for _, sc := range scenario.Catalog() {
			fmt.Printf("%-14s %s\n", sc.Name, sc.Description)
		}
		return
	}

	scfg := surge.DefaultConfig()
	scfg.NumObjects = *objects
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(*seed))
	if err != nil {
		log.Fatalf("building object set: %v", err)
	}
	if *record != "" {
		gen := surge.NewGenerator(scfg, set, dist.NewRNG(*genSeed))
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := sesslog.Write(f, sesslog.Record(gen, *recordN)); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d sessions to %s\n", *recordN, *record)
		return
	}
	var sourceFactory func(int, *dist.RNG) surge.SessionSource
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		sessions, err := sesslog.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d sessions (%d requests, %d bytes) from %s\n",
			len(sessions), sesslog.TotalRequests(sessions), sesslog.TotalBytes(sessions), *replay)
		sourceFactory = func(client int, _ *dist.RNG) surge.SessionSource {
			return sesslog.NewReplayer(sessions, client)
		}
	}

	if *rate > 0 {
		*clients = 0
	}

	// -target overrides where the clients dial (e.g. a nioproxy front
	// while -admin still points at a backend); with -chaos, the clients
	// instead dial a faultline proxy applying the named scenario's
	// per-connection link discipline, and the emulated link dials the
	// target. The traffic itself stays whatever the workload flags say.
	target := *addr
	if *targetAddr != "" {
		target = *targetAddr
	}
	var proxy *faultline.Proxy
	if *chaos != "" {
		sc, err := scenario.ByName(*chaos)
		if err != nil {
			log.Fatal(err)
		}
		proxy, err = faultline.New(faultline.Config{
			Upstream: target,
			Seed:     *chaosSeed,
			Plan:     sc.Plan(),
		})
		if err != nil {
			log.Fatalf("chaos link: %v", err)
		}
		defer proxy.Close()
		fmt.Printf("chaos: scenario %s (seed %d) between clients and %s\n", sc.Name, *chaosSeed, target)
		target = proxy.Addr()
	}

	stopScrape := startAdminScraper(*adminAddr, *adminEvery)
	res, err := loadgen.Run(loadgen.Options{
		Addr:               target,
		Clients:            *clients,
		SessionRate:        *rate,
		Warmup:             *warmup,
		Duration:           *duration,
		Timeout:            *timeout,
		ThinkScale:         *thinkScale,
		Seed:               *genSeed,
		Workload:           scfg,
		Objects:            set,
		SourceFactory:      sourceFactory,
		RevalidateFraction: *revalidate,
	})
	if err != nil {
		stopScrape()
		log.Fatalf("load run: %v", err)
	}
	stopScrape()
	fmt.Printf("clients:            %d\n", res.Clients)
	fmt.Printf("duration:           %v\n", res.Duration)
	fmt.Printf("replies:            %d (%.1f/s)\n", res.Replies, res.RepliesPerSec)
	fmt.Printf("response time mean: %.4fs  p50: %.4fs  p90: %.4fs  p95: %.4fs  p99: %.4fs\n",
		res.MeanResponseSec, res.P50ResponseSec, res.P90ResponseSec, res.P95ResponseSec, res.P99ResponseSec)
	fmt.Printf("connect time mean:  %.4fs  p90: %.4fs\n", res.MeanConnectSec, res.P90ConnectSec)
	fmt.Printf("client timeouts:    %d (%.2f/s)\n", res.TimeoutErrors, res.TimeoutErrPerSec)
	fmt.Printf("connection resets:  %d (%.2f/s)\n", res.ResetErrors, res.ResetErrPerSec)
	fmt.Printf("net unreachable:    %d (%.2f/s)\n", res.UnreachableErrors, res.UnreachableErrPerSec)
	if res.LocalResErrors > 0 {
		fmt.Printf("client res limits:  %d (%.2f/s)  [client fd/port exhaustion -- raise ulimit, results suspect]\n",
			res.LocalResErrors, res.LocalResErrPerSec)
	}
	fmt.Printf("bandwidth:          %.2f MB/s\n", res.BandwidthBps/1e6)
	fmt.Printf("sessions completed: %d\n", res.Sessions)
	if *revalidate > 0 {
		fmt.Printf("304 not modified:   %d (%.1f/s)\n", res.NotModified, res.NotModifiedPerSec)
	}
	if res.Sheds > 0 || res.Retries > 0 {
		fmt.Printf("503 sheds:          %d (%.1f/s), honored with %d backed-off retries\n",
			res.Sheds, res.ShedsPerSec, res.Retries)
		fmt.Printf("  shed by proxy:    %d (503 carried Via)\n", res.ProxySheds)
		fmt.Printf("  shed by backend:  %d\n", res.BackendSheds)
	}
	if proxy != nil {
		fmt.Printf("chaos link stats:\n%s\n", indent(proxy.Stats().String(), "  "))
	}
	if *adminAddr != "" {
		dumpAdminStats(*adminAddr)
	}
}

func indent(s, prefix string) string {
	return prefix + strings.ReplaceAll(s, "\n", "\n"+prefix)
}

// startAdminScraper launches a goroutine that periodically scrapes the
// server's /stats admin endpoint and prints one compact line per scrape:
// the per-phase p95s plus open connections, the mid-ramp decomposition of
// the latency the client side measures as one number. Returns a stop
// function (no-op when addr is empty).
func startAdminScraper(addr string, every time.Duration) func() {
	if addr == "" || every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			vals, err := scrapeStats(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "admin scrape: %v\n", err)
				continue
			}
			fmt.Printf("admin: open=%s p95 queue-wait=%ss parse=%ss handler=%ss write=%ss dropped=%s\n",
				vals["trace.open"], vals["phase.queue_wait.p95"], vals["phase.parse.p95"],
				vals["phase.handler.p95"], vals["phase.write.p95"], vals["trace.dropped"])
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// scrapeStats fetches and parses one /stats document into name → value
// (values kept as strings; the format is "name value" per line).
func scrapeStats(addr string) (map[string]string, error) {
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get("http://" + addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	vals := make(map[string]string)
	for _, line := range strings.Split(string(body), "\n") {
		if name, val, ok := strings.Cut(line, " "); ok {
			vals[name] = val
		}
	}
	return vals, nil
}

// dumpAdminStats prints the server's own final counters next to the
// client-side measurements, with the phase quantiles rendered in a
// readable block.
func dumpAdminStats(addr string) {
	vals, err := scrapeStats(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "admin scrape: %v\n", err)
		return
	}
	fmt.Printf("server stats (%s):\n", addr)
	for _, f := range []string{"server.accepted", "server.replies", "server.shed", "trace.open", "trace.dropped"} {
		if v, ok := vals[f]; ok {
			fmt.Printf("  %-22s %s\n", f, v)
		}
	}
	for _, ph := range []string{"queue_wait", "parse", "handler", "write"} {
		count := vals["phase."+ph+".count"]
		if count == "" {
			continue
		}
		p50, _ := strconv.ParseFloat(vals["phase."+ph+".p50"], 64)
		p95, _ := strconv.ParseFloat(vals["phase."+ph+".p95"], 64)
		p99, _ := strconv.ParseFloat(vals["phase."+ph+".p99"], 64)
		fmt.Printf("  phase %-11s count=%-9s p50=%.4fs p95=%.4fs p99=%.4fs\n", ph, count, p50, p95, p99)
	}
}
