// Command wload is the httperf-equivalent load generator: it drives a
// live server (nioserver or mtserver) with SURGE-distributed sessions and
// prints the measurements the paper's figures are built from.
//
// Usage:
//
//	wload -addr 127.0.0.1:8080 -clients 50 -duration 30s
//
// The -objects and -seed flags must match the server's so the generator
// requests paths that exist.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/dist"
	"repro/internal/loadgen"
	"repro/internal/sesslog"
	"repro/internal/surge"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "server address")
	clients := flag.Int("clients", 50, "concurrent emulated clients (closed loop)")
	rate := flag.Float64("rate", 0, "open-loop session arrival rate/s (overrides -clients)")
	duration := flag.Duration("duration", 30*time.Second, "measurement window")
	warmup := flag.Duration("warmup", 3*time.Second, "warmup before measuring")
	timeout := flag.Duration("timeout", 10*time.Second, "client watchdog (httperf --timeout)")
	thinkScale := flag.Float64("think-scale", 1.0, "multiplier on SURGE OFF times")
	objects := flag.Int("objects", 2000, "SURGE object population size (match the server)")
	seed := flag.Uint64("seed", 7, "object-set seed (match the server)")
	genSeed := flag.Uint64("gen-seed", 99, "request-stream seed")
	record := flag.String("record", "", "record N sessions to this file and exit (see -record-sessions)")
	recordN := flag.Int("record-sessions", 100, "sessions to record with -record")
	replay := flag.String("replay", "", "replay sessions from this log (httperf --wsesslog)")
	revalidate := flag.Float64("revalidate", 0, "fraction of repeat requests carrying If-None-Match (0..1; needs a docroot-backed server for 304s)")
	flag.Parse()

	scfg := surge.DefaultConfig()
	scfg.NumObjects = *objects
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(*seed))
	if err != nil {
		log.Fatalf("building object set: %v", err)
	}
	if *record != "" {
		gen := surge.NewGenerator(scfg, set, dist.NewRNG(*genSeed))
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := sesslog.Write(f, sesslog.Record(gen, *recordN)); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d sessions to %s\n", *recordN, *record)
		return
	}
	var sourceFactory func(int, *dist.RNG) surge.SessionSource
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		sessions, err := sesslog.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d sessions (%d requests, %d bytes) from %s\n",
			len(sessions), sesslog.TotalRequests(sessions), sesslog.TotalBytes(sessions), *replay)
		sourceFactory = func(client int, _ *dist.RNG) surge.SessionSource {
			return sesslog.NewReplayer(sessions, client)
		}
	}

	if *rate > 0 {
		*clients = 0
	}
	res, err := loadgen.Run(loadgen.Options{
		Addr:               *addr,
		Clients:            *clients,
		SessionRate:        *rate,
		Warmup:             *warmup,
		Duration:           *duration,
		Timeout:            *timeout,
		ThinkScale:         *thinkScale,
		Seed:               *genSeed,
		Workload:           scfg,
		Objects:            set,
		SourceFactory:      sourceFactory,
		RevalidateFraction: *revalidate,
	})
	if err != nil {
		log.Fatalf("load run: %v", err)
	}
	fmt.Printf("clients:            %d\n", res.Clients)
	fmt.Printf("duration:           %v\n", res.Duration)
	fmt.Printf("replies:            %d (%.1f/s)\n", res.Replies, res.RepliesPerSec)
	fmt.Printf("response time mean: %.4fs  p50: %.4fs  p90: %.4fs  p95: %.4fs  p99: %.4fs\n",
		res.MeanResponseSec, res.P50ResponseSec, res.P90ResponseSec, res.P95ResponseSec, res.P99ResponseSec)
	fmt.Printf("connect time mean:  %.4fs  p90: %.4fs\n", res.MeanConnectSec, res.P90ConnectSec)
	fmt.Printf("client timeouts:    %d (%.2f/s)\n", res.TimeoutErrors, res.TimeoutErrPerSec)
	fmt.Printf("connection resets:  %d (%.2f/s)\n", res.ResetErrors, res.ResetErrPerSec)
	fmt.Printf("bandwidth:          %.2f MB/s\n", res.BandwidthBps/1e6)
	fmt.Printf("sessions completed: %d\n", res.Sessions)
	if *revalidate > 0 {
		fmt.Printf("304 not modified:   %d (%.1f/s)\n", res.NotModified, res.NotModifiedPerSec)
	}
	if res.Sheds > 0 || res.Retries > 0 {
		fmt.Printf("503 sheds:          %d (%.1f/s), honored with %d backed-off retries\n",
			res.Sheds, res.ShedsPerSec, res.Retries)
	}
}
