// niovet runs this repository's custom static-analysis suite
// (internal/analysis) over the syscall-heavy hot paths.
//
// Two modes:
//
//   - Standalone: `go run ./cmd/niovet ./...` loads and type-checks
//     the named packages (build-cache export data, no external
//     dependencies) and prints findings. Exit status 1 when any
//     analyzer reports.
//
//   - Vettool: `go vet -vettool=$(go env GOPATH)/bin/niovet ./...`
//     (after `go build -o` somewhere). cmd/go drives the tool through
//     the unitchecker protocol — a -V=full version handshake, then one
//     .cfg JSON file per package describing sources and export data.
//
// Use -run to restrict to a comma-separated subset of analyzers.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	// The unitchecker handshakes arrive before flag parsing.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			printVersion()
			return
		case os.Args[1] == "-flags":
			// cmd/go asks for the tool's analyzer flags; we expose none.
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVetUnit(os.Args[1]))
		}
	}

	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: niovet [-run name,...] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*runFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "niovet: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(analyzers, patterns))
}

// printVersion implements the -V=full handshake: cmd/go keys its vet
// result cache on this line, so it must change when the tool does —
// hash the executable itself.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("niovet version %x\n", h.Sum(nil)[:16])
}

func selectAnalyzers(runFlag string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if runFlag == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runFlag, ",") {
		a := byName[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runStandalone loads packages itself and reports to stdout.
func runStandalone(analyzers []*analysis.Analyzer, patterns []string) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "niovet: %v\n", err)
		return 2
	}
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "niovet: %v\n", err)
		return 2
	}
	findings := 0
	for _, p := range pkgs {
		findings += runPackage(os.Stdout, analyzers, p.Fset, p)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "niovet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// runPackage applies the analyzers to one loaded package, printing
// sorted diagnostics; returns the finding count.
func runPackage(w io.Writer, analyzers []*analysis.Analyzer, fset *token.FileSet, p *load.Package) int {
	type finding struct {
		pos  token.Position
		msg  string
		name string
	}
	var all []finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    p.Files,
			Pkg:      p.Pkg,
			Info:     p.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			all = append(all, finding{fset.Position(d.Pos), d.Message, pass.Analyzer.Name})
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "niovet: %s on %s: %v\n", a.Name, p.ImportPath, err)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		return all[i].pos.Offset < all[j].pos.Offset
	})
	for _, f := range all {
		fmt.Fprintf(w, "%s: %s [%s]\n", f.pos, f.msg, f.name)
	}
	return len(all)
}

// vetConfig is the subset of the .cfg JSON cmd/go hands a vettool.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit checks one package unit under `go vet -vettool=`.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "niovet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "niovet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The driver requires the facts file to exist even though this
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("niovet\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "niovet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	exp := load.NewExports(cfg.PackageFile, cfg.ImportMap)
	fset := token.NewFileSet()
	p, err := load.Check(fset, exp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "niovet: %v\n", err)
		return 2
	}
	if runPackage(os.Stderr, analysis.All(), fset, p) > 0 {
		return 2
	}
	return 0
}
