// Package surge implements the SURGE web-workload model of Barford &
// Crovella ("Generating Representative Web Workloads for Network and
// Server Performance Evaluation", SIGMETRICS 1998) — the model the paper's
// httperf runs were configured from. It produces:
//
//   - an object set with heavy-tailed file sizes (lognormal body, Pareto
//     tail) and Zipf popularity;
//   - per-client request streams structured as sessions: a page request
//     followed by embedded-object requests separated by "active OFF"
//     times, then an "inactive OFF" (think) time before the next page;
//   - sessions of a configurable mean length (the paper uses ≈6.5
//     requests per session).
//
// All sampling is driven by an explicit dist.RNG, so identical seeds give
// identical workloads across runs, machines and both execution substrates
// (the live load generator and the simulator).
package surge

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// Config collects the distribution parameters of the SURGE model. The
// zero value is not useful; start from DefaultConfig.
type Config struct {
	// NumObjects is the size of the server's file population.
	NumObjects int
	// SizeBody is the file-size distribution for the body (small files).
	SizeBody dist.Sampler
	// SizeTail is the heavy-tailed file-size distribution.
	SizeTail dist.Sampler
	// TailFraction is the probability a file size is drawn from SizeTail.
	TailFraction float64
	// PopularityExponent is the Zipf exponent for object popularity.
	PopularityExponent float64
	// EmbeddedRefs is the distribution of embedded objects per page.
	EmbeddedRefs dist.Sampler
	// ActiveOff is the distribution of intra-page gaps (seconds).
	ActiveOff dist.Sampler
	// InactiveOff is the distribution of think times between pages
	// (seconds).
	InactiveOff dist.Sampler
	// RequestsPerSession is the mean total requests in one user session
	// over one persistent connection (the paper uses 6.5).
	RequestsPerSession float64
	// MaxObjectBytes caps a single reply size so that one pathological
	// tail draw cannot dominate a finite benchmark run.
	MaxObjectBytes int64
}

// DefaultConfig returns the SURGE model with the size parameters scaled to
// the paper's observation that its httperf runs moved <40 MB/s at ~2500
// replies/s, i.e. a mean reply of roughly 15 KB: lognormal body (mean
// ≈7.8 KB), Pareto tail (60 KB scale, alpha 1.3) with 3% tail mass,
// Zipf(1.0) popularity, Pareto(1, 2.43) embedded references,
// Weibull(1.46, 0.382) active OFF, Pareto(1, 1.5) inactive OFF; 6.5
// requests/session as in the paper's httperf setup.
func DefaultConfig() Config {
	return Config{
		NumObjects:         2000,
		SizeBody:           dist.Lognormal{Mu: 8.35, Sigma: 1.1},
		SizeTail:           dist.Pareto{K: 60000, Alpha: 1.3},
		TailFraction:       0.03,
		PopularityExponent: 1.0,
		EmbeddedRefs:       dist.Pareto{K: 1, Alpha: 2.43},
		ActiveOff:          dist.Weibull{Scale: 1.46, Shape: 0.382},
		InactiveOff:        dist.Pareto{K: 1, Alpha: 1.5},
		RequestsPerSession: 6.5,
		MaxObjectBytes:     2 << 20, // 2 MiB cap keeps runs finite
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumObjects <= 0:
		return fmt.Errorf("surge: NumObjects must be positive, got %d", c.NumObjects)
	case c.SizeBody == nil || c.SizeTail == nil || c.EmbeddedRefs == nil ||
		c.ActiveOff == nil || c.InactiveOff == nil:
		return fmt.Errorf("surge: all distributions must be set")
	case c.TailFraction < 0 || c.TailFraction > 1:
		return fmt.Errorf("surge: TailFraction %v outside [0,1]", c.TailFraction)
	case c.PopularityExponent < 0:
		return fmt.Errorf("surge: negative PopularityExponent %v", c.PopularityExponent)
	case c.RequestsPerSession < 1:
		return fmt.Errorf("surge: RequestsPerSession %v < 1", c.RequestsPerSession)
	case c.MaxObjectBytes <= 0:
		return fmt.Errorf("surge: MaxObjectBytes must be positive, got %d", c.MaxObjectBytes)
	}
	return nil
}

// Object is one server file.
type Object struct {
	// ID is the object index; the canonical URL path is Path().
	ID int
	// Size is the reply body size in bytes.
	Size int64
}

// Path returns the canonical URL path of the object.
func (o Object) Path() string { return fmt.Sprintf("/obj/%d", o.ID) }

// ObjectSet is the synthetic server file population: sizes plus a Zipf
// popularity order. It is immutable after construction and safe for
// concurrent readers.
type ObjectSet struct {
	objects []Object
	zipf    *dist.Zipf
	// byRank[r] is the object index with popularity rank r. SURGE draws
	// a rank, then maps rank -> object so size and popularity are
	// independent, as observed in real traces.
	byRank []int
	total  int64
}

// BuildObjectSet samples NumObjects file sizes and a popularity
// permutation using rng.
func BuildObjectSet(cfg Config, rng *dist.RNG) (*ObjectSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &ObjectSet{
		objects: make([]Object, cfg.NumObjects),
		zipf:    dist.NewZipf(cfg.NumObjects, cfg.PopularityExponent),
		byRank:  rng.Perm(cfg.NumObjects),
	}
	for i := range s.objects {
		var size float64
		if rng.Float64() < cfg.TailFraction {
			size = cfg.SizeTail.Sample(rng)
		} else {
			size = cfg.SizeBody.Sample(rng)
		}
		b := int64(math.Ceil(size))
		if b < 64 {
			b = 64 // floor: even an empty page has headers' worth of body
		}
		if b > cfg.MaxObjectBytes {
			b = cfg.MaxObjectBytes
		}
		s.objects[i] = Object{ID: i, Size: b}
		s.total += b
	}
	return s, nil
}

// Len returns the number of objects.
func (s *ObjectSet) Len() int { return len(s.objects) }

// Object returns object i.
func (s *ObjectSet) Object(i int) Object { return s.objects[i] }

// TotalBytes returns the sum of all object sizes.
func (s *ObjectSet) TotalBytes() int64 { return s.total }

// MeanBytes returns the mean object size.
func (s *ObjectSet) MeanBytes() float64 { return float64(s.total) / float64(len(s.objects)) }

// Pick draws one object according to Zipf popularity.
func (s *ObjectSet) Pick(rng *dist.RNG) Object {
	return s.objects[s.byRank[s.zipf.Rank(rng)]]
}

// Request is one HTTP request in a generated stream.
type Request struct {
	// Object is the target.
	Object Object
	// Gap is the time to wait *before* issuing this request, measured
	// from the completion of the previous one (0 for pipelined and
	// first-in-session requests).
	Gap float64
	// Pipelined marks requests that are written back-to-back with their
	// predecessor without waiting for its response, as httperf does for
	// embedded objects.
	Pipelined bool
}

// Session is the unit of client activity over one persistent connection:
// a list of requests and a final think time before the next session.
type Session struct {
	Requests []Request
	// ThinkAfter is the inactive OFF time after the session completes.
	ThinkAfter float64
}

// TotalBytes returns the response payload the session will transfer.
func (s Session) TotalBytes() int64 {
	var n int64
	for _, r := range s.Requests {
		n += r.Object.Size
	}
	return n
}

// SessionSource produces the session stream for one emulated client.
// surge.Generator synthesizes sessions from the SURGE model;
// sesslog.Replayer replays recorded ones.
type SessionSource interface {
	NextSession() Session
}

// Generator emits sessions for one emulated client. Generators are not
// safe for concurrent use; give each client its own (use rng.Split()).
type Generator struct {
	cfg Config
	set *ObjectSet
	rng *dist.RNG
}

// NewGenerator returns a session generator over the given object set.
func NewGenerator(cfg Config, set *ObjectSet, rng *dist.RNG) *Generator {
	return &Generator{cfg: cfg, set: set, rng: rng}
}

// NextSession produces the next session: pages with embedded objects
// until a per-session target length (drawn with mean RequestsPerSession)
// is met, matching httperf's "--wsess=N,6.5,X" structure. At least one
// request is always produced.
func (g *Generator) NextSession() Session {
	// httperf draws the number of calls per session from a distribution
	// around the configured mean; an exponential with a floor of one call
	// reproduces that variability.
	target := int(math.Round(dist.Exponential{MeanVal: g.cfg.RequestsPerSession - 1}.Sample(g.rng))) + 1
	var reqs []Request
	for len(reqs) < target {
		page := Request{Object: g.set.Pick(g.rng)}
		if len(reqs) > 0 {
			page.Gap = g.cfg.ActiveOff.Sample(g.rng)
		}
		reqs = append(reqs, page)
		nEmb := int(g.cfg.EmbeddedRefs.Sample(g.rng)) - 1 // Pareto(1,·) counts the page itself
		for i := 0; i < nEmb && len(reqs) < target; i++ {
			reqs = append(reqs, Request{
				Object:    g.set.Pick(g.rng),
				Pipelined: true,
			})
		}
	}
	return Session{
		Requests:   reqs,
		ThinkAfter: g.cfg.InactiveOff.Sample(g.rng),
	}
}

// Stats summarises a generated workload sample for validation and the
// surgegen tool.
type Stats struct {
	Sessions        int
	Requests        int
	Bytes           int64
	MeanSessionLen  float64
	MeanObjectBytes float64
	MeanThink       float64
}

// SampleStats runs the generator for n sessions and accumulates stats.
func SampleStats(g *Generator, n int) Stats {
	var st Stats
	var think float64
	for i := 0; i < n; i++ {
		s := g.NextSession()
		st.Sessions++
		st.Requests += len(s.Requests)
		st.Bytes += s.TotalBytes()
		think += s.ThinkAfter
	}
	if st.Sessions > 0 {
		st.MeanSessionLen = float64(st.Requests) / float64(st.Sessions)
		st.MeanThink = think / float64(st.Sessions)
	}
	if st.Requests > 0 {
		st.MeanObjectBytes = float64(st.Bytes) / float64(st.Requests)
	}
	return st
}
