package surge

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

func buildSet(t *testing.T, seed uint64) (*ObjectSet, Config, *dist.RNG) {
	t.Helper()
	cfg := DefaultConfig()
	rng := dist.NewRNG(seed)
	set, err := BuildObjectSet(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return set, cfg, rng
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumObjects = 0 },
		func(c *Config) { c.SizeBody = nil },
		func(c *Config) { c.TailFraction = 1.5 },
		func(c *Config) { c.PopularityExponent = -1 },
		func(c *Config) { c.RequestsPerSession = 0.5 },
		func(c *Config) { c.MaxObjectBytes = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestObjectSetDeterministic(t *testing.T) {
	a, _, _ := buildSet(t, 99)
	b, _, _ := buildSet(t, 99)
	if a.TotalBytes() != b.TotalBytes() {
		t.Fatal("same seed produced different object sets")
	}
	for i := 0; i < a.Len(); i++ {
		if a.Object(i).Size != b.Object(i).Size {
			t.Fatalf("object %d sizes differ", i)
		}
	}
}

func TestObjectSizesBoundedAndHeavyTailed(t *testing.T) {
	set, cfg, _ := buildSet(t, 1)
	var over100k int
	for i := 0; i < set.Len(); i++ {
		sz := set.Object(i).Size
		if sz < 64 || sz > cfg.MaxObjectBytes {
			t.Fatalf("object %d size %d outside [64, %d]", i, sz, cfg.MaxObjectBytes)
		}
		if sz > 100000 {
			over100k++
		}
	}
	// The Pareto tail guarantees a visible share of large files.
	if over100k < set.Len()/400 {
		t.Errorf("only %d/%d objects over 100 KB; tail missing", over100k, set.Len())
	}
	// Calibrated to the paper's ≈15 KB mean reply (see DefaultConfig).
	if m := set.MeanBytes(); m < 8000 || m > 30000 {
		t.Errorf("mean object size %v outside calibrated range", m)
	}
}

func TestPickFollowsPopularity(t *testing.T) {
	set, _, rng := buildSet(t, 2)
	counts := make(map[int]int)
	for i := 0; i < 100000; i++ {
		counts[set.Pick(rng).ID]++
	}
	// The most-drawn object should be drawn far more than the median one.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5000 { // Zipf(1) over 2000 objects gives ~12% to rank 0
		t.Errorf("hottest object drawn only %d/100000 times; popularity not skewed", max)
	}
}

func TestSessionMeanLength(t *testing.T) {
	set, cfg, rng := buildSet(t, 3)
	g := NewGenerator(cfg, set, rng.Split())
	st := SampleStats(g, 20000)
	// Paper: ~6.5 requests per session. Accept ±35% given the embedded
	// reference distribution's variance.
	if st.MeanSessionLen < 4.0 || st.MeanSessionLen > 9.0 {
		t.Errorf("mean session length %v, want ≈6.5", st.MeanSessionLen)
	}
	if st.Sessions != 20000 {
		t.Errorf("sessions = %d", st.Sessions)
	}
}

func TestSessionsAlwaysNonEmpty(t *testing.T) {
	set, cfg, rng := buildSet(t, 4)
	g := NewGenerator(cfg, set, rng.Split())
	for i := 0; i < 5000; i++ {
		s := g.NextSession()
		if len(s.Requests) == 0 {
			t.Fatal("empty session generated")
		}
		if s.Requests[0].Pipelined {
			t.Fatal("first request of a session marked pipelined")
		}
		if s.Requests[0].Gap != 0 {
			t.Fatal("first request of a session has a leading gap")
		}
		if s.ThinkAfter < 0 {
			t.Fatal("negative think time")
		}
	}
}

func TestPipelinedRequestsHaveNoGap(t *testing.T) {
	set, cfg, rng := buildSet(t, 5)
	g := NewGenerator(cfg, set, rng.Split())
	for i := 0; i < 2000; i++ {
		s := g.NextSession()
		for _, r := range s.Requests {
			if r.Pipelined && r.Gap != 0 {
				t.Fatalf("pipelined request carries gap %v", r.Gap)
			}
			if r.Gap < 0 {
				t.Fatalf("negative gap %v", r.Gap)
			}
		}
	}
}

func TestSessionBytesMatchObjects(t *testing.T) {
	set, cfg, rng := buildSet(t, 6)
	g := NewGenerator(cfg, set, rng.Split())
	s := g.NextSession()
	var want int64
	for _, r := range s.Requests {
		want += r.Object.Size
	}
	if got := s.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
}

func TestObjectPath(t *testing.T) {
	o := Object{ID: 42, Size: 100}
	if o.Path() != "/obj/42" {
		t.Fatalf("Path = %q", o.Path())
	}
}

func TestThinkTimesHeavyTailed(t *testing.T) {
	set, cfg, rng := buildSet(t, 7)
	g := NewGenerator(cfg, set, rng.Split())
	st := SampleStats(g, 20000)
	// Pareto(1, 1.5) has mean 3; sample means of heavy tails are noisy,
	// accept a broad window but reject obviously wrong scales.
	if st.MeanThink < 1.5 || st.MeanThink > 10 {
		t.Errorf("mean think time %v, want ≈3", st.MeanThink)
	}
}

// Property: any valid seed yields sessions whose request objects are all
// members of the set and whose sizes respect the configured cap.
func TestQuickSessionsWellFormed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumObjects = 100
	base := dist.NewRNG(1000)
	set, err := BuildObjectSet(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		g := NewGenerator(cfg, set, dist.NewRNG(seed))
		for i := 0; i < 20; i++ {
			s := g.NextSession()
			if len(s.Requests) == 0 {
				return false
			}
			for _, r := range s.Requests {
				if r.Object.ID < 0 || r.Object.ID >= cfg.NumObjects {
					return false
				}
				if r.Object.Size <= 0 || r.Object.Size > cfg.MaxObjectBytes {
					return false
				}
				if math.IsNaN(r.Gap) || r.Gap < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkNextSession(b *testing.B) {
	cfg := DefaultConfig()
	rng := dist.NewRNG(1)
	set, err := BuildObjectSet(cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	g := NewGenerator(cfg, set, rng.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextSession()
	}
}
