package overload

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the second self-healing layer: a heartbeat watchdog for
// the servers' execution loops. Each loop registers a Heartbeat and
// brackets its *work* — not its blocking waits — with Begin/End: the
// reactor marks the span from an epoll wakeup to the next wait, the
// thread pool marks each request it handles. A loop that is busy on one
// span longer than the configured interval is wedged (an injected wedge
// fault, a handler stuck on a dead dependency, a runaway request), and
// the watchdog flags it: a counter ticks, the stall's age is reported,
// and an optional callback fires — while a loop parked in epoll_wait or
// a keep-alive read is, correctly, never flagged.

// WatchdogConfig parameterizes a Watchdog.
type WatchdogConfig struct {
	// Interval is the stall threshold: a heartbeat busy on one Begin/End
	// span for longer than this is flagged. Required.
	Interval time.Duration
	// Every is the check period (default Interval/4, at least 1ms).
	Every time.Duration
	// OnStall, when non-nil, is invoked once per stall episode, from the
	// watchdog's goroutine, as a loop transitions into the stalled state.
	// Keep it fast; it runs inline with the checks.
	OnStall func(Stall)
}

// Stall describes one wedged loop.
type Stall struct {
	// Name is the heartbeat's registered name (e.g. "core-worker-0").
	Name string
	// Age is how long the loop has been busy on its current span.
	Age time.Duration
}

// WatchdogStats is a snapshot of the watchdog's counters.
type WatchdogStats struct {
	// Stalls counts transitions into the stalled state.
	Stalls int64
	// Recovered counts stalled loops that later completed their span.
	Recovered int64
	// Active is the number of loops currently stalled.
	Active int
	// MaxStallAge is the oldest age any stall has reached so far.
	MaxStallAge time.Duration
}

// Heartbeat is one monitored loop's handle. Begin marks the start of a
// unit of work, End its completion; both are single atomic stores, fit
// for per-event and per-request call sites.
type Heartbeat struct {
	name      string
	busySince atomic.Int64 // unix nanos; 0 = idle (blocked in a wait)
	stalled   atomic.Bool  // owned by the watchdog's check loop
}

// Begin marks the loop busy as of now. Calling Begin again without an
// intervening End simply re-stamps the span start (a beat).
func (h *Heartbeat) Begin() { h.busySince.Store(time.Now().UnixNano()) }

// End marks the loop idle: about to block waiting for more work.
func (h *Heartbeat) End() { h.busySince.Store(0) }

// Watchdog monitors registered heartbeats from a background goroutine.
// Create with NewWatchdog, release with Stop.
type Watchdog struct {
	cfg WatchdogConfig

	mu  sync.Mutex
	hbs []*Heartbeat

	stalls    atomic.Int64
	recovered atomic.Int64
	maxAge    atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewWatchdog validates the configuration and starts the check loop.
func NewWatchdog(cfg WatchdogConfig) (*Watchdog, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("overload: watchdog Interval must be positive, got %v", cfg.Interval)
	}
	if cfg.Every <= 0 {
		cfg.Every = cfg.Interval / 4
		if cfg.Every < time.Millisecond {
			cfg.Every = time.Millisecond
		}
	}
	w := &Watchdog{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go w.loop()
	return w, nil
}

// Register adds a named loop and returns its Heartbeat. Safe to call
// while the watchdog is running (servers register at Start).
func (w *Watchdog) Register(name string) *Heartbeat {
	h := &Heartbeat{name: name}
	w.mu.Lock()
	w.hbs = append(w.hbs, h)
	w.mu.Unlock()
	return h
}

// Stop halts the check loop. Safe to call more than once.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Stats returns a snapshot of the watchdog's counters.
func (w *Watchdog) Stats() WatchdogStats {
	return WatchdogStats{
		Stalls:      w.stalls.Load(),
		Recovered:   w.recovered.Load(),
		Active:      len(w.Stalled()),
		MaxStallAge: time.Duration(w.maxAge.Load()),
	}
}

// Stalled returns the currently wedged loops with their stall ages,
// computed directly from the heartbeats (not the check loop's cadence).
func (w *Watchdog) Stalled() []Stall {
	now := time.Now().UnixNano()
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []Stall
	for _, h := range w.hbs {
		if bs := h.busySince.Load(); bs != 0 && now-bs > int64(w.cfg.Interval) {
			out = append(out, Stall{Name: h.name, Age: time.Duration(now - bs)})
		}
	}
	return out
}

func (w *Watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Every)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.check(time.Now().UnixNano())
		}
	}
}

func (w *Watchdog) check(now int64) {
	w.mu.Lock()
	hbs := w.hbs
	w.mu.Unlock()
	for _, h := range hbs {
		bs := h.busySince.Load()
		wedged := bs != 0 && now-bs > int64(w.cfg.Interval)
		switch {
		case wedged:
			age := time.Duration(now - bs)
			if int64(age) > w.maxAge.Load() {
				w.maxAge.Store(int64(age))
			}
			if h.stalled.CompareAndSwap(false, true) {
				w.stalls.Add(1)
				if w.cfg.OnStall != nil {
					w.cfg.OnStall(Stall{Name: h.name, Age: age})
				}
			}
		case h.stalled.Load():
			h.stalled.Store(false)
			w.recovered.Add(1)
		}
	}
}
