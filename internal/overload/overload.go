// Package overload is the feedback-driven robustness layer shared by
// both live servers: an adaptive admission controller that holds a
// response-time target by shedding excess connections (this file), and a
// heartbeat watchdog that detects wedged event loops and stuck pool
// workers (watchdog.go).
//
// The controller replaces hand-tuned static connection caps with the
// SEDA idea: measure the latency the stage is actually delivering and
// adjust the admission rate against a target. Admission is a token
// bucket whose fill rate adapts by AIMD — additive increase while the
// measured p95 response time sits at or under the target, multiplicative
// decrease the moment it overshoots — so the server converges on its
// real capacity under whatever mixture of request costs the clients
// offer, instead of the operator guessing a MaxConns per scenario.
// Shed clients receive a 503 with Retry-After, pushing the excess into
// the future instead of into a queue.
package overload

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Config parameterizes a Controller.
type Config struct {
	// TargetP95 is the response-time goal: while the measured p95 of
	// Observe samples stays at or below it, the admission rate rises
	// additively; when it overshoots, the rate is cut multiplicatively.
	// Required.
	TargetP95 time.Duration
	// InitialRate is the starting admission rate in connections/second
	// (default 100).
	InitialRate float64
	// MinRate and MaxRate clamp the adapted rate (defaults 1 and 1e6).
	// MinRate > 0 guarantees the server never latches shut: probes keep
	// trickling in, so recovery is discovered without operator action.
	MinRate, MaxRate float64
	// Increase is the additive rate step per adaptation interval, in
	// connections/second (default InitialRate/5, at least 1).
	Increase float64
	// DecreaseFactor is the multiplicative cut applied when p95 exceeds
	// the target, in (0, 1) (default 0.7).
	DecreaseFactor float64
	// AdaptEvery is the adaptation interval: samples are collected for
	// this long, then one AIMD step is taken (default 100ms).
	AdaptEvery time.Duration
	// Burst is the token-bucket depth — the largest instantaneous
	// connection burst admitted at once (default max(8, InitialRate/10)).
	Burst float64
	// MinSamples is the fewest Observe samples a window needs before its
	// p95 is trusted; thinner windows are treated as "under target" so an
	// idle or heavily-shedding server probes its way back up (default 5).
	MinSamples int
	// RetryAfter is the delay advertised to shed clients (default 1s;
	// rounded up to whole seconds on the wire, minimum 1).
	RetryAfter time.Duration
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

func (c *Config) fillDefaults() error {
	if c.TargetP95 <= 0 {
		return fmt.Errorf("overload: TargetP95 must be positive, got %v", c.TargetP95)
	}
	if c.InitialRate <= 0 {
		c.InitialRate = 100
	}
	if c.MinRate <= 0 {
		c.MinRate = 1
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 1e6
	}
	if c.MinRate > c.MaxRate {
		return fmt.Errorf("overload: MinRate %v above MaxRate %v", c.MinRate, c.MaxRate)
	}
	if c.Increase <= 0 {
		c.Increase = c.InitialRate / 5
		if c.Increase < 1 {
			c.Increase = 1
		}
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		if c.DecreaseFactor != 0 {
			return fmt.Errorf("overload: DecreaseFactor %v outside (0, 1)", c.DecreaseFactor)
		}
		c.DecreaseFactor = 0.7
	}
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = 100 * time.Millisecond
	}
	if c.Burst <= 0 {
		c.Burst = c.InitialRate / 10
		if c.Burst < 8 {
			c.Burst = 8
		}
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return nil
}

// Stats is a snapshot of the controller's state and counters.
type Stats struct {
	// Admitted and Shed count Admit outcomes.
	Admitted, Shed int64
	// Rate is the current admission rate in connections/second.
	Rate float64
	// LastP95 is the p95 of the most recent concluded window with enough
	// samples (0 before the first such window).
	LastP95 time.Duration
	// Increases and Decreases count AIMD steps taken in each direction.
	Increases, Decreases int64
}

// maxWindowSamples bounds the per-window sample buffer; a window denser
// than this keeps its first samples, which is plenty for a p95.
const maxWindowSamples = 4096

// Controller is the adaptive admission controller. Servers call Admit
// on every accept and Observe with each measured response time; both
// are cheap and safe for concurrent use. All adaptation happens lazily
// inside those calls — there is no background goroutine to manage.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	tokens   float64
	rate     float64
	last     time.Time // last token refill
	winStart time.Time // current adaptation window start
	samples  []float64 // response times (seconds) in the current window

	admitted, shed       int64
	increases, decreases int64
	lastP95              float64
}

// NewController validates the configuration and returns a ready
// controller with a full token bucket.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	now := cfg.Now()
	return &Controller{
		cfg:      cfg,
		tokens:   cfg.Burst,
		rate:     cfg.InitialRate,
		last:     now,
		winStart: now,
		samples:  make([]float64, 0, 256),
	}, nil
}

// Admit reports whether a new connection should be accepted. A false
// return means the caller should shed it (503 + Retry-After + close).
func (c *Controller) Admit() bool {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(now)
	if c.tokens >= 1 {
		c.tokens--
		c.admitted++
		return true
	}
	c.shed++
	return false
}

// Observe records one measured response time (accept to first response
// delivered, on both servers) — the feedback signal the AIMD loop
// steers by. Shed connections produce no sample, so the controller sees
// only the latency of the load it chose to admit.
func (c *Controller) Observe(d time.Duration) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(now)
	if len(c.samples) < maxWindowSamples {
		c.samples = append(c.samples, d.Seconds())
	}
}

// RetryAfterSeconds returns the whole-second Retry-After value shed
// responses should advertise (always at least 1).
func (c *Controller) RetryAfterSeconds() int {
	s := int((c.cfg.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Stats returns a snapshot of the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Admitted:  c.admitted,
		Shed:      c.shed,
		Rate:      c.rate,
		LastP95:   time.Duration(c.lastP95 * float64(time.Second)),
		Increases: c.increases,
		Decreases: c.decreases,
	}
}

// advance refills the token bucket and, once the adaptation interval
// has elapsed, takes one AIMD step. Caller holds mu.
func (c *Controller) advance(now time.Time) {
	if dt := now.Sub(c.last).Seconds(); dt > 0 {
		c.tokens += c.rate * dt
		if c.tokens > c.cfg.Burst {
			c.tokens = c.cfg.Burst
		}
		c.last = now
	}
	if now.Sub(c.winStart) < c.cfg.AdaptEvery {
		return
	}
	// One AIMD step per elapsed window; no catch-up for idle gaps.
	if len(c.samples) >= c.cfg.MinSamples {
		p95 := percentile(c.samples, 0.95)
		c.lastP95 = p95
		if p95 > c.cfg.TargetP95.Seconds() {
			c.rate *= c.cfg.DecreaseFactor
			if c.rate < c.cfg.MinRate {
				c.rate = c.cfg.MinRate
			}
			c.decreases++
			c.samples = c.samples[:0]
			c.winStart = now
			return
		}
	}
	// Under target (or too few samples to say otherwise): probe upward.
	c.rate += c.cfg.Increase
	if c.rate > c.cfg.MaxRate {
		c.rate = c.cfg.MaxRate
	}
	c.increases++
	c.samples = c.samples[:0]
	c.winStart = now
}

// percentile returns the q-quantile of samples by sorting a copy. Only
// called once per adaptation window, off the admission hot path.
func percentile(samples []float64, q float64) float64 {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
