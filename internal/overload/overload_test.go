package overload

import (
	"testing"
	"time"
)

// fakeClock is an injectable deterministic clock.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestController(t *testing.T, cfg Config) (*Controller, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg.Now = clk.now
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, clk
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(Config{}); err == nil {
		t.Fatal("zero TargetP95 accepted")
	}
	if _, err := NewController(Config{TargetP95: time.Second, DecreaseFactor: 1.5}); err == nil {
		t.Fatal("DecreaseFactor 1.5 accepted")
	}
	if _, err := NewController(Config{TargetP95: time.Second, MinRate: 10, MaxRate: 5}); err == nil {
		t.Fatal("MinRate above MaxRate accepted")
	}
}

func TestAdmitRespectsBurstAndRefill(t *testing.T) {
	c, clk := newTestController(t, Config{
		TargetP95:   100 * time.Millisecond,
		InitialRate: 100, // 1 token per 10ms
		Burst:       4,
	})
	// The bucket starts full: exactly Burst admits, then sheds.
	for i := 0; i < 4; i++ {
		if !c.Admit() {
			t.Fatalf("admit %d refused with a full bucket", i)
		}
	}
	if c.Admit() {
		t.Fatal("admit succeeded with an empty bucket and no elapsed time")
	}
	// 20ms at 100/s refills 2 tokens.
	clk.advance(20 * time.Millisecond)
	admitted := 0
	for i := 0; i < 5; i++ {
		if c.Admit() {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after a 2-token refill, want 2", admitted)
	}
	st := c.Stats()
	if st.Admitted != 6 || st.Shed != 4 {
		t.Fatalf("stats admitted=%d shed=%d, want 6/4", st.Admitted, st.Shed)
	}
}

func TestAIMDDecreasesAboveTarget(t *testing.T) {
	c, clk := newTestController(t, Config{
		TargetP95:      100 * time.Millisecond,
		InitialRate:    100,
		Increase:       10,
		DecreaseFactor: 0.5,
		AdaptEvery:     100 * time.Millisecond,
		MinSamples:     5,
	})
	// A window of slow responses: p95 well above target.
	for i := 0; i < 20; i++ {
		c.Observe(300 * time.Millisecond)
	}
	clk.advance(150 * time.Millisecond)
	c.Observe(300 * time.Millisecond) // triggers the adaptation step
	st := c.Stats()
	if st.Decreases != 1 || st.Increases != 0 {
		t.Fatalf("steps = %d down / %d up, want 1/0", st.Decreases, st.Increases)
	}
	if st.Rate != 50 {
		t.Fatalf("rate = %v after a 0.5 cut of 100, want 50", st.Rate)
	}
	if st.LastP95 < 250*time.Millisecond {
		t.Fatalf("LastP95 = %v, want ~300ms", st.LastP95)
	}
}

func TestAIMDIncreasesAtOrBelowTarget(t *testing.T) {
	c, clk := newTestController(t, Config{
		TargetP95:   100 * time.Millisecond,
		InitialRate: 100,
		Increase:    10,
		AdaptEvery:  100 * time.Millisecond,
		MinSamples:  5,
	})
	for i := 0; i < 20; i++ {
		c.Observe(20 * time.Millisecond)
	}
	clk.advance(150 * time.Millisecond)
	c.Observe(20 * time.Millisecond)
	st := c.Stats()
	if st.Increases != 1 || st.Decreases != 0 {
		t.Fatalf("steps = %d up / %d down, want 1/0", st.Increases, st.Decreases)
	}
	if st.Rate != 110 {
		t.Fatalf("rate = %v after +10 on 100, want 110", st.Rate)
	}
}

func TestThinWindowProbesUpward(t *testing.T) {
	// Fewer than MinSamples (e.g. everything shed, or idle): the
	// controller must probe upward, not trust a thin p95 or freeze.
	c, clk := newTestController(t, Config{
		TargetP95:   100 * time.Millisecond,
		InitialRate: 100,
		Increase:    10,
		AdaptEvery:  100 * time.Millisecond,
		MinSamples:  5,
	})
	c.Observe(10 * time.Second) // one catastrophic sample is not a window
	clk.advance(150 * time.Millisecond)
	c.Admit()
	if st := c.Stats(); st.Rate != 110 || st.Decreases != 0 {
		t.Fatalf("rate = %v, decreases = %d; thin window must probe upward", st.Rate, st.Decreases)
	}
}

func TestRateClampsAtMinAndMax(t *testing.T) {
	c, clk := newTestController(t, Config{
		TargetP95:      100 * time.Millisecond,
		InitialRate:    10,
		MinRate:        8,
		MaxRate:        25,
		Increase:       10,
		DecreaseFactor: 0.1,
		AdaptEvery:     100 * time.Millisecond,
		MinSamples:     1,
	})
	// Two up steps would give 30; the cap holds it at 25.
	for step := 0; step < 2; step++ {
		c.Observe(time.Millisecond)
		clk.advance(150 * time.Millisecond)
		c.Admit()
	}
	if st := c.Stats(); st.Rate != 25 {
		t.Fatalf("rate = %v, want MaxRate clamp 25", st.Rate)
	}
	// A brutal cut (0.1×) would give 2.5; the floor holds it at 8.
	c.Observe(10 * time.Second)
	clk.advance(150 * time.Millisecond)
	c.Admit()
	if st := c.Stats(); st.Rate != 8 {
		t.Fatalf("rate = %v, want MinRate clamp 8", st.Rate)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	c, _ := newTestController(t, Config{TargetP95: time.Second, RetryAfter: 2500 * time.Millisecond})
	if s := c.RetryAfterSeconds(); s != 3 {
		t.Fatalf("RetryAfterSeconds = %d, want 3 (rounded up)", s)
	}
	c2, _ := newTestController(t, Config{TargetP95: time.Second})
	if s := c2.RetryAfterSeconds(); s != 1 {
		t.Fatalf("default RetryAfterSeconds = %d, want 1", s)
	}
}
