package overload

import (
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func TestWatchdogValidation(t *testing.T) {
	if _, err := NewWatchdog(WatchdogConfig{}); err == nil {
		t.Fatal("zero Interval accepted")
	}
}

func TestWatchdogFlagsAndRecovers(t *testing.T) {
	var mu sync.Mutex
	var calls []Stall
	wd, err := NewWatchdog(WatchdogConfig{
		Interval: 20 * time.Millisecond,
		OnStall: func(s Stall) {
			mu.Lock()
			calls = append(calls, s)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Stop()

	hb := wd.Register("loop-a")
	idle := wd.Register("loop-b") // never Begins: must never be flagged

	// An idle heartbeat and a fresh span are not stalls.
	hb.Begin()
	hb.End()
	time.Sleep(60 * time.Millisecond)
	if st := wd.Stats(); st.Stalls != 0 {
		t.Fatalf("%d stalls with no span outstanding", st.Stalls)
	}

	// A span held past the interval is one stall episode — flagged once,
	// with an age at least the interval.
	hb.Begin()
	waitFor(t, 2*time.Second, func() bool { return wd.Stats().Stalls == 1 }, "stall flag")
	stalled := wd.Stalled()
	if len(stalled) != 1 || stalled[0].Name != "loop-a" {
		t.Fatalf("Stalled() = %+v, want one entry for loop-a", stalled)
	}
	if stalled[0].Age < 20*time.Millisecond {
		t.Fatalf("stall age %v below the interval", stalled[0].Age)
	}
	time.Sleep(50 * time.Millisecond)
	if st := wd.Stats(); st.Stalls != 1 {
		t.Fatalf("stall flagged %d times for one episode", st.Stalls)
	}

	// Ending the span recovers it.
	hb.End()
	waitFor(t, 2*time.Second, func() bool { return wd.Stats().Recovered == 1 }, "recovery")
	if got := wd.Stalled(); len(got) != 0 {
		t.Fatalf("Stalled() = %+v after recovery, want empty", got)
	}
	if st := wd.Stats(); st.MaxStallAge < 20*time.Millisecond {
		t.Fatalf("MaxStallAge = %v, want >= interval", st.MaxStallAge)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || calls[0].Name != "loop-a" {
		t.Fatalf("OnStall calls = %+v, want exactly one for loop-a", calls)
	}
	_ = idle
}

func TestWatchdogBeatDefersStall(t *testing.T) {
	wd, err := NewWatchdog(WatchdogConfig{Interval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Stop()
	hb := wd.Register("beater")
	// A loop that keeps re-stamping Begin (beating) is never stalled.
	stop := time.Now().Add(120 * time.Millisecond)
	for time.Now().Before(stop) {
		hb.Begin()
		time.Sleep(2 * time.Millisecond)
	}
	if st := wd.Stats(); st.Stalls != 0 {
		t.Fatalf("beating loop flagged %d times", st.Stalls)
	}
}
