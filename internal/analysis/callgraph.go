package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// This file is the intra-package call-graph reachability engine the
// ownership and discipline analyzers (loopown, loopblock, detrand)
// share. It resolves:
//
//   - direct calls to package functions and methods;
//   - calls through interface methods, by finding every package type
//     whose method set satisfies the interface (how reactor handlers
//     and balancer policies are invoked);
//   - `go` statements and time.AfterFunc registrations as *spawn*
//     edges — the callee runs, but on a different goroutine;
//   - function literals, each its own node, connected to the
//     enclosing function synchronously (deferred and immediately
//     invoked literals run on the caller's goroutine) or by a spawn
//     edge when the literal is the target of `go`/AfterFunc;
//   - functions referenced as values without being called (method
//     values handed to other packages, e.g. admin HTTP handlers):
//     these *escape* — the package can no longer see where they run.
//
// Calls through function-typed variables are not resolved; the
// analyzers built on the graph are written so that unresolved edges
// err toward silence, not noise.

// cgNode is one function: a declaration or a function literal.
type cgNode struct {
	fn     *types.Func   // declared functions; nil for literals
	decl   *ast.FuncDecl // nil for literals
	lit    *ast.FuncLit  // nil for declarations
	name   string        // display name for diagnostics
	calls  map[*cgNode]bool
	spawns map[*cgNode]bool
	// escapes: the function's value leaves call position (stored,
	// passed, returned) so its execution context is unknowable.
	escapes bool
}

func (n *cgNode) edge(to *cgNode, spawn bool) {
	if to == nil {
		return
	}
	if spawn {
		n.spawns[to] = true
	} else {
		n.calls[to] = true
	}
}

// callGraph is the per-package graph plus the directive set.
type callGraph struct {
	pass      *Pass
	dirs      *directives
	declNodes map[*types.Func]*cgNode
	litNodes  map[*ast.FuncLit]*cgNode
	nodes     []*cgNode
}

func newNode(g *callGraph) *cgNode {
	n := &cgNode{calls: map[*cgNode]bool{}, spawns: map[*cgNode]bool{}}
	g.nodes = append(g.nodes, n)
	return n
}

// buildCallGraph constructs the graph for one pass. dirs may be nil,
// in which case directives are collected here.
func buildCallGraph(pass *Pass, dirs *directives) *callGraph {
	if dirs == nil {
		dirs = collectDirectives(pass)
	}
	g := &callGraph{
		pass:      pass,
		dirs:      dirs,
		declNodes: map[*types.Func]*cgNode{},
		litNodes:  map[*ast.FuncLit]*cgNode{},
	}
	// Nodes first, so forward references resolve.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := newNode(g)
			n.fn, n.decl, n.name = fn, fd, declName(fd)
			g.declNodes[fn] = n
		}
	}
	for _, f := range pass.Files {
		g.scanFile(f)
	}
	return g
}

// declName renders "recv.name" for methods, "name" for functions.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// scanFile walks one file adding edges and escape marks.
func (g *callGraph) scanFile(f *ast.File) {
	walkStack(f, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.addLit(n, stack)
		case *ast.CallExpr:
			g.addCall(n, stack)
		case *ast.Ident:
			g.markEscape(n, stack)
		}
	})
}

// ownerOf returns the node owning a position given its ancestor
// stack: the innermost function literal, else the enclosing
// declaration. nil for package-level expressions.
func (g *callGraph) ownerOf(stack []ast.Node) *cgNode {
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.FuncLit:
			if n := g.litNodes[a]; n != nil {
				return n
			}
		case *ast.FuncDecl:
			fn, _ := g.pass.Info.Defs[a.Name].(*types.Func)
			return g.declNodes[fn]
		}
	}
	return nil
}

// addLit creates the literal's node and links it to its encloser.
func (g *callGraph) addLit(lit *ast.FuncLit, stack []ast.Node) {
	node := newNode(g)
	node.lit = lit
	owner := g.ownerOf(stack)
	name := "func literal"
	if owner != nil {
		name = owner.name + ".func"
	}
	node.name = name
	g.litNodes[lit] = node
	if owner == nil {
		return
	}
	owner.edge(node, g.litSpawns(lit, stack))
}

// litSpawns decides whether the literal runs on a new goroutine: it
// is the target of a `go` statement, or registered as a timer
// callback with time.AfterFunc.
func (g *callGraph) litSpawns(lit *ast.FuncLit, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			if ast.Unparen(a.Fun) == ast.Expr(lit) {
				// Immediately invoked: runs synchronously unless the
				// call itself is the `go` target, handled one level up.
				if i > 0 {
					if gs, ok := stack[i-1].(*ast.GoStmt); ok && gs.Call == a {
						return true
					}
				}
				return false
			}
			return pkgFuncName(g.pass.Info, a, "time") == "AfterFunc"
		default:
			return false
		}
	}
	return false
}

// addCall resolves one call expression into graph edges.
func (g *callGraph) addCall(call *ast.CallExpr, stack []ast.Node) {
	owner := g.ownerOf(stack)
	if owner == nil || isConversion(g.pass.Info, call) {
		return
	}
	spawn := false
	if len(stack) > 0 {
		if gs, ok := stack[len(stack)-1].(*ast.GoStmt); ok && gs.Call == call {
			spawn = true
		}
	}
	for _, target := range g.resolveCallees(call) {
		owner.edge(target, spawn)
	}
	// time.AfterFunc(d, s.onTimer): a method value registered as a
	// timer callback is a spawn target.
	if pkgFuncName(g.pass.Info, call, "time") == "AfterFunc" && len(call.Args) == 2 {
		if fn := g.funcValue(call.Args[1]); fn != nil {
			owner.edge(fn, true)
		}
	}
}

// funcValue resolves an expression denoting a package function or
// method value to its node.
func (g *callGraph) funcValue(e ast.Expr) *cgNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := g.pass.Info.Uses[e].(*types.Func); ok {
			return g.declNodes[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := g.pass.Info.Uses[e.Sel].(*types.Func); ok {
			return g.declNodes[fn]
		}
	}
	return nil
}

// resolveCallees maps a call to the package functions it may invoke.
func (g *callGraph) resolveCallees(call *ast.CallExpr) []*cgNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := g.pass.Info.Uses[fun].(*types.Func); ok {
			if n := g.declNodes[fn]; n != nil {
				return []*cgNode{n}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := g.pass.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if iface := interfaceOf(sig.Recv().Type()); iface != nil {
				return g.implementations(iface, fn.Name())
			}
		}
		if n := g.declNodes[fn]; n != nil {
			return []*cgNode{n}
		}
	}
	return nil
}

// interfaceOf unwraps a receiver type to its interface, or nil for
// concrete receivers.
func interfaceOf(t types.Type) *types.Interface {
	if iface, ok := types.Unalias(t).Underlying().(*types.Interface); ok {
		return iface
	}
	return nil
}

// implementations finds every method named name on a package type
// whose method set satisfies iface — the static over-approximation of
// a dynamic dispatch through that interface.
func (g *callGraph) implementations(iface *types.Interface, name string) []*cgNode {
	var out []*cgNode
	scope := g.pass.Pkg.Scope()
	for _, tname := range scope.Names() {
		tn, ok := scope.Lookup(tname).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, g.pass.Pkg, name)
		if m, ok := obj.(*types.Func); ok {
			if n := g.declNodes[m]; n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// markEscape flags package functions referenced outside call
// position: their value leaves the package's sight, so they may run
// on any goroutine.
func (g *callGraph) markEscape(id *ast.Ident, stack []ast.Node) {
	fn, ok := g.pass.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	node := g.declNodes[fn]
	if node == nil {
		return
	}
	// Climb through the selector that carries this ident, then decide
	// whether the full expression is the operand of a call.
	expr := ast.Expr(id)
	i := len(stack) - 1
	for ; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectorExpr); ok && sel.Sel == id {
			expr = sel
			i--
		}
		break
	}
	for ; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			if ast.Unparen(a.Fun) == expr {
				return // call position: not an escape
			}
			node.escapes = true
			return
		default:
			node.escapes = true
			return
		}
	}
}

// loopAnnotated reports whether the node carries `//nio:loop`.
func (g *callGraph) loopAnnotated(n *cgNode) bool {
	return n.fn != nil && g.dirs.loopFuncs[n.fn]
}

// loopRoots returns the `//nio:loop` annotated declarations.
func (g *callGraph) loopRoots() []*cgNode {
	var out []*cgNode
	for _, n := range g.nodes {
		if g.loopAnnotated(n) {
			out = append(out, n)
		}
	}
	return out
}

// loopSet is everything that executes on an event-loop goroutine:
// synchronous closure over the loop roots. Spawn edges are followed
// only into other `//nio:loop` functions (a loop starting a loop).
func (g *callGraph) loopSet() map[*cgNode]bool {
	seen := map[*cgNode]bool{}
	var visit func(n *cgNode)
	visit = func(n *cgNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for c := range n.calls {
			visit(c)
		}
		for s := range n.spawns {
			if g.loopAnnotated(s) {
				visit(s)
			}
		}
	}
	for _, r := range g.loopRoots() {
		visit(r)
	}
	return seen
}

// offLoopRoots returns entry points that run off the event loop: `go`
// and timer spawn targets, escaped function values, and the
// package's exported API (callable from any goroutine). `//nio:loop`
// functions are never off-loop roots — a `go w.loop()` starts a loop,
// not a bystander.
func (g *callGraph) offLoopRoots() []*cgNode {
	rootSet := map[*cgNode]bool{}
	for _, n := range g.nodes {
		for s := range n.spawns {
			rootSet[s] = true
		}
		if n.escapes {
			rootSet[n] = true
		}
		if n.fn != nil && n.fn.Exported() {
			rootSet[n] = true
		}
	}
	var out []*cgNode
	for _, n := range g.nodes {
		if rootSet[n] && !g.loopAnnotated(n) {
			out = append(out, n)
		}
	}
	return out
}

// offLoopSet is everything reachable from off-loop entry points,
// following both call and spawn edges (a goroutine spawned from
// off-loop code is still off-loop), never entering `//nio:loop`
// functions.
func (g *callGraph) offLoopSet() map[*cgNode]bool {
	seen := map[*cgNode]bool{}
	var visit func(n *cgNode)
	visit = func(n *cgNode) {
		if seen[n] || g.loopAnnotated(n) {
			return
		}
		seen[n] = true
		for c := range n.calls {
			visit(c)
		}
		for s := range n.spawns {
			visit(s)
		}
	}
	for _, r := range g.offLoopRoots() {
		visit(r)
	}
	return seen
}

// reachFrom is the generic closure used by detrand and the engine
// tests: synchronous edges always, spawn edges when followSpawns.
func (g *callGraph) reachFrom(roots []*cgNode, followSpawns bool) map[*cgNode]bool {
	seen := map[*cgNode]bool{}
	var visit func(n *cgNode)
	visit = func(n *cgNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for c := range n.calls {
			visit(c)
		}
		if followSpawns {
			for s := range n.spawns {
				visit(s)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// nodeByName finds a declared function node by its display name —
// a test helper kept here so tests exercise the same lookup the
// analyzers use.
func (g *callGraph) nodeByName(name string) (*cgNode, error) {
	for _, n := range g.nodes {
		if n.decl != nil && n.name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("no function %q in call graph", name)
}
