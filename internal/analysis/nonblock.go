package analysis

import (
	"go/ast"
	"go/types"
)

// Nonblock checks that descriptors handed to a reactor Poller's
// register path were made non-blocking first. A blocking fd in a
// readiness loop is the whole architecture inverted: one laggard peer
// turns a level-triggered event into a stalled reactor thread, and
// every connection it owns stalls with it.
var Nonblock = &Analyzer{
	Name: "nonblock",
	Doc: "check that fds registered with a Poller (Add/Modify) are non-blocking: " +
		"created with SOCK_NONBLOCK/O_NONBLOCK or passed through " +
		"syscall.SetNonblock before registration; fds of unknown local " +
		"provenance are not judged",
	Run: runNonblock,
}

// blockingProducers maps syscall producers to the flag argument index
// and the flag identifier that makes the new fd non-blocking.
var blockingProducers = map[string]struct {
	flagArg int
	flag    string
}{
	"Socket":  {1, "SOCK_NONBLOCK"},
	"Accept4": {1, "SOCK_NONBLOCK"},
	"Open":    {1, "O_NONBLOCK"},
}

func runNonblock(pass *Pass) error {
	for _, fn := range funcDecls(pass) {
		checkNonblockFunc(pass, fn)
	}
	return nil
}

func checkNonblockFunc(pass *Pass, fn *ast.FuncDecl) {
	// Locals made non-blocking after the fact via syscall.SetNonblock.
	setNonblock := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pkgFuncName(pass.Info, call, "syscall") != "SetNonblock" || len(call.Args) != 2 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				setNonblock[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPollerRegister(pass, call) || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true // field or expression: provenance unknown, stay silent
		}
		obj := pass.Info.Uses[id]
		if obj == nil || setNonblock[obj] {
			return true
		}
		producer, flagExpr := localProducer(pass, fn, obj)
		if producer == "" {
			return true // parameter or untraced local: unknown provenance
		}
		spec := blockingProducers[producer]
		if flagExpr == nil || !mentionsSyscallConst(pass, flagExpr, spec.flag) {
			pass.Reportf(call.Pos(),
				"fd from syscall.%s without %s is registered with the poller while still blocking (add the flag or call syscall.SetNonblock first)",
				producer, spec.flag)
		}
		return true
	})
}

// isPollerRegister reports whether call is Add or Modify on a value of
// a type named Poller with an int fd as first parameter — the
// reactor's register path (matched structurally so fixtures can use a
// stub Poller).
func isPollerRegister(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Add" && sel.Sel.Name != "Modify") {
		return false
	}
	m, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv, _ := types.Unalias(derefType(sig.Recv().Type())).(*types.Named)
	if recv == nil || recv.Obj().Name() != "Poller" {
		return false
	}
	if sig.Params().Len() == 0 {
		return false
	}
	b, ok := types.Unalias(sig.Params().At(0).Type()).(*types.Basic)
	return ok && b.Kind() == types.Int
}

// localProducer finds the assignment in fn that binds obj from one of
// the audited syscall producers, returning the producer name and its
// flags argument. Empty when obj's origin is not a local audited
// producer call.
func localProducer(pass *Pass, fn *ast.FuncDecl, obj types.Object) (string, ast.Expr) {
	var name string
	var flags ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		producer := pkgFuncName(pass.Info, call, "syscall")
		spec, audited := blockingProducers[producer]
		if !audited {
			return true
		}
		first, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		bound := pass.Info.Defs[first]
		if bound == nil {
			bound = pass.Info.Uses[first]
		}
		if bound != obj {
			return true
		}
		name = producer
		if spec.flagArg < len(call.Args) {
			flags = call.Args[spec.flagArg]
		}
		return true
	})
	return name, flags
}

// mentionsSyscallConst reports whether the syscall constant name
// appears anywhere in expr (e.g. SOCK_STREAM|SOCK_NONBLOCK).
func mentionsSyscallConst(pass *Pass, expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isPkgObject(pass.Info, e, "syscall", name) {
			found = true
		}
		return !found
	})
	return found
}
