package analysis

import (
	"go/ast"
	"go/types"
)

// Loopblock forbids blocking operations on the event loop. Anything
// synchronously reachable from a `//nio:loop` root runs with every
// connection on that loop waiting behind it, so a time.Sleep, an
// unbuffered channel handoff, a mutex shared with off-loop code, or
// blocking file/net I/O stalls the whole reactor — the exact failure
// mode the paper's event-driven architecture exists to avoid. The
// epoll wait itself lives behind the reactor package boundary and is
// not in scope; deliberate stalls (fault injection) carry a
// `//nio:ok loopblock` waiver.
var Loopblock = &Analyzer{
	Name: "loopblock",
	Doc: "check that no blocking operation (time.Sleep, channel send/recv " +
		"without a default case, select without default, sync.Mutex.Lock, " +
		"blocking net.Conn or os.File I/O) is synchronously reachable from " +
		"a //nio:loop event-loop root",
	Run: runLoopblock,
}

func runLoopblock(pass *Pass) error {
	dirs := collectDirectives(pass)
	if len(dirs.loopFuncs) == 0 {
		return nil
	}
	g := buildCallGraph(pass, dirs)
	loop := g.loopSet()
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			owner := g.ownerOf(stack)
			if owner == nil || !loop[owner] {
				return
			}
			if kind, at := blockingOp(pass, n, stack); kind != "" {
				if dirs.suppressed(pass.Fset, at.Pos(), "loopblock") {
					return
				}
				pass.Reportf(at.Pos(), "%s on the event loop (reachable from a //nio:loop root via %s); the loop must never block",
					kind, owner.name)
			}
		})
	}
	return nil
}

// blockingOp classifies one AST node as a blocking operation, or ""
// when it cannot block.
func blockingOp(pass *Pass, n ast.Node, stack []ast.Node) (string, ast.Node) {
	switch n := n.(type) {
	case *ast.SendStmt:
		if !isSelectComm(stack, n) {
			return "blocking channel send", n
		}
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" && !isSelectComm(stack, n) {
			return "blocking channel receive", n
		}
	case *ast.SelectStmt:
		if !hasDefaultClause(n) {
			return "select without default", n
		}
	case *ast.RangeStmt:
		if t, ok := pass.Info.Types[n.X]; ok {
			if _, isChan := types.Unalias(t.Type).Underlying().(*types.Chan); isChan {
				return "blocking range over channel", n
			}
		}
	case *ast.CallExpr:
		if name := pkgFuncName(pass.Info, n, "time"); name == "Sleep" {
			return "time.Sleep", n
		}
		if kind := blockingMethodCall(pass, n); kind != "" {
			return kind, n
		}
	}
	return "", nil
}

// isSelectComm reports whether the send/receive is the comm
// operation of a select clause. Those are judged at the select level
// (select without default is flagged once); an op in a clause *body*
// runs after the select fires and blocks on its own.
func isSelectComm(stack []ast.Node, op ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if clause, ok := stack[i].(*ast.CommClause); ok {
			return clause.Comm != nil && containsNode(clause.Comm, op)
		}
	}
	return false
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, s := range sel.Body.List {
		if c, ok := s.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// blockingMethodCall flags mutex acquisition and blocking I/O method
// calls: sync.(RW)Mutex Lock/RLock, (sync.WaitGroup).Wait and
// (sync.Cond).Wait, net.Conn Read/Write (the reactor talks to
// sockets through raw non-blocking fds, never net.Conn, on the
// loop), and os.File Read/ReadAt/Write outside the sendfile seam.
func blockingMethodCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	recv := namedRecvName(sig.Recv().Type())
	switch fn.Pkg().Path() {
	case "sync":
		switch fn.Name() {
		case "Lock", "RLock":
			return "sync." + recv + ".Lock (also locked off-loop?)"
		case "Wait":
			if recv == "WaitGroup" || recv == "Cond" {
				return "sync." + recv + ".Wait"
			}
		}
	case "net":
		switch fn.Name() {
		case "Read", "Write", "ReadFrom", "WriteTo", "Accept":
			return "blocking net I/O (net." + recv + "." + fn.Name() + ")"
		}
	case "os":
		if recv == "File" {
			switch fn.Name() {
			case "Read", "ReadAt", "Write", "WriteAt", "Seek", "Sync":
				return "blocking os.File I/O (" + fn.Name() + ")"
			}
		}
	}
	return ""
}

// namedRecvName returns the name of the receiver's named type,
// unwrapping pointers: *sync.Mutex -> "Mutex".
func namedRecvName(t types.Type) string {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
