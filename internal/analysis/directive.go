package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file parses the `//nio:` directive grammar the ownership and
// hot-path analyzers run on. The grammar is deliberately tiny:
//
//	//nio:loop
//	    On a function declaration: the function is an event-loop root.
//	    Everything synchronously reachable from it executes on the
//	    loop goroutine. A `go` statement whose target carries this
//	    annotation starts a loop, not an off-loop goroutine.
//
//	//nio:loop-owned
//	    On a struct field: the field belongs to the event loop and
//	    must not be touched from off-loop code without an atomic or
//	    channel seam. On a struct type declaration: every field of
//	    the struct is loop-owned (for per-connection state records
//	    that live and die on one loop).
//
//	//nio:hot
//	    On a function declaration: the function is on the
//	    per-request hot path and must not allocate (see hotalloc).
//
//	//nio:det
//	    On a function declaration: the function is a root of the
//	    determinism contract — a seeded decision point. Reached code
//	    must not consult wall clocks or iterate maps (see detrand).
//
//	//nio:ok <analyzer> [-- reason]
//	    Trailing same-line comment: suppress the named analyzer's
//	    diagnostics on this line. The reason is for the human reader;
//	    the analyzers ignore it. Suppressions are deliberate, visible
//	    seams — grep for nio:ok to audit them all.
//
// Directives ride ordinary comments, so they survive gofmt and need
// no build tags.

// directives is the parsed annotation set of one package.
type directives struct {
	loopFuncs   map[*types.Func]bool
	hotFuncs    map[*types.Func]bool
	detFuncs    map[*types.Func]bool
	ownedFields map[*types.Var]bool
	// suppress: filename -> line -> analyzer names suppressed there.
	suppress map[string]map[int]map[string]bool
}

// directiveWord extracts the first word of a `//nio:` comment line, or
// "" when the comment is not a directive: "//nio:loop-owned shard
// table" yields "loop-owned".
func directiveWord(text string) string {
	rest, ok := strings.CutPrefix(text, "//nio:")
	if !ok {
		return ""
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// directiveArgs returns the words after the directive keyword, up to a
// `--` separator.
func directiveArgs(text string) []string {
	rest, ok := strings.CutPrefix(text, "//nio:")
	if !ok {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) <= 1 {
		return nil
	}
	args := fields[1:]
	for i, a := range args {
		if a == "--" {
			return args[:i]
		}
	}
	return args
}

// hasDirective reports whether the comment group carries the given
// directive keyword.
func hasDirective(doc *ast.CommentGroup, word string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if directiveWord(c.Text) == word {
			return true
		}
	}
	return false
}

// collectDirectives parses every `//nio:` annotation in the pass.
func collectDirectives(pass *Pass) *directives {
	d := &directives{
		loopFuncs:   map[*types.Func]bool{},
		hotFuncs:    map[*types.Func]bool{},
		detFuncs:    map[*types.Func]bool{},
		ownedFields: map[*types.Var]bool{},
		suppress:    map[string]map[int]map[string]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pass.Info.Defs[decl.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if hasDirective(decl.Doc, "loop") {
					d.loopFuncs[fn] = true
				}
				if hasDirective(decl.Doc, "hot") {
					d.hotFuncs[fn] = true
				}
				if hasDirective(decl.Doc, "det") {
					d.detFuncs[fn] = true
				}
			case *ast.GenDecl:
				d.collectTypeDirectives(pass, decl)
			}
		}
		d.collectSuppressions(pass.Fset, f)
	}
	return d
}

// collectTypeDirectives handles `//nio:loop-owned` on struct types and
// struct fields.
func (d *directives) collectTypeDirectives(pass *Pass, decl *ast.GenDecl) {
	if decl.Tok != token.TYPE {
		return
	}
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		// Whole-type annotation: the GenDecl doc (single-spec form) or
		// the TypeSpec's own doc/trailing comment.
		wholeType := hasDirective(decl.Doc, "loop-owned") ||
			hasDirective(ts.Doc, "loop-owned") || hasDirective(ts.Comment, "loop-owned")
		for _, field := range st.Fields.List {
			owned := wholeType ||
				hasDirective(field.Doc, "loop-owned") || hasDirective(field.Comment, "loop-owned")
			if !owned {
				continue
			}
			for _, name := range field.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					d.ownedFields[v] = true
				}
			}
		}
	}
}

// collectSuppressions records every `//nio:ok` comment by file and
// line.
func (d *directives) collectSuppressions(fset *token.FileSet, f *ast.File) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			if directiveWord(c.Text) != "ok" {
				continue
			}
			pos := fset.Position(c.Pos())
			lines := d.suppress[pos.Filename]
			if lines == nil {
				lines = map[int]map[string]bool{}
				d.suppress[pos.Filename] = lines
			}
			set := lines[pos.Line]
			if set == nil {
				set = map[string]bool{}
				lines[pos.Line] = set
			}
			for _, name := range directiveArgs(c.Text) {
				set[strings.TrimSuffix(name, ",")] = true
			}
		}
	}
}

// suppressed reports whether diagnostics of the named analyzer are
// suppressed on pos's line.
func (d *directives) suppressed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	return d.suppress[p.Filename][p.Line][analyzer]
}
