package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// StatsSync checks that no struct field is accessed both atomically
// and non-atomically. The servers' Stats counters are read live while
// worker threads update them; a single plain `s.Replies++` next to
// `atomic.AddInt64(&s.Replies, 1)` is a data race the race detector
// only catches when the interleaving happens to occur — this rule
// makes the mixing itself the error.
var StatsSync = &Analyzer{
	Name: "statssync",
	Doc: "check that fields of structs declared in the package are accessed " +
		"consistently: a field touched by sync/atomic anywhere must never " +
		"also be read or written directly (mixed atomic/plain access is a " +
		"data race by construction)",
	Run: runStatsSync,
}

// fieldAccess tallies how one struct field is touched across the
// package.
type fieldAccess struct {
	atomic    int
	plain     int
	plainPos  ast.Node // first plain access, for the diagnostic
	atomicPos ast.Node
}

func runStatsSync(pass *Pass) error {
	acc := map[*types.Var]*fieldAccess{}
	record := func(field *types.Var) *fieldAccess {
		a := acc[field]
		if a == nil {
			a = &fieldAccess{}
			acc[field] = a
		}
		return a
	}
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			field := selectedField(pass, sel)
			if field == nil || field.Pkg() != pass.Pkg || !isSyncSensitive(field.Type()) {
				return
			}
			switch classifyFieldAccess(pass, sel, stack) {
			case fieldAtomic:
				a := record(field)
				a.atomic++
				if a.atomicPos == nil {
					a.atomicPos = sel
				}
			case fieldPlain:
				a := record(field)
				a.plain++
				if a.plainPos == nil {
					a.plainPos = sel
				}
			}
		})
	}
	for field, a := range acc {
		if a.atomic > 0 && a.plain > 0 {
			pass.Reportf(a.plainPos.Pos(),
				"field %s is accessed both atomically (%d sites) and non-atomically (%d sites); pick one discipline",
				field.Name(), a.atomic, a.plain)
		}
	}
	return nil
}

// selectedField resolves sel to the struct field it reads or writes,
// or nil when sel is not a field selection.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// isSyncSensitive reports whether the field's type is one the
// sync/atomic package can operate on — the only fields where mixing
// is even expressible.
func isSyncSensitive(t types.Type) bool {
	b, ok := types.Unalias(t).(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

type fieldAccessKind int

const (
	fieldIgnored fieldAccessKind = iota
	fieldAtomic
	fieldPlain
)

// classifyFieldAccess decides whether one selector use is an atomic
// access (&s.f handed to sync/atomic), a plain access (direct read or
// write), or neither (initialization in a composite literal, or the
// address delegated to an unknown function, which a local analysis
// cannot judge).
func classifyFieldAccess(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) fieldAccessKind {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.SelectorExpr:
			if anc.X == ast.Expr(sel) || containsNode(anc.X, sel) {
				return fieldIgnored // s.f.g: the access is to the deeper field
			}
			continue
		case *ast.UnaryExpr:
			if anc.Op.String() != "&" {
				return fieldPlain
			}
			// Address taken: atomic if it feeds sync/atomic, otherwise
			// delegated to code we cannot see.
			for j := i - 1; j >= 0; j-- {
				if call, ok := stack[j].(*ast.CallExpr); ok {
					if name := pkgFuncName(pass.Info, call, "sync/atomic"); name != "" && isAtomicOpName(name) {
						return fieldAtomic
					}
					return fieldIgnored
				}
				if _, ok := stack[j].(*ast.ParenExpr); ok {
					continue
				}
				break
			}
			return fieldIgnored
		case *ast.KeyValueExpr, *ast.CompositeLit:
			return fieldIgnored // initialization, not a shared access
		case ast.Stmt, *ast.CallExpr, *ast.BinaryExpr, *ast.IndexExpr, *ast.ReturnStmt:
			return fieldPlain
		}
	}
	return fieldPlain
}

// isAtomicOpName reports whether name is a sync/atomic operation that
// takes an address (AddInt64, LoadUint32, StorePointer, SwapInt32,
// CompareAndSwapInt64, …).
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
