package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// StatsSync checks that no struct field is accessed both atomically
// and non-atomically. The servers' Stats counters are read live while
// worker threads update them; a single plain `s.Replies++` next to
// `atomic.AddInt64(&s.Replies, 1)` is a data race the race detector
// only catches when the interleaving happens to occur — this rule
// makes the mixing itself the error.
var StatsSync = &Analyzer{
	Name: "statssync",
	Doc: "check that fields of structs declared in the package are accessed " +
		"consistently: a field touched by sync/atomic anywhere must never " +
		"also be read or written directly (mixed atomic/plain access is a " +
		"data race by construction)",
	Run: runStatsSync,
}

// fieldAccess tallies how one struct field is touched across the
// package.
type fieldAccess struct {
	atomic    int
	plain     int
	plainPos  ast.Node // first plain access, for the diagnostic
	atomicPos ast.Node
}

func runStatsSync(pass *Pass) error {
	acc := map[*types.Var]*fieldAccess{}
	record := func(field *types.Var) *fieldAccess {
		a := acc[field]
		if a == nil {
			a = &fieldAccess{}
			acc[field] = a
		}
		return a
	}
	locals := atomicFuncLocals(pass)
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			field := selectedField(pass, sel)
			if field == nil || field.Pkg() != pass.Pkg || !isSyncSensitive(field.Type()) {
				return
			}
			switch classifyFieldAccess(pass, sel, stack, locals) {
			case fieldAtomic:
				a := record(field)
				a.atomic++
				if a.atomicPos == nil {
					a.atomicPos = sel
				}
			case fieldPlain:
				a := record(field)
				a.plain++
				if a.plainPos == nil {
					a.plainPos = sel
				}
			}
		})
	}
	for field, a := range acc {
		if a.atomic > 0 && a.plain > 0 {
			pass.Reportf(a.plainPos.Pos(),
				"field %s is accessed both atomically (%d sites) and non-atomically (%d sites); pick one discipline",
				field.Name(), a.atomic, a.plain)
		}
	}
	return nil
}

// selectedField resolves sel to the struct field it reads or writes,
// or nil when sel is not a field selection.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// isSyncSensitive reports whether the field's type is one the
// sync/atomic package can operate on — the only fields where mixing
// is even expressible.
func isSyncSensitive(t types.Type) bool {
	b, ok := types.Unalias(t).(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

type fieldAccessKind int

const (
	fieldIgnored fieldAccessKind = iota
	fieldAtomic
	fieldPlain
)

// classifyFieldAccess decides whether one selector use is an atomic
// access (&s.f handed to sync/atomic, directly or through a method
// value bound to a local), a plain access (direct read or write), or
// neither (initialization in a composite literal, or the address
// delegated to an unknown function, which a local analysis cannot
// judge). atomicLocals maps local variables to the sync/atomic
// function bound to them (see atomicFuncLocals); nil disables that
// resolution.
func classifyFieldAccess(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node, atomicLocals map[types.Object]string) fieldAccessKind {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.SelectorExpr:
			if anc.X == ast.Expr(sel) || containsNode(anc.X, sel) {
				return fieldIgnored // s.f.g: the access is to the deeper field
			}
			continue
		case *ast.UnaryExpr:
			if anc.Op.String() != "&" {
				return fieldPlain
			}
			// Address taken: atomic if it feeds sync/atomic, otherwise
			// delegated to code we cannot see.
			for j := i - 1; j >= 0; j-- {
				if call, ok := stack[j].(*ast.CallExpr); ok {
					if name := atomicCallName(pass, call, atomicLocals); name != "" && isAtomicOpName(name) {
						return fieldAtomic
					}
					return fieldIgnored
				}
				if _, ok := stack[j].(*ast.ParenExpr); ok {
					continue
				}
				break
			}
			return fieldIgnored
		case *ast.KeyValueExpr, *ast.CompositeLit:
			return fieldIgnored // initialization, not a shared access
		case ast.Stmt, *ast.CallExpr, *ast.BinaryExpr, *ast.IndexExpr, *ast.ReturnStmt:
			return fieldPlain
		}
	}
	return fieldPlain
}

// atomicCallName resolves a call to its sync/atomic operation name:
// either a direct atomic.AddInt64(...) call, or a call through a
// local variable that was bound to a sync/atomic function value
// (`add := atomic.AddInt64; add(&s.f, 1)`).
func atomicCallName(pass *Pass, call *ast.CallExpr, atomicLocals map[types.Object]string) string {
	if name := pkgFuncName(pass.Info, call, "sync/atomic"); name != "" {
		return name
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return ""
	}
	return atomicLocals[obj]
}

// atomicFuncLocals finds local variables bound to a sync/atomic
// function value. Locals are scoped to their function, so one
// package-wide map is unambiguous. Rebinding a variable to two
// different atomic functions keeps the last one — good enough for
// the idiom this covers.
func atomicFuncLocals(pass *Pass) map[types.Object]string {
	locals := map[types.Object]string{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || rhs == nil {
			return
		}
		sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil && obj.Parent() != pass.Pkg.Scope() {
			locals[obj] = fn.Name()
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i := range n.Lhs {
					if i < len(n.Rhs) {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i := range n.Names {
					if i < len(n.Values) {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return locals
}

// isAtomicOpName reports whether name is a sync/atomic operation that
// takes an address (AddInt64, LoadUint32, StorePointer, SwapInt32,
// CompareAndSwapInt64, …).
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
