package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer must be red on its seeded-violation fixture (every
// `// want` line produces a diagnostic) and silent everywhere else in
// the fixture (no unexpected diagnostics on the clean cases).

func TestSyscallerr(t *testing.T) { analysistest.Run(t, analysis.Syscallerr, "syscallerr") }

// The sysfault wrapper exemption is keyed on the package NAME, so it
// needs its own fixture package (named sysfault, unlike the others).
func TestSyscallerrSeamWrapper(t *testing.T) {
	analysistest.Run(t, analysis.Syscallerr, "sysfaultwrap")
}

func TestFDLife(t *testing.T) { analysistest.Run(t, analysis.FDLife, "fdlife") }

func TestRefBalance(t *testing.T) { analysistest.Run(t, analysis.RefBalance, "refbalance") }

func TestStatsSync(t *testing.T) { analysistest.Run(t, analysis.StatsSync, "statssync") }

func TestNonblock(t *testing.T) { analysistest.Run(t, analysis.Nonblock, "nonblock") }

// The statssync regression fixture covers mixing through struct
// embedding and through sync/atomic method values bound to locals.
func TestStatsSyncEmbed(t *testing.T) { analysistest.Run(t, analysis.StatsSync, "statssyncembed") }

func TestLoopown(t *testing.T) { analysistest.Run(t, analysis.Loopown, "loopown") }

// A package with no //nio: annotations must stay silent regardless of
// how freely it shares un-annotated state across goroutines.
func TestLoopownQuiet(t *testing.T) { analysistest.Run(t, analysis.Loopown, "loopownquiet") }

func TestLoopblock(t *testing.T) { analysistest.Run(t, analysis.Loopblock, "loopblock") }

func TestHotalloc(t *testing.T) { analysistest.Run(t, analysis.Hotalloc, "hotalloc") }

func TestDetrand(t *testing.T) { analysistest.Run(t, analysis.Detrand, "detrand") }

// The determinism contract is keyed on the package name; the same
// idioms outside faultline/sysfault/sim* stay quiet.
func TestDetrandQuiet(t *testing.T) { analysistest.Run(t, analysis.Detrand, "detrandquiet") }
