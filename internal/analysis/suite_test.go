package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer must be red on its seeded-violation fixture (every
// `// want` line produces a diagnostic) and silent everywhere else in
// the fixture (no unexpected diagnostics on the clean cases).

func TestSyscallerr(t *testing.T) { analysistest.Run(t, analysis.Syscallerr, "syscallerr") }

// The sysfault wrapper exemption is keyed on the package NAME, so it
// needs its own fixture package (named sysfault, unlike the others).
func TestSyscallerrSeamWrapper(t *testing.T) {
	analysistest.Run(t, analysis.Syscallerr, "sysfaultwrap")
}

func TestFDLife(t *testing.T) { analysistest.Run(t, analysis.FDLife, "fdlife") }

func TestRefBalance(t *testing.T) { analysistest.Run(t, analysis.RefBalance, "refbalance") }

func TestStatsSync(t *testing.T) { analysistest.Run(t, analysis.StatsSync, "statssync") }

func TestNonblock(t *testing.T) { analysistest.Run(t, analysis.Nonblock, "nonblock") }
