package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrand polices the determinism contract: the fault-injection and
// simulation packages (faultline, sysfault, sim*) promise that every
// decision is a pure function of seeds and inputs — that is what
// makes chaos runs replayable byte-for-byte. The analyzer finds the
// three ways that promise silently breaks:
//
//   - math/rand globals (the shared, non-seeded source) anywhere in
//     a contract package;
//   - time.Now / time.Since inside a *decision path* — a function
//     reachable from seeded-decision roots (anything that touches a
//     dist.RNG, or is annotated //nio:det);
//   - map iteration inside a decision path (range order varies
//     run to run).
//
// Wall-clock use *outside* decision paths stays legal: the link
// emulator's pacer schedules real transmissions in real time, but it
// must never let the wall clock leak into what the seeded RNG
// decides.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "check determinism-contract packages (faultline, sysfault, sim*): " +
		"no math/rand globals anywhere, and no time.Now/time.Since or map " +
		"iteration in decision paths (code reachable from //nio:det roots " +
		"or functions using a seeded dist.RNG)",
	Run: runDetrand,
}

// detrandContract reports whether the package is under the
// determinism contract.
func detrandContract(name string) bool {
	return name == "faultline" || name == "sysfault" || strings.HasPrefix(name, "sim")
}

func runDetrand(pass *Pass) error {
	if !detrandContract(pass.Pkg.Name()) {
		return nil
	}
	dirs := collectDirectives(pass)
	g := buildCallGraph(pass, dirs)
	decision := g.reachFrom(decisionRoots(pass, g), false)
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			owner := g.ownerOf(stack)
			switch n := n.(type) {
			case *ast.CallExpr:
				if name := randGlobalCall(pass, n); name != "" {
					if !dirs.suppressed(pass.Fset, n.Pos(), "detrand") {
						pass.Reportf(n.Pos(),
							"math/rand.%s uses the shared non-seeded source; use the package's seeded dist.RNG", name)
					}
					return
				}
				if owner == nil || !decision[owner] {
					return
				}
				if name := pkgFuncName(pass.Info, n, "time"); name == "Now" || name == "Since" {
					if !dirs.suppressed(pass.Fset, n.Pos(), "detrand") {
						pass.Reportf(n.Pos(),
							"time.%s in decision path (%s); seeded decisions must not read the wall clock", name, owner.name)
					}
				}
			case *ast.RangeStmt:
				if owner == nil || !decision[owner] {
					return
				}
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); isMap {
						if !dirs.suppressed(pass.Fset, n.Pos(), "detrand") {
							pass.Reportf(n.Pos(),
								"map iteration in decision path (%s); iteration order is nondeterministic", owner.name)
						}
					}
				}
			}
		})
	}
	return nil
}

// decisionRoots finds the seeded-decision entry points: //nio:det
// annotated functions plus any function whose body touches a
// dist.RNG value.
func decisionRoots(pass *Pass, g *callGraph) []*cgNode {
	roots := map[*cgNode]bool{}
	for _, n := range g.nodes {
		if n.fn != nil && g.dirs.detFuncs[n.fn] {
			roots[n] = true
		}
	}
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !isDistRNG(obj.Type()) {
				return
			}
			if owner := g.ownerOf(stack); owner != nil {
				roots[owner] = true
			}
		})
	}
	var out []*cgNode
	for n := range roots {
		out = append(out, n)
	}
	return out
}

// isDistRNG reports whether t is dist.RNG or *dist.RNG — the
// repository's seeded random source.
func isDistRNG(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "RNG" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "dist"
}

// randGlobalCall returns the function name when the call hits a
// math/rand (or math/rand/v2) package-level function that draws from
// the shared global source. Constructors (New, NewSource, …) build
// explicitly seeded generators and are fine.
func randGlobalCall(pass *Pass, call *ast.CallExpr) string {
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		if name := pkgFuncName(pass.Info, call, path); name != "" &&
			!strings.HasPrefix(name, "New") {
			return name
		}
	}
	return ""
}
