package analysis

import (
	"go/ast"
	"go/types"
)

// Loopown enforces event-loop state ownership: fields annotated
// `//nio:loop-owned` (directly or via their struct type) may only be
// touched by code that runs on the event-loop goroutine. Accesses
// from spawned goroutines, timer callbacks, escaped function values,
// or the package's exported API are flagged unless they go through an
// atomic operation or a channel, or sit in a constructor that has not
// yet published the value. This is exactly the invariant per-shard
// conn tables need before the reactor can be sharded: per-loop state
// is never shared, and the analyzer makes "never" structural.
var Loopown = &Analyzer{
	Name: "loopown",
	Doc: "check that //nio:loop-owned fields are only accessed from code " +
		"reachable from a //nio:loop event-loop root; off-loop access must " +
		"use an atomic or channel seam, or carry a //nio:ok loopown waiver",
	Run: runLoopown,
}

func runLoopown(pass *Pass) error {
	dirs := collectDirectives(pass)
	if len(dirs.ownedFields) == 0 {
		return nil
	}
	g := buildCallGraph(pass, dirs)
	off := g.offLoopSet()
	fresh := freshLocals(pass)
	atomicLocals := atomicFuncLocals(pass)
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			field := selectedField(pass, sel)
			if field == nil || !dirs.ownedFields[field] {
				return
			}
			owner := g.ownerOf(stack)
			if owner == nil || !off[owner] {
				return
			}
			if loopownExempt(pass, dirs, sel, field, stack, fresh, atomicLocals) {
				return
			}
			pass.Reportf(sel.Pos(),
				"loop-owned field %s accessed from off-loop context (%s); use an atomic/channel seam, move it onto the loop, or waive with //nio:ok loopown",
				field.Name(), owner.name)
		})
	}
	return nil
}

// freshLocals collects function-local variables assigned a newly
// constructed value (&T{...}, T{...}, new(T)). A value built inside a
// function is private to it until published, so its constructor may
// initialize loop-owned fields off-loop. Local objects are scoped to
// their function, so one package-wide set is unambiguous;
// package-level variables are excluded.
func freshLocals(pass *Pass) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || rhs == nil {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || obj.Parent() == pass.Pkg.Scope() {
			return
		}
		if isFreshConstruction(pass, rhs) {
			fresh[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i := range n.Lhs {
					if i < len(n.Rhs) {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i := range n.Names {
					if i < len(n.Values) {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return fresh
}

// isFreshConstruction reports whether rhs builds a brand-new value.
func isFreshConstruction(pass *Pass, rhs ast.Expr) bool {
	switch r := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if r.Op.String() == "&" {
			_, ok := r.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "new" {
			_, ok := pass.Info.Uses[id].(*types.Builtin)
			return ok
		}
	}
	return false
}

// loopownExempt recognizes the legal off-loop touches of owned state.
func loopownExempt(pass *Pass, dirs *directives, sel *ast.SelectorExpr, field *types.Var, stack []ast.Node, fresh map[types.Object]bool, atomicLocals map[types.Object]string) bool {
	if dirs.suppressed(pass.Fset, sel.Pos(), "loopown") {
		return true
	}
	// Channels are the handoff seam by construction.
	if _, ok := types.Unalias(field.Type()).Underlying().(*types.Chan); ok {
		return true
	}
	// Atomic access (&s.f into sync/atomic, or a method on a
	// sync/atomic value type like atomic.Int64).
	switch classifyFieldAccess(pass, sel, stack, atomicLocals) {
	case fieldAtomic, fieldIgnored:
		// fieldIgnored covers composite-literal initialization and
		// addresses delegated to helpers; both stay quiet here — a
		// helper's own body is judged in its own context.
		return true
	}
	if isAtomicMethodReceiver(pass, sel, stack) {
		return true
	}
	// Constructor exemption: the base value was built locally and has
	// not been handed to the loop yet.
	if base := baseIdent(sel); base != nil {
		obj := pass.Info.Uses[base]
		if obj == nil {
			obj = pass.Info.Defs[base]
		}
		if obj != nil && fresh[obj] {
			return true
		}
	}
	return false
}

// isAtomicMethodReceiver reports whether sel is the receiver of a
// method call on a sync/atomic value type: s.n.Load(), s.ok.Store(x).
func isAtomicMethodReceiver(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	outer, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || outer.X != ast.Expr(sel) {
		return false
	}
	fn, ok := pass.Info.Uses[outer.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// baseIdent unwinds a selector chain to its root identifier: for
// s.pool.idle it returns s; nil when the base is a call result or
// other non-identifier.
func baseIdent(sel *ast.SelectorExpr) *ast.Ident {
	e := sel.X
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
