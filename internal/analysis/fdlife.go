package analysis

import (
	"go/ast"
)

// FDLife checks that raw file descriptors produced by the syscall
// package reach syscall.Close on every path, including error returns.
// A leaked fd is invisible at low load and fatal at exactly the
// connection counts the scalability experiments sweep through: the
// process hits its descriptor limit and every accept fails — a
// failure mode that looks like a server falling over rather than the
// resource bug it is.
var FDLife = &Analyzer{
	Name: "fdlife",
	Doc: "check that fds from syscall.Socket/Accept4/Open/EpollCreate1/Dup (or their " +
		"sysfault seam wrappers) reach syscall.Close or sysfault.Close on all paths " +
		"including error returns; passing the fd to a non-syscall function, storing " +
		"it, or returning it transfers ownership and ends the check",
	Run: runFDLife,
}

// fdProducers are the syscall functions whose first result is a fresh
// descriptor the caller owns.
var fdProducers = map[string]bool{
	"Socket":       true,
	"Accept4":      true,
	"Open":         true,
	"EpollCreate1": true,
	"Dup":          true,
}

// seamFDProducers are the sysfault wrappers that mint descriptors; the
// seam routes the hot-path producers, so fds born there carry the same
// close-on-every-path obligation as raw syscall ones.
var seamFDProducers = map[string]bool{
	"Socket":  true,
	"Accept4": true,
}

func runFDLife(pass *Pass) error {
	for _, fn := range funcDecls(pass) {
		walkStack(fn.Body, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			origin := "syscall"
			name := pkgFuncName(pass.Info, call, "syscall")
			if !fdProducers[name] {
				name = pkgFuncName(pass.Info, call, sysfaultPkgPath)
				if !seamFDProducers[name] {
					return
				}
				origin = "sysfault"
			}
			acq := resolveAcquire(pass, fn, call, stack, 0)
			if acq == nil {
				return
			}
			acq.what = "fd from " + origin + "." + name
			acq.must = "syscall.Close"
			checkPaired(pass, acq, classifyFDUse(pass))
		})
	}
	return nil
}

// classifyFDUse judges one use of a tracked fd: syscall.Close or
// sysfault.Close releases it, other syscalls and seam wrappers merely
// borrow it, and anything that moves the value somewhere the function
// cannot see — a return, a store, a call into any other package —
// transfers ownership.
func classifyFDUse(pass *Pass) func(id *ast.Ident, stack []ast.Node) useClass {
	return func(id *ast.Ident, stack []ast.Node) useClass {
		for i := len(stack) - 1; i >= 0; i-- {
			switch anc := stack[i].(type) {
			case *ast.ParenExpr, *ast.KeyValueExpr:
				continue
			case *ast.CallExpr:
				if isConversion(pass.Info, anc) {
					continue // int32(fd) etc.: look further out
				}
				if argOf(anc, id) < 0 {
					continue // the fd is in the callee expression, not an argument
				}
				switch pkgFuncName(pass.Info, anc, "syscall") {
				case "Close":
					return useRelease
				case "":
					switch pkgFuncName(pass.Info, anc, sysfaultPkgPath) {
					case "Close":
						// The seam's Close always performs the real
						// close (injected errnos only change what it
						// reports), so it settles the obligation.
						return useRelease
					case "":
						return useEscape // handed to a non-syscall owner
					default:
						return useBorrow // sysfault.Read/Write/Connect/…
					}
				default:
					return useBorrow // Bind, Listen, EpollCtl, Setsockopt, …
				}
			case *ast.BinaryExpr:
				return useBorrow
			case *ast.ReturnStmt, *ast.CompositeLit, *ast.UnaryExpr,
				*ast.IndexExpr, *ast.SendStmt:
				return useEscape
			case *ast.AssignStmt:
				return useEscape // copied or reassigned: tracking ends
			case ast.Stmt:
				return useBorrow // reached statement level uneventfully
			}
		}
		return useBorrow
	}
}
