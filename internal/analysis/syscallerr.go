package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Syscallerr flags raw syscall call sites whose error handling does
// not classify the transient errnos the non-blocking hot paths hinge
// on. A bare `if err != nil` after syscall.Read treats both EINTR (a
// signal landed; retry) and EAGAIN (no data; wait for readiness) as
// fatal, which tears down healthy connections under exactly the load
// the reproduction is supposed to measure.
var Syscallerr = &Analyzer{
	Name: "syscallerr",
	Doc: "check that raw syscall.Read/Write/Accept4/EpollWait/Sendfile call sites " +
		"classify EINTR and EAGAIN instead of treating every error as fatal; " +
		"EINTR classification may be delegated by wrapping the call in a " +
		"closure passed to a retryEINTR helper; sysfault seam call sites " +
		"(which absorb EINTR internally) must still classify EAGAIN",
	Run: runSyscallerr,
}

// syscallErrTargets maps the audited syscall functions to the errnos
// their call sites must classify. EpollWait cannot return EAGAIN, so
// only EINTR is demanded there.
var syscallErrTargets = map[string]struct{ eintr, eagain bool }{
	"Read":      {true, true},
	"Write":     {true, true},
	"Accept4":   {true, true},
	"EpollWait": {true, false},
	"Sendfile":  {true, true},
}

// sysfaultPkgPath is the fault-injection seam every hot-path syscall is
// routed through (see internal/sysfault). Its wrappers absorb EINTR in
// their own retry loops, so call sites owe only the EAGAIN
// classification; EpollWait/Socket/Connect/Close via the seam can
// surface neither transient errno and are not audited here.
const sysfaultPkgPath = "repro/internal/sysfault"

// seamErrTargets are the sysfault wrappers whose callers must still
// classify EAGAIN — the would-block path passes through the seam raw.
var seamErrTargets = map[string]bool{
	"Read":     true,
	"Write":    true,
	"Accept4":  true,
	"Sendfile": true,
}

func runSyscallerr(pass *Pass) error {
	for _, fd := range funcDecls(pass) {
		checkSyscallErrFunc(pass, fd)
	}
	return nil
}

func checkSyscallErrFunc(pass *Pass, fn *ast.FuncDecl) {
	// Which errnos does this function classify anywhere? A mention of
	// syscall.EINTR / syscall.EAGAIN counts when it appears where
	// errors are discriminated: an ==/!= comparison, a switch case, or
	// an errors.Is argument.
	classified := map[string]bool{}
	note := func(expr ast.Expr) {
		for _, errno := range []string{"EINTR", "EAGAIN"} {
			if isPkgObject(pass.Info, expr, "syscall", errno) {
				classified[errno] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				note(n.X)
				note(n.Y)
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				note(e)
			}
		case *ast.CallExpr:
			if pkgFuncName(pass.Info, n, "errors") == "Is" && len(n.Args) == 2 {
				note(n.Args[1])
			}
		}
		return true
	})

	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if name := pkgFuncName(pass.Info, call, sysfaultPkgPath); seamErrTargets[name] {
			// A seam call site: the wrapper already owns EINTR, but
			// EAGAIN still reaches the caller and must be classified.
			if errResultDiscarded(call, stack) || classified["EAGAIN"] {
				return
			}
			pass.Reportf(call.Pos(),
				"sysfault.%s error is not classified for EAGAIN (the seam absorbs EINTR but passes would-block through)", name)
			return
		}
		name := pkgFuncName(pass.Info, call, "syscall")
		need, ok := syscallErrTargets[name]
		if !ok {
			return
		}
		if pass.Pkg.Name() == "sysfault" && fn.Name.Name == name {
			// The seam wrapper itself: sysfault.Read's raw syscall.Read
			// is the blessed home of the bare call — its retry loop
			// absorbs EINTR and its contract is to hand EAGAIN to the
			// caller unclassified. Only the same-named wrapper is
			// exempt; any other bare syscall in the package still fails.
			return
		}
		if errResultDiscarded(call, stack) {
			// `_, _ = syscall.Write(...)` is a deliberate decision to
			// ignore the outcome (e.g. the wakeup pipe, where EAGAIN
			// means a wakeup is already pending), not bare handling.
			return
		}
		if need.eintr && !classified["EINTR"] && !inRetryEINTR(call, stack) {
			pass.Reportf(call.Pos(),
				"syscall.%s error is not classified for EINTR (compare against syscall.EINTR or wrap the call in retryEINTR)", name)
		}
		if need.eagain && !classified["EAGAIN"] {
			pass.Reportf(call.Pos(),
				"syscall.%s error is not classified for EAGAIN (a non-blocking fd returns it on every would-block)", name)
		}
	})
}

// errResultDiscarded reports whether the call's error result (by
// convention the last result) is assigned to the blank identifier.
func errResultDiscarded(call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		as, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		if len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != ast.Expr(call) {
			return false // call feeds the assignment indirectly; be strict
		}
		last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
		return ok && last.Name == "_"
	}
	return false
}

// inRetryEINTR reports whether the call sits inside a function literal
// passed as an argument to a function or method named retryEINTR — the
// one blessed EINTR-retry pattern (see internal/reactor).
func inRetryEINTR(call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		outer, ok := stack[i-1].(*ast.CallExpr)
		if !ok {
			continue
		}
		if !strings.EqualFold(calleeName(outer), "retryEINTR") {
			continue
		}
		for _, a := range outer.Args {
			if ast.Unparen(a) == ast.Expr(lit) {
				return true
			}
		}
	}
	return false
}
