// Package analysis is a custom static-analysis suite for this
// codebase's hazard classes: the syscall-heavy hot paths of the
// reactor and thread-pool servers, where a missed EINTR/EAGAIN
// classification, a leaked fd, an unbalanced docroot refcount, a
// torn stats counter, or a blocking fd in the event loop turns into
// exactly the kind of artifact the paper's measurements would
// misattribute to architecture.
//
// The suite mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer with a Run function over a type-checked Pass — but is
// self-contained on the standard library (go/ast, go/types), with
// package loading done by internal/analysis/load via `go list
// -export` build-cache export data. It runs from cmd/niovet (both
// standalone and as a `go vet -vettool`), from `make lint`, and each
// analyzer is exercised against seeded-violation fixtures by the
// analysistest harness in this package's tests.
//
// Analyzers:
//
//   - syscallerr: raw syscall.Read/Write/Accept4/EpollWait/Sendfile
//     error results must classify EINTR and EAGAIN (or sit inside a
//     retryEINTR closure) — bare `err != nil` handling is flagged.
//   - fdlife: fds from syscall.Socket/Accept4/Open/EpollCreate1/Dup
//     must reach syscall.Close on all paths, including error returns.
//   - refbalance: refcounted entries from Get-style acquires must be
//     Released on every control-flow path that does not hand the
//     reference off.
//   - statssync: a struct field must not be accessed both atomically
//     and non-atomically.
//   - nonblock: fds registered with a reactor Poller must be
//     non-blocking at creation or via SetNonblock.
//
// The second generation (niovet v2) adds an intra-package call-graph
// reachability engine (callgraph.go) and a `//nio:` annotation
// grammar (directive.go), and four analyzers built on them:
//
//   - loopown: //nio:loop-owned state must never be touched from
//     off-loop contexts (spawned goroutines, timers, escaped
//     handlers, the exported API) without an atomic/channel seam.
//   - loopblock: nothing blocking is synchronously reachable from a
//     //nio:loop event-loop root.
//   - hotalloc: //nio:hot functions contain no allocating idiom.
//   - detrand: the determinism-contract packages (faultline,
//     sysfault, sim*) keep wall clocks, math/rand globals, and map
//     iteration out of seeded decision paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and to
	// select analyzers on the niovet command line.
	Name string
	// Doc is the one-paragraph description of the rule it enforces.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// findings through pass.Report.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Report   func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Syscallerr, FDLife, RefBalance, StatsSync, Nonblock,
		Loopown, Loopblock, Hotalloc, Detrand,
	}
}
