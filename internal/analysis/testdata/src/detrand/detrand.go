// Fixture for the detrand analyzer. The package name carries the
// sim* prefix, so it is under the determinism contract: seeded
// decision paths must not read wall clocks or iterate maps, and the
// math/rand globals are banned outright.
package simfix

import (
	"math/rand"
	"time"

	"repro/internal/dist"
)

type chooser struct {
	rng   *dist.RNG
	sites map[string]int
}

// next draws from the seeded RNG: it is a decision root.
func (c *chooser) next() int {
	if c.rng.Float64() < 0.5 {
		return c.weigh()
	}
	return int(time.Now().UnixNano()) // want "time.Now in decision path"
}

// weigh is reachable from the decision root: still a decision path.
func (c *chooser) weigh() int {
	total := 0
	for _, v := range c.sites { // want "map iteration in decision path"
		total += v
	}
	return total
}

// pace is wall-clock pacing with no seeded randomness: legal. The
// emulated link schedules real transmissions in real time.
func pace(started time.Time) time.Duration {
	return time.Since(started)
}

// jitter uses the shared global source: banned anywhere in a
// contract package, decision path or not.
func jitter() int {
	return rand.Intn(10) // want "math/rand.Intn uses the shared non-seeded source"
}

// seeded constructs an explicitly seeded generator: constructors are
// fine, the globals are not.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// pickIndex is annotated as a decision root without touching an RNG
// directly (it hashes, say).
//
//nio:det
func pickIndex(n int) int {
	d := time.Now() // want "time.Now in decision path"
	_ = d
	return n % 7
}

// sum walks a map on a decision path, waived because the fold is
// order-insensitive.
func (c *chooser) sum() int {
	if c.rng == nil {
		return 0
	}
	t := 0
	for _, v := range c.sites { //nio:ok detrand -- order-insensitive fold
		t += v
	}
	return t
}

var (
	_ = pace
	_ = jitter
	_ = seeded
	_ = pickIndex
	_ = (*chooser).next
	_ = (*chooser).sum
)
