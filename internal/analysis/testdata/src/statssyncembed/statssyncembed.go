// Regression fixture for statssync: mixed atomic/plain access must
// be detected when the field is reached through struct embedding and
// when the atomic operation is invoked through a method value bound
// to a local variable.
package fixture

import "sync/atomic"

type counters struct {
	hits int64
}

type outer struct {
	counters
}

// bumpEmbedded updates the promoted field atomically, direct call.
func (o *outer) bumpEmbedded() {
	atomic.AddInt64(&o.hits, 1)
}

// readEmbedded reads it plainly through the embedding: mixed.
func (o *outer) readEmbedded() int64 {
	return o.hits // want "accessed both atomically"
}

type mvStats struct {
	ops int64
}

// bump routes the atomic op through a local method value — the
// discipline is still atomic and must be tracked as such.
func (s *mvStats) bump() {
	add := atomic.AddInt64
	add(&s.ops, 1)
}

// read is therefore mixing.
func (s *mvStats) read() int64 {
	return s.ops // want "accessed both atomically"
}

type mvEmbed struct {
	counters
}

// bumpMV combines both: method value plus promotion.
func (m *mvEmbed) bumpMV() {
	add := atomic.AddInt64
	add(&m.hits, 1)
}

// cleanMV keeps one discipline through method values only: quiet.
type cleanMV struct {
	n int64
}

func (c *cleanMV) bump() {
	add := atomic.AddInt64
	add(&c.n, 1)
}

func (c *cleanMV) load() int64 {
	loadOp := atomic.LoadInt64
	return loadOp(&c.n)
}
