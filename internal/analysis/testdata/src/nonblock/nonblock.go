// Fixture for the nonblock analyzer: fds registered with a Poller
// must be non-blocking before registration.
package fixture

import "syscall"

// Poller mimics the reactor's register surface; the analyzer matches
// the (name, method, first-parameter) shape structurally.
type Poller struct{}

func (p *Poller) Add(fd int, events uint32) error    { return nil }
func (p *Poller) Modify(fd int, events uint32) error { return nil }

// bad: a blocking socket goes straight into the poller.
func registerBlocking(p *Poller) error {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		return err
	}
	return p.Add(fd, 1) // want "still blocking"
}

// bad: Accept4 without SOCK_NONBLOCK yields a blocking conn fd.
func acceptAndRegister(p *Poller, lfd int) error {
	nfd, _, err := syscall.Accept4(lfd, 0)
	if err != nil {
		return err
	}
	return p.Modify(nfd, 1) // want "still blocking"
}

// good: non-blocking at creation.
func registerNonblockFlag(p *Poller) error {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM|syscall.SOCK_NONBLOCK, 0)
	if err != nil {
		return err
	}
	return p.Add(fd, 1)
}

// good: made non-blocking after the fact.
func registerSetNonblock(p *Poller) error {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		return err
	}
	if err := syscall.SetNonblock(fd, true); err != nil {
		return err
	}
	return p.Modify(fd, 1)
}

// good: a parameter's provenance is unknown; the analyzer does not
// judge what it cannot see.
func registerParam(p *Poller, fd int) error {
	return p.Add(fd, 1)
}
