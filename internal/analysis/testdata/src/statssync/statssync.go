// Fixture for the statssync analyzer: a struct field must not be
// accessed both atomically and non-atomically.
package fixture

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	errs   int64
}

// hits is incremented atomically here...
func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
}

// ...and read plainly here: that pair is a data race by construction.
func (s *stats) snapshot() (int64, int64) {
	return s.hits, atomic.LoadInt64(&s.misses) // want "accessed both atomically"
}

// good: misses is atomic at every site.
func (s *stats) miss() {
	atomic.AddInt64(&s.misses, 1)
}

// good: errs is plain at every site (one consistent discipline; a
// mutex elsewhere is the caller's contract).
func (s *stats) err() {
	s.errs++
}

func (s *stats) errCount() int64 {
	return s.errs
}

func bump(p *int64) { *p++ }

// good: the address escapes to a helper the analysis cannot see into;
// it stays silent rather than guess.
func (s *stats) delegate() {
	bump(&s.errs)
}
