// Negative fixture for the loopown analyzer: a package with no
// //nio: annotations gets no diagnostics, no matter how freely it
// shares state across goroutines. Un-annotated cross-goroutine
// access in non-reactor code is the race detector's territory;
// loopown only enforces ownership someone has claimed.
package fixture

type gauge struct{ n int64 }

type tracker struct {
	g     gauge
	conns map[int]bool
	inbox chan int
}

func (t *tracker) run() {
	go func() {
		t.g.n++ // un-annotated: quiet
		t.conns[1] = true
	}()
	go t.drain()
	t.g.n++
}

func (t *tracker) drain() {
	for n := range t.inbox {
		t.conns[n] = false
	}
}

// Read is exported API touching the same plain state: still quiet.
func (t *tracker) Read() int64 { return t.g.n }
