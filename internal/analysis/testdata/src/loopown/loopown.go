// Fixture for the loopown analyzer: //nio:loop-owned state may only
// be touched from code reachable from a //nio:loop root; off-loop
// access must go through an atomic or channel seam.
package fixture

import (
	"sync/atomic"
	"time"
)

// connTable is per-loop state: the type-level annotation owns every
// field.
//
//nio:loop-owned
type connTable struct {
	conns map[int]*conn
	depth int64
}

type conn struct{ fd int }

type server struct {
	table connTable
	// open is the cross-thread stats seam.
	open atomic.Int64
	// inbox hands connections to the loop.
	inbox chan *conn
	// queue is loop-owned by field-level annotation.
	//nio:loop-owned
	queue []*conn
	// wake is annotated, but channels are a seam by construction.
	//nio:loop-owned
	wake chan struct{}
}

// loop is the event-loop root: it owns the table outright.
//
//nio:loop
func (s *server) loop() {
	for {
		s.table.conns[1] = &conn{fd: 1}
		s.table.depth++
		s.queue = append(s.queue, nil)
		s.open.Add(1)
		select {
		case c := <-s.inbox:
			s.table.conns[c.fd] = c
		default:
			return
		}
	}
}

// Start spawns the loop goroutine (a loop, not a bystander) and the
// off-loop prober.
func (s *server) Start() {
	go s.loop()
	go s.prober()
}

// prober runs on its own goroutine: only the seams are legal.
func (s *server) prober() {
	s.open.Add(1)               // good: atomic seam
	s.inbox <- &conn{fd: 2}     // good: channel seam
	s.wake <- struct{}{}        // good: annotated, but a channel is a seam
	s.table.depth++             // want "loop-owned field depth"
	if len(s.table.conns) > 0 { // want "loop-owned field conns"
		return
	}
}

// Stats is exported API — callable from any goroutine.
func (s *server) Stats() int {
	return len(s.queue) // want "loop-owned field queue"
}

// Snapshot documents a deliberate pre-start access with a waiver.
func (s *server) Snapshot() int {
	return int(s.table.depth) //nio:ok loopown -- pre-start only, loop not yet launched
}

// arm registers a timer callback: it fires off-loop.
func (s *server) arm() {
	time.AfterFunc(time.Second, func() {
		s.table.depth++ // want "loop-owned field depth"
	})
}

// Export leaks a method value to another package: it escapes and may
// run anywhere.
func (s *server) Export() func() int {
	return s.depthNow
}

func (s *server) depthNow() int {
	return int(s.table.depth) // want "loop-owned field depth"
}

// newServer builds the value before publishing it: the constructor
// exemption applies.
func newServer() *server {
	s := &server{inbox: make(chan *conn, 8)}
	s.table.conns = map[int]*conn{}
	s.queue = make([]*conn, 0, 8)
	return s
}

var _ = newServer
var _ = (*server).arm
