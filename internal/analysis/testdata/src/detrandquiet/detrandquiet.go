// Negative fixture for the detrand analyzer: this package is NOT
// under the determinism contract (its name is neither faultline,
// sysfault, nor sim*), so the same idioms that light up the detrand
// fixture stay quiet here.
package fixture

import (
	"math/rand"
	"time"

	"repro/internal/dist"
)

type sampler struct {
	rng   *dist.RNG
	sites map[string]int
}

func (s *sampler) next() int {
	if s.rng.Float64() < 0.5 {
		total := 0
		for _, v := range s.sites { // not a contract package: quiet
			total += v
		}
		return total
	}
	return int(time.Now().UnixNano()) // quiet
}

func jitter() int {
	return rand.Intn(10) // quiet
}

var (
	_ = jitter
	_ = (*sampler).next
)
