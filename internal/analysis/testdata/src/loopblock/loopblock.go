// Fixture for the loopblock analyzer: nothing blocking may be
// synchronously reachable from a //nio:loop root.
package fixture

import (
	"net"
	"os"
	"sync"
	"time"
)

type loopSrv struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	inbox chan int
	done  chan struct{}
	c     net.Conn
	f     *os.File
	buf   [64]byte
}

// loop is the event-loop root.
//
//nio:loop
func (s *loopSrv) loop() {
	for {
		s.drain()
		s.tick()
		s.inject()
		if s.step() {
			return
		}
	}
}

// drain is the non-blocking inbox idiom: legal.
func (s *loopSrv) drain() {
	select {
	case n := <-s.inbox:
		_ = n
	default:
	}
}

// tick commits every blocking sin reachable from the loop.
func (s *loopSrv) tick() {
	time.Sleep(time.Millisecond) // want "time.Sleep on the event loop"
	s.mu.Lock()                  // want "Mutex.Lock"
	defer s.mu.Unlock()
	s.wg.Wait()  // want "WaitGroup.Wait"
	s.inbox <- 1 // want "blocking channel send"
	<-s.done     // want "blocking channel receive"
}

// step parks on a select with no default: the loop stalls.
func (s *loopSrv) step() bool {
	select { // want "select without default"
	case <-s.done:
		return true
	case n := <-s.inbox:
		return n == 0
	}
}

// handler dispatch: the blocking I/O is reached through an interface
// method, resolved to every implementation in the package.
type handler interface{ handle(s *loopSrv) }

type fileHandler struct{}

func (fileHandler) handle(s *loopSrv) {
	s.f.Read(s.buf[:]) // want "blocking os.File I/O"
	s.c.Write(nil)     // want "blocking net I/O"
}

func (s *loopSrv) dispatch(h handler) { h.handle(s) }

//nio:loop
func (s *loopSrv) loop2() {
	s.dispatch(fileHandler{})
}

// offLoop blocks legally: it is not reachable from any loop root.
func (s *loopSrv) offLoop() {
	time.Sleep(time.Second)
	s.mu.Lock()
	s.wg.Wait()
	<-s.done
	s.mu.Unlock()
}

// inject is a deliberate, documented stall (fault injection).
func (s *loopSrv) inject() {
	time.Sleep(time.Millisecond) //nio:ok loopblock -- deliberate fault-injection stall
}

var _ = (*loopSrv).offLoop
