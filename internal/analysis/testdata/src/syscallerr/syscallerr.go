// Fixture for the syscallerr analyzer: audited syscalls must classify
// EINTR and EAGAIN (or delegate EINTR to a retryEINTR helper).
package fixture

import (
	"errors"
	"syscall"
)

// bad: a bare err != nil treats both transient errnos as fatal.
func bareRead(fd int, buf []byte) int {
	n, err := syscall.Read(fd, buf) // want "EINTR" "EAGAIN"
	if err != nil {
		return -1
	}
	return n
}

// bad: EINTR handled, EAGAIN still fatal.
func halfClassified(fd int, buf []byte) int {
	n, err := syscall.Read(fd, buf) // want "EAGAIN"
	if err == syscall.EINTR {
		return 0
	}
	if err != nil {
		return -1
	}
	return n
}

// bad: EpollWait is interrupted by every signal; EINTR must be
// classified (EAGAIN is not demanded here).
func waitBare(epfd int, events []syscall.EpollEvent) int {
	n, err := syscall.EpollWait(epfd, events, -1) // want "EINTR"
	if err != nil {
		return -1
	}
	return n
}

// good: both errnos classified with comparisons.
func classifiedRead(fd int, buf []byte) int {
	for {
		n, err := syscall.Read(fd, buf)
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			return 0
		}
		if err != nil {
			return -1
		}
		return n
	}
}

// good: switch cases count as classification.
func switchWrite(fd int, buf []byte) bool {
	n, err := syscall.Write(fd, buf)
	switch err {
	case syscall.EINTR, syscall.EAGAIN:
		return false
	case nil:
		return n == len(buf)
	}
	return false
}

// good: errors.Is counts as classification.
func waitIs(epfd int, events []syscall.EpollEvent) int {
	n, err := syscall.EpollWait(epfd, events, -1)
	if errors.Is(err, syscall.EINTR) {
		return 0
	}
	if err != nil {
		return -1
	}
	return n
}

// retryEINTR is the blessed retry helper shape: it owns the EINTR
// classification for every closure passed to it.
func retryEINTR(op func() (int, error)) (int, error) {
	for {
		n, err := op()
		if err != syscall.EINTR {
			return n, err
		}
	}
}

// good: EINTR delegated to the helper, EAGAIN classified locally.
func viaHelper(fd int, buf []byte) int {
	n, err := retryEINTR(func() (int, error) { return syscall.Read(fd, buf) })
	if err == syscall.EAGAIN {
		return 0
	}
	if err != nil {
		return -1
	}
	return n
}

// good: discarding the error is a deliberate decision, not bare
// handling (the wakeup-pipe write pattern).
func fireAndForget(fd int) {
	_, _ = syscall.Write(fd, []byte{1})
}
