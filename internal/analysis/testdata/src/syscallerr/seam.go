// Seam cases: sysfault wrappers absorb EINTR internally, so their call
// sites owe only the EAGAIN classification — and still owe that.
package fixture

import (
	"syscall"

	"repro/internal/sysfault"
)

// bad: the seam hands EAGAIN through raw; a bare err != nil treats
// every would-block as fatal.
func seamBareRead(fd int, buf []byte) int {
	n, err := sysfault.Read(0, fd, buf) // want "EAGAIN"
	if err != nil {
		return -1
	}
	return n
}

// bad: same for the write side.
func seamBareWrite(fd int, buf []byte) bool {
	n, err := sysfault.Write(0, fd, buf) // want "EAGAIN"
	if err != nil {
		return false
	}
	return n == len(buf)
}

// good: EAGAIN classified; no EINTR classification is demanded because
// the wrapper's retry loop owns it.
func seamClassifiedRead(fd int, buf []byte) int {
	n, err := sysfault.Read(0, fd, buf)
	if err == syscall.EAGAIN {
		return 0
	}
	if err != nil {
		return -1
	}
	return n
}

// good: errors.Is-free switch classification works for seam sites too.
func seamAccept(lfd int) int {
	fd, err := sysfault.Accept4(0, lfd, syscall.SOCK_NONBLOCK)
	switch err {
	case syscall.EAGAIN:
		return -1
	case nil:
		return fd
	}
	return -1
}

// good: discarding the result is a deliberate decision, as with raw
// syscalls.
func seamFireAndForget(fd int) {
	_, _ = sysfault.Write(0, fd, []byte{1})
}

// good: EpollWait through the seam surfaces neither EINTR (absorbed)
// nor EAGAIN (cannot happen), so a bare site is fine.
func seamWait(epfd int, events []syscall.EpollEvent) int {
	n, err := sysfault.EpollWait(0, epfd, events, -1)
	if err != nil {
		return -1
	}
	return n
}
