// Fixture for the syscallerr seam-wrapper exemption: inside a package
// named sysfault, the wrapper whose name matches the syscall is the one
// blessed home of a bare call site (its retry loop absorbs EINTR and
// its contract hands EAGAIN to the caller raw). Everything else in the
// package — and any un-routed bare syscall — still fails the lint.
package sysfault

import "syscall"

// good: the same-named wrapper is exempt — this is the seam itself.
func Read(fd int, p []byte) (int, error) {
	for {
		n, err := syscall.Read(fd, p)
		if err == syscall.EINTR {
			continue
		}
		return n, err
	}
}

// good: same shape for the write wrapper.
func Write(fd int, p []byte) (int, error) {
	for {
		n, err := syscall.Write(fd, p)
		if err == syscall.EINTR {
			continue
		}
		return n, err
	}
}

// bad: a helper with a different name gets no exemption — a bare
// un-routed syscall site fails the lint even inside this package.
func drainPipe(fd int, p []byte) int {
	n, err := syscall.Read(fd, p) // want "EINTR" "EAGAIN"
	if err != nil {
		return -1
	}
	return n
}

// bad: a wrapper for one syscall is not a licence for another — the
// exemption is keyed on the exact name match.
func Accept4(lfd, flags int) (int, error) {
	nfd, _, err := syscall.Accept4(lfd, flags)
	if err != nil {
		return -1, err
	}
	_, werr := syscall.Write(nfd, nil) // want "EINTR" "EAGAIN"
	if werr != nil {
		return -1, werr
	}
	return nfd, nil
}
