// Fixture for the refbalance analyzer: docroot cache entries acquired
// with Get must be Released on every path that does not hand the
// reference to a new owner.
package fixture

import "repro/internal/docroot"

// bad: the entry's refcount is taken and never given back — the
// underlying fd can never be closed.
func neverReleased(r *docroot.Root, p string) int {
	ent, err := r.Get(p) // want "never passed to Release"
	if err != nil {
		return 0
	}
	return int(ent.Size)
}

// bad: the empty-file early return leaks the reference.
func leakOnEmpty(r *docroot.Root, p string) ([]byte, error) {
	ent, err := r.Get(p)
	if err != nil {
		return nil, err
	}
	if ent.Size == 0 {
		return nil, nil // want "may leak"
	}
	body := ent.Body()
	ent.Release()
	return body, nil
}

// good: released on the success path, and the producer's failure
// check is exempt (no entry exists there).
func balanced(r *docroot.Root, p string) int {
	ent, err := r.Get(p)
	if err != nil {
		return 0
	}
	n := len(ent.Body())
	ent.Release()
	return n
}

// good: a deferred release settles every later path.
func deferred(r *docroot.Root, p string) (int64, error) {
	ent, err := r.Get(p)
	if err != nil {
		return 0, err
	}
	defer ent.Release()
	if ent.Size == 0 {
		return 0, nil
	}
	return ent.Size, nil
}

type pending struct {
	ent *docroot.Entry
}

// good: storing the entry hands the reference to the struct's owner.
func handOff(r *docroot.Root, p string) (*pending, error) {
	ent, err := r.Get(p)
	if err != nil {
		return nil, err
	}
	return &pending{ent: ent}, nil
}

func consume(ent *docroot.Entry) {}

// good: passing the entry along transfers the reference.
func delegated(r *docroot.Root, p string) error {
	ent, err := r.Get(p)
	if err != nil {
		return err
	}
	consume(ent)
	return nil
}
