// Seam cases: descriptors minted through the sysfault wrappers carry
// the same close-on-every-path obligation, and sysfault.Close settles
// it (the seam always performs the real close; injected errnos only
// change what it reports).
package fixture

import (
	"syscall"

	"repro/internal/sysfault"
)

// bad: a seam-minted socket is configured but never closed and never
// escapes.
func seamNeverClosed() error {
	fd, err := sysfault.Socket(0, syscall.AF_INET, syscall.SOCK_STREAM, 0) // want "never passed to syscall.Close"
	if err != nil {
		return err
	}
	return syscall.Listen(fd, 128)
}

// bad: the connect error path returns without closing.
func seamLeakOnError(sa syscall.Sockaddr) (int, error) {
	fd, err := sysfault.Socket(0, syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		return -1, err
	}
	if err := sysfault.Connect(0, fd, sa); err != nil {
		return -1, err // want "may leak"
	}
	return fd, nil
}

// good: sysfault.Close releases on every path.
func seamClosedOnError(sa syscall.Sockaddr) (int, error) {
	fd, err := sysfault.Socket(0, syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		return -1, err
	}
	if err := sysfault.Connect(0, fd, sa); err != nil {
		_ = sysfault.Close(0, fd)
		return -1, err
	}
	return fd, nil
}

// good: seam-accepted fds may be released with the raw close too.
func seamAcceptClose(lfd int) {
	fd, err := sysfault.Accept4(0, lfd, syscall.SOCK_NONBLOCK)
	if err != nil {
		return
	}
	syscall.Close(fd)
}

// good: returning the fd transfers ownership to the caller.
func seamHandOff() (int, error) {
	fd, err := sysfault.Socket(0, syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		return -1, err
	}
	return fd, nil
}
