// Fixture for the fdlife analyzer: descriptors from the syscall
// producers must reach syscall.Close on every path, or be handed to a
// new owner.
package fixture

import "syscall"

// bad: the socket is configured and listened on but never closed and
// never escapes the function.
func neverClosed() error {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM, 0) // want "never passed to syscall.Close"
	if err != nil {
		return err
	}
	if err := syscall.Bind(fd, &syscall.SockaddrInet4{}); err != nil {
		return err
	}
	return syscall.Listen(fd, 128)
}

// bad: the Fstat error path returns without closing.
func leakOnError(path string) (int, error) {
	fd, err := syscall.Open(path, syscall.O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil {
		return 0, err // want "may leak"
	}
	syscall.Close(fd)
	return int(st.Size), nil
}

// good: closed on the error path too.
func closedOnError(path string) (int, error) {
	fd, err := syscall.Open(path, syscall.O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil {
		syscall.Close(fd)
		return 0, err
	}
	syscall.Close(fd)
	return int(st.Size), nil
}

// good: a deferred close settles every later path.
func deferred(path string) (int64, error) {
	fd, err := syscall.Open(path, syscall.O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	defer syscall.Close(fd)
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil {
		return 0, err
	}
	return st.Size, nil
}

// good: returning the fd transfers ownership to the caller.
func handOff() (int, error) {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM|syscall.SOCK_NONBLOCK, 0)
	if err != nil {
		return -1, err
	}
	return fd, nil
}

func adopt(fd int) {}

// good: passing the fd to a non-syscall function transfers ownership.
func delegated() error {
	fd, err := syscall.EpollCreate1(0)
	if err != nil {
		return err
	}
	adopt(fd)
	return nil
}

// good: a switch on the producer's error is the producer's own
// failure check — no fd exists on the non-nil paths.
func switchGuard() int {
	fd, err := syscall.EpollCreate1(0)
	switch err {
	case nil:
	default:
		return -1
	}
	syscall.Close(fd)
	return 0
}
