// Fixture for the hotalloc analyzer: //nio:hot functions must not
// contain allocating idioms; error-return construction and
// invariant-guarded blocks are the sanctioned slow paths.
package fixture

import (
	"fmt"

	"repro/internal/invariant"
)

type wire struct {
	buf  []byte
	name string
}

func sink(x int)             { _ = x }
func sinkS(s string)         { _ = s }
func sinkB(b []byte)         { _ = b }
func sinkW(w *wire)          { _ = w }
func sinkI(x []int)          { _ = x }
func sinkM(m map[string]int) { _ = m }
func sinkF(f func() int)     { _ = f }

func logf(format string, args ...any) { _ = format }

// serialize is hot: every allocating idiom below is a finding.
//
//nio:hot
func (w *wire) serialize(dst []byte, n int) []byte {
	dst = append(dst, w.buf...)    // good: append into the caller's buffer
	sinkS(string(w.buf))           // want "conversion allocates"
	sinkB([]byte(w.name))          // want "conversion allocates"
	sinkB([]byte("literal"))       // good: constant conversion, folded at compile time
	sinkB(make([]byte, n))         // want "heap allocation \\(make\\)"
	sinkW(new(wire))               // want "heap allocation \\(new\\)"
	sinkW(&wire{})                 // want "heap allocation \\(&composite\\)"
	sinkI([]int{1, 2})             // want "heap allocation \\(slice literal\\)"
	sinkM(map[string]int{})        // want "heap allocation \\(map literal\\)"
	fmt.Println(w.name)            // want "fmt.Println call"
	sinkF(func() int { return n }) // want "capturing closure"
	sinkF(func() int { return 7 }) // good: captures nothing
	v := wire{}                    // good: value composite stays on the stack
	sink(len(v.buf))
	return dst
}

// parse is hot, but its failure exits are allowed to allocate.
//
//nio:hot
func (w *wire) parse(line []byte) (int, error) {
	if len(line) == 0 {
		// good: constructing the error that aborts the hot path.
		return 0, fmt.Errorf("empty line in %q", w.name)
	}
	if invariant.Enabled {
		fmt.Println("trace", len(line)) // good: compiled out by default
	}
	logf("len=%d", len(line)) // want "interface boxing"
	return len(line), nil
}

// waived: a measured, deliberate allocation.
//
//nio:hot
func (w *wire) grow(n int) {
	w.buf = make([]byte, n) //nio:ok hotalloc -- one-time lazy buffer growth
}

// cold is unannotated: anything goes.
func cold() *wire {
	fmt.Println("cold")
	return &wire{buf: make([]byte, 16)}
}

var _ = cold
