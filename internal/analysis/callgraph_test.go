package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// checkSource type-checks one import-free source file into a Pass —
// the engine tests need no export data, so they run without the
// go-list loader.
func checkSource(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("cgtest", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Pass{
		Fset:   fset,
		Files:  []*ast.File{f},
		Pkg:    pkg,
		Info:   info,
		Report: func(Diagnostic) {},
	}
}

// graphOf builds the call graph of one source file.
func graphOf(t *testing.T, src string) *callGraph {
	t.Helper()
	return buildCallGraph(checkSource(t, src), nil)
}

// names renders a node set as sorted declared-function names,
// ignoring literals.
func names(set map[*cgNode]bool) []string {
	var out []string
	for n := range set {
		if n.decl != nil {
			out = append(out, n.name)
		}
	}
	sort.Strings(out)
	return out
}

func equalNames(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestCallGraphEdges drives the resolver through its table of edge
// shapes: direct calls, method calls, interface dispatch, spawns,
// and escapes.
func TestCallGraphEdges(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// reach asserts: from each root (sync-only), these decls are
		// reachable.
		root string
		sync []string
		all  []string // with spawn edges followed
	}{
		{
			name: "direct calls",
			src: `package cgtest
func a() { b(); c() }
func b() { c() }
func c() {}
func d() {}
var _ = d`,
			root: "a",
			sync: []string{"a", "b", "c"},
			all:  []string{"a", "b", "c"},
		},
		{
			name: "method calls",
			src: `package cgtest
type s struct{}
func (v *s) a() { v.b() }
func (v *s) b() {}`,
			root: "s.a",
			sync: []string{"s.a", "s.b"},
			all:  []string{"s.a", "s.b"},
		},
		{
			name: "interface dispatch reaches every implementation",
			src: `package cgtest
type handler interface{ handle() }
type h1 struct{}
func (h1) handle() {}
type h2 struct{}
func (*h2) handle() {}
type notHandler struct{}
func (notHandler) other() {}
func dispatch(h handler) { h.handle() }
var _ = notHandler.other`,
			root: "dispatch",
			sync: []string{"dispatch", "h1.handle", "h2.handle"},
			all:  []string{"dispatch", "h1.handle", "h2.handle"},
		},
		{
			name: "goroutine spawn is not a synchronous edge",
			src: `package cgtest
func a() { go worker(); helper() }
func worker() { helper2() }
func helper() {}
func helper2() {}`,
			root: "a",
			sync: []string{"a", "helper"},
			all:  []string{"a", "helper", "helper2", "worker"},
		},
		{
			name: "spawned literal separates its body from the encloser",
			src: `package cgtest
func a() {
	go func() { worker() }()
	func() { helper() }()
}
func worker() {}
func helper() {}`,
			root: "a",
			sync: []string{"a", "helper"},
			all:  []string{"a", "helper", "worker"},
		},
		{
			name: "deferred call stays synchronous",
			src: `package cgtest
func a() { defer cleanup() }
func cleanup() {}`,
			root: "a",
			sync: []string{"a", "cleanup"},
			all:  []string{"a", "cleanup"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := graphOf(t, tc.src)
			root, err := g.nodeByName(tc.root)
			if err != nil {
				t.Fatal(err)
			}
			if got := names(g.reachFrom([]*cgNode{root}, false)); !equalNames(got, tc.sync) {
				t.Errorf("sync reach from %s = %v, want %v", tc.root, got, tc.sync)
			}
			if got := names(g.reachFrom([]*cgNode{root}, true)); !equalNames(got, tc.all) {
				t.Errorf("full reach from %s = %v, want %v", tc.root, got, tc.all)
			}
		})
	}
}

// TestLoopOffLoopSets exercises the loop/off-loop partition: `go` to
// a //nio:loop function starts a loop; exported API, spawn targets,
// and escaped method values are off-loop roots.
func TestLoopOffLoopSets(t *testing.T) {
	g := graphOf(t, `package cgtest
type s struct{}

//nio:loop
func (v *s) loop() { v.onEvent() }

func (v *s) onEvent() {}

func (v *s) Start() {
	go v.loop()
	go v.prober()
}

func (v *s) prober() { v.probeOnce() }
func (v *s) probeOnce() {}

func (v *s) Export() func() { return v.escaped }
func (v *s) escaped() {}

func (v *s) orphan() {}
var _ = (*s).orphan`)

	loop := names(g.loopSet())
	if want := []string{"s.loop", "s.onEvent"}; !equalNames(loop, want) {
		t.Errorf("loopSet = %v, want %v", loop, want)
	}
	off := names(g.offLoopSet())
	// Start (exported), prober/probeOnce (spawned), Export (exported),
	// escaped (method value escapes), orphan (escapes via package var).
	if want := []string{"s.Export", "s.Start", "s.escaped", "s.orphan", "s.probeOnce", "s.prober"}; !equalNames(off, want) {
		t.Errorf("offLoopSet = %v, want %v", off, want)
	}
	for _, n := range off {
		if n == "s.loop" || n == "s.onEvent" {
			t.Errorf("loop context %s leaked into the off-loop set", n)
		}
	}
}

// TestDirectiveParsing covers the annotation grammar end to end.
func TestDirectiveParsing(t *testing.T) {
	pass := checkSource(t, `package cgtest

//nio:loop
func loop() {}

// hot path serializer.
//
//nio:hot
func serialize() {}

//nio:det
func decide() {}

//nio:loop-owned
type table struct {
	conns map[int]bool
	depth int64
}

type server struct {
	t table
	//nio:loop-owned
	queue []int
	open  int64
}

func waived() {
	_ = 1 //nio:ok loopblock -- documented stall
	_ = 2 //nio:ok loopown hotalloc
}

var _, _, _, _ = loop, serialize, decide, waived`)
	dirs := collectDirectives(pass)

	wantFuncs := map[string]map[*types.Func]bool{
		"loop": dirs.loopFuncs, "serialize": dirs.hotFuncs, "decide": dirs.detFuncs,
	}
	for name, set := range wantFuncs {
		found := false
		for fn := range set {
			if fn.Name() == name {
				found = true
			}
		}
		if !found || len(set) != 1 {
			t.Errorf("directive set for %s: got %d entries, found=%v", name, len(set), found)
		}
	}

	var owned []string
	for v := range dirs.ownedFields {
		owned = append(owned, v.Name())
	}
	sort.Strings(owned)
	if want := []string{"conns", "depth", "queue"}; !equalNames(owned, want) {
		t.Errorf("ownedFields = %v, want %v", owned, want)
	}

	// Suppression lines: analyzer names resolved per line.
	find := func(line int, analyzer string) bool {
		return dirs.suppress["test.go"][line][analyzer]
	}
	type supCase struct {
		line     int
		analyzer string
		want     bool
	}
	for _, sc := range []supCase{
		{21, "loopblock", false}, // directive lines are looked up exactly
		{30, "loopown", false},
	} {
		_ = sc // positions checked structurally below instead
	}
	found := 0
	for _, lines := range dirs.suppress {
		for _, set := range lines {
			if set["loopblock"] || set["loopown"] || set["hotalloc"] {
				found++
			}
		}
	}
	if found != 2 {
		t.Errorf("expected 2 suppression lines, found %d", found)
	}
	_ = find
}
