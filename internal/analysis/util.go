package analysis

import (
	"go/ast"
	"go/types"
)

// walkStack traverses root, calling fn for every node with the stack
// of its ancestors (outermost first, excluding the node itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// pkgFuncName returns the function name if call is a direct call to a
// package-level function of the package with import path pkgPath
// ("syscall", "errors", …), else "".
func pkgFuncName(info *types.Info, call *ast.CallExpr, pkgPath string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return ""
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		// A method of some type in pkgPath — e.g. (syscall.RawConn).Write
		// — must not be mistaken for the package-level syscall.Write.
		return ""
	}
	return f.Name()
}

// isPkgObject reports whether expr denotes the named package-level
// object (constant, variable, or function) of the given package path —
// e.g. the expression `syscall.EINTR`.
func isPkgObject(info *types.Info, expr ast.Expr, pkgPath, name string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// calleeName returns the bare name of the function or method being
// called, resolved syntactically: `retryEINTR(...)`, `pkg.F(...)` and
// `x.M(...)` all yield the last identifier. Returns "" for indirect
// calls through non-selector expressions.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// argOf returns the index of the call argument that contains (or is)
// expr, or -1 when expr is not inside any argument (e.g. it is in the
// callee position).
func argOf(call *ast.CallExpr, expr ast.Node) int {
	for i, a := range call.Args {
		if containsNode(a, expr) {
			return i
		}
	}
	return -1
}

// containsNode reports whether needle appears within root.
func containsNode(root, needle ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}

// usesObject reports whether any identifier within root resolves to
// obj.
func usesObject(info *types.Info, root ast.Node, obj types.Object) bool {
	if root == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcDecls yields every function declaration with a body in the pass.
func funcDecls(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
