// Package load type-checks Go packages for the analysis suite without
// any dependency outside the standard library.
//
// The trick: `go list -e -export -deps -json` emits, for every package
// in the dependency closure, the path of its compiled export data in
// the build cache. Feeding those files to the gc importer gives the
// type checker everything it needs to check the target packages from
// source — no golang.org/x/tools, no network, no GOPATH archaeology.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns in dir, parses the non-dependency matches, and
// type-checks them against export data from the build cache. Packages
// that fail to list or parse produce an error; the caller decides how
// fatal that is.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exp := newExportSet(entries)
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", e.ImportPath, e.Error.Err)
		}
		p, err := Check(fset, exp, e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goList runs `go list -e -export -deps -json` and decodes the JSON
// stream.
func goList(dir string, patterns ...string) ([]*listEntry, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Standard,DepOnly,Export,GoFiles,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var entries []*listEntry
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	return entries, nil
}

// ExportSet resolves import paths to compiled export data and caches
// the packages the importer materializes from it.
type ExportSet struct {
	files     map[string]string // import path -> export file
	importMap map[string]string // source-level path -> resolved path
	imp       types.ImporterFrom
}

// LoadExports lists patterns in dir and returns only the export set —
// the type-checking substrate — without checking any source. The
// analysistest harness uses this to check fixture packages against the
// repo's real dependency closure.
func LoadExports(dir string, patterns ...string) (*ExportSet, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return newExportSet(entries), nil
}

// newExportSet indexes the export files of every listed entry.
func newExportSet(entries []*listEntry) *ExportSet {
	files := map[string]string{}
	importMap := map[string]string{}
	for _, e := range entries {
		if e.Export != "" {
			files[e.ImportPath] = e.Export
		}
		for from, to := range e.ImportMap {
			importMap[from] = to
		}
	}
	return NewExports(files, importMap)
}

// NewExports builds an export set from explicit maps: import path →
// export-data file, and source-level import path → resolved path.
// This is exactly the shape `go vet` hands a vettool in its .cfg
// (PackageFile and ImportMap).
func NewExports(files, importMap map[string]string) *ExportSet {
	s := &ExportSet{files: files, importMap: importMap}
	if s.files == nil {
		s.files = map[string]string{}
	}
	if s.importMap == nil {
		s.importMap = map[string]string{}
	}
	fset := token.NewFileSet()
	s.imp = importer.ForCompiler(fset, "gc", s.lookup).(types.ImporterFrom)
	return s
}

func (s *ExportSet) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := s.importMap[path]; ok {
		path = mapped
	}
	f, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// Importer returns the shared gc importer backed by the export set.
func (s *ExportSet) Importer() types.ImporterFrom { return s.imp }

// Check parses files (paths relative to dir) and type-checks them as
// one package against the export set.
func Check(fset *token.FileSet, exp *ExportSet, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: exp.Importer()}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}
