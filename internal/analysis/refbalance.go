package analysis

import (
	"go/ast"
	"go/types"
)

// RefBalance checks that every acquire of a refcounted resource — a
// call to a Get/Acquire function whose result type carries a Release
// method, like the docroot content cache's entries — is paired with
// Release on every control-flow path that does not hand the reference
// to a new owner. The docroot closes the shared fd when the refcount
// hits zero, so a missed Release is a silent fd leak and an extra
// Release closes a file out from under concurrent responses.
var RefBalance = &Analyzer{
	Name: "refbalance",
	Doc: "check that Get/Acquire calls returning a Release-able value (e.g. " +
		"docroot cache entries) are paired with Release on all control-flow " +
		"paths; storing or returning the value hands the reference off and " +
		"ends the check",
	Run: runRefBalance,
}

// refAcquireNames are the producer names the analyzer audits.
var refAcquireNames = map[string]bool{"Get": true, "Acquire": true}

func runRefBalance(pass *Pass) error {
	for _, fn := range funcDecls(pass) {
		walkStack(fn.Body, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !refAcquireNames[calleeName(call)] {
				return
			}
			idx, rt := releasableResult(pass, call)
			if idx < 0 {
				return
			}
			// The implementing package manipulates refcounts directly
			// (that is what the invariant layer audits); the pairing
			// rule is for consumers.
			if rt.Obj().Pkg() == pass.Pkg {
				return
			}
			acq := resolveAcquire(pass, fn, call, stack, idx)
			if acq == nil {
				return
			}
			acq.what = rt.Obj().Name() + " from " + calleeName(call)
			acq.must = "Release"
			checkPaired(pass, acq, classifyRefUse(pass))
		})
	}
	return nil
}

// releasableResult returns the index and named type of the call result
// that carries a `Release()` method, or (-1, nil).
func releasableResult(pass *Pass, call *ast.CallExpr) (int, *types.Named) {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return -1, nil
	}
	check := func(t types.Type) *types.Named {
		named, _ := types.Unalias(derefType(t)).(*types.Named)
		if named == nil || named.Obj().Pkg() == nil {
			return nil
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), false, named.Obj().Pkg(), "Release")
		m, ok := obj.(*types.Func)
		if !ok {
			return nil
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 0 {
			return nil
		}
		return named
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if named := check(tuple.At(i).Type()); named != nil {
				return i, named
			}
		}
		return -1, nil
	}
	if named := check(tv.Type); named != nil {
		return 0, named
	}
	return -1, nil
}

func derefType(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// classifyRefUse judges one use of a tracked entry: ent.Release()
// releases it; reading fields or calling other methods on it borrows;
// storing it (outSeg{ent: ent}), returning it, or passing it to a
// function transfers the reference to a new owner.
func classifyRefUse(pass *Pass) func(id *ast.Ident, stack []ast.Node) useClass {
	return func(id *ast.Ident, stack []ast.Node) useClass {
		for i := len(stack) - 1; i >= 0; i-- {
			switch anc := stack[i].(type) {
			case *ast.ParenExpr, *ast.KeyValueExpr:
				continue
			case *ast.SelectorExpr:
				if anc.X != ast.Expr(id) {
					return useBorrow
				}
				// ent.Release() releases; ent.Size / ent.Body() borrow.
				if i > 0 {
					if outer, ok := stack[i-1].(*ast.CallExpr); ok && outer.Fun == ast.Expr(anc) {
						if anc.Sel.Name == "Release" {
							return useRelease
						}
						return useBorrow // some other method
					}
				}
				return useBorrow // field read
			case *ast.CallExpr:
				if isConversion(pass.Info, anc) {
					continue
				}
				if argOf(anc, id) < 0 {
					continue
				}
				return useEscape // the entry itself passed along: new owner
			case *ast.BinaryExpr:
				return useBorrow // ent == nil
			case *ast.ReturnStmt, *ast.CompositeLit, *ast.UnaryExpr,
				*ast.IndexExpr, *ast.SendStmt:
				return useEscape
			case *ast.AssignStmt:
				return useEscape
			case ast.Stmt:
				return useBorrow
			}
		}
		return useBorrow
	}
}
