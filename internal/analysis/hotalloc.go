package analysis

import (
	"go/ast"
	"go/types"
)

// Hotalloc enforces the zero-allocation discipline on functions
// marked `//nio:hot` — the per-request path: httpwire parse and
// serialize, the reactor's read/write/sendfile wrappers and output
// queue, the obs trace ring. One allocation per request at 10k+
// req/s is a GC treadmill that shows up directly in the paper's
// response-time figures, so the hot path must not contain:
//
//   - fmt calls or variadic ...any boxing (except when constructing
//     the error that *aborts* the hot path, i.e. in a return
//     statement, or under an `if invariant.Enabled` guard that
//     compiles out by default);
//   - string <-> []byte conversions (each one copies);
//   - make/new or map/slice composite literals, or &T{...};
//   - closures that capture variables (the capture escapes).
//
// The checks are body-local and syntactic over the type-checked AST:
// they flag the idioms that *always* allocate rather than guessing
// at escape analysis, so a clean report is meaningful and a finding
// is actionable.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "check that //nio:hot functions contain no allocating idiom: " +
		"fmt, string<->[]byte conversions, make/new/map/slice literals, " +
		"&composite, capturing closures, or variadic ...any boxing " +
		"(error-return construction and invariant-guarded code exempt)",
	Run: runHotalloc,
}

func runHotalloc(pass *Pass) error {
	dirs := collectDirectives(pass)
	if len(dirs.hotFuncs) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !dirs.hotFuncs[fn] {
				continue
			}
			checkHotFunc(pass, dirs, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, dirs *directives, fd *ast.FuncDecl) {
	name := declName(fd)
	report := func(n ast.Node, stack []ast.Node, errPath bool, format string, args ...any) {
		if dirs.suppressed(pass.Fset, n.Pos(), "hotalloc") {
			return
		}
		if invariantGuarded(pass, stack) {
			return
		}
		if errPath && inReturnStmt(stack) {
			return
		}
		args = append(args, name)
		pass.Reportf(n.Pos(), format+" in //nio:hot function %s", args...)
	}
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isConversion(pass.Info, n) {
				if kind := stringByteConversion(pass, n); kind != "" {
					report(n, stack, false, "%s conversion allocates", kind)
				}
				return
			}
			if name := pkgFuncName(pass.Info, n, "fmt"); name != "" {
				report(n, stack, true, "fmt.%s call", name)
				return
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new":
						report(n, stack, false, "heap allocation (%s)", b.Name())
					}
					return
				}
			}
			if variadicAnyCall(pass, n) {
				report(n, stack, true, "interface boxing (variadic ...any call)")
			}
		case *ast.CompositeLit:
			switch types.Unalias(pass.Info.Types[n].Type).Underlying().(type) {
			case *types.Map:
				report(n, stack, false, "heap allocation (map literal)")
			case *types.Slice:
				report(n, stack, false, "heap allocation (slice literal)")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, stack, false, "heap allocation (&composite)")
				}
			}
		case *ast.FuncLit:
			if capturesVariables(pass, n, fd) {
				report(n, stack, false, "capturing closure")
			}
		}
	})
}

// stringByteConversion classifies a conversion between string and
// []byte — the two hot-path conversions that always copy. Constant
// operands convert at compile time and are exempt.
func stringByteConversion(pass *Pass, call *ast.CallExpr) string {
	if len(call.Args) != 1 {
		return ""
	}
	argTV, ok := pass.Info.Types[call.Args[0]]
	if !ok || argTV.Value != nil {
		return ""
	}
	dst := types.Unalias(pass.Info.Types[call].Type).Underlying()
	src := argTV.Type.Underlying()
	if isString(dst) && isByteSlice(src) {
		return "[]byte->string"
	}
	if isByteSlice(dst) && isString(src) {
		return "string->[]byte"
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// variadicAnyCall reports whether the call passes arguments into a
// variadic ...any / ...interface{} parameter — each one boxed.
func variadicAnyCall(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := types.Unalias(tv.Type).Underlying().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return false
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := types.Unalias(last.Type()).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	iface, ok := slice.Elem().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return false
	}
	// Boxing happens only when the variadic slot actually receives
	// arguments.
	return len(call.Args) >= sig.Params().Len()
}

// capturesVariables reports whether the literal closes over any
// variable declared outside it but inside the enclosing declaration
// (including its receiver and parameters) — the captures escape to
// the heap together with the closure.
func capturesVariables(pass *Pass, lit *ast.FuncLit, fd *ast.FuncDecl) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		pos := v.Pos()
		if pos >= fd.Pos() && pos < fd.End() && (pos < lit.Pos() || pos >= lit.End()) {
			captures = true
		}
		return !captures
	})
	return captures
}

// inReturnStmt reports whether the node sits inside a return
// statement — constructing the error that aborts the hot path is the
// slow path by definition.
func inReturnStmt(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
	}
	return false
}

// invariantGuarded reports whether the node is inside an `if
// invariant.Enabled { ... }` block. With the default build the
// constant is false and the whole block is dead-code-eliminated, so
// nothing inside it runs on the hot path.
func invariantGuarded(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && obj.Name() == "Enabled" &&
					obj.Pkg() != nil && obj.Pkg().Name() == "invariant" {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}
