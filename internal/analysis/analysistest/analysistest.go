// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want "regexp"` expectations in
// the fixture source — the same golden-comment discipline as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the
// stdlib-only loader.
//
// Fixtures live in internal/analysis/testdata/src/<name>/ and are
// type-checked against the repo's real dependency closure, so they can
// import syscall, sync/atomic, and repo packages like
// repro/internal/docroot.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var (
	exportsOnce sync.Once
	exports     *load.ExportSet
	exportsErr  error
	moduleDir   string
)

// repoExports builds (once per test binary) the export set for the
// whole module, locating the module root via `go env GOMOD`.
func repoExports(t *testing.T) (*load.ExportSet, string) {
	t.Helper()
	exportsOnce.Do(func() {
		gomod, err := goEnvGOMOD()
		if err != nil {
			exportsErr = err
			return
		}
		moduleDir = filepath.Dir(gomod)
		exports, exportsErr = load.LoadExports(moduleDir, "./...")
	})
	if exportsErr != nil {
		t.Fatalf("loading module export data: %v", exportsErr)
	}
	return exports, moduleDir
}

// expectation is one `// want` comment: a line that must produce a
// diagnostic matching the pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run applies a to the fixture package testdata/src/<fixture> and
// fails t unless the diagnostics and the fixture's `// want`
// expectations match one-to-one.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	exp, modDir := repoExports(t)
	dir := filepath.Join(modDir, "internal", "analysis", "testdata", "src", fixture)
	names, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}

	fset := token.NewFileSet()
	pkg, err := load.Check(fset, exp, "fixture/"+fixture, dir, names)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}

	var wants []*expectation
	for _, name := range names {
		ws, err := parseWants(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("fixture %s: %v", fixture, err)
		}
		wants = append(wants, ws...)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, fixture, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(wants, filepath.Base(pos.Filename), pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation at (file, line) whose
// pattern matches msg.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE matches a want comment; each quoted string after `want` is
// one expected-diagnostic regexp.
var (
	wantRE  = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quoteRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// parseWants extracts the `// want "re"` expectations from one file.
func parseWants(path string) ([]*expectation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for i, lineText := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(lineText)
		if m == nil {
			continue
		}
		quoted := quoteRE.FindAllString(m[1], -1)
		if len(quoted) == 0 {
			return nil, fmt.Errorf("%s:%d: want comment without a quoted pattern", filepath.Base(path), i+1)
		}
		for _, q := range quoted {
			pat, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", filepath.Base(path), i+1, q, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", filepath.Base(path), i+1, pat, err)
			}
			wants = append(wants, &expectation{file: filepath.Base(path), line: i + 1, pattern: re})
		}
	}
	return wants, nil
}

// fixtureFiles lists the .go files of a fixture directory, sorted.
func fixtureFiles(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return names, nil
}

func goEnvGOMOD() (string, error) {
	out, err := runGo("env", "GOMOD")
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(out)
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not in a module (GOMOD=%q)", gomod)
	}
	return gomod, nil
}

func runGo(args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go %s: %v", strings.Join(args, " "), err)
	}
	return string(out), nil
}
