package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The paired-resource engine: fdlife (acquire an fd, must Close) and
// refbalance (acquire a refcounted entry, must Release) are the same
// shape — a producer call binds a resource to a local, and every path
// out of the function must either release it or hand the reference to
// a new owner. The engine is deliberately a heuristic, not a full
// dataflow analysis: it reasons about one function at a time and errs
// toward silence (an escape — return, store, or pass to a non-borrow
// function — ends tracking), which keeps it green on correct code
// while still catching the two real-world failure shapes:
//
//  1. a resource that is acquired but never released and never
//     escapes anywhere in the function, and
//  2. an early `return` on an error path before the first release,
//     defer, or escape — the classic "opened the file, stat failed,
//     forgot the Close" gap.
//
// The producer's own failure check is exempt (no resource exists on
// that path): an `if` mentioning the acquire's error variable, or a
// `switch` on it, that immediately follows the acquisition.

// useClass is the engine's verdict on one use of the resource.
type useClass int

const (
	// useBorrow leaves ownership untouched (comparisons, passing the
	// fd to a syscall, reading a field).
	useBorrow useClass = iota
	// useRelease returns the resource (syscall.Close, Release).
	useRelease
	// useEscape transfers ownership to someone else (return it, store
	// it, send it, pass it to an owning function).
	useEscape
)

// acquisition is one producer call binding a resource to a local.
type acquisition struct {
	fn     *ast.FuncDecl
	res    types.Object // the resource variable
	errObj types.Object // the producer's error result, if bound
	pos    token.Pos    // position of the producer call
	guard  ast.Stmt     // the statement to inspect for the producer's own failure check
	what   string       // e.g. `fd from syscall.Socket`
	must   string       // e.g. `syscall.Close`
}

// checkPaired runs the engine for one acquisition. classify judges
// each use of the resource identifier given its ancestor stack.
func checkPaired(pass *Pass, acq *acquisition, classify func(id *ast.Ident, stack []ast.Node) useClass) {
	const never = token.Pos(1 << 40)
	firstSettle := never // earliest release or escape
	any := false
	walkStack(acq.fn.Body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != acq.res || id.Pos() <= acq.pos {
			return
		}
		switch classify(id, stack) {
		case useRelease, useEscape:
			any = true
			if id.Pos() < firstSettle {
				firstSettle = id.Pos()
			}
		}
	})
	if !any {
		pass.Reportf(acq.pos, "%s is never passed to %s and never escapes to an owner", acq.what, acq.must)
		return
	}
	// Early returns in the window between the acquisition and the first
	// release/escape leak on every path (nothing can have settled the
	// resource yet), unless they are the producer's own failure check.
	ast.Inspect(acq.fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= acq.pos || ret.End() >= firstSettle {
			return true
		}
		if producerFailureExempt(pass, acq, ret) {
			return true
		}
		pass.Reportf(ret.Pos(), "%s may leak: this return path reaches neither %s nor a new owner", acq.what, acq.must)
		return true
	})
}

// producerFailureExempt reports whether ret sits in the producer's own
// failure check, where the resource was never produced: an `if` whose
// condition mentions the acquire's error variable, or a `switch` on
// it (in a non-nil case), with the check immediately following the
// acquisition (so the error cannot have been reassigned in between).
func producerFailureExempt(pass *Pass, acq *acquisition, ret *ast.ReturnStmt) bool {
	if acq.guard == nil || acq.errObj == nil {
		return false
	}
	switch g := acq.guard.(type) {
	case *ast.IfStmt:
		return usesObject(pass.Info, g.Cond, acq.errObj) && containsNode(g.Body, ret)
	case *ast.SwitchStmt:
		tag, ok := g.Tag.(*ast.Ident)
		if !ok || pass.Info.Uses[tag] != acq.errObj {
			return false
		}
		for _, cc := range g.Body.List {
			cc, ok := cc.(*ast.CaseClause)
			if !ok || !containsNode(cc, ret) {
				continue
			}
			for _, e := range cc.List {
				if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
					return false // the success case: the resource exists here
				}
			}
			return true
		}
	}
	return false
}

// resolveAcquire maps a producer call (with its ancestor stack) to an
// acquisition: the assignment binding its results, the resource and
// error objects, and the statement that would hold the producer's own
// failure check. resIdx selects which result is the resource. Returns
// nil when the call's results are not bound to plain locals (returned
// directly, discarded, …) — those shapes either escape immediately or
// are not trackable, and the engine stays silent.
func resolveAcquire(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node, resIdx int) *acquisition {
	// Innermost assignment whose single RHS is the call.
	var as *ast.AssignStmt
	asDepth := -1
	for i := len(stack) - 1; i >= 0; i-- {
		if a, ok := stack[i].(*ast.AssignStmt); ok {
			if len(a.Rhs) == 1 && ast.Unparen(a.Rhs[0]) == ast.Expr(call) {
				as, asDepth = a, i
			}
			break
		}
	}
	if as == nil || resIdx >= len(as.Lhs) {
		return nil
	}
	resID, ok := as.Lhs[resIdx].(*ast.Ident)
	if !ok || resID.Name == "_" {
		return nil
	}
	res := pass.Info.Defs[resID]
	if res == nil {
		res = pass.Info.Uses[resID]
	}
	if res == nil {
		return nil
	}
	var errObj types.Object
	if last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && last != resID && last.Name != "_" {
		if o := pass.Info.Defs[last]; o != nil {
			errObj = o
		} else {
			errObj = pass.Info.Uses[last]
		}
	}
	acq := &acquisition{fn: fn, res: res, errObj: errObj, pos: call.Pos()}
	acq.guard = guardStmt(as, asDepth, stack)
	return acq
}

// guardStmt finds the statement holding the producer's failure check:
// the enclosing if/switch when the assignment is its Init, otherwise
// the block statement immediately following the assignment.
func guardStmt(as *ast.AssignStmt, asDepth int, stack []ast.Node) ast.Stmt {
	if asDepth > 0 {
		switch parent := stack[asDepth-1].(type) {
		case *ast.IfStmt:
			if parent.Init == ast.Stmt(as) {
				return parent
			}
		case *ast.SwitchStmt:
			if parent.Init == ast.Stmt(as) {
				return parent
			}
		}
	}
	// Locate the assignment's block and take the next sibling.
	for i := asDepth - 1; i >= 0; i-- {
		if blk, ok := stack[i].(*ast.BlockStmt); ok {
			for j, s := range blk.List {
				if s == ast.Stmt(as) && j+1 < len(blk.List) {
					return blk.List[j+1]
				}
			}
			return nil
		}
	}
	return nil
}
