package experiments

import (
	"repro/internal/metrics"
	"repro/internal/simclient"
)

// Extended experiments beyond the paper's ten figures:
//
//   - FigE1 reproduces the bandwidth-usage results the paper defers to
//     its extended technical report ([2], UPC-DAC-2004-24): megabytes per
//     second delivered versus client count, which substantiates the
//     paper's in-text claim that the gigabit runs stay "always under
//     40 MB/s" and the 100 Mbit runs pin the wire.
//
//   - FigE2 evaluates the paper's §6 future-work conjecture: the staged
//     event-driven pipeline on the 4-way SMP, with and without per-stage
//     processor affinity, against the flat reactor server.

func bandwidthMB(r simclient.Report) float64 { return r.BandwidthBps / 1e6 }

// FigE1 — bandwidth usage versus clients for the best UP configurations
// on the gigabit and 100 Mbit links.
func (s *Suite) FigE1() []Figure {
	f := Figure{ID: "E1", Title: "Bandwidth usage (extended report [2])", XLabel: "clients", YLabel: "MB/s"}
	for _, base := range []Scenario{BestUPNIO, BestUPHTTPD} {
		for _, bw := range []float64{Gigabit, Mbit100} {
			sc := base
			sc.Bandwidth = bw
			series := s.sweep(sc, bandwidthMB)
			series.Label = bwLabel(sc)
			f.Series = append(f.Series, series)
		}
	}
	return []Figure{f}
}

// FigE2 — §6 staged-pipeline ablation on the 4-way SMP.
func (s *Suite) FigE2() []Figure {
	thr := Figure{ID: "E2a", Title: "Staged pipeline ablation (§6), SMP throughput", XLabel: "clients", YLabel: "replies/s"}
	rt := Figure{ID: "E2b", Title: "Staged pipeline ablation (§6), SMP response time", XLabel: "clients", YLabel: "ms"}
	scenarios := []Scenario{
		{Kind: NIO, Workers: 2, Processors: 4, Bandwidth: Gigabit},
		{Kind: STAGED, Processors: 4, Bandwidth: Gigabit},
		{Kind: STAGEDAFF, Processors: 4, Bandwidth: Gigabit},
	}
	for _, sc := range scenarios {
		thr.Series = append(thr.Series, s.sweep(sc, throughput))
		rt.Series = append(rt.Series, s.sweep(sc, response))
	}
	return []Figure{thr, rt}
}

// FigE3 — open-loop overload behaviour. Sessions arrive at a fixed rate
// regardless of completions (httperf --rate semantics), sweeping the
// offered rate through and past saturation. A well-conditioned server's
// goodput plateaus; a badly conditioned one collapses. This is the
// SEDA-style load-vs-goodput curve the event-driven literature (which
// the paper builds on) uses to argue for admission-controlled designs.
func (s *Suite) FigE3() []Figure {
	rates := []float64{100, 200, 300, 400, 500, 600}
	thr := Figure{ID: "E3a", Title: "Open-loop overload, goodput", XLabel: "offered sessions/s", YLabel: "replies/s"}
	to := Figure{ID: "E3b", Title: "Open-loop overload, client timeouts", XLabel: "offered sessions/s", YLabel: "errors/s"}
	for _, base := range []Scenario{BestUPNIO, BestUPHTTPD} {
		tSeries := &metrics.Series{Label: base.Label()}
		eSeries := &metrics.Series{Label: base.Label()}
		for _, rate := range rates {
			sc := base
			sc.Clients = 0
			sc.SessionRate = rate
			rep := s.run(sc)
			tSeries.Add(rate, rep.RepliesPerSec)
			eSeries.Add(rate, rep.TimeoutErrPerSec)
		}
		thr.Series = append(thr.Series, tSeries)
		to.Series = append(to.Series, eSeries)
	}
	return []Figure{thr, to}
}

// FigE4 — worker MPM vs prefork MPM: the multithread-vs-multiprocess
// choice the paper's §3 makes for Apache, evaluated. The prefork server
// pays fork latency during ramp-up and a 4× per-context memory weight,
// so at equal connection bounds the worker MPM sustains more clients.
func (s *Suite) FigE4() []Figure {
	thr := Figure{ID: "E4a", Title: "Worker vs prefork MPM, UP throughput", XLabel: "clients", YLabel: "replies/s"}
	rt := Figure{ID: "E4b", Title: "Worker vs prefork MPM, UP client timeouts", XLabel: "clients", YLabel: "errors/s"}
	scenarios := []Scenario{
		{Kind: HTTPD, Threads: 1024, Processors: 1, Bandwidth: Gigabit},
		{Kind: PREFORK, Threads: 1024, Processors: 1, Bandwidth: Gigabit},
	}
	for _, sc := range scenarios {
		thr.Series = append(thr.Series, s.sweep(sc, throughput))
		rt.Series = append(rt.Series, s.sweep(sc, timeouts))
	}
	return []Figure{thr, rt}
}

// averageReports returns the field-wise mean of replicate runs; figures
// built with Suite.Replicates > 1 smooth seed-to-seed noise.
func averageReports(reps []simclient.Report) simclient.Report {
	if len(reps) == 0 {
		return simclient.Report{}
	}
	var out simclient.Report
	out.Clients = reps[0].Clients
	out.Duration = reps[0].Duration
	n := float64(len(reps))
	for _, r := range reps {
		out.RepliesPerSec += r.RepliesPerSec / n
		out.MeanResponseSec += r.MeanResponseSec / n
		out.P90ResponseSec += r.P90ResponseSec / n
		out.MeanConnectSec += r.MeanConnectSec / n
		out.TimeoutErrPerSec += r.TimeoutErrPerSec / n
		out.ResetErrPerSec += r.ResetErrPerSec / n
		out.BandwidthBps += r.BandwidthBps / n
		out.Sessions += r.Sessions / int64(len(reps))
	}
	return out
}
