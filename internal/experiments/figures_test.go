package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// sharedSuite memoizes the fast run matrix across all shape tests in this
// package, so the full file costs one matrix, not one per test.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func fastSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment shape tests are integration-scale; skipped with -short")
	}
	suiteOnce.Do(func() {
		suite = NewFastSuite()
		suite.ClientPoints = []int{600, 1800, 3000, 6000}
	})
	return suite
}

// last returns the y value at the largest x of the series.
func last(t *testing.T, f Figure, label string) float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			if len(s.Y) == 0 {
				t.Fatalf("series %q empty", label)
			}
			return s.Y[len(s.Y)-1]
		}
	}
	t.Fatalf("figure %s has no series %q (have %v)", f.ID, label, labels(f))
	return 0
}

func at(t *testing.T, f Figure, label string, x float64) float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s.YAt(x)
		}
	}
	t.Fatalf("figure %s has no series %q", f.ID, label)
	return 0
}

func labels(f Figure) []string {
	var out []string
	for _, s := range f.Series {
		out = append(out, s.Label)
	}
	return out
}

func TestFig1Shapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.Fig1()
	nio, httpd := figs[0], figs[1]

	// httpd throughput grows with offered load up to saturation.
	lo := at(t, httpd, "httpd-4096t", 600)
	hi := last(t, httpd, "httpd-4096t")
	if hi <= lo*2 {
		t.Errorf("httpd-4096 did not scale with load: %v → %v", lo, hi)
	}
	// nio with one worker matches httpd's best peak within 25%.
	nioPeak := last(t, nio, "nio-1w")
	if nioPeak < hi*0.75 || nioPeak > hi*1.25 {
		t.Errorf("nio-1w peak %v not within 25%% of httpd-4096 peak %v", nioPeak, hi)
	}
	// More workers never help on one CPU.
	if w8 := last(t, nio, "nio-8w"); w8 > nioPeak*1.05 {
		t.Errorf("nio-8w (%v) outperforms nio-1w (%v) on a uniprocessor", w8, nioPeak)
	}
	// A tiny pool is the worst httpd configuration at high load.
	if small := last(t, httpd, "httpd-128t"); small >= hi {
		t.Errorf("httpd-128t (%v) not below httpd-4096t (%v)", small, hi)
	}
}

func TestFig2Shapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.Fig2()
	nio, httpd := figs[0], figs[1]
	// nio response time grows with load (fair sharing across all clients).
	lo, hi := at(t, nio, "nio-1w", 600), last(t, nio, "nio-1w")
	if hi <= lo {
		t.Errorf("nio response time did not grow with load: %v → %v ms", lo, hi)
	}
	// httpd's average (successes only) stays below nio's at mid load.
	nioMid, httpdMid := at(t, nio, "nio-1w", 3000), at(t, httpd, "httpd-4096t", 3000)
	if httpdMid >= nioMid {
		t.Errorf("httpd mean response (%v ms) not below nio (%v ms) at 3000 clients", httpdMid, nioMid)
	}
}

func TestFig3Shapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.Fig3()
	to, rst := figs[0], figs[1]
	// nio never produces connection resets (it never disconnects idles).
	for _, x := range s.ClientPoints {
		if v := at(t, rst, "nio-1w", float64(x)); v != 0 {
			t.Errorf("nio resets at %d clients: %v/s (must be 0)", x, v)
		}
	}
	// httpd resets grow with client count.
	rlo, rhi := at(t, rst, "httpd-4096t", 600), last(t, rst, "httpd-4096t")
	if !(rhi > rlo && rhi > 0) {
		t.Errorf("httpd resets not growing: %v → %v", rlo, rhi)
	}
	// httpd client timeouts exceed nio's at the top of the sweep.
	if ht, nt := last(t, to, "httpd-4096t"), last(t, to, "nio-1w"); ht <= nt {
		t.Errorf("httpd timeouts (%v/s) not above nio (%v/s)", ht, nt)
	}
}

func TestFig4Shapes(t *testing.T) {
	s := fastSuite(t)
	fig := s.Fig4()[0]
	// nio connection time stays flat and sub-millisecond.
	for _, x := range s.ClientPoints {
		if v := at(t, fig, "nio-1w", float64(x)); v > 1.0 {
			t.Errorf("nio connect time %v ms at %d clients (want < 1ms)", v, x)
		}
	}
	// httpd-896: connect time explodes once clients greatly exceed pool.
	before := at(t, fig, "httpd-896t", 600)
	after := last(t, fig, "httpd-896t")
	if after < 100 || after < before*10 {
		t.Errorf("httpd-896 connect time knee missing: %v → %v ms", before, after)
	}
}

func TestFig5Shapes(t *testing.T) {
	s := fastSuite(t)
	fig := s.Fig5()[0]
	// On the 100 Mbit link both servers hit the same wire-speed ceiling.
	nio, httpd := last(t, fig, "nio-100Mbps"), last(t, fig, "httpd-100Mbps")
	if nio < httpd*0.9 || nio > httpd*1.15 {
		t.Errorf("100Mbit ceilings differ: nio %v, httpd %v", nio, httpd)
	}
	// nio is at or slightly above httpd at link saturation (reset waste).
	if nio < httpd*0.98 {
		t.Errorf("nio (%v) below httpd (%v) at 100Mbit saturation", nio, httpd)
	}
	// Faster links raise the ceiling.
	g := last(t, fig, "nio-1Gbit")
	m2 := last(t, fig, "nio-200Mbps")
	if !(g > m2 && m2 > nio) {
		t.Errorf("ceilings not ordered: 1Gbit %v, 200Mbit %v, 100Mbit %v", g, m2, nio)
	}
}

func TestFig6Shapes(t *testing.T) {
	s := fastSuite(t)
	fig := s.Fig6()[0]
	// When bandwidth is the bottleneck, response times converge.
	nio, httpd := last(t, fig, "nio-100Mbps"), last(t, fig, "httpd-100Mbps")
	if nio > httpd*3 || httpd > nio*3 {
		t.Errorf("bandwidth-bound response times diverge: nio %v ms, httpd %v ms", nio, httpd)
	}
	// On the gigabit link (CPU-bound) they clearly differ, nio higher.
	gn, gh := last(t, fig, "nio-1Gbit"), last(t, fig, "httpd-1Gbit")
	if gn <= gh {
		t.Errorf("CPU-bound: nio response (%v ms) not above httpd (%v ms)", gn, gh)
	}
}

func TestFig7Shapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.Fig7()
	nio, httpd := figs[0], figs[1]
	// On 4 CPUs the nio worker count barely matters (2 ≈ 3 ≈ 4).
	w2, w3, w4 := last(t, nio, "nio-2w"), last(t, nio, "nio-3w"), last(t, nio, "nio-4w")
	for _, v := range []float64{w3, w4} {
		if v < w2*0.9 || v > w2*1.1 {
			t.Errorf("SMP nio configs diverge: 2w=%v 3w=%v 4w=%v", w2, w3, w4)
		}
	}
	// httpd with a large pool is in the same range as nio (paper: "the
	// difference is pretty short").
	h6 := last(t, httpd, "httpd-6000t")
	if h6 < w2*0.8 || h6 > w2*1.3 {
		t.Errorf("SMP httpd-6000t (%v) not comparable to nio-2w (%v)", h6, w2)
	}
}

func TestFig8Shapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.Fig8()
	nio := figs[0]
	// SMP response times for the best config stay moderate (well under
	// the client timeout) across the sweep.
	for _, x := range s.ClientPoints {
		if v := at(t, nio, "nio-2w", float64(x)); v > 5000 {
			t.Errorf("SMP nio-2w response %v ms at %d clients", v, x)
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.Fig9()
	for _, f := range figs {
		up, smp := last(t, f, "UP"), last(t, f, "SMP")
		if smp < up*1.5 {
			t.Errorf("figure %s: SMP (%v) not ≥1.5× UP (%v) at peak load", f.ID, smp, up)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.Fig10()
	for _, f := range figs {
		up, smp := last(t, f, "UP"), last(t, f, "SMP")
		if smp > up {
			t.Errorf("figure %s: SMP response (%v ms) above UP (%v ms)", f.ID, smp, up)
		}
	}
}

func TestFiguresDispatch(t *testing.T) {
	s := NewFastSuite()
	if _, err := s.Figures(0); err == nil {
		t.Error("figure 0 accepted")
	}
	if _, err := s.Figures(15); err == nil {
		t.Error("figure 15 accepted")
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{ID: "1a", Title: "demo", XLabel: "clients", YLabel: "replies/s"}
	sr := &metrics.Series{Label: "s"}
	sr.Add(600, 42)
	f.Series = append(f.Series, sr)
	out := f.Render()
	for _, want := range []string{"Figure 1a", "demo", "clients", "replies/s", "600", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioLabels(t *testing.T) {
	if got := (Scenario{Kind: NIO, Workers: 2}).Label(); got != "nio-2w" {
		t.Errorf("label = %q", got)
	}
	if got := (Scenario{Kind: HTTPD, Threads: 4096}).Label(); got != "httpd-4096t" {
		t.Errorf("label = %q", got)
	}
	if NIO.String() != "nio" || HTTPD.String() != "httpd" {
		t.Error("kind strings wrong")
	}
}

func TestMbitConversion(t *testing.T) {
	if Mbit(100) >= 100e6/8 || Mbit(100) < 100e6/8*0.9 {
		t.Errorf("Mbit(100) = %v", Mbit(100))
	}
}
