package experiments

import (
	"strings"
	"testing"

	"repro/internal/simclient"
)

func TestFigE1BandwidthShapes(t *testing.T) {
	s := fastSuite(t)
	fig := s.FigE1()[0]
	// The 100 Mbit series must plateau at wire speed (~11.8 MB/s), the
	// gigabit series well above it but under the paper's ~40-45 MB/s
	// peak observation.
	g := peak(t, fig, "nio-1Gbit")
	m := peak(t, fig, "nio-100Mbps")
	// Peak goodput touches wire speed; past saturation it sags because
	// watchdog-aborted transfers waste capacity (also true of httperf).
	if m < 9 || m > 13 {
		t.Errorf("100Mbit bandwidth peak %v MB/s, want ~11.8", m)
	}
	if g < m*2 {
		t.Errorf("gigabit bandwidth (%v) not well above 100Mbit (%v)", g, m)
	}
	if g > 50 {
		t.Errorf("gigabit bandwidth %v MB/s exceeds the paper's <40-45 observation", g)
	}
}

func TestFigE2StagedShapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.FigE2()
	thr, rt := figs[0], figs[1]
	// The staged pipeline matches the flat reactor's throughput within
	// 15% at the top of the sweep.
	flat := last(t, thr, "nio-2w")
	staged := last(t, thr, "staged")
	aff := last(t, thr, "staged-aff")
	for name, v := range map[string]float64{"staged": staged, "staged-aff": aff} {
		if v < flat*0.85 || v > flat*1.15 {
			t.Errorf("%s throughput %v not within 15%% of flat reactor %v", name, v, flat)
		}
	}
	// Affinity must not make response time worse (locality discount).
	if ra, rs := last(t, rt, "staged-aff"), last(t, rt, "staged"); ra > rs*1.1 {
		t.Errorf("affinity response time %v ms worse than shared %v ms", ra, rs)
	}
}

// peak returns the maximum y of the labelled series.
func peak(t *testing.T, f Figure, label string) float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			m := 0.0
			for _, y := range s.Y {
				if y > m {
					m = y
				}
			}
			return m
		}
	}
	t.Fatalf("figure %s has no series %q", f.ID, label)
	return 0
}

func TestAverageReports(t *testing.T) {
	a := simclient.Report{Clients: 10, RepliesPerSec: 100, MeanResponseSec: 1, Sessions: 4}
	b := simclient.Report{Clients: 10, RepliesPerSec: 300, MeanResponseSec: 3, Sessions: 8}
	avg := averageReports([]simclient.Report{a, b})
	if avg.RepliesPerSec != 200 || avg.MeanResponseSec != 2 {
		t.Fatalf("avg = %+v", avg)
	}
	if avg.Clients != 10 || avg.Sessions != 6 {
		t.Fatalf("avg = %+v", avg)
	}
	if z := averageReports(nil); z.RepliesPerSec != 0 {
		t.Fatalf("empty average = %+v", z)
	}
}

func TestReplicatesSmoothing(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	// Two suites over the same point, one with 2 replicates: both must
	// produce plausible values; the replicated one uses distinct seeds
	// (exercised via the cache key + seed derivation path).
	one := NewFastSuite()
	one.ClientPoints = []int{600}
	rep := NewFastSuite()
	rep.ClientPoints = []int{600}
	rep.Replicates = 2
	a := one.sweep(BestUPNIO, throughput).Y[0]
	b := rep.sweep(BestUPNIO, throughput).Y[0]
	if a <= 0 || b <= 0 {
		t.Fatalf("throughputs: %v, %v", a, b)
	}
	// Averaged value should be in the same ballpark as the single run.
	if b < a*0.7 || b > a*1.3 {
		t.Fatalf("replicated mean %v far from single run %v", b, a)
	}
}

func TestRenderFormats(t *testing.T) {
	s := NewFastSuite()
	s.ClientPoints = []int{600}
	if testing.Short() {
		t.Skip("integration-scale")
	}
	fig := s.Fig3()[1] // resets panel: cheap (2 runs at 600 clients)
	csv := fig.RenderCSV()
	if !strings.Contains(csv, "clients,nio-1w,httpd-4096t") {
		t.Fatalf("csv header missing:\n%s", csv)
	}
	plot := fig.RenderPlot()
	if !strings.Contains(plot, "Figure 3b") {
		t.Fatalf("plot title missing:\n%s", plot)
	}
}

func TestExtendedDispatch(t *testing.T) {
	s := NewFastSuite()
	if _, err := s.Figures(11); err != nil {
		t.Errorf("figure 11 (E1) rejected: %v", err)
	}
	if _, err := s.Figures(12); err != nil {
		t.Errorf("figure 12 (E2) rejected: %v", err)
	}
}

func TestStagedScenarioLabels(t *testing.T) {
	if got := (Scenario{Kind: STAGED}).Label(); got != "staged" {
		t.Errorf("label = %q", got)
	}
	if got := (Scenario{Kind: STAGEDAFF}).Label(); got != "staged-aff" {
		t.Errorf("label = %q", got)
	}
	if STAGED.String() != "staged" || STAGEDAFF.String() != "staged-aff" {
		t.Error("kind strings wrong")
	}
	if ServerKind(99).String() != "unknown" {
		t.Error("unknown kind string wrong")
	}
}

func TestFigE3OpenLoopShapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.FigE3()
	thr := figs[0]
	// Goodput tracks the offered rate at low load (≈ rate × 6.5 replies
	// per session) and plateaus near the server's capacity at high load.
	for _, label := range []string{"nio-1w", "httpd-4096t"} {
		lo := at(t, thr, label, 100)
		hi := at(t, thr, label, 600)
		if lo < 400 || lo > 900 {
			t.Errorf("%s goodput at 100 sessions/s = %v, want ≈650", label, lo)
		}
		if hi <= lo {
			t.Errorf("%s goodput did not grow with offered rate: %v → %v", label, lo, hi)
		}
		// No collapse: the top point is the plateau, not a cliff.
		mid := at(t, thr, label, 500)
		if hi < mid*0.6 {
			t.Errorf("%s goodput collapsed past saturation: %v → %v", label, mid, hi)
		}
	}
}

func TestExtendedDispatch13(t *testing.T) {
	s := NewFastSuite()
	if _, err := s.Figures(13); err != nil {
		t.Errorf("figure 13 (E3) rejected: %v", err)
	}
	if _, err := s.Figures(14); err != nil {
		t.Errorf("figure 14 (E4) rejected: %v", err)
	}
}

func TestFigE4PreforkShapes(t *testing.T) {
	s := fastSuite(t)
	figs := s.FigE4()
	thr := figs[0]
	worker := last(t, thr, "httpd-1024t")
	prefork := last(t, thr, "prefork-1024p")
	// Both are bounded by the same 1024-context limit; the worker MPM
	// must be at least as good as prefork at the top of the sweep (fork
	// churn + memory weight cost the multiprocess design).
	if prefork > worker*1.05 {
		t.Errorf("prefork (%v) outperformed worker MPM (%v)", prefork, worker)
	}
	if prefork <= 0 {
		t.Error("prefork produced no throughput")
	}
}
