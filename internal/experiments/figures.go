package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/simclient"
)

// Figure is one rendered panel: the series one of the paper's plots shows.
type Figure struct {
	ID     string // e.g. "1a"
	Title  string
	XLabel string
	YLabel string
	Series []*metrics.Series
}

// Render returns the figure as an aligned text table.
func (f Figure) Render() string {
	title := fmt.Sprintf("Figure %s — %s [y: %s]", f.ID, f.Title, f.YLabel)
	return metrics.Table(title, f.XLabel, f.Series...)
}

// RenderCSV returns the figure as CSV (one column per series).
func (f Figure) RenderCSV() string {
	return fmt.Sprintf("# Figure %s — %s [y: %s]\n%s",
		f.ID, f.Title, f.YLabel, metrics.CSV(f.XLabel, f.Series...))
}

// RenderPlot returns the figure as a terminal ASCII chart.
func (f Figure) RenderPlot() string {
	title := fmt.Sprintf("Figure %s — %s [y: %s, x: %s]", f.ID, f.Title, f.YLabel, f.XLabel)
	return metrics.ASCIIPlot(title, 72, 18, f.Series...)
}

// Suite runs the paper's evaluation. Results are memoized, so figures
// sharing a run matrix (1&2, 7&8, …) pay for it once.
type Suite struct {
	// ClientPoints is the x-axis of every sweep (paper: 600–6000).
	ClientPoints []int
	// WarmupSec/MeasureSec override the run durations (0 = paper values).
	WarmupSec  float64
	MeasureSec float64
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
	// Replicates averages each point over this many seeds (0/1 = one
	// run per point; the paper reports single 5-minute runs).
	Replicates int

	cache map[string]simclient.Report
}

// NewSuite returns a suite with the paper's sweep: 600 to 6000 clients in
// steps of 600.
func NewSuite() *Suite {
	s := &Suite{cache: map[string]simclient.Report{}}
	for c := 600; c <= 6000; c += 600 {
		s.ClientPoints = append(s.ClientPoints, c)
	}
	return s
}

// NewFastSuite returns a reduced suite for tests: fewer, smaller points
// and shorter runs. The shapes the paper reports survive the reduction.
func NewFastSuite() *Suite {
	return &Suite{
		ClientPoints: []int{600, 1800, 3000, 4200},
		WarmupSec:    5,
		MeasureSec:   20,
		cache:        map[string]simclient.Report{},
	}
}

// The paper's configuration sweeps.
var (
	// UPNIOWorkers are the nio worker counts of figure 1a/2a.
	UPNIOWorkers = []int{1, 4, 8}
	// UPHTTPDThreads are the httpd pool sizes of figure 1b/2b. (The
	// OCR'd legends drop trailing zeros; these are the values consistent
	// with the prose: the best pool is 4096, 896 is the mid knee, 6000
	// is the unstable top, and a small pool anchors the bottom.)
	UPHTTPDThreads = []int{128, 896, 4096, 6000}
	// SMPNIOWorkers are the nio worker counts of figure 7a/8a.
	SMPNIOWorkers = []int{2, 3, 4}
	// SMPHTTPDThreads are the httpd pool sizes of figure 7b/8b.
	SMPHTTPDThreads = []int{2000, 4000, 6000}
)

// Best-performing configurations (paper §4.1, §5.1).
var (
	BestUPNIO    = Scenario{Kind: NIO, Workers: 1, Processors: 1, Bandwidth: Gigabit}
	BestSMPNIO   = Scenario{Kind: NIO, Workers: 2, Processors: 4, Bandwidth: Gigabit}
	BestUPHTTPD  = Scenario{Kind: HTTPD, Threads: 4096, Processors: 1, Bandwidth: Gigabit}
	BestSMPHTTPD = Scenario{Kind: HTTPD, Threads: 4096, Processors: 4, Bandwidth: Gigabit}
)

// run executes (or recalls) one scenario point.
func (s *Suite) run(sc Scenario) simclient.Report {
	sc.WarmupSec = s.WarmupSec
	sc.MeasureSec = s.MeasureSec
	key := fmt.Sprintf("%s/p%d/bw%.0f/c%d/r%g/w%g/m%g",
		sc.Label(), sc.Processors, sc.Bandwidth, sc.Clients, sc.SessionRate, sc.WarmupSec, sc.MeasureSec)
	if rep, ok := s.cache[key]; ok {
		return rep
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	base := h.Sum64()
	n := s.Replicates
	if n < 1 {
		n = 1
	}
	reps := make([]simclient.Report, 0, n)
	for i := 0; i < n; i++ {
		sc.Seed = base + uint64(i)*0x9e3779b9
		reps = append(reps, sc.Run())
	}
	rep := averageReports(reps)
	s.cache[key] = rep
	if s.Progress != nil {
		s.Progress(fmt.Sprintf("%-60s %8.0f rep/s  resp %7.4fs  conn %7.4fs  to %6.2f/s  rst %6.2f/s",
			key, rep.RepliesPerSec, rep.MeanResponseSec, rep.MeanConnectSec,
			rep.TimeoutErrPerSec, rep.ResetErrPerSec))
	}
	return rep
}

// sweep runs the scenario at every client point and extracts y.
func (s *Suite) sweep(base Scenario, y func(simclient.Report) float64) *metrics.Series {
	series := &metrics.Series{Label: base.Label()}
	for _, clients := range s.ClientPoints {
		sc := base
		sc.Clients = clients
		series.Add(float64(clients), y(s.run(sc)))
	}
	return series
}

func throughput(r simclient.Report) float64 { return r.RepliesPerSec }
func response(r simclient.Report) float64   { return r.MeanResponseSec * 1000 } // ms
func connectMS(r simclient.Report) float64  { return r.MeanConnectSec * 1000 }  // ms
func timeouts(r simclient.Report) float64   { return r.TimeoutErrPerSec }
func resets(r simclient.Report) float64     { return r.ResetErrPerSec }

// upNIO returns the figure-1a scenario set.
func upNIO() []Scenario {
	var out []Scenario
	for _, w := range UPNIOWorkers {
		out = append(out, Scenario{Kind: NIO, Workers: w, Processors: 1, Bandwidth: Gigabit})
	}
	return out
}

func upHTTPD() []Scenario {
	var out []Scenario
	for _, th := range UPHTTPDThreads {
		out = append(out, Scenario{Kind: HTTPD, Threads: th, Processors: 1, Bandwidth: Gigabit})
	}
	return out
}

func smpNIO() []Scenario {
	var out []Scenario
	for _, w := range SMPNIOWorkers {
		out = append(out, Scenario{Kind: NIO, Workers: w, Processors: 4, Bandwidth: Gigabit})
	}
	return out
}

func smpHTTPD() []Scenario {
	var out []Scenario
	for _, th := range SMPHTTPDThreads {
		out = append(out, Scenario{Kind: HTTPD, Threads: th, Processors: 4, Bandwidth: Gigabit})
	}
	return out
}

func (s *Suite) panel(id, title, ylabel string, scenarios []Scenario, y func(simclient.Report) float64) Figure {
	f := Figure{ID: id, Title: title, XLabel: "clients", YLabel: ylabel}
	for _, sc := range scenarios {
		f.Series = append(f.Series, s.sweep(sc, y))
	}
	return f
}

// Fig1 — throughput comparison on a uniprocessor (panels a: nio, b: httpd).
func (s *Suite) Fig1() []Figure {
	return []Figure{
		s.panel("1a", "NIO UP throughput", "replies/s", upNIO(), throughput),
		s.panel("1b", "Httpd UP throughput", "replies/s", upHTTPD(), throughput),
	}
}

// Fig2 — response time comparison on a uniprocessor.
func (s *Suite) Fig2() []Figure {
	return []Figure{
		s.panel("2a", "NIO UP response time", "ms", upNIO(), response),
		s.panel("2b", "Httpd UP response time", "ms", upHTTPD(), response),
	}
}

// Fig3 — connection errors, best configs (a: client timeouts, b: resets).
func (s *Suite) Fig3() []Figure {
	best := []Scenario{BestUPNIO, BestUPHTTPD}
	return []Figure{
		s.panel("3a", "Client timeout errors", "errors/s", best, timeouts),
		s.panel("3b", "Connection reset errors", "errors/s", best, resets),
	}
}

// Fig4 — connection establishment time, nio best vs httpd pool sizes.
func (s *Suite) Fig4() []Figure {
	scenarios := []Scenario{BestUPNIO}
	for _, th := range []int{896, 4096, 6000} {
		scenarios = append(scenarios, Scenario{Kind: HTTPD, Threads: th, Processors: 1, Bandwidth: Gigabit})
	}
	return []Figure{s.panel("4", "NIO vs httpd UP connection time", "ms", scenarios, connectMS)}
}

// bwScenarios returns the figure-5/6 set: each server's best UP config on
// the three network configurations.
func bwScenarios() []Scenario {
	var out []Scenario
	for _, bw := range []struct {
		label string
		bps   float64
	}{
		{"100Mbps", Mbit100},
		{"200Mbps", Mbit200},
		{"1Gbit", Gigabit},
	} {
		nio := BestUPNIO
		nio.Bandwidth = bw.bps
		httpd := BestUPHTTPD
		httpd.Bandwidth = bw.bps
		out = append(out, nio, httpd)
	}
	return out
}

// bwLabel distinguishes the six series of figures 5 and 6.
func bwLabel(sc Scenario) string {
	var bw string
	switch sc.Bandwidth {
	case Mbit100:
		bw = "100Mbps"
	case Mbit200:
		bw = "200Mbps"
	default:
		bw = "1Gbit"
	}
	return fmt.Sprintf("%s-%s", sc.Kind, bw)
}

func (s *Suite) bwPanel(id, title, ylabel string, y func(simclient.Report) float64) Figure {
	f := Figure{ID: id, Title: title, XLabel: "clients", YLabel: ylabel}
	for _, sc := range bwScenarios() {
		series := s.sweep(sc, y)
		series.Label = bwLabel(sc)
		f.Series = append(f.Series, series)
	}
	return f
}

// Fig5 — throughput under bandwidth limits (100/200/1000 Mbit).
func (s *Suite) Fig5() []Figure {
	return []Figure{s.bwPanel("5", "NIO vs Httpd throughput by link", "replies/s", throughput)}
}

// Fig6 — response time under bandwidth limits.
func (s *Suite) Fig6() []Figure {
	return []Figure{s.bwPanel("6", "NIO vs Httpd response time by link", "ms", response)}
}

// Fig7 — throughput comparison on the 4-way SMP.
func (s *Suite) Fig7() []Figure {
	return []Figure{
		s.panel("7a", "NIO SMP throughput", "replies/s", smpNIO(), throughput),
		s.panel("7b", "Httpd SMP throughput", "replies/s", smpHTTPD(), throughput),
	}
}

// Fig8 — response time comparison on the 4-way SMP.
func (s *Suite) Fig8() []Figure {
	return []Figure{
		s.panel("8a", "NIO SMP response time", "ms", smpNIO(), response),
		s.panel("8b", "Httpd SMP response time", "ms", smpHTTPD(), response),
	}
}

// upsmp builds the figure-9/10 panels: best UP config vs best SMP config
// for one server kind.
func (s *Suite) upsmp(id, title, ylabel string, up, smp Scenario, y func(simclient.Report) float64) Figure {
	f := Figure{ID: id, Title: title, XLabel: "clients", YLabel: ylabel}
	a := s.sweep(up, y)
	a.Label = "UP"
	b := s.sweep(smp, y)
	b.Label = "SMP"
	f.Series = append(f.Series, a, b)
	return f
}

// Fig9 — throughput scalability from 1 to 4 CPUs.
func (s *Suite) Fig9() []Figure {
	return []Figure{
		s.upsmp("9a", "NIO throughput UP vs SMP", "replies/s", BestUPNIO, BestSMPNIO, throughput),
		s.upsmp("9b", "Httpd throughput UP vs SMP", "replies/s", BestUPHTTPD, BestSMPHTTPD, throughput),
	}
}

// Fig10 — response time scalability from 1 to 4 CPUs.
func (s *Suite) Fig10() []Figure {
	return []Figure{
		s.upsmp("10a", "NIO response time UP vs SMP", "ms", BestUPNIO, BestSMPNIO, response),
		s.upsmp("10b", "Httpd response time UP vs SMP", "ms", BestUPHTTPD, BestSMPHTTPD, response),
	}
}

// Figures maps figure numbers to runners.
func (s *Suite) Figures(n int) ([]Figure, error) {
	switch n {
	case 1:
		return s.Fig1(), nil
	case 2:
		return s.Fig2(), nil
	case 3:
		return s.Fig3(), nil
	case 4:
		return s.Fig4(), nil
	case 5:
		return s.Fig5(), nil
	case 6:
		return s.Fig6(), nil
	case 7:
		return s.Fig7(), nil
	case 8:
		return s.Fig8(), nil
	case 9:
		return s.Fig9(), nil
	case 10:
		return s.Fig10(), nil
	case 11:
		return s.FigE1(), nil
	case 12:
		return s.FigE2(), nil
	case 13:
		return s.FigE3(), nil
	case 14:
		return s.FigE4(), nil
	default:
		return nil, fmt.Errorf("experiments: figures are 1–10 (paper) plus 11=E1 bandwidth, 12=E2 staged ablation, 13=E3 open-loop overload, 14=E4 worker-vs-prefork; not %d", n)
	}
}

// All runs every figure and renders the full report.
func (s *Suite) All() string {
	var b strings.Builder
	for n := 1; n <= 10; n++ {
		figs, err := s.Figures(n)
		if err != nil {
			panic(err) // unreachable: the loop stays in range
		}
		for _, f := range figs {
			b.WriteString(f.Render())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CacheKeys lists memoized runs (diagnostic).
func (s *Suite) CacheKeys() []string {
	keys := make([]string, 0, len(s.cache))
	for k := range s.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
