package experiments

import (
	"testing"

	"repro/internal/simcpu"
	"repro/internal/simsrv"
)

// Sensitivity analyses for the calibration knobs DESIGN.md §5 documents.
// Each test checks the *direction* a knob moves the results, so a future
// recalibration cannot silently invert a mechanism the figures rely on.

func sensScenario() Scenario {
	return Scenario{
		Kind: HTTPD, Threads: 4096, Processors: 1,
		Bandwidth: Gigabit, Clients: 3000, Seed: 77,
		WarmupSec: 5, MeasureSec: 15,
	}
}

func TestSensitivityKeepAlive(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	// Shorter keep-alive ⇒ more connection resets (thinking clients get
	// disconnected more often).
	short := sensScenario()
	short.KeepAliveSec = 5
	long := sensScenario()
	long.KeepAliveSec = 60
	rs, rl := short.Run(), long.Run()
	if rs.ResetErrPerSec <= rl.ResetErrPerSec {
		t.Errorf("resets: keepalive-5s %v/s not above keepalive-60s %v/s",
			rs.ResetErrPerSec, rl.ResetErrPerSec)
	}
}

func TestSensitivitySwitchOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	// Higher run-queue overhead ⇒ lower saturated throughput.
	lo := sensScenario()
	loCPU := PaperCPU(1)
	loCPU.SwitchOverhead = 0
	lo.CPUOverride = &loCPU

	hi := sensScenario()
	hiCPU := PaperCPU(1)
	hiCPU.SwitchOverhead = 0.10
	hi.CPUOverride = &hiCPU

	rlo, rhi := lo.Run(), hi.Run()
	if rhi.RepliesPerSec >= rlo.RepliesPerSec {
		t.Errorf("throughput with 10%% switch overhead (%v) not below zero-overhead (%v)",
			rhi.RepliesPerSec, rlo.RepliesPerSec)
	}
}

func TestSensitivityMemoryPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	// The memory penalty only bites pools above the threshold: a 6000-
	// thread server slows down when the penalty is turned up, a 896-
	// thread server does not.
	run := func(threads int, penalty float64) float64 {
		sc := sensScenario()
		sc.Threads = threads
		cpu := PaperCPU(1)
		cpu.MemPenaltyPerK = penalty
		sc.CPUOverride = &cpu
		return sc.Run().RepliesPerSec
	}
	bigNone, bigHigh := run(6000, 0), run(6000, 0.4)
	if bigHigh >= bigNone {
		t.Errorf("6000-thread throughput with penalty (%v) not below without (%v)", bigHigh, bigNone)
	}
	smallNone, smallHigh := run(896, 0), run(896, 0.4)
	diff := smallHigh - smallNone
	if diff < 0 {
		diff = -diff
	}
	if smallNone > 0 && diff/smallNone > 0.05 {
		t.Errorf("896-thread throughput moved %v%% under a penalty that should not apply",
			100*diff/smallNone)
	}
}

func TestSensitivityCostScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	// Doubling per-request CPU costs roughly halves saturated throughput.
	base := sensScenario()
	slow := sensScenario()
	costs := PaperCosts()
	costs.Parse *= 2
	costs.WriteSyscall *= 2
	costs.PerByte *= 2
	slow.CostOverride = &costs
	rb, rs := base.Run(), slow.Run()
	ratio := rs.RepliesPerSec / rb.RepliesPerSec
	if ratio > 0.75 || ratio < 0.3 {
		t.Errorf("2x CPU costs gave throughput ratio %v, want ~0.5", ratio)
	}
}

func TestSensitivityOverridesDoNotLeakIntoFigures(t *testing.T) {
	// The figure scenarios never set overrides; guard the zero values.
	for _, sc := range []Scenario{BestUPNIO, BestUPHTTPD, BestSMPNIO, BestSMPHTTPD} {
		if sc.KeepAliveSec != 0 || sc.CPUOverride != nil || sc.CostOverride != nil {
			t.Errorf("figure scenario %s carries overrides", sc.Label())
		}
	}
	var zero simcpu.Params
	_ = zero
	var zeroCosts simsrv.Costs
	_ = zeroCosts
}
