package experiments

import (
	"os"
	"testing"
	"time"
)

// TestCalibrationProbe prints the key operating points; run with
//
//	CALIBRATE=1 go test ./internal/experiments/ -run Probe -v
//
// It is skipped in normal runs (it is a diagnostic, not an assertion).
func TestCalibrationProbe(t *testing.T) {
	if os.Getenv("CALIBRATE") == "" {
		t.Skip("calibration probe disabled (set CALIBRATE=1 to enable)")
	}
	points := []Scenario{
		{Kind: HTTPD, Threads: 128, Processors: 1, Bandwidth: Gigabit, Clients: 3000, Seed: 1},
		{Kind: HTTPD, Threads: 896, Processors: 1, Bandwidth: Gigabit, Clients: 3000, Seed: 1},
		{Kind: HTTPD, Threads: 896, Processors: 1, Bandwidth: Gigabit, Clients: 6000, Seed: 1},
		{Kind: HTTPD, Threads: 6000, Processors: 1, Bandwidth: Gigabit, Clients: 6000, Seed: 1},
		{Kind: NIO, Workers: 4, Processors: 1, Bandwidth: Gigabit, Clients: 3000, Seed: 1},
		{Kind: NIO, Workers: 8, Processors: 1, Bandwidth: Gigabit, Clients: 3000, Seed: 1},
		{Kind: NIO, Workers: 3, Processors: 4, Bandwidth: Gigabit, Clients: 6000, Seed: 1},
		{Kind: NIO, Workers: 4, Processors: 4, Bandwidth: Gigabit, Clients: 6000, Seed: 1},
		{Kind: HTTPD, Threads: 2000, Processors: 4, Bandwidth: Gigabit, Clients: 6000, Seed: 1},
		{Kind: HTTPD, Threads: 6000, Processors: 4, Bandwidth: Gigabit, Clients: 6000, Seed: 1},
		{Kind: NIO, Workers: 1, Processors: 1, Bandwidth: Mbit200, Clients: 3000, Seed: 1},
		{Kind: HTTPD, Threads: 4096, Processors: 1, Bandwidth: Mbit200, Clients: 3000, Seed: 1},
	}
	for _, s := range points {
		start := time.Now()
		rep := s.Run()
		t.Logf("%s cpus=%d bw=%.0fMbit clients=%d → %.0f rep/s resp=%.3fs conn=%.4fs to=%.2f/s rst=%.2f/s bw=%.1fMB/s [wall %.1fs]",
			s.Label(), s.Processors, s.Bandwidth*8/0.94/1e6, s.Clients,
			rep.RepliesPerSec, rep.MeanResponseSec, rep.MeanConnectSec,
			rep.TimeoutErrPerSec, rep.ResetErrPerSec, rep.BandwidthBps/1e6,
			time.Since(start).Seconds())
	}
}
