// Package experiments reproduces every figure of the paper's evaluation
// (figures 1–10) on the simulated testbed: it builds scenarios (server
// architecture + configuration + processor count + link bandwidth + client
// population), runs them, and renders the same series the paper plots.
//
// Calibration: the cost constants in PaperCosts/PaperCPU/PaperWorkload are
// set so the uniprocessor CPU-bound peak lands near the paper's httpd2
// peak (~2500 replies/s) and 6000 clients offer roughly twice the
// uniprocessor capacity — which is what makes the paper's 4-way SMP runs
// stabilize at about 2× the UP throughput (figure 9). Absolute values are
// testbed-specific; the experiments assert and report shapes.
package experiments

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/simclient"
	"repro/internal/simcpu"
	"repro/internal/simnet"
	"repro/internal/simsrv"
	"repro/internal/surge"
)

// ServerKind selects the architecture under test.
type ServerKind int

// The two architectures the paper compares, plus the §6 staged pipeline
// in its two variants (shared processors vs per-stage affinity).
const (
	NIO       ServerKind = iota // event-driven reactor ("nio server")
	HTTPD                       // thread-pool worker MPM ("httpd2")
	STAGED                      // §6 pipeline, stages share all processors
	STAGEDAFF                   // §6 pipeline, stages pinned to processors
	PREFORK                     // process-per-connection MPM (Apache 1.3)
)

// String implements fmt.Stringer.
func (k ServerKind) String() string {
	switch k {
	case NIO:
		return "nio"
	case HTTPD:
		return "httpd"
	case STAGED:
		return "staged"
	case STAGEDAFF:
		return "staged-aff"
	case PREFORK:
		return "prefork"
	default:
		return "unknown"
	}
}

// Mbit converts megabits/s of nominal Ethernet rate into effective
// payload bytes/s (~94% after TCP/IP framing overhead).
func Mbit(m float64) float64 { return m * 1e6 / 8 * 0.94 }

// Standard link speeds of the paper's three network configurations.
var (
	Gigabit = Mbit(1000)
	Mbit100 = Mbit(100)
	Mbit200 = Mbit(200)
)

// PaperCosts returns the per-operation CPU prices calibrated to the
// paper's 4-way 1.4 GHz Xeon SUT (see package comment).
func PaperCosts() simsrv.Costs {
	return simsrv.Costs{
		Accept:       50e-6,
		Parse:        150e-6,
		WriteSyscall: 30e-6,
		PerByte:      8e-9,
		SelectWakeup: 8e-6,
		SynProcess:   10e-6,
		ChunkBytes:   64 << 10,
	}
}

// NIOCPUFactor inflates the event-driven server's CPU costs relative to
// httpd: the paper's nio server runs on a JVM (IBM JRE 1.4), httpd2 is
// native-compiled. This is what makes nio flatten slightly earlier on a
// uniprocessor (figure 1) while still matching httpd's peak with 1–2
// worker threads.
const NIOCPUFactor = 1.15

// SelectorContention is the per-extra-worker inflation of selector
// dispatch cost: Java NIO selectors serialize key-set access, so adding
// workers on the same selector infrastructure costs coordination. It is
// why 8 workers are no better than 1 on a uniprocessor (figure 1a) and
// why 2 workers suffice on the 4-way SMP (figure 7a).
const SelectorContention = 0.3

// scaledCosts returns costs multiplied by f (JVM factor), with the
// selector cost additionally inflated for multi-worker contention.
func scaledCosts(base simsrv.Costs, f float64, workers int) simsrv.Costs {
	c := base
	c.Accept *= f
	c.Parse *= f
	c.WriteSyscall *= f
	c.PerByte *= f
	c.SelectWakeup *= f * (1 + SelectorContention*float64(workers-1))
	c.SynProcess *= 1 // kernel-side, not JVM code
	return c
}

// PaperCPU returns the processor model for the given CPU count.
func PaperCPU(processors int) simcpu.Params {
	return simcpu.Params{
		Processors:     processors,
		SwitchOverhead: 0.02,
		MemThreshold:   3000,
		MemPenaltyPerK: 0.05,
	}
}

// PaperNet returns the network path for the given bandwidth.
func PaperNet(bandwidthBps float64) simnet.Params {
	return simnet.Params{
		BandwidthBps: bandwidthBps,
		Latency:      100e-6,
		Backlog:      1024,
		SynRetries:   5,
	}
}

// PaperWorkload returns the SURGE configuration used for every figure:
// the published SURGE shape with the OFF-time scales tightened so that
// 6000 clients offer ≈2× the uniprocessor capacity (the paper's figure 9
// shows SMP stabilizing at twice the UP throughput, which requires the
// offered load to sit between 1× and 2× UP capacity at the top of the
// client sweep).
// In addition to the OFF-time scaling, the reply-size body is raised
// (mean ≈ 19 KB total) so that the 200 Mbit/s link's reply ceiling sits
// clearly below the gigabit CPU-bound ceiling even though congestion
// skews the completed-reply mix toward small objects (big transfers are
// the ones that hit the 10 s watchdog first).
func PaperWorkload() surge.Config {
	cfg := surge.DefaultConfig()
	cfg.SizeBody = dist.Lognormal{Mu: 9.0, Sigma: 1.0}
	cfg.ActiveOff = dist.Weibull{Scale: 0.55, Shape: 0.382}
	cfg.InactiveOff = dist.Pareto{K: 0.8, Alpha: 1.5}
	return cfg
}

// KeepAliveSec is httpd2's configured idle timeout (paper §4.2).
const KeepAliveSec = 15

// Durations of one simulated run. The paper runs 5 minutes per point; 60
// measured seconds after a 10 s warmup gives the same steady-state means
// at a tenth of the event count.
const (
	WarmupSec  = 10
	MeasureSec = 60
)

// Scenario is one figure point: a fully specified run.
type Scenario struct {
	Kind       ServerKind
	Workers    int     // NIO: reactor workers
	Threads    int     // HTTPD: pool size
	Processors int     // 1 (UP) or 4 (SMP)
	Bandwidth  float64 // link bytes/s
	Clients    int
	// SessionRate > 0 selects httperf's open-loop mode: sessions arrive
	// as a Poisson process at this rate instead of a fixed closed-loop
	// population (Clients is then ignored).
	SessionRate float64
	Seed        uint64

	// Overrides for fast tests; zero means use the paper defaults.
	WarmupSec  float64
	MeasureSec float64

	// Optional model overrides (nil/zero = paper values). They exist for
	// ablation and sensitivity studies; the figure runners never set them.
	KeepAliveSec float64
	CPUOverride  *simcpu.Params
	CostOverride *simsrv.Costs
}

// Label returns the series label the paper's legends use.
func (s Scenario) Label() string {
	switch s.Kind {
	case NIO:
		return fmt.Sprintf("nio-%dw", s.Workers)
	case HTTPD:
		return fmt.Sprintf("httpd-%dt", s.Threads)
	case PREFORK:
		return fmt.Sprintf("prefork-%dp", s.Threads)
	default:
		return s.Kind.String()
	}
}

// Run executes the scenario and returns the httperf-style report.
func (s Scenario) Run() simclient.Report {
	engine := sim.NewEngine()
	rng := dist.NewRNG(s.Seed ^ 0x5eed5eed)
	cfg := PaperWorkload()
	set, err := surge.BuildObjectSet(cfg, dist.NewRNG(7)) // one fixed population for all runs
	if err != nil {
		panic(err)
	}
	net := simnet.NewNetwork(engine, PaperNet(s.Bandwidth))
	cpuParams := PaperCPU(s.Processors)
	if s.CPUOverride != nil {
		cpuParams = *s.CPUOverride
		cpuParams.Processors = s.Processors
	}
	baseCosts := PaperCosts()
	if s.CostOverride != nil {
		baseCosts = *s.CostOverride
	}
	keepAlive := float64(KeepAliveSec)
	if s.KeepAliveSec > 0 {
		keepAlive = s.KeepAliveSec
	}

	switch s.Kind {
	case NIO:
		cpu := simcpu.NewPool(engine, cpuParams)
		costs := scaledCosts(baseCosts, NIOCPUFactor, s.Workers)
		simsrv.NewEventDriven(engine, net, cpu, costs, s.Workers).Start()
	case HTTPD:
		cpu := simcpu.NewPool(engine, cpuParams)
		simsrv.NewThreaded(engine, net, cpu, baseCosts, s.Threads, keepAlive).Start()
	case PREFORK:
		cpu := simcpu.NewPool(engine, cpuParams)
		pcfg := simsrv.DefaultPreforkConfig()
		pcfg.MaxClients = s.Threads // the scenario's pool bound
		pcfg.KeepAlive = keepAlive
		simsrv.NewPrefork(engine, net, cpu, baseCosts, pcfg).Start()
	case STAGED, STAGEDAFF:
		// The staged pipeline is a Java event-driven server too: it
		// inherits the JVM cost factor. Stage specs follow
		// DefaultStagedSpec; SharedProcessors tracks the scenario.
		spec := simsrv.DefaultStagedSpec(s.Kind == STAGEDAFF)
		spec.SharedProcessors = s.Processors
		costs := scaledCosts(baseCosts, NIOCPUFactor, 1)
		simsrv.NewStaged(engine, net, cpuParams, costs, spec).Start()
	default:
		panic(fmt.Sprintf("experiments: unknown server kind %d", s.Kind))
	}

	opts := simclient.Options{
		Clients:     s.Clients,
		SessionRate: s.SessionRate,
		Timeout:     10,
		RampOver:    5,
		Warmup:      WarmupSec,
		Duration:    MeasureSec,
	}
	if s.WarmupSec > 0 {
		opts.Warmup = s.WarmupSec
	}
	if s.MeasureSec > 0 {
		opts.Duration = s.MeasureSec
	}
	fleet, err := simclient.NewFleet(engine, net, cfg, set, rng, opts)
	if err != nil {
		panic(err)
	}
	return fleet.Run()
}
