//go:build linux

// Package sysfault is a seeded fault-injecting seam over the raw
// syscalls the servers depend on: accept4, read, write, sendfile,
// epoll_wait, socket, connect, close. Production code calls the
// wrappers in this package instead of the syscall package directly;
// with no injector installed every wrapper is a nil-pointer check away
// from the real syscall (zero allocations, no locks), and with an
// injector installed every injection decision is a pure function of
//
//	(Seed, site, lane, per-(site,lane) call index)
//
// — the same addressed-determinism discipline as internal/faultline's
// per-segment draws — so a failure schedule replays byte-identically
// for a given seed no matter how wall-clock time or scheduling vary.
// The lane is the shard dimension: each reactor shard drives its own
// lane, so every shard owns an independent, independently-replayable
// decision stream, and faults fired on one lane can never perturb the
// call indices or draws of another. Lane 0 is the legacy stream —
// byte-identical to the pre-shard seam (unsharded servers and the
// thread-pool net.Conn seam both live there), which is why the lane is
// mixed into the hash only when nonzero.
// Probability rules are exactly reproducible even under concurrent
// callers (each per-(site,lane) index is claimed atomically and the
// draw depends on nothing else); count-limited rules consume a shared
// budget and are exactly reproducible when the site is driven from a
// single thread (the configuration every deterministic test uses) or
// when the rule is pinned to one lane with Rule.HasLane.
//
// Two deliberate exclusions: the reactor's wakeup pipe is NOT routed
// through the seam (wakeups are scheduling-dependent, so routing them
// would perturb site indices and destroy replay), and EINTR is
// absorbed INSIDE the wrappers (a signal retry is not an event, must
// not consume an injection index, and must not leak to call sites —
// callers owe only EAGAIN classification, which the syscallerr
// analyzer enforces at seam call sites).
package sysfault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
)

// Site identifies one syscall chokepoint class.
type Site uint8

const (
	SiteAccept Site = iota
	SiteRead
	SiteWrite
	SiteSendfile
	SiteEpollWait
	SiteSocket
	SiteConnect
	SiteClose
	NumSites = int(SiteClose) + 1
)

var siteNames = [NumSites]string{
	SiteAccept:    "accept",
	SiteRead:      "read",
	SiteWrite:     "write",
	SiteSendfile:  "sendfile",
	SiteEpollWait: "epoll_wait",
	SiteSocket:    "socket",
	SiteConnect:   "connect",
	SiteClose:     "close",
}

func (s Site) String() string {
	if int(s) < NumSites {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// ParseSite resolves a site name from a fault-plan spec.
func ParseSite(name string) (Site, error) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), nil
		}
	}
	return 0, fmt.Errorf("sysfault: unknown site %q", name)
}

// Lane identifies one shard's decision stream. Every wrapper takes the
// caller's lane; each (site, lane) pair owns its own call-index stream
// and its own position in the seeded hash, so shard 0's faults can
// never perturb shard 1's decisions. Lane 0 is the legacy pre-shard
// stream. Lanes at or beyond MaxLanes are folded back by masking
// (MaxLanes is a power of two), which keeps the arrays bounded while
// staying deterministic for any shard count.
type Lane uint32

// MaxLanes bounds the per-lane accounting arrays; lanes wrap modulo
// MaxLanes. 64 comfortably exceeds any realistic shard count.
const MaxLanes = 64

func (l Lane) index() int { return int(l) & (MaxLanes - 1) }

// Rule arms one fault class at one site. Errno == 0 means a short
// transfer of Len bytes (meaningful at write/sendfile/read); any other
// value is returned from the wrapper without performing the syscall —
// except at the close site, where the real close always runs first so
// an injected close error can never leak a descriptor.
type Rule struct {
	Site  Site
	Errno syscall.Errno // 0 => short transfer of Len bytes
	Prob  float64       // per-call fire probability in [0, 1]
	After uint64        // first eligible per-(site,lane) call index (0 = immediately)
	Count int           // max fires; <= 0 means unlimited
	Len   int           // short-transfer length (clamped to >= 1)
	// HasLane pins the rule to one shard's stream; the zero value arms
	// the rule on every lane (an unsharded server only ever has lane 0,
	// so pre-shard rule literals keep their meaning unchanged).
	HasLane bool
	Lane    Lane
}

// Decision is one fired injection, addressed by (site, lane) and the
// per-(site,lane) call index — the unit of the determinism golden.
type Decision struct {
	Site  Site
	Lane  Lane
	Index uint64
	Errno syscall.Errno // 0 => short transfer
	Len   int
}

func (d Decision) String() string {
	site := d.Site.String()
	if d.Lane != 0 {
		site = fmt.Sprintf("%s@%d", site, d.Lane)
	}
	if d.Errno == 0 {
		return fmt.Sprintf("%s[%d] short(%d)", site, d.Index, d.Len)
	}
	return fmt.Sprintf("%s[%d] %s", site, d.Index, ErrnoName(d.Errno))
}

// SiteStat is one site's call/fire accounting.
type SiteStat struct {
	Calls uint64
	Fires uint64
}

type compiledRule struct {
	Rule
	fired atomic.Int64
}

// decisionLogCap bounds the replay log; fires beyond it are counted
// but not retained (the golden tests never come near the cap).
const decisionLogCap = 4096

// Injector evaluates a rule set against the per-(site,lane) call
// streams.
type Injector struct {
	seed   uint64
	bySite [NumSites][]*compiledRule
	calls  [NumSites][MaxLanes]atomic.Uint64
	fires  [NumSites][MaxLanes]atomic.Uint64

	mu  sync.Mutex
	log []Decision
}

// New compiles a rule set under a seed. Rules at the same site are
// evaluated in the order given; the first that fires wins the call.
func New(seed uint64, rules ...Rule) *Injector {
	inj := &Injector{seed: seed}
	for _, r := range rules {
		if int(r.Site) >= NumSites {
			continue
		}
		if r.Len < 1 {
			r.Len = 1
		}
		if r.Prob > 1 {
			r.Prob = 1
		}
		inj.bySite[r.Site] = append(inj.bySite[r.Site], &compiledRule{Rule: r})
	}
	return inj
}

// Seed returns the seed the injector draws from.
func (inj *Injector) Seed() uint64 { return inj.seed }

// splitmix64 is the SplitMix64 finalizer: a full-avalanche mix of one
// 64-bit word, the hash primitive behind every addressed draw.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// drawFloat maps (seed, site, lane, index, rule) to a uniform float in
// [0, 1) by hashing the full address — no sequential RNG stream
// exists, so concurrent sites (and concurrent lanes) cannot perturb
// each other's draws. Lane 0 skips the lane mix so the unsharded
// stream stays byte-identical to the pre-shard seam.
func drawFloat(seed uint64, s Site, lane Lane, idx uint64, rule int) float64 {
	h := splitmix64(seed ^ 0x9e3779b97f4a7c15)
	h = splitmix64(h ^ (uint64(s) + 1))
	if lane != 0 {
		h = splitmix64(h ^ (0xd1b54a32d192ed03 + uint64(lane)))
	}
	h = splitmix64(h ^ idx)
	h = splitmix64(h ^ uint64(rule))
	return float64(h>>11) / (1 << 53)
}

type outcome struct {
	fire  bool
	errno syscall.Errno // 0 => short transfer
	len   int
	idx   uint64
}

// decide claims the next call index at (site, lane) and evaluates the
// site's rules against that lane's stream.
func (inj *Injector) decide(s Site, lane Lane) outcome {
	li := lane.index()
	idx := inj.calls[s][li].Add(1) - 1
	for ri, r := range inj.bySite[s] {
		if r.HasLane && r.Lane.index() != li {
			continue
		}
		if idx < r.After {
			continue
		}
		if r.Prob < 1 && drawFloat(inj.seed, s, lane, idx, ri) >= r.Prob {
			continue
		}
		if r.Count > 0 && r.fired.Add(1) > int64(r.Count) {
			continue
		}
		if r.Count <= 0 {
			r.fired.Add(1)
		}
		inj.fires[s][li].Add(1)
		inj.mu.Lock()
		if len(inj.log) < decisionLogCap {
			inj.log = append(inj.log, Decision{Site: s, Lane: lane, Index: idx, Errno: r.Errno, Len: r.Len})
		}
		inj.mu.Unlock()
		return outcome{fire: true, errno: r.Errno, len: r.Len, idx: idx}
	}
	return outcome{idx: idx}
}

// Step advances site s by one call index on lane 0 exactly as a
// wrapper would — without any syscall — and reports the decision
// taken. It exists for the determinism goldens and the demo: a
// schedule can be enumerated offline and compared against what live
// wrappers actually did.
func (inj *Injector) Step(s Site) (Decision, bool) { return inj.StepLane(s, 0) }

// StepLane is Step on an explicit lane — the offline replay primitive
// for per-shard decision streams.
func (inj *Injector) StepLane(s Site, lane Lane) (Decision, bool) {
	oc := inj.decide(s, lane)
	if !oc.fire {
		return Decision{}, false
	}
	return Decision{Site: s, Lane: lane, Index: oc.idx, Errno: oc.errno, Len: oc.len}, true
}

// Decisions returns a copy of the fired-injection log in fire order.
func (inj *Injector) Decisions() []Decision {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]Decision, len(inj.log))
	copy(out, inj.log)
	return out
}

// Stats returns per-site call and fire counts summed across lanes.
func (inj *Injector) Stats() [NumSites]SiteStat {
	var out [NumSites]SiteStat
	for i := range out {
		for l := 0; l < MaxLanes; l++ {
			out[i].Calls += inj.calls[i][l].Load()
			out[i].Fires += inj.fires[i][l].Load()
		}
	}
	return out
}

// LaneStats returns per-site call and fire counts for one lane's
// stream only — the unit the per-shard offline replay compares.
func (inj *Injector) LaneStats(lane Lane) [NumSites]SiteStat {
	li := lane.index()
	var out [NumSites]SiteStat
	for i := range out {
		out[i] = SiteStat{Calls: inj.calls[i][li].Load(), Fires: inj.fires[i][li].Load()}
	}
	return out
}

// ---------------------------------------------------------------------
// Global seam
// ---------------------------------------------------------------------

var current atomic.Pointer[Injector]

// Install arms inj globally. Passing nil disarms (same as Uninstall).
func Install(inj *Injector) { current.Store(inj) }

// Uninstall disarms the seam; wrappers revert to pure passthrough.
func Uninstall() { current.Store(nil) }

// Active returns the installed injector, or nil.
func Active() *Injector { return current.Load() }

// ---------------------------------------------------------------------
// Syscall wrappers. Each consumes exactly one injection index per call
// on the caller's lane (EINTR retries happen inside and do not consume
// indices), injects BEFORE the real syscall, and owes its caller
// EAGAIN classification only — EINTR never escapes a wrapper.
// ---------------------------------------------------------------------

// Accept4 accepts one connection. An injected errno (EMFILE, ENFILE,
// ECONNABORTED, ...) is returned without accepting.
func Accept4(lane Lane, lfd, flags int) (int, error) {
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteAccept, lane); oc.fire && oc.errno != 0 {
			return -1, oc.errno
		}
	}
	for {
		nfd, _, err := syscall.Accept4(lfd, flags)
		if err == syscall.EINTR {
			continue
		}
		return nfd, err
	}
}

// Read reads into p. An injected errno (ECONNRESET, EIO, ...) is
// returned without reading; a short injection truncates the buffer.
func Read(lane Lane, fd int, p []byte) (int, error) {
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteRead, lane); oc.fire {
			if oc.errno != 0 {
				return 0, oc.errno
			}
			if oc.len < len(p) {
				p = p[:oc.len]
			}
		}
	}
	for {
		n, err := syscall.Read(fd, p)
		if err == syscall.EINTR {
			continue
		}
		return n, err
	}
}

// Write writes p. An injected errno (ENOBUFS, ECONNRESET, EPIPE, ...)
// is returned without writing; a short injection truncates p so the
// kernel really does deliver only the prefix — callers must already
// cope with partial writes, which is exactly what the injection tests.
func Write(lane Lane, fd int, p []byte) (int, error) {
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteWrite, lane); oc.fire {
			if oc.errno != 0 {
				return 0, oc.errno
			}
			if oc.len < len(p) {
				p = p[:oc.len]
			}
		}
	}
	for {
		n, err := syscall.Write(fd, p)
		if err == syscall.EINTR {
			continue
		}
		return n, err
	}
}

// Sendfile moves up to max bytes from srcFD at *off into fd. An
// injected errno (EINVAL, EIO, ...) is returned without moving
// anything (*off untouched — precisely the contract the buffered
// fallback path relies on); a short injection caps max.
func Sendfile(lane Lane, fd, srcFD int, off *int64, max int) (int, error) {
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteSendfile, lane); oc.fire {
			if oc.errno != 0 {
				return 0, oc.errno
			}
			if oc.len < max {
				max = oc.len
			}
		}
	}
	for {
		n, err := syscall.Sendfile(fd, srcFD, off, max)
		if err == syscall.EINTR {
			continue
		}
		return n, err
	}
}

// EpollWait waits for readiness events. EINTR is absorbed here (the
// one place the reactor used to need retryEINTR for it), so callers
// see only real errors.
func EpollWait(lane Lane, epfd int, events []syscall.EpollEvent, msec int) (int, error) {
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteEpollWait, lane); oc.fire && oc.errno != 0 {
			return 0, oc.errno
		}
	}
	for {
		n, err := syscall.EpollWait(epfd, events, msec)
		if err == syscall.EINTR {
			continue
		}
		return n, err
	}
}

// Socket creates a socket. An injected errno (EMFILE, ENFILE,
// ENOBUFS, ...) is returned without creating one.
func Socket(lane Lane, domain, typ, proto int) (int, error) {
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteSocket, lane); oc.fire && oc.errno != 0 {
			return -1, oc.errno
		}
	}
	return syscall.Socket(domain, typ, proto)
}

// Connect starts a connect. An injected errno (ECONNREFUSED,
// EADDRNOTAVAIL, ETIMEDOUT, ...) is returned without touching the
// socket; the caller owns — and must still close — the fd either way.
func Connect(lane Lane, fd int, sa syscall.Sockaddr) error {
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteConnect, lane); oc.fire && oc.errno != 0 {
			return oc.errno
		}
	}
	for {
		err := syscall.Connect(fd, sa)
		if err == syscall.EINTR {
			continue
		}
		return err
	}
}

// Close closes fd. The REAL close always runs — an injected errno is
// reported afterwards, so the seam can exercise close-error handling
// without ever leaking a descriptor.
func Close(lane Lane, fd int) error {
	err := syscall.Close(fd)
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteClose, lane); oc.fire && oc.errno != 0 {
			return oc.errno
		}
	}
	return err
}
