//go:build linux

package sysfault

import (
	"reflect"
	"strings"
	"syscall"
	"testing"
)

func TestParsePlan(t *testing.T) {
	cases := []struct {
		spec string
		want []Rule
	}{
		{"", nil},
		{"  ;  ; ", nil},
		{"accept:emfile:1", []Rule{{Site: SiteAccept, Errno: syscall.EMFILE, Prob: 1}}},
		{"write:short:0.5:len=7", []Rule{{Site: SiteWrite, Prob: 0.5, Len: 7}}},
		{"write:short:1", []Rule{{Site: SiteWrite, Prob: 1, Len: 1}}},
		{
			"connect:econnrefused:1:after=3:count=2; sendfile:eio:0.25",
			[]Rule{
				{Site: SiteConnect, Errno: syscall.ECONNREFUSED, Prob: 1, After: 3, Count: 2},
				{Site: SiteSendfile, Errno: syscall.EIO, Prob: 0.25},
			},
		},
	}
	for _, c := range cases {
		got, err := ParsePlan(c.spec)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParsePlanRejects(t *testing.T) {
	bad := []string{
		"accept",                    // no errno/prob
		"accept:emfile",             // no prob
		"flurb:emfile:1",            // unknown site
		"accept:ewhatever:1",        // unknown errno
		"accept:emfile:2",           // prob out of range
		"accept:emfile:-0.5",        // prob out of range
		"accept:emfile:nan",         // NaN smuggled past range checks
		"accept:emfile:1:count",     // option without value
		"accept:emfile:1:weird=3",   // unknown option
		"accept:emfile:1:after=x",   // non-numeric value
		"accept:emfile:1:len=4",     // len on an errno rule
		"write:short:1:len=0",       // zero-length short
		"accept:emfile:1:count=1e9", // absurd numeric (uint32 overflowing handled too)
	}
	for _, spec := range bad {
		if rules, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted: %+v", spec, rules)
		}
	}
}

func TestFormatPlanRoundTrip(t *testing.T) {
	rules := MustParsePlan(goldenPlan)
	again, err := ParsePlan(FormatPlan(rules))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(rules, again) {
		t.Fatalf("round trip drifted:\n%+v\nvs\n%+v", rules, again)
	}
}

// FuzzParsePlan holds the parser to two properties on arbitrary
// input: it never panics, and anything it accepts survives a
// format→parse round trip unchanged.
func FuzzParsePlan(f *testing.F) {
	f.Add(goldenPlan)
	f.Add("accept:emfile:1:after=64:count=8")
	f.Add("write:short:0.01:len=3; read:econnreset:0.5")
	f.Add(";;;")
	f.Add("a:b:c:d=e")
	f.Add("accept:emfile:0.3:after=18446744073709551615")
	f.Fuzz(func(t *testing.T, spec string) {
		rules, err := ParsePlan(spec)
		if err != nil {
			return
		}
		again, err := ParsePlan(FormatPlan(rules))
		if err != nil {
			t.Fatalf("accepted %q but rejected its own format %q: %v", spec, FormatPlan(rules), err)
		}
		if !reflect.DeepEqual(rules, again) {
			t.Fatalf("round trip drifted for %q:\n%+v\nvs\n%+v", spec, rules, again)
		}
		// Accepted plans must also be runnable without panicking.
		inj := New(1, rules...)
		for s := Site(0); int(s) < NumSites; s++ {
			inj.Step(s)
		}
	})
}

func TestErrnoNameCoversAlphabet(t *testing.T) {
	for name, e := range errnoByName {
		if got := ErrnoName(e); got != name {
			t.Errorf("ErrnoName(%s) = %q", name, got)
		}
		if back, err := ParseErrno(name); err != nil || back != e {
			t.Errorf("ParseErrno(%q) = %v, %v", name, back, err)
		}
	}
	if !strings.HasPrefix(ErrnoName(syscall.EXDEV), "errno(") {
		t.Errorf("out-of-alphabet errno should fall back, got %q", ErrnoName(syscall.EXDEV))
	}
}
