//go:build linux

package sysfault

import (
	"strings"
	"syscall"
	"testing"
)

// enumerate drives every site for n calls in a fixed round-robin
// order and renders the fired schedule — the determinism golden's
// canonical form.
func enumerate(inj *Injector, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		for s := Site(0); int(s) < NumSites; s++ {
			if d, ok := inj.Step(s); ok {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

const goldenPlan = "accept:emfile:0.2; write:short:0.1:len=3; write:econnreset:0.05; " +
	"sendfile:eio:0.15:after=4; connect:econnrefused:0.5:count=3; read:econnreset:0.08"

// The golden below pins the exact schedule seed 42 produces for the
// plan above over 24 calls per site. If it ever changes, replay of
// every recorded failure seed breaks — treat a diff here as an API
// break, not a test to update.
const goldenSeed42 = `accept[1] emfile
accept[2] emfile
connect[3] econnrefused
accept[4] emfile
sendfile[5] eio
connect[6] econnrefused
accept[7] emfile
connect[7] econnrefused
read[10] econnreset
accept[11] emfile
read[11] econnreset
read[13] econnreset
accept[15] emfile
write[16] short(3)
accept[21] emfile
`

func TestDeterminismGolden(t *testing.T) {
	got := enumerate(New(42, MustParsePlan(goldenPlan)...), 24)
	if got != goldenSeed42 {
		t.Errorf("seed-42 schedule drifted:\ngot:\n%s\nwant:\n%s", got, goldenSeed42)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	rules := MustParsePlan(goldenPlan)
	a := enumerate(New(7, rules...), 50)
	b := enumerate(New(7, rules...), 50)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	c := enumerate(New(8, rules...), 50)
	if a == c {
		t.Fatal("different seeds produced identical 50-call schedules")
	}
}

// Per-site streams are independently addressed: interleaving calls to
// OTHER sites must not perturb a site's own schedule.
func TestSiteStreamsIndependent(t *testing.T) {
	rules := MustParsePlan("write:econnreset:0.3")
	solo := New(99, rules...)
	var want []uint64
	for i := 0; i < 200; i++ {
		if d, ok := solo.Step(SiteWrite); ok {
			want = append(want, d.Index)
		}
	}
	mixed := New(99, rules...)
	var got []uint64
	for i := 0; i < 200; i++ {
		mixed.Step(SiteRead) // unrelated traffic on other sites
		mixed.Step(SiteAccept)
		if d, ok := mixed.Step(SiteWrite); ok {
			got = append(got, d.Index)
		}
		mixed.Step(SiteClose)
	}
	if len(got) != len(want) {
		t.Fatalf("schedule length changed under interleaving: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire %d moved: index %d vs %d", i, got[i], want[i])
		}
	}
}

func TestAfterAndCount(t *testing.T) {
	inj := New(1, MustParsePlan("accept:emfile:1:after=5:count=3")...)
	var fired []uint64
	for i := 0; i < 20; i++ {
		if d, ok := inj.Step(SiteAccept); ok {
			fired = append(fired, d.Index)
		}
	}
	if len(fired) != 3 || fired[0] != 5 || fired[1] != 6 || fired[2] != 7 {
		t.Fatalf("after=5:count=3 fired at %v, want [5 6 7]", fired)
	}
	st := inj.Stats()
	if st[SiteAccept].Calls != 20 || st[SiteAccept].Fires != 3 {
		t.Fatalf("stats = %+v, want 20 calls / 3 fires", st[SiteAccept])
	}
}

// socketpair returns a connected AF_UNIX pair for wrapper tests.
func socketpair(t *testing.T) (a, b int) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatalf("socketpair: %v", err)
	}
	t.Cleanup(func() {
		syscall.Close(fds[0])
		syscall.Close(fds[1])
	})
	return fds[0], fds[1]
}

func TestWrappersPassthroughWhenOff(t *testing.T) {
	Uninstall()
	a, b := socketpair(t)
	if _, err := Write(0, a, []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := Read(0, b, buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
}

func TestWriteInjection(t *testing.T) {
	a, b := socketpair(t)

	// Short write: only the injected prefix reaches the kernel.
	Install(New(3, Rule{Site: SiteWrite, Prob: 1, Len: 2, Count: 1}))
	defer Uninstall()
	n, err := Write(0, a, []byte("hello"))
	if err != nil || n != 2 {
		t.Fatalf("short write = %d, %v; want 2, nil", n, err)
	}
	buf := make([]byte, 16)
	if n, _ := Read(0, b, buf); string(buf[:n]) != "he" {
		t.Fatalf("peer saw %q, want %q", buf[:n], "he")
	}

	// Errno injection: the syscall never runs.
	Install(New(3, Rule{Site: SiteWrite, Errno: syscall.ENOBUFS, Prob: 1}))
	if _, err := Write(0, a, []byte("x")); err != syscall.ENOBUFS {
		t.Fatalf("err = %v, want ENOBUFS", err)
	}
	Uninstall()
	if _, err := Write(0, a, []byte("!")); err != nil {
		t.Fatalf("post-uninstall write: %v", err)
	}
	if n, _ := Read(0, b, buf); string(buf[:n]) != "!" {
		t.Fatalf("peer saw %q after errno injection, want %q (nothing must have leaked)", buf[:n], "!")
	}
}

func TestSendfileErrnoLeavesOffsetUntouched(t *testing.T) {
	Install(New(5, Rule{Site: SiteSendfile, Errno: syscall.EIO, Prob: 1}))
	defer Uninstall()
	off := int64(7)
	// fds are never touched on the injected path, so invalid ones are fine.
	if _, err := Sendfile(0, -1, -1, &off, 100); err != syscall.EIO {
		t.Fatalf("err = %v, want EIO", err)
	}
	if off != 7 {
		t.Fatalf("offset moved to %d on an injected failure", off)
	}
}

func TestCloseAlwaysCloses(t *testing.T) {
	a, _ := socketpair(t)
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatal(err)
	}
	syscall.Close(fds[1])
	Install(New(9, Rule{Site: SiteClose, Errno: syscall.EIO, Prob: 1}))
	defer Uninstall()
	if err := Close(0, fds[0]); err != syscall.EIO {
		t.Fatalf("err = %v, want injected EIO", err)
	}
	// The descriptor must really be gone despite the injected error.
	Uninstall()
	if err := syscall.Close(fds[0]); err != syscall.EBADF {
		t.Fatalf("second close = %v, want EBADF (fd leaked past injected close error)", err)
	}
	_ = a
}

func TestDecisionLogMatchesLiveWrappers(t *testing.T) {
	// The log recorded by live wrapper traffic must equal the offline
	// enumeration for the same seed and call pattern.
	plan := MustParsePlan("write:econnreset:0.25")
	live := New(21, plan...)
	Install(live)
	a, _ := socketpair(t)
	for i := 0; i < 40; i++ {
		_, _ = Write(0, a, []byte("x"))
	}
	Uninstall()

	offline := New(21, plan...)
	for i := 0; i < 40; i++ {
		offline.Step(SiteWrite)
	}
	lg, og := live.Decisions(), offline.Decisions()
	if len(lg) != len(og) {
		t.Fatalf("live fired %d, offline %d", len(lg), len(og))
	}
	for i := range lg {
		if lg[i] != og[i] {
			t.Fatalf("decision %d: live %v vs offline %v", i, lg[i], og[i])
		}
	}
}

func BenchmarkWritePassthrough(b *testing.B) {
	Uninstall()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_DGRAM, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer syscall.Close(fds[0])
	defer syscall.Close(fds[1])
	buf := []byte("benchmark payload")
	drain := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Write(0, fds[0], buf); err != nil {
			b.Fatal(err)
		}
		_, _ = syscall.Read(fds[1], drain)
	}
}
