//go:build linux

package sysfault

import (
	"reflect"
	"syscall"
	"testing"
)

// laneDecisions filters the injector's fire log down to one lane's
// stream, in fire order — the unit of per-shard replay comparison.
func laneDecisions(inj *Injector, lane Lane) []Decision {
	var out []Decision
	for _, d := range inj.Decisions() {
		if d.Lane == lane {
			out = append(out, d)
		}
	}
	return out
}

// enumerateLane drives every site for n calls on one lane, returning
// the fired schedule — the per-lane analogue of enumerate().
func enumerateLane(inj *Injector, lane Lane, n int) []Decision {
	var out []Decision
	for i := 0; i < n; i++ {
		for s := Site(0); int(s) < NumSites; s++ {
			if d, ok := inj.StepLane(s, lane); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// TestLaneZeroIsLegacyStream pins the shard-0 compatibility contract:
// lane 0's schedule is byte-identical to the pre-shard seam, so every
// failure seed recorded before sharding still replays exactly. The
// golden is the same seed-42 schedule TestDeterminismGolden pins —
// driving it through StepLane(s, 0) must reproduce it verbatim.
func TestLaneZeroIsLegacyStream(t *testing.T) {
	inj := New(42, MustParsePlan(goldenPlan)...)
	var got string
	for i := 0; i < 24; i++ {
		for s := Site(0); int(s) < NumSites; s++ {
			if d, ok := inj.StepLane(s, 0); ok {
				got += d.String() + "\n"
			}
		}
	}
	if got != goldenSeed42 {
		t.Errorf("lane-0 schedule is not the legacy stream:\ngot:\n%s\nwant:\n%s", got, goldenSeed42)
	}
}

// TestLaneStreamsDiffer guards against a degenerate lane mix: distinct
// lanes under the same seed must not share a schedule (if they did,
// every shard would fault in lockstep and the sweep's independence
// claim would be vacuous).
func TestLaneStreamsDiffer(t *testing.T) {
	rules := MustParsePlan("write:econnreset:0.3; read:eio:0.2")
	perLane := make([][]Decision, 4)
	for lane := Lane(0); lane < 4; lane++ {
		inj := New(77, rules...)
		perLane[lane] = enumerateLane(inj, lane, 100)
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			// Compare index schedules only; Lane fields differ trivially.
			ai, bi := indexSchedule(perLane[a]), indexSchedule(perLane[b])
			if reflect.DeepEqual(ai, bi) {
				t.Errorf("lanes %d and %d produced identical 100-call schedules: %v", a, b, ai)
			}
		}
	}
}

func indexSchedule(ds []Decision) [][2]uint64 {
	out := make([][2]uint64, len(ds))
	for i, d := range ds {
		out[i] = [2]uint64{uint64(d.Site), d.Index}
	}
	return out
}

// TestCrossLaneIsolation is the shard-isolation theorem in miniature:
// a lane's decision stream is a pure function of (seed, site, lane,
// index), so traffic on OTHER lanes — any amount, any interleaving —
// must not move a single fire. Lane 2's schedule driven solo must
// equal lane 2's schedule with lanes 0, 1 and 3 hammering the same
// sites between every call.
func TestCrossLaneIsolation(t *testing.T) {
	rules := MustParsePlan("write:econnreset:0.3; accept:emfile:0.15")
	solo := New(99, rules...)
	want := enumerateLane(solo, 2, 150)

	mixed := New(99, rules...)
	var got []Decision
	for i := 0; i < 150; i++ {
		// Unrelated traffic on every other lane, deliberately uneven.
		mixed.StepLane(SiteWrite, 0)
		mixed.StepLane(SiteAccept, 1)
		mixed.StepLane(SiteWrite, 1)
		mixed.StepLane(SiteAccept, 3)
		for s := Site(0); int(s) < NumSites; s++ {
			if d, ok := mixed.StepLane(s, 2); ok {
				got = append(got, d)
			}
		}
		mixed.StepLane(SiteWrite, 3)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lane 2 schedule moved under cross-lane traffic:\nsolo:  %v\nmixed: %v", want, got)
	}

	// And the converse: lane 0 (the legacy stream) is unperturbed by
	// lane 2's presence — per-lane accounting confirms no bleed.
	if ls := mixed.LaneStats(0); ls[SiteWrite].Calls != 150 {
		t.Fatalf("lane 0 write calls = %d, want 150 (lane traffic bled across lanes)", ls[SiteWrite].Calls)
	}
	if ls := mixed.LaneStats(2); ls[SiteWrite].Calls != 150 {
		t.Fatalf("lane 2 write calls = %d, want 150", ls[SiteWrite].Calls)
	}
}

// TestInterleavingInvariance replays the same per-lane call pattern
// under two schedules — all of lane 0 then all of lane 1, versus
// strict alternation — and requires identical per-lane decision
// streams. This is exactly the property the sharded server leans on:
// shard scheduling is nondeterministic, shard fault schedules are not.
func TestInterleavingInvariance(t *testing.T) {
	rules := MustParsePlan("read:econnreset:0.25; write:short:0.1:len=2")
	const n = 200

	serial := New(1234, rules...)
	for lane := Lane(0); lane < 2; lane++ {
		for i := 0; i < n; i++ {
			serial.StepLane(SiteRead, lane)
			serial.StepLane(SiteWrite, lane)
		}
	}

	interleaved := New(1234, rules...)
	for i := 0; i < n; i++ {
		for lane := Lane(0); lane < 2; lane++ {
			interleaved.StepLane(SiteRead, lane)
			interleaved.StepLane(SiteWrite, lane)
		}
	}

	for lane := Lane(0); lane < 2; lane++ {
		a, b := laneDecisions(serial, lane), laneDecisions(interleaved, lane)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("lane %d stream depends on interleaving:\nserial:      %v\ninterleaved: %v", lane, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("lane %d never fired over %d calls at p=0.25 — test is vacuous", lane, n)
		}
	}
}

// TestLanePinnedRule holds HasLane to its contract: a rule pinned to
// lane 2 — whether built as a literal or parsed from a ":lane=2"
// clause — fires only on lane 2's stream, and because the pin makes
// the count budget single-lane, count-limited replay is exact.
func TestLanePinnedRule(t *testing.T) {
	build := map[string]func() *Injector{
		"literal": func() *Injector {
			return New(5, Rule{Site: SiteWrite, Errno: syscall.ECONNRESET, Prob: 1, Count: 3, HasLane: true, Lane: 2})
		},
		"parsed": func() *Injector {
			return New(5, MustParsePlan("write:econnreset:1:count=3:lane=2")...)
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			inj := mk()
			for i := 0; i < 10; i++ {
				for lane := Lane(0); lane < 4; lane++ {
					inj.StepLane(SiteWrite, lane)
				}
			}
			for lane := Lane(0); lane < 4; lane++ {
				ls := inj.LaneStats(lane)
				wantFires := uint64(0)
				if lane == 2 {
					wantFires = 3
				}
				if ls[SiteWrite].Calls != 10 || ls[SiteWrite].Fires != wantFires {
					t.Errorf("lane %d: %d calls / %d fires, want 10 / %d",
						lane, ls[SiteWrite].Calls, ls[SiteWrite].Fires, wantFires)
				}
			}
			// The pinned count budget fires at exactly indices 0,1,2 of
			// lane 2's stream — replayable like any other schedule.
			want := []Decision{
				{Site: SiteWrite, Lane: 2, Index: 0, Errno: syscall.ECONNRESET, Len: 1},
				{Site: SiteWrite, Lane: 2, Index: 1, Errno: syscall.ECONNRESET, Len: 1},
				{Site: SiteWrite, Lane: 2, Index: 2, Errno: syscall.ECONNRESET, Len: 1},
			}
			if got := inj.Decisions(); !reflect.DeepEqual(got, want) {
				t.Errorf("pinned schedule = %v, want %v", got, want)
			}
		})
	}
}

// TestLanePlanRoundTrip pins the ":lane=" clause through the full
// parse → format → parse cycle, including the lane-0 pin (which must
// not collapse into "no pin" — HasLane is the discriminator).
func TestLanePlanRoundTrip(t *testing.T) {
	spec := "write:econnreset:0.5:lane=3; read:short:0.25:len=4:lane=0; accept:emfile:1:after=2:count=5:lane=63"
	rules, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Site: SiteWrite, Errno: syscall.ECONNRESET, Prob: 0.5, HasLane: true, Lane: 3},
		{Site: SiteRead, Prob: 0.25, Len: 4, HasLane: true, Lane: 0},
		{Site: SiteAccept, Errno: syscall.EMFILE, Prob: 1, After: 2, Count: 5, HasLane: true, Lane: 63},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Fatalf("ParsePlan(%q) = %+v, want %+v", spec, rules, want)
	}
	again, err := ParsePlan(FormatPlan(rules))
	if err != nil {
		t.Fatalf("re-parse of %q: %v", FormatPlan(rules), err)
	}
	if !reflect.DeepEqual(rules, again) {
		t.Fatalf("lane round trip drifted:\n%+v\nvs\n%+v", rules, again)
	}
	// Out-of-range lanes are a parse error, not a silent mask.
	if rules, err := ParsePlan("write:eio:1:lane=64"); err == nil {
		t.Fatalf("lane=64 accepted: %+v", rules)
	}
}

// TestLiveWrappersMatchOfflinePerLane is the per-shard replay theorem
// end to end: live wrapper traffic spread across four lanes must
// produce, per lane, exactly the decision stream an offline StepLane
// enumeration predicts for the same seed and per-lane call counts —
// even though the live traffic interleaves lanes in an order the
// offline replay never sees.
func TestLiveWrappersMatchOfflinePerLane(t *testing.T) {
	plan := MustParsePlan("write:econnreset:0.25")
	const perLane = 30

	live := New(21, plan...)
	Install(live)
	a, _ := socketpair(t)
	// Round-robin the lanes the way four shards would: interleaved.
	for i := 0; i < perLane; i++ {
		for lane := Lane(0); lane < 4; lane++ {
			_, _ = Write(lane, a, []byte("x"))
		}
	}
	Uninstall()

	offline := New(21, plan...)
	// Enumerate lane-major: a completely different interleaving.
	for lane := Lane(0); lane < 4; lane++ {
		for i := 0; i < perLane; i++ {
			offline.StepLane(SiteWrite, lane)
		}
	}

	fired := 0
	for lane := Lane(0); lane < 4; lane++ {
		lg, og := laneDecisions(live, lane), laneDecisions(offline, lane)
		if !reflect.DeepEqual(lg, og) {
			t.Fatalf("lane %d: live %v vs offline %v", lane, lg, og)
		}
		fired += len(lg)
		ls, os := live.LaneStats(lane), offline.LaneStats(lane)
		if ls[SiteWrite] != os[SiteWrite] {
			t.Fatalf("lane %d accounting: live %+v vs offline %+v", lane, ls[SiteWrite], os[SiteWrite])
		}
	}
	if fired == 0 {
		t.Fatalf("no lane fired over %d calls at p=0.25 — test is vacuous", 4*perLane)
	}
}
