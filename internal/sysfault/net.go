//go:build linux

package sysfault

import (
	"errors"
	"net"
	"syscall"
)

// The thread-pool server (internal/mtserver) lives on net.Conn, not
// raw fds, so its seam is one layer up: a Listener/Conn pair that
// consults the same injector and the same per-site call streams as
// the raw wrappers. Injected errors surface as *net.OpError wrapping
// the syscall.Errno — exactly the shape the net package produces for
// the real failure — so errors.Is(err, syscall.EMFILE) works
// unchanged in the server's error handling.
//
// Zero-cost-when-off holds here too: with no injector installed,
// Accept returns the underlying net.Conn UNWRAPPED, so steady-state
// reads and writes never traverse the seam at all.

// Listener routes accepts through the seam's accept site.
type Listener struct {
	net.Listener
}

// WrapListener wraps l; safe to use unconditionally.
func WrapListener(l net.Listener) *Listener { return &Listener{Listener: l} }

func opError(op string, e syscall.Errno) error {
	return &net.OpError{Op: op, Net: "tcp", Err: e}
}

// Accept accepts one connection, consuming one accept-site index per
// call while an injector is armed. Connections accepted while armed
// are wrapped so their reads and writes hit the read/write sites.
func (l *Listener) Accept() (net.Conn, error) {
	inj := current.Load()
	if inj == nil {
		return l.Listener.Accept()
	}
	if oc := inj.decide(SiteAccept, 0); oc.fire && oc.errno != 0 {
		return nil, opError("accept", oc.errno)
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c}, nil
}

// Conn routes Read/Write through the seam's read/write sites.
type Conn struct {
	net.Conn
}

func (c *Conn) Read(p []byte) (int, error) {
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteRead, 0); oc.fire {
			if oc.errno != 0 {
				return 0, opError("read", oc.errno)
			}
			if oc.len < len(p) {
				p = p[:oc.len]
			}
		}
	}
	return c.Conn.Read(p)
}

// Write delivers p, possibly injecting an error or a short prefix. A
// short injection returns n < len(p) with a nil error — the kernel's
// partial-write shape for a raw fd, which the io.Writer contract
// forbids net.Conn implementations from producing; the mtserver write
// path therefore loops on partial progress, and that loop is exactly
// what this injection exercises.
func (c *Conn) Write(p []byte) (int, error) {
	if inj := current.Load(); inj != nil {
		if oc := inj.decide(SiteWrite, 0); oc.fire {
			if oc.errno != 0 {
				return 0, opError("write", oc.errno)
			}
			if oc.len < len(p) {
				return c.Conn.Write(p[:oc.len])
			}
		}
	}
	return c.Conn.Write(p)
}

// SyscallConn exposes the underlying descriptor so the docroot's
// sendfile path keeps working through the wrapper (sendfile-site
// injection happens inside that path's raw Sendfile calls).
func (c *Conn) SyscallConn() (syscall.RawConn, error) {
	if sc, ok := c.Conn.(syscall.Conn); ok {
		return sc.SyscallConn()
	}
	return nil, errors.New("sysfault: underlying conn has no SyscallConn")
}
