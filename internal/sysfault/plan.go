//go:build linux

package sysfault

import (
	"fmt"
	"strconv"
	"strings"
	"syscall"
)

// The fault-plan spec is the CLI/env surface of the seam: a
// semicolon-separated list of clauses, each
//
//	site:errno:prob[:after=K][:count=N][:len=N][:lane=K]
//
// e.g. "accept:emfile:1:after=64:count=8; write:short:0.01:len=3".
// "short" in the errno position arms a short transfer instead of an
// error; "lane=K" pins the rule to shard K's decision stream (without
// it a rule arms on every lane). Parsing is strict — an unknown site, errno, or option is an
// error, never silently ignored — and ParsePlan must never panic on
// arbitrary input (there is a fuzz target holding it to that).

var errnoByName = map[string]syscall.Errno{
	"eagain":        syscall.EAGAIN,
	"eaddrnotavail": syscall.EADDRNOTAVAIL,
	"ebadf":         syscall.EBADF,
	"econnaborted":  syscall.ECONNABORTED,
	"econnrefused":  syscall.ECONNREFUSED,
	"econnreset":    syscall.ECONNRESET,
	"ehostunreach":  syscall.EHOSTUNREACH,
	"eintr":         syscall.EINTR,
	"einval":        syscall.EINVAL,
	"eio":           syscall.EIO,
	"emfile":        syscall.EMFILE,
	"enfile":        syscall.ENFILE,
	"enobufs":       syscall.ENOBUFS,
	"enomem":        syscall.ENOMEM,
	"epipe":         syscall.EPIPE,
	"etimedout":     syscall.ETIMEDOUT,
}

// ErrnoName renders e as the lowercase spec token ("emfile"), falling
// back to the errno's own string for values outside the plan alphabet.
func ErrnoName(e syscall.Errno) string {
	for name, v := range errnoByName {
		if v == e {
			return name
		}
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// ParseErrno resolves a spec errno token; "short" is not an errno and
// is handled by the clause parser.
func ParseErrno(name string) (syscall.Errno, error) {
	if e, ok := errnoByName[name]; ok {
		return e, nil
	}
	return 0, fmt.Errorf("sysfault: unknown errno %q", name)
}

// ParsePlan parses a fault-plan spec into rules (see the grammar
// above). An empty or all-whitespace spec yields no rules and no
// error.
func ParsePlan(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// MustParsePlan is ParsePlan for compile-time-constant specs in tests
// and examples; it panics on error.
func MustParsePlan(spec string) []Rule {
	rules, err := ParsePlan(spec)
	if err != nil {
		panic(err)
	}
	return rules
}

func parseClause(clause string) (Rule, error) {
	parts := strings.Split(clause, ":")
	if len(parts) < 3 {
		return Rule{}, fmt.Errorf("sysfault: clause %q needs site:errno:prob", clause)
	}
	var r Rule
	site, err := ParseSite(strings.TrimSpace(parts[0]))
	if err != nil {
		return Rule{}, err
	}
	r.Site = site
	errTok := strings.TrimSpace(parts[1])
	if errTok == "short" {
		r.Errno = 0
		r.Len = 1
	} else {
		e, err := ParseErrno(errTok)
		if err != nil {
			return Rule{}, err
		}
		r.Errno = e
	}
	prob, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || !(prob >= 0 && prob <= 1) { // the negated form also rejects NaN
		return Rule{}, fmt.Errorf("sysfault: clause %q: probability must be in [0, 1]", clause)
	}
	r.Prob = prob
	for _, opt := range parts[3:] {
		opt = strings.TrimSpace(opt)
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Rule{}, fmt.Errorf("sysfault: clause %q: option %q is not key=value", clause, opt)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 32)
		if err != nil {
			return Rule{}, fmt.Errorf("sysfault: clause %q: option %q needs a small non-negative integer", clause, opt)
		}
		switch strings.TrimSpace(key) {
		case "after":
			r.After = n
		case "count":
			r.Count = int(n)
		case "len":
			if r.Errno != 0 {
				return Rule{}, fmt.Errorf("sysfault: clause %q: len= only applies to short", clause)
			}
			if n < 1 {
				return Rule{}, fmt.Errorf("sysfault: clause %q: len must be >= 1", clause)
			}
			r.Len = int(n)
		case "lane":
			if n >= MaxLanes {
				return Rule{}, fmt.Errorf("sysfault: clause %q: lane must be < %d", clause, MaxLanes)
			}
			r.HasLane = true
			r.Lane = Lane(n)
		default:
			return Rule{}, fmt.Errorf("sysfault: clause %q: unknown option %q", clause, key)
		}
	}
	return r, nil
}

// String renders r back into clause form; ParsePlan(FormatPlan(rules))
// reproduces rules exactly (the fuzz target's round-trip property).
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Site.String())
	b.WriteByte(':')
	if r.Errno == 0 {
		b.WriteString("short")
	} else {
		b.WriteString(ErrnoName(r.Errno))
	}
	fmt.Fprintf(&b, ":%s", strconv.FormatFloat(r.Prob, 'g', -1, 64))
	if r.After > 0 {
		fmt.Fprintf(&b, ":after=%d", r.After)
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, ":count=%d", r.Count)
	}
	if r.Errno == 0 && r.Len > 1 {
		fmt.Fprintf(&b, ":len=%d", r.Len)
	}
	if r.HasLane {
		fmt.Fprintf(&b, ":lane=%d", r.Lane)
	}
	return b.String()
}

// FormatPlan renders rules as a spec string ParsePlan accepts.
func FormatPlan(rules []Rule) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "; ")
}
