//go:build linux

package proxy

import (
	"fmt"
	"sort"
)

// Policy selects which healthy backend a request is relayed to.
type Policy int

const (
	// RoundRobin rotates across healthy backends in order.
	RoundRobin Policy = iota
	// LeastInflight picks the healthy backend with the fewest relays in
	// flight — the adaptive choice when backends differ in capacity or
	// one architecture saturates before the other.
	LeastInflight
	// HashPath maps each request path onto a consistent-hash ring, so a
	// given object keeps hitting the same backend (cache affinity) and
	// backend churn only remaps the vnodes the lost backend owned.
	HashPath
)

// ParsePolicy maps the CLI spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "rr", "roundrobin":
		return RoundRobin, nil
	case "least", "least-inflight":
		return LeastInflight, nil
	case "hash", "hash-path":
		return HashPath, nil
	}
	return 0, fmt.Errorf("proxy: unknown balance policy %q (want rr|least|hash)", s)
}

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "rr"
	case LeastInflight:
		return "least"
	case HashPath:
		return "hash"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// vnodesPerBackend is the consistent-hash ring density. 64 vnodes per
// backend keeps the maximum load imbalance across a handful of backends
// within a few percent while the ring stays small enough to rebuild
// never and binary-search cheaply.
const vnodesPerBackend = 64

type ringEntry struct {
	hash uint64
	idx  int // backend index
}

// picker is the balancing decision. It is only called from the event
// loop goroutine (rr counter needs no synchronization); backend health
// is read through the lock-free healthy bit.
type picker struct {
	policy Policy
	rr     int
	ring   []ringEntry // HashPath only; sorted by hash, built once
}

func newPicker(policy Policy, backends []*Backend) *picker {
	p := &picker{policy: policy}
	if policy == HashPath {
		p.ring = make([]ringEntry, 0, len(backends)*vnodesPerBackend)
		for _, b := range backends {
			for v := 0; v < vnodesPerBackend; v++ {
				key := fmt.Sprintf("%s#%d", b.cfg.Addr, v)
				p.ring = append(p.ring, ringEntry{hash: fnv64a(key), idx: b.idx})
			}
		}
		sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })
	}
	return p
}

// pick returns the backend to relay path to, or nil when no healthy
// backend exists.
func (p *picker) pick(backends []*Backend, path string) *Backend {
	switch p.policy {
	case LeastInflight:
		var best *Backend
		var bestN int64
		for _, b := range backends {
			if !b.healthy.Load() {
				continue
			}
			n := b.inflight.Load()
			if best == nil || n < bestN {
				best, bestN = b, n
			}
		}
		return best
	case HashPath:
		if len(p.ring) == 0 {
			return nil
		}
		h := fnv64a(path)
		// First ring entry at or after h, wrapping.
		i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
		for step := 0; step < len(p.ring); step++ {
			e := p.ring[(i+step)%len(p.ring)]
			if b := backends[e.idx]; b.healthy.Load() {
				return b
			}
		}
		return nil
	default: // RoundRobin
		n := len(backends)
		for step := 0; step < n; step++ {
			b := backends[(p.rr+step)%n]
			if b.healthy.Load() {
				p.rr = (p.rr + step + 1) % n
				return b
			}
		}
		return nil
	}
}

// fnv64a is 64-bit FNV-1a with a murmur-style finalizer. Raw FNV-1a is
// a poor ring hash: near-identical strings (vnode keys differing only
// in a numeric suffix, "/obj/N" paths) land clustered because trailing
// bytes barely reach the high bits. The finalizer's avalanche fixes the
// spread while keeping the function tiny and allocation-free.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
