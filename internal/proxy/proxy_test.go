//go:build linux

package proxy

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func startBackend(t *testing.T, store core.Store) *core.Server {
	t.Helper()
	s, err := core.NewServer(core.DefaultConfig(store))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func startProxy(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func testStore() core.MapStore {
	return core.MapStore{
		"/hello": []byte("hello world"),
		"/big":   make([]byte, 300<<10),
	}
}

// noProbes returns a tier config with active probing disabled, so tests
// of the passive path are deterministic.
func noProbes(backends ...BackendConfig) Config {
	cfg := DefaultConfig(backends)
	cfg.ProbeEvery = 0
	return cfg
}

func httpGet(t *testing.T, addr, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestRelayBasic(t *testing.T) {
	b := startBackend(t, testStore())
	p := startProxy(t, noProbes(BackendConfig{Addr: b.Addr()}))

	resp, body := httpGet(t, p.Addr(), "/hello")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if string(body) != "hello world" {
		t.Fatalf("body = %q", body)
	}
	// Relayed responses must NOT carry the proxy's Via token — that is
	// the shed-attribution contract.
	if v := resp.Header.Get("Via"); v != "" {
		t.Fatalf("relayed response carries Via %q", v)
	}
	st := p.Stats()
	if st.Replies != 1 || st.UpstreamDials != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BadGateway != 0 || st.UpstreamErrors != 0 {
		t.Fatalf("unexpected errors: %+v", st)
	}
}

func TestKeepAliveAndUpstreamReuse(t *testing.T) {
	b := startBackend(t, testStore())
	p := startProxy(t, noProbes(BackendConfig{Addr: b.Addr()}))

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	for i := 0; i < 5; i++ {
		if _, err := fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: sut\r\n\r\n"); err != nil {
			t.Fatal(err)
		}
		resp, err := http.ReadResponse(br, nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(body) != "hello world" {
			t.Fatalf("request %d: status %d body %q", i, resp.StatusCode, body)
		}
	}
	st := p.Stats()
	if st.Replies != 5 {
		t.Fatalf("replies = %d, want 5", st.Replies)
	}
	if st.UpstreamReuses == 0 {
		t.Fatalf("no upstream reuse across %d keep-alive requests: %+v", 5, st)
	}
	if st.ConnsOpen != 1 {
		t.Fatalf("conns_open = %d, want the one live client", st.ConnsOpen)
	}
}

func TestBalancesAcrossBackends(t *testing.T) {
	b1 := startBackend(t, testStore())
	b2 := startBackend(t, testStore())
	cfg := noProbes(
		BackendConfig{Addr: b1.Addr(), Name: "nio-a"},
		BackendConfig{Addr: b2.Addr(), Name: "nio-b"})
	cfg.Balance = RoundRobin
	p := startProxy(t, cfg)

	for i := 0; i < 10; i++ {
		resp, _ := httpGet(t, p.Addr(), "/hello")
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	var got []int64
	for _, b := range p.Backends() {
		got = append(got, b.Stats().Relayed)
	}
	if got[0] != 5 || got[1] != 5 {
		t.Fatalf("round-robin split = %v, want [5 5]", got)
	}
}

func TestHashAffinity(t *testing.T) {
	b1 := startBackend(t, testStore())
	b2 := startBackend(t, testStore())
	cfg := noProbes(BackendConfig{Addr: b1.Addr()}, BackendConfig{Addr: b2.Addr()})
	cfg.Balance = HashPath
	p := startProxy(t, cfg)

	for i := 0; i < 6; i++ {
		if resp, _ := httpGet(t, p.Addr(), "/hello"); resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	// Path affinity: every /hello request landed on the same backend.
	s0, s1 := p.Backends()[0].Stats(), p.Backends()[1].Stats()
	if !(s0.Relayed == 6 && s1.Relayed == 0) && !(s0.Relayed == 0 && s1.Relayed == 6) {
		t.Fatalf("hash split = [%d %d], want all on one backend", s0.Relayed, s1.Relayed)
	}
}

// fakeBackend is a scripted upstream: every request gets the canned
// response bytes, verbatim.
func fakeBackend(t *testing.T, response string) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				close(done)
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					// Consume one request head.
					sawAny := false
					for {
						line, err := br.ReadString('\n')
						if err != nil {
							return
						}
						sawAny = true
						if line == "\r\n" || line == "\n" {
							break
						}
					}
					if !sawAny {
						return
					}
					if _, err := io.WriteString(c, response); err != nil {
						return
					}
					if strings.Contains(response, "Connection: close") {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); <-done }
}

// TestBackendShedPassesThrough pins the core of the overload contract:
// a backend's 503 — status, Retry-After, body — reaches the client
// byte-untouched, with no Via header, while the proxy counts it as a
// relayed shed rather than its own.
func TestBackendShedPassesThrough(t *testing.T) {
	addr, stop := fakeBackend(t,
		"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nContent-Length: 4\r\nRetry-After: 7\r\nConnection: close\r\n\r\nbusy")
	defer stop()
	p := startProxy(t, noProbes(BackendConfig{Addr: addr}))

	resp, body := httpGet(t, p.Addr(), "/x")
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if v := resp.Header.Get("Retry-After"); v != "7" {
		t.Fatalf("Retry-After = %q, want backend's own %q", v, "7")
	}
	if v := resp.Header.Get("Via"); v != "" {
		t.Fatalf("backend shed was stamped with Via %q — attribution broken", v)
	}
	if string(body) != "busy" {
		t.Fatalf("body = %q", body)
	}
	st := p.Stats()
	if st.Relayed503 != 1 || st.Shed != 0 {
		t.Fatalf("relayed_503 = %d, shed = %d; backend shed misattributed (%+v)",
			st.Relayed503, st.Shed, st)
	}
}

// TestProxyShedCarriesVia pins the other half: the tier's own refusal
// is Via-stamped so clients can tell the layers apart.
func TestProxyShedCarriesVia(t *testing.T) {
	b := startBackend(t, testStore())
	cfg := noProbes(BackendConfig{Addr: b.Addr()})
	cfg.MaxConns = 1
	p := startProxy(t, cfg)

	// Occupy the only slot with an idle connection.
	hold, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	// Give the proxy loop a beat to accept it.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().ConnsOpen == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: sut\r\n\r\n")
	resp, err := http.ReadResponse(bufio.NewReader(c), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want tier shed", resp.StatusCode)
	}
	if v := resp.Header.Get("Via"); v != ViaToken {
		t.Fatalf("proxy shed Via = %q, want %q", v, ViaToken)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("proxy shed missing Retry-After")
	}
	if st := p.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1 (%+v)", st.Shed, st)
	}
}

// TestDeadBackend502 drives a single dead upstream: the relay budget is
// spent on connect failures and the client gets a Via-stamped 502; the
// failures eject the backend passively, so the next request is refused
// instantly with no_backend.
func TestDeadBackend502(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	cfg := noProbes(BackendConfig{Addr: deadAddr})
	cfg.FailAfter = 2
	cfg.RelayAttempts = 3
	p := startProxy(t, cfg)

	resp, _ := httpGet(t, p.Addr(), "/hello")
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if v := resp.Header.Get("Via"); v != ViaToken {
		t.Fatalf("502 Via = %q", v)
	}
	st := p.Stats()
	if st.BadGateway != 1 || st.UpstreamErrors == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if p.Backends()[0].Healthy() {
		t.Fatal("backend survived consecutive connect failures")
	}
	if st.Ejections != 1 {
		t.Fatalf("ejections = %d, want 1", st.Ejections)
	}

	// Ejected and nothing else to try: immediate no-backend 503.
	resp2, _ := httpGet(t, p.Addr(), "/hello")
	if resp2.StatusCode != 503 || resp2.Header.Get("Via") != ViaToken {
		t.Fatalf("post-ejection: status %d Via %q", resp2.StatusCode, resp2.Header.Get("Via"))
	}
	if st := p.Stats(); st.NoBackend != 1 {
		t.Fatalf("no_backend = %d (%+v)", st.NoBackend, st)
	}
}

// TestFailoverToSurvivor: one live and one dead backend under round-
// robin. Every request must succeed — relays that land on the dead
// backend retry onto the survivor — and the dead backend must end up
// ejected with zero client-visible errors.
func TestFailoverToSurvivor(t *testing.T) {
	live := startBackend(t, testStore())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	cfg := noProbes(
		BackendConfig{Addr: live.Addr(), Name: "live"},
		BackendConfig{Addr: deadAddr, Name: "dead"})
	cfg.Balance = RoundRobin
	cfg.FailAfter = 1
	p := startProxy(t, cfg)

	for i := 0; i < 8; i++ {
		resp, body := httpGet(t, p.Addr(), "/hello")
		if resp.StatusCode != 200 || string(body) != "hello world" {
			t.Fatalf("request %d: status %d body %q", i, resp.StatusCode, body)
		}
	}
	st := p.Stats()
	if st.BadGateway != 0 {
		t.Fatalf("client-visible 502s during failover: %+v", st)
	}
	if p.Backends()[1].Healthy() {
		t.Fatal("dead backend still marked healthy")
	}
	if s := p.Backends()[0].Stats(); s.Relayed != 8 {
		t.Fatalf("survivor relayed %d, want 8", s.Relayed)
	}
}

// TestProbeEjectAndReadmit exercises the active health-check loop end
// to end: stop a backend, watch the prober eject it; restart it on the
// same port, watch the prober re-admit it.
func TestProbeEjectAndReadmit(t *testing.T) {
	b, err := core.NewServer(core.DefaultConfig(testStore()))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	port := b.Port()

	health := make(chan bool, 16)
	cfg := DefaultConfig([]BackendConfig{{Addr: b.Addr(), Name: "flapper"}})
	cfg.ProbeEvery = 20 * time.Millisecond
	cfg.ProbeTimeout = 200 * time.Millisecond
	cfg.FailAfter = 2
	cfg.ReviveAfter = 2
	cfg.OnHealthChange = func(name string, healthy bool) { health <- healthy }
	p := startProxy(t, cfg)

	if resp, _ := httpGet(t, p.Addr(), "/hello"); resp.StatusCode != 200 {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}

	b.Stop()
	select {
	case h := <-health:
		if h {
			t.Fatal("first health transition was a re-admission")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("prober never ejected the stopped backend")
	}

	// Resurrect on the same port; the prober must notice.
	cfg2 := core.DefaultConfig(testStore())
	cfg2.Port = port
	b2, err := core.NewServer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b2.Stop)

	select {
	case h := <-health:
		if !h {
			t.Fatal("second health transition was another ejection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("prober never re-admitted the restarted backend")
	}
	if resp, _ := httpGet(t, p.Addr(), "/hello"); resp.StatusCode != 200 {
		t.Fatalf("post-revival status %d", resp.StatusCode)
	}
	st := p.Stats()
	if st.Ejections < 1 || st.Readmissions < 1 {
		t.Fatalf("ejections=%d readmissions=%d", st.Ejections, st.Readmissions)
	}
}

// TestProbelessCooldownReadmission: with probing disabled, a passive
// ejection must not be permanent. After ReadmitAfter the backend
// re-enters rotation on probation, and once it is actually back the
// next request flows again — a transient failure streak cannot wedge
// the tier for good.
func TestProbelessCooldownReadmission(t *testing.T) {
	b, err := core.NewServer(core.DefaultConfig(testStore()))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	port := b.Port()

	health := make(chan bool, 16)
	cfg := noProbes(BackendConfig{Addr: b.Addr(), Name: "solo"})
	cfg.FailAfter = 2
	cfg.RelayAttempts = 2
	cfg.ReadmitAfter = 150 * time.Millisecond
	cfg.OnHealthChange = func(name string, healthy bool) { health <- healthy }
	p := startProxy(t, cfg)

	if resp, _ := httpGet(t, p.Addr(), "/hello"); resp.StatusCode != 200 {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}

	// Kill the backend; the next request burns its relay budget on
	// connect failures (502) and the streak ejects the backend.
	b.Stop()
	if resp, _ := httpGet(t, p.Addr(), "/hello"); resp.StatusCode != 502 {
		t.Fatalf("dead-backend status %d, want 502", resp.StatusCode)
	}
	select {
	case h := <-health:
		if h {
			t.Fatal("first health transition was a re-admission")
		}
	default:
		t.Fatal("passive failures did not eject the backend")
	}

	// Inside the cooldown a fresh request is refused instantly.
	if resp, _ := httpGet(t, p.Addr(), "/hello"); resp.StatusCode != 503 {
		t.Fatalf("in-cooldown status %d, want 503", resp.StatusCode)
	}

	// Resurrect on the same port and wait out the cooldown: the next
	// request re-admits the backend on probation and succeeds.
	cfg2 := core.DefaultConfig(testStore())
	cfg2.Port = port
	b2, err := core.NewServer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b2.Stop)
	time.Sleep(cfg.ReadmitAfter + 50*time.Millisecond)

	resp, body := httpGet(t, p.Addr(), "/hello")
	if resp.StatusCode != 200 || string(body) != "hello world" {
		t.Fatalf("post-cooldown status %d body %q", resp.StatusCode, body)
	}
	select {
	case h := <-health:
		if !h {
			t.Fatal("second health transition was another ejection")
		}
	default:
		t.Fatal("cooldown re-admission never fired OnHealthChange")
	}
	st := p.Stats()
	if st.Ejections != 1 || st.Readmissions != 1 {
		t.Fatalf("ejections=%d readmissions=%d, want 1/1", st.Ejections, st.Readmissions)
	}
	if bs := p.Backends()[0].Stats(); bs.Readmissions != 1 {
		t.Fatalf("backend readmissions = %d, want 1", bs.Readmissions)
	}
}

func TestHealthStateMachine(t *testing.T) {
	b := &Backend{}
	b.healthy.Store(true)

	if b.noteFailure(3) || b.noteFailure(3) {
		t.Fatal("ejected before the streak completed")
	}
	if !b.noteFailure(3) {
		t.Fatal("third consecutive failure did not eject")
	}
	if b.Healthy() {
		t.Fatal("still healthy after ejection")
	}
	if b.noteFailure(3) {
		t.Fatal("re-ejected while already out")
	}

	// Passive success clears streaks but must never re-admit.
	if b.noteSuccess(false, 2) {
		t.Fatal("passive success re-admitted an ejected backend")
	}
	if b.noteSuccess(true, 2) {
		t.Fatal("re-admitted after one probe success, want two")
	}
	// An interleaved failure resets the revival streak.
	b.noteFailure(3)
	if b.noteSuccess(true, 2) {
		t.Fatal("revival streak survived an interleaved failure")
	}
	if !b.noteSuccess(true, 2) {
		t.Fatal("two consecutive probe successes did not re-admit")
	}
	if !b.Healthy() {
		t.Fatal("not healthy after re-admission")
	}
	if b.Stats().Ejections != 1 || b.Stats().Readmissions != 1 {
		t.Fatalf("transitions: %+v", b.Stats())
	}
}

func TestProbeOnce(t *testing.T) {
	b := startBackend(t, testStore())
	if !probeOnce(b.Addr(), "/hello", time.Second) {
		t.Fatal("probe failed against a live backend")
	}
	// A 404 path still proves liveness.
	if !probeOnce(b.Addr(), "/definitely-missing", time.Second) {
		t.Fatal("probe treated 404 as dead")
	}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	dead := ln.Addr().String()
	ln.Close()
	if probeOnce(dead, "/", 200*time.Millisecond) {
		t.Fatal("probe succeeded against a closed port")
	}
}

func TestDrain(t *testing.T) {
	b := startBackend(t, testStore())
	p := startProxy(t, noProbes(BackendConfig{Addr: b.Addr()}))
	if resp, _ := httpGet(t, p.Addr(), "/hello"); resp.StatusCode != 200 {
		t.Fatal("warmup failed")
	}
	if !p.Drain(2 * time.Second) {
		t.Fatal("drain did not complete")
	}
	if _, err := net.DialTimeout("tcp", p.Addr(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

func TestValidate(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Fatal("empty config validated")
	}
	cfg := DefaultConfig([]BackendConfig{{Addr: "127.0.0.1:1"}})
	cfg.FailAfter = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero FailAfter validated")
	}
	cfg = DefaultConfig(nil)
	if err := cfg.Validate(); err == nil {
		t.Fatal("no backends validated")
	}
}
