//go:build linux

package proxy

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/dist"
)

// BackendConfig names one upstream server in the pool.
type BackendConfig struct {
	// Addr is the data-plane address ("a.b.c.d:port"; numeric IPv4 — the
	// relay dials it with raw non-blocking sockets).
	Addr string
	// AdminAddr, when non-empty, is the backend's obs admin endpoint;
	// the rollup collector scrapes its /rollup snapshot so the tier can
	// serve one merged telemetry view.
	AdminAddr string
	// Name labels the backend in stats and rollups (default "b<index>").
	Name string
}

// Backend is the live state of one upstream: its health state machine
// (shared between the event loop's passive observations and the active
// prober goroutine), its connection pool (owned exclusively by the event
// loop), and its counters.
type Backend struct {
	cfg BackendConfig
	idx int

	// healthy is the balancer's lock-free routing bit.
	healthy atomic.Bool

	// prewarmReq asks the event loop to dial one warm-up upstream
	// socket; set on re-admission (by the prober goroutine or the
	// loop's own cooldown re-admit), consumed by the loop before each
	// poll so the first post-recovery relay finds a connection waiting.
	prewarmReq atomic.Bool

	// Health state machine. Passive signals (connect/read failures on
	// the relay path) and active probe outcomes feed the same streak
	// counters: FailAfter consecutive failures eject, ReviveAfter
	// consecutive probe successes re-admit. The machine is shared
	// between the event loop (passive signals, cooldown re-admission)
	// and the prober goroutine, and the loop must never take a lock —
	// so the streak pair lives in one CAS word (consecFails in the low
	// half, consecOKs in the high half) and health transitions are
	// guarded by CompareAndSwap on the healthy bit, which also makes
	// "this call performed the transition" exact under contention.
	streaks   atomic.Uint64 // consecFails | consecOKs<<32
	ejectedAt atomic.Int64  // unix nanos of the last ejection

	// Counters (atomic: read by Stats/admin from other goroutines).
	ejections    atomic.Int64
	readmissions atomic.Int64
	inflight     atomic.Int64 // relays assigned to this backend, not yet completed
	open         atomic.Int64 // upstream sockets currently open
	idleN        atomic.Int64 // of which parked idle
	relayed      atomic.Int64 // responses relayed downstream
	relayed503   atomic.Int64 // of which 503s passed through untouched
	upErrors     atomic.Int64 // connect/read/parse failures on the relay path
	dials        atomic.Int64
	reuses       atomic.Int64
	probes       atomic.Int64
	probeFails   atomic.Int64

	// Event-loop-owned pool state. Never touched off the loop thread.
	//nio:loop-owned
	idle []*uconn
	//nio:loop-owned
	waitq []*relay
}

// Name returns the backend's display name.
func (b *Backend) Name() string { return b.cfg.Name }

// Addr returns the backend's data-plane address.
func (b *Backend) Addr() string { return b.cfg.Addr }

// Healthy reports whether the balancer may route to this backend.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// noteFailure records one failure signal (passive relay failure or
// active probe failure). Reaching failAfter consecutive failures ejects
// the backend. Reports whether this call performed the ejection.
func (b *Backend) noteFailure(failAfter int) bool {
	for {
		old := b.streaks.Load()
		fails := uint32(old) + 1
		if !b.streaks.CompareAndSwap(old, uint64(fails)) { // oks cleared
			continue
		}
		if int(fails) >= failAfter && b.healthy.CompareAndSwap(true, false) {
			b.ejectedAt.Store(time.Now().UnixNano())
			b.ejections.Add(1)
			return true
		}
		return false
	}
}

// selfReadmit is the probeless counterpart of the prober's ReviveAfter
// machinery: once cooldown has elapsed since ejection, the backend
// re-enters rotation on probation — FailAfter fresh failures re-eject
// it. Without this, a tier running with probing disabled would turn any
// transient failure streak into a permanent ejection (nothing else ever
// re-admits). Reports whether this call re-admitted the backend.
func (b *Backend) selfReadmit(now time.Time, cooldown time.Duration) bool {
	if b.healthy.Load() || now.Sub(time.Unix(0, b.ejectedAt.Load())) < cooldown {
		return false
	}
	if !b.healthy.CompareAndSwap(false, true) {
		return false // the prober re-admitted first
	}
	b.streaks.Store(0)
	b.readmissions.Add(1)
	return true
}

// noteSuccess records one success signal. Probe successes (probe=true)
// accumulate toward re-admission of an ejected backend; passive
// successes (a relay completing) only clear the failure streak — a
// half-dead backend must prove itself to the prober before taking
// traffic again. Reports whether this call re-admitted the backend.
func (b *Backend) noteSuccess(probe bool, reviveAfter int) bool {
	for {
		old := b.streaks.Load()
		oks := uint32(old >> 32)
		healthy := b.healthy.Load()
		if !healthy && probe {
			oks++
		}
		if !b.streaks.CompareAndSwap(old, uint64(oks)<<32) { // fails cleared
			continue
		}
		if healthy || !probe || int(oks) < reviveAfter {
			return false
		}
		if !b.healthy.CompareAndSwap(false, true) {
			return false // lost the re-admission race
		}
		b.streaks.Store(0)
		b.readmissions.Add(1)
		return true
	}
}

// BackendStats is an atomic snapshot of one backend's state.
type BackendStats struct {
	Name, Addr   string
	Healthy      bool
	Inflight     int64
	Open         int64
	Idle         int64
	Relayed      int64
	Relayed503   int64
	Errors       int64
	Dials        int64
	Reuses       int64
	Probes       int64
	ProbeFails   int64
	Ejections    int64
	Readmissions int64
}

func (b *Backend) Stats() BackendStats {
	return BackendStats{
		Name:         b.cfg.Name,
		Addr:         b.cfg.Addr,
		Healthy:      b.healthy.Load(),
		Inflight:     b.inflight.Load(),
		Open:         b.open.Load(),
		Idle:         b.idleN.Load(),
		Relayed:      b.relayed.Load(),
		Relayed503:   b.relayed503.Load(),
		Errors:       b.upErrors.Load(),
		Dials:        b.dials.Load(),
		Reuses:       b.reuses.Load(),
		Probes:       b.probes.Load(),
		ProbeFails:   b.probeFails.Load(),
		Ejections:    b.ejections.Add(0),
		Readmissions: b.readmissions.Load(),
	}
}

// ---------------------------------------------------------------------
// Active health probes
// ---------------------------------------------------------------------

// probeLoop is one backend's prober goroutine: a periodic liveness probe
// with seeded jitter (so a fleet of probers never phase-locks into
// synchronized probe bursts), feeding the shared health state machine.
// It runs off the event loop — probing is a cold path and may block.
func (s *Server) probeLoop(b *Backend, rng *dist.RNG) {
	defer s.wg.Done()
	for {
		// Jittered wait in [interval/2, interval*3/2), deterministic from
		// the configured seed and the backend's draw sequence.
		wait := time.Duration(float64(s.cfg.ProbeEvery) * (0.5 + rng.Float64()))
		select {
		case <-s.stopping:
			return
		case <-time.After(wait):
		}
		b.probes.Add(1)
		if probeOnce(b.cfg.Addr, s.cfg.ProbePath, s.cfg.ProbeTimeout) {
			if b.noteSuccess(true, s.cfg.ReviveAfter) {
				s.readmiss.add(1)
				b.prewarmReq.Store(true)
				s.poller.Wakeup()
				if f := s.cfg.OnHealthChange; f != nil {
					f(b.cfg.Name, true)
				}
			}
		} else {
			b.probeFails.Add(1)
			if b.noteFailure(s.cfg.FailAfter) {
				s.ejections.add(1)
				if f := s.cfg.OnHealthChange; f != nil {
					f(b.cfg.Name, false)
				}
			}
		}
	}
}

// probeOnce performs one liveness probe: connect, send a minimal HEAD,
// and accept ANY well-formed HTTP status line in reply. A 404 from a
// probe path the backend does not serve still proves the whole stack —
// accept loop, parser, responder — is alive; only connect failures,
// timeouts, and non-HTTP garbage count against the backend.
func probeOnce(addr, path string, timeout time.Duration) bool {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return false
	}
	defer c.Close()
	deadline := time.Now().Add(timeout)
	_ = c.SetDeadline(deadline)
	if _, err := fmt.Fprintf(c, "HEAD %s HTTP/1.1\r\nHost: probe\r\nUser-Agent: nioproxy-probe/1.0\r\nConnection: close\r\n\r\n", path); err != nil {
		return false
	}
	line, err := bufio.NewReaderSize(c, 256).ReadString('\n')
	if err != nil {
		return false
	}
	return strings.HasPrefix(line, "HTTP/1.1 ") || strings.HasPrefix(line, "HTTP/1.0 ")
}
