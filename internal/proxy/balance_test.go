//go:build linux

package proxy

import (
	"fmt"
	"testing"
)

func mkBackends(n int) []*Backend {
	bs := make([]*Backend, n)
	for i := range bs {
		bs[i] = &Backend{cfg: BackendConfig{Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i), Name: fmt.Sprintf("b%d", i)}, idx: i}
		bs[i].healthy.Store(true)
	}
	return bs
}

func TestParsePolicy(t *testing.T) {
	for spelling, want := range map[string]Policy{
		"rr": RoundRobin, "roundrobin": RoundRobin,
		"least": LeastInflight, "least-inflight": LeastInflight,
		"hash": HashPath, "hash-path": HashPath,
	} {
		got, err := ParsePolicy(spelling)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", spelling, got, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("unknown policy parsed")
	}
}

func TestRoundRobinSkipsUnhealthy(t *testing.T) {
	bs := mkBackends(3)
	p := newPicker(RoundRobin, bs)
	bs[1].healthy.Store(false)
	var seq []int
	for i := 0; i < 6; i++ {
		b := p.pick(bs, "/x")
		if b == nil {
			t.Fatal("nil pick with healthy backends present")
		}
		seq = append(seq, b.idx)
	}
	for i, idx := range seq {
		if idx == 1 {
			t.Fatalf("pick %d landed on the unhealthy backend (seq %v)", i, seq)
		}
	}
	// Alternates over the two survivors.
	if seq[0] == seq[1] {
		t.Fatalf("no rotation: %v", seq)
	}
	bs[0].healthy.Store(false)
	bs[2].healthy.Store(false)
	if p.pick(bs, "/x") != nil {
		t.Fatal("picked from an all-unhealthy pool")
	}
}

func TestLeastInflight(t *testing.T) {
	bs := mkBackends(3)
	p := newPicker(LeastInflight, bs)
	bs[0].inflight.Store(5)
	bs[1].inflight.Store(2)
	bs[2].inflight.Store(9)
	if b := p.pick(bs, "/x"); b.idx != 1 {
		t.Fatalf("picked backend %d, want the least-loaded (1)", b.idx)
	}
	bs[1].healthy.Store(false)
	if b := p.pick(bs, "/x"); b.idx != 0 {
		t.Fatalf("picked backend %d, want next-least healthy (0)", b.idx)
	}
}

func TestHashPathStableAndFailsOver(t *testing.T) {
	bs := mkBackends(4)
	p := newPicker(HashPath, bs)

	// Stability: the same path always maps to the same backend.
	paths := []string{"/obj/1", "/obj/2", "/obj/3", "/hello", "/a/very/long/path"}
	first := make(map[string]int)
	for _, path := range paths {
		first[path] = p.pick(bs, path).idx
	}
	for trial := 0; trial < 20; trial++ {
		for _, path := range paths {
			if got := p.pick(bs, path).idx; got != first[path] {
				t.Fatalf("path %q moved from backend %d to %d with stable health",
					path, first[path], got)
			}
		}
	}

	// Spread: with many paths, every backend owns some keys.
	owned := make(map[int]int)
	for i := 0; i < 512; i++ {
		owned[p.pick(bs, fmt.Sprintf("/obj/%d", i)).idx]++
	}
	for idx := range bs {
		if owned[idx] == 0 {
			t.Fatalf("backend %d owns no keys: %v", idx, owned)
		}
	}

	// Failover: ejecting a backend remaps only its keys; the rest stay.
	victim := first["/obj/1"]
	bs[victim].healthy.Store(false)
	for _, path := range paths {
		got := p.pick(bs, path)
		if got.idx == victim {
			t.Fatalf("path %q still mapped to ejected backend", path)
		}
		if first[path] != victim && got.idx != first[path] {
			t.Fatalf("path %q moved (%d -> %d) though its backend stayed healthy",
				path, first[path], got.idx)
		}
	}
	// Re-admission restores the original mapping exactly.
	bs[victim].healthy.Store(true)
	for _, path := range paths {
		if got := p.pick(bs, path).idx; got != first[path] {
			t.Fatalf("path %q did not return to backend %d after re-admission", path, first[path])
		}
	}
}
