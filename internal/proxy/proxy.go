//go:build linux

// Package proxy is the serving tier built on the same explicit-epoll
// substrate as the reactor server: a reverse proxy / L7 balancer that
// relays HTTP/1.1 requests across a pool of health-checked backends.
//
// One goroutine owns one epoll instance holding every file descriptor —
// the listener, every downstream (client) connection, and every upstream
// (backend) connection — so a relay is a pure state machine with no
// cross-thread handoff on the hot path. Upstream connections are pooled
// and reused per backend with a hard cap; requests beyond the cap queue
// per backend and overflow is shed.
//
// The tier's overload contract is deliberately two-layered and honest:
//
//   - A backend's own 503 (its AIMD admission gate or MaxConns ceiling)
//     passes through BYTE-UNTOUCHED — status line, Retry-After, body and
//     all. The proxy adds no Via header to relayed responses.
//   - The proxy's own refusals — its admission gate, its MaxConns
//     ceiling, pool-queue overflow, no healthy backend, relay failure —
//     are generated locally and ALWAYS carry "Via: 1.1 nioproxy".
//
// A client (see internal/loadgen) can therefore attribute every 503 to
// the layer that shed it: with Via, the tier refused; without, a backend
// refused. That attribution is what makes tier-level experiments
// interpretable — shed at the balancer and shed at the server are
// different phenomena with different remedies.
package proxy

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/httpwire"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/reactor"
	"repro/internal/sysfault"
)

// ViaToken is the provenance token stamped on every request the proxy
// relays upstream and on every response the proxy itself originates.
// Relayed responses never carry it — that asymmetry is the shed-
// attribution contract.
const ViaToken = "1.1 nioproxy"

// Config parameterizes the tier.
type Config struct {
	// Port to listen on (0 picks an ephemeral port).
	Port int
	// Backlog for listen(2).
	Backlog int
	// ReadBuf is the per-loop read buffer size.
	ReadBuf int

	// Backends is the upstream pool. At least one is required.
	Backends []BackendConfig
	// Balance selects the balancing policy.
	Balance Policy

	// MaxPerBackend caps open upstream sockets per backend.
	MaxPerBackend int
	// MaxIdlePerBackend caps parked keep-alive sockets per backend.
	MaxIdlePerBackend int
	// MaxWaitPerBackend bounds the per-backend queue of relays waiting
	// for an upstream socket; overflow is shed (503 + Via).
	MaxWaitPerBackend int
	// RelayAttempts is the connect/retry budget per request before the
	// proxy gives up with a 502.
	RelayAttempts int

	// ProbeEvery is the active health-check interval (0 disables active
	// probing; passive ejection still applies, with re-admission handled
	// by the ReadmitAfter cooldown instead of the prober).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one probe's connect+exchange.
	ProbeTimeout time.Duration
	// ProbePath is the request path probes use.
	ProbePath string
	// ProbeSeed seeds the probe jitter (deterministic schedules for
	// reproducible experiments).
	ProbeSeed uint64
	// FailAfter ejects a backend after this many consecutive failures
	// (probe or passive).
	FailAfter int
	// ReviveAfter re-admits an ejected backend after this many
	// consecutive probe successes.
	ReviveAfter int
	// ReadmitAfter is the cooldown after which an ejected backend
	// re-enters rotation on probation when no prober is running
	// (ProbeEvery == 0) — without it a passive ejection would be
	// permanent. Ignored while active probing is on (the prober's
	// ReviveAfter streak governs re-admission there). 0 disables
	// cooldown re-admission.
	ReadmitAfter time.Duration

	// MaxConns caps concurrent downstream connections; excess accepts
	// are shed with 503 + Via + Retry-After.
	MaxConns int
	// Admission, when non-nil, gates accepts with the tier's own AIMD
	// controller. Its Observe feed is accept-to-first-relayed-response.
	Admission *overload.Controller
	// RetryAfterSec is the Retry-After advertised on sheds not governed
	// by the admission controller.
	RetryAfterSec int

	// Obs, when non-nil, receives lifecycle events and phase latencies.
	// With Shard > 0 the phase histograms go to that per-shard block of
	// the plane (merged at read time); the trace ring and kind counts
	// are shared either way.
	Obs *obs.Plane
	// Shard identifies this instance inside a Tier: its obs phase
	// block and (via Lane) its deterministic fault stream. 0 for a
	// standalone proxy.
	Shard int
	// Lane is the sysfault lane this instance's syscalls draw fault
	// decisions from. A Tier gives each member its own lane so fault
	// injection stays per-shard deterministic; 0 is the legacy stream.
	Lane sysfault.Lane
	// ReusePort binds the listener with SO_REUSEPORT so N tier members
	// can share one port and the kernel hashes connections across
	// them. Required (and set) by Tier; off for a standalone proxy.
	ReusePort bool
	// Watchdog, when non-nil, monitors the event loop for stalls.
	Watchdog *overload.Watchdog
	// OnHealthChange, when non-nil, is called on every ejection and
	// re-admission (name, healthy) — from the prober goroutine for
	// probe-driven transitions, from the event loop for passive
	// ejections and cooldown re-admissions.
	OnHealthChange func(name string, healthy bool)
}

// DefaultConfig returns a runnable tier configuration for the given
// backends.
func DefaultConfig(backends []BackendConfig) Config {
	return Config{
		Backlog:           512,
		ReadBuf:           32 << 10,
		Backends:          backends,
		Balance:           LeastInflight,
		MaxPerBackend:     64,
		MaxIdlePerBackend: 16,
		MaxWaitPerBackend: 256,
		RelayAttempts:     3,
		ProbeEvery:        time.Second,
		ProbeTimeout:      time.Second,
		ProbePath:         "/",
		FailAfter:         3,
		ReviveAfter:       2,
		ReadmitAfter:      5 * time.Second,
		MaxConns:          4096,
		RetryAfterSec:     1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Backends) == 0 {
		return errors.New("proxy: no backends")
	}
	for i, b := range c.Backends {
		if b.Addr == "" {
			return fmt.Errorf("proxy: backend %d has no address", i)
		}
	}
	if c.MaxPerBackend <= 0 || c.MaxWaitPerBackend < 0 || c.RelayAttempts <= 0 {
		return errors.New("proxy: pool limits must be positive")
	}
	if c.ReadBuf <= 0 || c.Backlog <= 0 || c.MaxConns <= 0 {
		return errors.New("proxy: Backlog, ReadBuf and MaxConns must be positive")
	}
	if c.FailAfter <= 0 || c.ReviveAfter <= 0 {
		return errors.New("proxy: FailAfter and ReviveAfter must be positive")
	}
	if c.ReadmitAfter < 0 {
		return errors.New("proxy: ReadmitAfter must be non-negative")
	}
	return nil
}

// Stats is an atomic snapshot of the tier's counters.
type Stats struct {
	Accepted  int64 // downstream connections accepted
	Replies   int64 // responses relayed downstream
	BytesIn   int64 // bytes read from backends
	BytesOut  int64 // bytes written to clients
	ConnsOpen int64 // downstream connections currently open

	Shed       int64 // proxy-originated 503s: admission gate, MaxConns, pool-queue overflow
	NoBackend  int64 // proxy-originated 503s: no healthy backend
	BadRequest int64 // proxy-originated 400/501s
	BadGateway int64 // proxy-originated 502s: relay failed after all attempts
	Relayed503 int64 // backend 503s passed through untouched

	UpstreamDials   int64
	UpstreamReuses  int64
	UpstreamErrors  int64
	UpstreamRetries int64
	Ejections       int64
	Readmissions    int64

	AcceptEMFILE   int64 // accept(2) hit EMFILE/ENFILE (reserve-fd recovery ran)
	AcceptBackoffs int64 // accept gate pauses after resource exhaustion
	LocalResErrors int64 // dials refused by local resource exhaustion (not backend blame)
	Prewarms       int64 // upstream sockets pre-warmed on backend re-admission
}

type counter struct{ v atomic.Int64 }

func (c *counter) add(d int64) { c.v.Add(d) }
func (c *counter) get() int64  { return c.v.Load() }

// Server is the serving tier (one event loop; see Tier for the
// sharded N-loop arrangement).
type Server struct {
	cfg    Config
	lfd    int
	port   int
	lane   sysfault.Lane
	obs    *obs.View
	poller *reactor.Poller

	backends []*Backend
	pick     *picker

	// Event-loop-owned connection tables.
	//nio:loop-owned
	dconns map[int]*dconn
	//nio:loop-owned
	uconns map[int]*uconn
	//nio:loop-owned
	buf []byte
	//nio:loop-owned
	reqs []*httpwire.Request
	//nio:loop-owned
	resps []*httpwire.Response

	accepted   counter
	acceptEM   counter
	acceptBack counter
	localRes   counter
	prewarms   counter
	replies    counter
	bytesIn    counter
	bytesOut   counter
	connsOpen  counter
	shed       counter
	noBackend  counter
	badRequest counter
	badGateway counter
	relayed503 counter
	dials      counter
	reuses     counter
	upErrors   counter
	retries    counter
	ejections  counter
	readmiss   counter

	// Accept-side fd-exhaustion machinery (loop-thread-owned). The
	// reserve descriptor is burned and re-opened to drain the accept
	// queue under EMFILE; the gate parks the listener outside the
	// poller so a level-triggered readable listener cannot hot-spin
	// the event loop while the process is out of descriptors.
	//nio:loop-owned
	reserveFD int
	//nio:loop-owned
	acceptGated bool
	//nio:loop-owned
	acceptGateUntil time.Time
	//nio:loop-owned
	acceptBackoff time.Duration

	wg        sync.WaitGroup
	started   bool
	stopping  chan struct{}
	stopOnce  sync.Once
	draining  atomic.Bool
	drained   chan struct{}
	lfdClosed bool
}

// openReserve opens the fd-exhaustion reserve descriptor (see
// Server.reserveFD). A failure to open it (-1) only disables the
// recovery, never the tier.
func openReserve() int {
	fd, err := syscall.Open("/dev/null", syscall.O_RDONLY|syscall.O_CLOEXEC, 0)
	if err != nil {
		return -1
	}
	return fd
}

// dconn is one downstream (client) connection.
//
//nio:loop-owned
type dconn struct {
	fd      int
	peer    string // client IP for X-Forwarded-For
	parser  httpwire.Parser
	pending []*relay // parsed requests not yet dispatched
	active  *relay   // the relay currently owning the response stream

	out      [][]byte
	outOff   int
	writeArm bool
	closing  bool

	obsID      uint64
	acceptedAt time.Time
	observed   bool
	replies    int64
	firstByte  bool
	serveDone  time.Time
	hasDone    bool
}

// relay is one request in flight through the tier. Its wire image is
// built once from the rewritten header set, so a retry against a
// different backend resends the identical bytes.
//
//nio:loop-owned
type relay struct {
	d          *dconn
	b          *Backend
	u          *uconn
	wire       []byte
	path       string
	closeAfter bool
	attempts   int
	cancelled  bool
	enq        time.Time // parsed and queued
	bound      time.Time // bound to an upstream socket
}

// Upstream connection states.
const (
	uConnecting uint8 = iota
	uBusy
	uIdle
)

// uconn is one upstream (backend) socket.
//
//nio:loop-owned
type uconn struct {
	fd    int
	b     *Backend
	state uint8
	r     *relay
	rp    httpwire.RespParser

	pendingWrite []byte
	wOff         int
	writeArm     bool
	gotBytes     bool // response bytes seen for the current relay
	fresh        bool // never completed an exchange (failure = backend failure, not reuse race)
	prewarm      bool // connecting on spec after re-admission; no relay bound yet
}

// NewServer binds the listener and prepares the tier; Start launches it.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	listenFn := reactor.Listen
	if cfg.ReusePort {
		listenFn = reactor.ListenReusePort
	}
	lfd, port, err := listenFn(cfg.Port, cfg.Backlog)
	if err != nil {
		return nil, err
	}
	p, err := reactor.NewPollerLane(512, cfg.Lane)
	if err != nil {
		reactor.CloseFD(cfg.Lane, lfd)
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		lfd:       lfd,
		port:      port,
		lane:      cfg.Lane,
		poller:    p,
		dconns:    make(map[int]*dconn),
		uconns:    make(map[int]*uconn),
		buf:       make([]byte, cfg.ReadBuf),
		reserveFD: openReserve(),
		stopping:  make(chan struct{}),
		drained:   make(chan struct{}),
	}
	if pl := cfg.Obs; pl != nil {
		s.obs = pl.View(cfg.Shard)
	}
	s.backends = make([]*Backend, len(cfg.Backends))
	for i, bc := range cfg.Backends {
		if bc.Name == "" {
			bc.Name = fmt.Sprintf("b%d", i)
		}
		b := &Backend{cfg: bc, idx: i}
		b.healthy.Store(true) // optimistic until proven otherwise
		s.backends[i] = b
	}
	s.pick = newPicker(cfg.Balance, s.backends)
	return s, nil
}

// Port returns the bound data-plane port.
func (s *Server) Port() int { return s.port }

// Addr returns the data-plane address.
func (s *Server) Addr() string { return fmt.Sprintf("127.0.0.1:%d", s.port) }

// Backends returns the live backend handles (for stats and tests).
func (s *Server) Backends() []*Backend { return s.backends }

// Stats snapshots the tier counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:        s.accepted.get(),
		Replies:         s.replies.get(),
		BytesIn:         s.bytesIn.get(),
		BytesOut:        s.bytesOut.get(),
		ConnsOpen:       s.connsOpen.get(),
		Shed:            s.shed.get(),
		NoBackend:       s.noBackend.get(),
		BadRequest:      s.badRequest.get(),
		BadGateway:      s.badGateway.get(),
		Relayed503:      s.relayed503.get(),
		UpstreamDials:   s.dials.get(),
		UpstreamReuses:  s.reuses.get(),
		UpstreamErrors:  s.upErrors.get(),
		UpstreamRetries: s.retries.get(),
		Ejections:       s.ejections.get(),
		Readmissions:    s.readmiss.get(),
		AcceptEMFILE:    s.acceptEM.get(),
		AcceptBackoffs:  s.acceptBack.get(),
		LocalResErrors:  s.localRes.get(),
		Prewarms:        s.prewarms.get(),
	}
}

// StatsFields renders a Stats snapshot in the admin endpoint's stable
// field order (the same contract as core.StatsFields: order is part of
// the text format, append only).
func StatsFields(st Stats) []obs.Field {
	return []obs.Field{
		{Name: "accepted", Value: st.Accepted},
		{Name: "replies", Value: st.Replies},
		{Name: "bytes_in", Value: st.BytesIn},
		{Name: "bytes_out", Value: st.BytesOut},
		{Name: "conns_open", Value: st.ConnsOpen},
		{Name: "shed", Value: st.Shed},
		{Name: "no_backend", Value: st.NoBackend},
		{Name: "bad_request", Value: st.BadRequest},
		{Name: "bad_gateway", Value: st.BadGateway},
		{Name: "relayed_503", Value: st.Relayed503},
		{Name: "upstream_dials", Value: st.UpstreamDials},
		{Name: "upstream_reuses", Value: st.UpstreamReuses},
		{Name: "upstream_errors", Value: st.UpstreamErrors},
		{Name: "upstream_retries", Value: st.UpstreamRetries},
		{Name: "ejections", Value: st.Ejections},
		{Name: "readmissions", Value: st.Readmissions},
		{Name: "accept_emfile", Value: st.AcceptEMFILE},
		{Name: "accept_backoffs", Value: st.AcceptBackoffs},
		{Name: "local_res_errors", Value: st.LocalResErrors},
		{Name: "prewarms", Value: st.Prewarms},
	}
}

// Start launches the event loop and the per-backend probers.
func (s *Server) Start() error {
	if err := s.poller.Add(s.lfd, true, false); err != nil {
		return fmt.Errorf("proxy: register listener: %w", err)
	}
	s.started = true
	s.wg.Add(1)
	go s.loop()
	if s.cfg.ProbeEvery > 0 {
		rng := dist.NewRNG(s.cfg.ProbeSeed ^ 0x70726f7879) // "proxy"
		for _, b := range s.backends {
			s.wg.Add(1)
			go s.probeLoop(b, rng.Split())
		}
	}
	return nil
}

// Stop tears the tier down immediately: in-flight relays are abandoned.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		if !s.started && s.reserveFD >= 0 { //nio:ok loopown -- pre-start: the loop never launched, so nothing owns the reserve yet
			// Never started: the loop's teardown will not run, so the
			// reserve descriptor must be released here or it leaks.
			reactor.CloseFD(s.lane, s.reserveFD) //nio:ok loopown -- pre-start teardown (see above)
			s.reserveFD = -1                     //nio:ok loopown -- pre-start teardown (see above)
		}
		s.poller.Wakeup()
	})
	s.wg.Wait()
}

// Drain stops accepting, lets in-flight exchanges finish (bounded by
// timeout), then stops. Reports whether the drain completed cleanly.
func (s *Server) Drain(timeout time.Duration) bool {
	s.draining.Store(true)
	s.poller.Wakeup()
	clean := true
	select {
	case <-s.drained:
	case <-time.After(timeout):
		clean = false
	}
	s.Stop()
	return clean
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

var errUpstreamHangup = errors.New("proxy: upstream hangup")

//nio:loop
func (s *Server) loop() {
	defer s.wg.Done()
	defer s.teardown()
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	var hb *overload.Heartbeat
	if s.cfg.Watchdog != nil {
		name := "proxy-loop"
		if s.cfg.Shard > 0 {
			name = fmt.Sprintf("proxy-loop-%d", s.cfg.Shard)
		}
		hb = s.cfg.Watchdog.Register(name)
	}

	for {
		select {
		case <-s.stopping:
			return
		default:
		}
		draining := s.draining.Load()
		if draining && !s.lfdClosed {
			if !s.acceptGated {
				s.poller.Remove(s.lfd)
			}
			s.acceptGated = false
			reactor.CloseFD(s.lane, s.lfd)
			s.lfdClosed = true
		}
		if !draining {
			for _, b := range s.backends {
				if b.prewarmReq.CompareAndSwap(true, false) {
					s.prewarmBackend(b)
				}
			}
		}
		if draining {
			// Idle keep-alive clients would hold the drain open forever;
			// close every connection with nothing in flight.
			var idle []*dconn
			for _, d := range s.dconns {
				if d.active == nil && len(d.pending) == 0 && len(d.out) == 0 {
					idle = append(idle, d)
				}
			}
			for _, d := range idle {
				s.closeD(d)
			}
		}
		if draining && len(s.dconns) == 0 {
			select {
			case <-s.drained:
			default:
				close(s.drained)
			}
			return
		}
		waitMs := -1
		if draining {
			waitMs = 20
		}
		if s.acceptGated && !s.lfdClosed {
			if rem := time.Until(s.acceptGateUntil); rem <= 0 {
				// Gate expired: put the listener back in the poller.
				if err := s.poller.Add(s.lfd, true, false); err != nil {
					return
				}
				s.acceptGated = false
			} else if ms := int(rem/time.Millisecond) + 1; waitMs < 0 || ms < waitMs {
				// Wake when the gate expires, not before the next event.
				waitMs = ms
			}
		}
		if hb != nil {
			hb.End()
		}
		evs, err := s.poller.Wait(waitMs)
		if hb != nil {
			hb.Begin()
		}
		if err != nil {
			return
		}
		for _, ev := range evs {
			if ev.FD == s.lfd && !s.lfdClosed {
				if !s.acceptAll() {
					return
				}
				continue
			}
			if u, ok := s.uconns[ev.FD]; ok {
				if ev.Readable {
					// Read before honoring hangup: a backend's final
					// response often arrives together with its FIN.
					s.uReadable(u)
				}
				if u2, still := s.uconns[ev.FD]; still && u2 == u {
					if ev.Hangup {
						s.upstreamFailed(u, errUpstreamHangup)
					} else if ev.Writable {
						s.uWritable(u)
					}
				}
				continue
			}
			if d, ok := s.dconns[ev.FD]; ok {
				if ev.Hangup {
					s.closeD(d)
					continue
				}
				if ev.Readable {
					s.dReadable(d)
				}
				if d2, still := s.dconns[ev.FD]; still && d2 == d && ev.Writable {
					s.flushD(d)
				}
			}
		}
	}
}

func (s *Server) teardown() {
	for _, d := range s.dconns {
		reactor.CloseFD(s.lane, d.fd)
		s.connsOpen.add(-1)
		if pl := s.obs; pl != nil {
			pl.Record(d.obsID, obs.Close, 0)
		}
	}
	s.dconns = make(map[int]*dconn)
	for _, u := range s.uconns {
		reactor.CloseFD(s.lane, u.fd)
		u.b.open.Add(-1)
	}
	s.uconns = make(map[int]*uconn)
	s.poller.Close()
	if !s.lfdClosed {
		reactor.CloseFD(s.lane, s.lfd)
		s.lfdClosed = true
	}
	if s.reserveFD >= 0 {
		reactor.CloseFD(s.lane, s.reserveFD)
		s.reserveFD = -1
	}
}

// ---------------------------------------------------------------------
// Downstream (client) side
// ---------------------------------------------------------------------

// acceptAll drains the accept queue. Returns false if the listener died.
//
// Resource exhaustion is not death: EMFILE/ENFILE runs the reserve-fd
// recovery (free a slot, 503 the connection the kernel is holding) and
// ENOBUFS/ENOMEM just backs off — both park the listener behind the
// accept gate instead of killing the event loop, because the relays
// already in flight still deserve service while the process waits for
// descriptors to come back.
func (s *Server) acceptAll() bool {
	for {
		fd, done, err := reactor.Accept(s.lane, s.lfd)
		if err != nil {
			switch {
			case errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE):
				s.acceptEM.add(1)
				s.recoverFDExhaustion()
				s.gateAccepts()
				return true
			case errors.Is(err, syscall.ENOBUFS) || errors.Is(err, syscall.ENOMEM):
				s.gateAccepts()
				return true
			}
			return false
		}
		if done {
			return true
		}
		if fd < 0 {
			continue // ECONNABORTED: the peer gave up while queued
		}
		s.acceptBackoff = 0
		s.accepted.add(1)
		if ac := s.cfg.Admission; ac != nil && !ac.Admit() {
			s.shed.add(1)
			if pl := s.obs; pl != nil {
				pl.Record(pl.NextConnID(), obs.Shed, 0)
			}
			shedVia(s.lane, fd, ac.RetryAfterSeconds())
			continue
		}
		if int(s.connsOpen.get()) >= s.cfg.MaxConns {
			s.shed.add(1)
			if pl := s.obs; pl != nil {
				pl.Record(pl.NextConnID(), obs.Shed, 0)
			}
			shedVia(s.lane, fd, s.cfg.RetryAfterSec)
			continue
		}
		if err := s.poller.Add(fd, true, false); err != nil {
			reactor.CloseFD(s.lane, fd)
			continue
		}
		d := &dconn{fd: fd, peer: peerIP(fd), acceptedAt: time.Now()}
		if pl := s.obs; pl != nil {
			d.obsID = pl.NextConnID()
			pl.Record(d.obsID, obs.Accept, 0)
		}
		s.dconns[fd] = d
		s.connsOpen.add(1)
	}
}

// recoverFDExhaustion is the reserve-descriptor dance: close the
// reserve to free one slot, accept the connection the kernel is
// holding, answer it 503 + Retry-After so the client backs off
// instead of timing out in silence, close it, and re-open the
// reserve. Without this, the pending connection would sit in the
// accept queue until a descriptor freed by chance.
func (s *Server) recoverFDExhaustion() {
	if s.reserveFD < 0 {
		return
	}
	reactor.CloseFD(s.lane, s.reserveFD)
	s.reserveFD = -1
	fd, done, err := reactor.Accept(s.lane, s.lfd)
	if err == nil && !done && fd >= 0 {
		s.shed.add(1)
		if pl := s.obs; pl != nil {
			pl.Record(pl.NextConnID(), obs.Shed, 0)
		}
		shedVia(s.lane, fd, s.cfg.RetryAfterSec)
	}
	s.reserveFD = openReserve()
}

// Accept-gate backoff bounds: exponential from 5ms, capped at 250ms,
// reset to zero by any successful accept.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 250 * time.Millisecond
)

// gateAccepts parks the listener outside the poller for the current
// backoff window (doubling up to the cap). The event loop re-arms it
// once the window expires; meanwhile in-flight relays keep running —
// the gate pauses admission, never service.
func (s *Server) gateAccepts() {
	if s.acceptBackoff < acceptBackoffMin {
		s.acceptBackoff = acceptBackoffMin
	} else if s.acceptBackoff *= 2; s.acceptBackoff > acceptBackoffMax {
		s.acceptBackoff = acceptBackoffMax
	}
	s.acceptBack.add(1)
	s.acceptGateUntil = time.Now().Add(s.acceptBackoff)
	if !s.acceptGated {
		s.poller.Remove(s.lfd)
		s.acceptGated = true
	}
}

// shedVia is shedConn with the tier's provenance: the 503 carries the
// Via token so clients can attribute the refusal to the proxy layer.
func shedVia(lane sysfault.Lane, fd int, retryAfterSec int) {
	resp := httpwire.AppendResponseHeaderExtra(nil, 503, "text/plain", 0, false,
		httpwire.Header{Name: "Retry-After", Value: strconv.Itoa(retryAfterSec)},
		httpwire.Header{Name: "Via", Value: ViaToken})
	_, _, _ = reactor.Write(lane, fd, resp)
	reactor.CloseFD(lane, fd)
}

// peerIP returns the connected peer's IPv4 address (for XFF), or "".
func peerIP(fd int) string {
	sa, err := syscall.Getpeername(fd)
	if err != nil {
		return ""
	}
	if in4, ok := sa.(*syscall.SockaddrInet4); ok {
		a := in4.Addr
		return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
	}
	return ""
}

func (s *Server) dReadable(d *dconn) {
	for {
		n, eof, again, err := reactor.Read(s.lane, d.fd, s.buf)
		if again {
			break
		}
		if err != nil || eof {
			s.closeD(d)
			return
		}
		if pl := s.obs; pl != nil && len(d.pending) == 0 && d.active == nil {
			pl.Record(d.obsID, obs.HeaderRead, 0)
		}
		var perr error
		s.reqs, perr = d.parser.Feed(s.reqs[:0], s.buf[:n])
		for _, req := range s.reqs {
			if !s.admitRequest(d, req) {
				break
			}
		}
		if perr != nil {
			s.badRequest.add(1)
			s.respondLocal(d, 400, nil)
			break
		}
		if d.closing {
			break
		}
	}
	s.pump(d)
	s.flushD(d)
}

// admitRequest turns one parsed request into a queued relay. Returns
// false when the connection is now closing (error response queued).
func (s *Server) admitRequest(d *dconn, req *httpwire.Request) bool {
	if d.closing {
		return false
	}
	if pl := s.obs; pl != nil {
		pl.Record(d.obsID, obs.Parse, 0)
	}
	if cl, found := req.Get("Content-Length"); found && cl != "0" {
		// The tier relays bodyless requests only (the workload model is
		// GET/HEAD); refuse rather than silently truncate.
		s.badRequest.add(1)
		s.respondLocal(d, 501, nil)
		return false
	}
	hdrs := httpwire.ForwardHeaders(req, ViaToken, d.peer)
	r := &relay{
		d:          d,
		wire:       httpwire.AppendRequestHead(nil, req.Method, req.Path, "HTTP/1.1", hdrs),
		path:       req.Path,
		closeAfter: !req.KeepAlive,
		enq:        time.Now(),
	}
	d.pending = append(d.pending, r)
	return true
}

// pump dispatches the connection's next pending relay when the response
// stream is free.
func (s *Server) pump(d *dconn) {
	for d.active == nil && !d.closing && len(d.pending) > 0 {
		r := d.pending[0]
		d.pending = d.pending[1:]
		d.active = r
		s.dispatch(r)
	}
}

// maybeReadmit gives ejected backends their cooldown-based second
// chance when no prober is running. Called from the event loop before
// each pick; a no-op while active probing is on (the prober owns
// re-admission there) or while every backend is healthy.
func (s *Server) maybeReadmit() {
	if s.cfg.ProbeEvery > 0 || s.cfg.ReadmitAfter <= 0 {
		return
	}
	var now time.Time
	for _, b := range s.backends {
		if b.healthy.Load() {
			continue
		}
		if now.IsZero() {
			now = time.Now()
		}
		if b.selfReadmit(now, s.cfg.ReadmitAfter) {
			s.readmiss.add(1)
			// Ask the loop (us, next iteration) for a warm-up socket;
			// the relay that triggered this pick dials its own.
			b.prewarmReq.Store(true)
			s.poller.Wakeup()
			if f := s.cfg.OnHealthChange; f != nil {
				f(b.cfg.Name, true)
			}
		}
	}
}

// dispatch picks a backend for r and acquires an upstream socket.
// Called with r == r.d.active.
func (s *Server) dispatch(r *relay) {
	d := r.d
	s.maybeReadmit()
	b := s.pick.pick(s.backends, r.path)
	if b == nil {
		d.active = nil
		if r.attempts > 0 {
			// The relay already burned attempts against real backends
			// (possibly ejecting the last of them); the honest verdict
			// is "your request failed upstream" (502), not the instant
			// refusal a fresh request would get.
			s.badGateway.add(1)
			s.respondLocal(d, 502, nil)
			return
		}
		s.noBackend.add(1)
		s.respondLocal(d, 503, []httpwire.Header{
			{Name: "Retry-After", Value: strconv.Itoa(s.cfg.RetryAfterSec)}})
		return
	}
	r.b = b
	b.inflight.Add(1)
	// Prefer a parked keep-alive socket.
	if n := len(b.idle); n > 0 {
		u := b.idle[n-1]
		b.idle = b.idle[:n-1]
		b.idleN.Add(-1)
		s.reuses.add(1)
		b.reuses.Add(1)
		s.bindRelay(u, r)
		return
	}
	if int(b.open.Load()) < s.cfg.MaxPerBackend {
		s.dialUpstream(b, r)
		return
	}
	if len(b.waitq) >= s.cfg.MaxWaitPerBackend {
		// Pool exhausted and queue full: tier-level shed.
		b.inflight.Add(-1)
		r.b = nil
		s.shed.add(1)
		if pl := s.obs; pl != nil {
			pl.Record(d.obsID, obs.Shed, 0)
		}
		d.active = nil
		s.respondLocal(d, 503, []httpwire.Header{
			{Name: "Retry-After", Value: strconv.Itoa(s.cfg.RetryAfterSec)}})
		return
	}
	b.waitq = append(b.waitq, r)
}

// bindRelay attaches r to a ready upstream socket and starts the write.
func (s *Server) bindRelay(u *uconn, r *relay) {
	u.state = uBusy
	u.r = r
	u.gotBytes = false
	u.rp.Reset()
	r.u = u
	r.bound = time.Now()
	if pl := s.obs; pl != nil {
		pl.Record(r.d.obsID, obs.QueueWait, r.bound.Sub(r.enq))
	}
	u.pendingWrite = r.wire
	u.wOff = 0
	s.writeUpstream(u)
}

// isLocalResErr reports whether a dial failed because THIS process ran
// out of resources — descriptors (EMFILE/ENFILE), socket buffers
// (ENOBUFS/ENOMEM), or ephemeral ports (EADDRNOTAVAIL). Such failures
// say nothing about the backend's health and must never feed its
// failure streak: an fd storm blaming healthy backends would eject the
// whole pool exactly when the tier is least able to afford it.
func isLocalResErr(err error) bool {
	return errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ENOBUFS) || errors.Is(err, syscall.ENOMEM) ||
		errors.Is(err, syscall.EADDRNOTAVAIL)
}

// shedLocalRes answers a relay whose dial died of local resource
// exhaustion: a Via-stamped 503 + Retry-After, with the backend left
// unblamed (no health-streak signal, no retry against another backend —
// the next dial would hit the same wall).
func (s *Server) shedLocalRes(b *Backend, r *relay) {
	s.localRes.add(1)
	b.inflight.Add(-1)
	r.b = nil
	d := r.d
	if r.cancelled || d.active != r {
		return
	}
	d.active = nil
	s.shed.add(1)
	if pl := s.obs; pl != nil {
		pl.Record(d.obsID, obs.Shed, 0)
	}
	s.respondLocal(d, 503, []httpwire.Header{
		{Name: "Retry-After", Value: strconv.Itoa(s.cfg.RetryAfterSec)}})
}

func (s *Server) dialUpstream(b *Backend, r *relay) {
	fd, connected, err := reactor.DialTCP4(s.lane, b.cfg.Addr)
	if err != nil {
		if isLocalResErr(err) {
			s.shedLocalRes(b, r)
			return
		}
		s.noteRelayFailure(b, r, err)
		return
	}
	u := &uconn{fd: fd, b: b, fresh: true}
	s.dials.add(1)
	b.dials.Add(1)
	if connected {
		if err := s.poller.Add(fd, true, false); err != nil {
			reactor.CloseFD(s.lane, fd)
			s.noteRelayFailure(b, r, err)
			return
		}
		s.uconns[fd] = u
		b.open.Add(1)
		s.bindRelay(u, r)
		return
	}
	// Connect in progress: wait for writability, request already staged.
	u.state = uConnecting
	u.r = r
	r.u = u
	u.pendingWrite = r.wire
	u.writeArm = true
	if err := s.poller.Add(fd, false, true); err != nil {
		reactor.CloseFD(s.lane, fd)
		r.u = nil
		s.noteRelayFailure(b, r, err)
		return
	}
	s.uconns[fd] = u
	b.open.Add(1)
}

// prewarmBackend dials one upstream socket for a freshly re-admitted
// backend so the first relay routed its way rides an established
// connection instead of paying connect latency on top of whatever made
// the backend sick. The socket carries no relay; on connect success it
// parks idle (or binds straight to a queued waiter), and on failure it
// feeds the health streak — a backend that cannot take one warm-up
// connection has not really come back.
func (s *Server) prewarmBackend(b *Backend) {
	if !b.healthy.Load() || len(b.idle) > 0 || int(b.open.Load()) >= s.cfg.MaxPerBackend {
		return
	}
	fd, connected, err := reactor.DialTCP4(s.lane, b.cfg.Addr)
	if err != nil {
		if isLocalResErr(err) {
			s.localRes.add(1)
			return
		}
		s.upErrors.add(1)
		b.upErrors.Add(1)
		if b.noteFailure(s.cfg.FailAfter) {
			s.ejections.add(1)
			if f := s.cfg.OnHealthChange; f != nil {
				f(b.cfg.Name, false)
			}
		}
		return
	}
	u := &uconn{fd: fd, b: b, fresh: true, prewarm: true}
	s.dials.add(1)
	b.dials.Add(1)
	if connected {
		if err := s.poller.Add(fd, true, false); err != nil {
			reactor.CloseFD(s.lane, fd)
			return
		}
		s.uconns[fd] = u
		b.open.Add(1)
		u.prewarm = false
		s.prewarms.add(1)
		s.parkIdle(u)
		return
	}
	u.state = uConnecting
	u.writeArm = true
	if err := s.poller.Add(fd, false, true); err != nil {
		reactor.CloseFD(s.lane, fd)
		return
	}
	s.uconns[fd] = u
	b.open.Add(1)
}

// noteRelayFailure marks a backend failure for r's current backend and
// retries the relay elsewhere (or 502s it when the budget is spent).
// Caller must have already detached r from any uconn.
func (s *Server) noteRelayFailure(b *Backend, r *relay, err error) {
	_ = err
	s.upErrors.add(1)
	b.upErrors.Add(1)
	b.inflight.Add(-1)
	r.b = nil
	if b.noteFailure(s.cfg.FailAfter) {
		s.ejections.add(1)
		if f := s.cfg.OnHealthChange; f != nil {
			f(b.cfg.Name, false)
		}
	}
	s.retryOrFail(r)
}

// retryOrFail re-dispatches r (a fresh backend pick — an ejected
// backend is excluded) or gives up with a 502.
func (s *Server) retryOrFail(r *relay) {
	d := r.d
	if r.cancelled || d.active != r {
		return
	}
	r.attempts++
	if r.attempts >= s.cfg.RelayAttempts {
		s.badGateway.add(1)
		d.active = nil
		s.respondLocal(d, 502, nil)
		s.flushD(d)
		return
	}
	s.retries.add(1)
	s.dispatch(r)
}

// respondLocal queues a proxy-originated response (always Via-stamped)
// and marks the connection closing: local responses signal conditions
// under which keeping the connection would mislead the client.
func (s *Server) respondLocal(d *dconn, code int, extra []httpwire.Header) {
	hdrs := append(extra, httpwire.Header{Name: "Via", Value: ViaToken})
	head := httpwire.AppendResponseHeaderExtra(nil, code, "text/plain", 0, false, hdrs...)
	d.out = append(d.out, head)
	d.closing = true
	d.pending = nil
	s.flushD(d)
}

//nio:hot
func (s *Server) flushD(d *dconn) {
	if _, open := s.dconns[d.fd]; !open {
		return
	}
	for len(d.out) > 0 {
		seg := d.out[0][d.outOff:]
		n, again, err := reactor.Write(s.lane, d.fd, seg)
		if err != nil {
			s.closeD(d)
			return
		}
		s.bytesOut.add(int64(n))
		if n > 0 && !d.firstByte {
			d.firstByte = true
			if pl := s.obs; pl != nil {
				pl.Record(d.obsID, obs.FirstByte, time.Since(d.acceptedAt))
			}
		}
		if n == len(seg) {
			d.out[0] = nil
			d.out = d.out[1:]
			d.outOff = 0
			continue
		}
		d.outOff += n
		if again || n < len(seg) {
			s.armWriteD(d)
			return
		}
	}
	if d.hasDone {
		d.hasDone = false
		if pl := s.obs; pl != nil {
			pl.Record(d.obsID, obs.WriteComplete, time.Since(d.serveDone))
		}
	}
	s.observeFirst(d)
	if d.closing && d.active == nil && len(d.pending) == 0 {
		s.closeD(d)
		return
	}
	if d.writeArm {
		d.writeArm = false
		if err := s.poller.Modify(d.fd, true, false); err != nil {
			s.closeD(d)
		}
	}
}

func (s *Server) armWriteD(d *dconn) {
	if d.writeArm {
		return
	}
	if err := s.poller.Modify(d.fd, true, true); err != nil {
		s.closeD(d)
		return
	}
	d.writeArm = true
}

// observeFirst feeds the admission controller its latency signal: the
// accept-to-first-relayed-response time, once per connection. Local
// (shed/error) responses never feed it — fast refusals must not teach
// the AIMD gate that latency is fine.
func (s *Server) observeFirst(d *dconn) {
	if d.observed || d.replies == 0 {
		return
	}
	d.observed = true
	if ac := s.cfg.Admission; ac != nil {
		ac.Observe(time.Since(d.acceptedAt))
	}
}

func (s *Server) closeD(d *dconn) {
	if _, open := s.dconns[d.fd]; !open {
		return
	}
	delete(s.dconns, d.fd)
	s.poller.Remove(d.fd)
	reactor.CloseFD(s.lane, d.fd)
	s.connsOpen.add(-1)
	if pl := s.obs; pl != nil {
		pl.Record(d.obsID, obs.Close, 0)
	}
	if invariant.Enabled {
		invariant.Assertf(s.connsOpen.get() >= 0,
			"proxy: connsOpen went negative (%d)", s.connsOpen.get())
	}
	// Abort the in-flight relay, if any.
	if r := d.active; r != nil {
		d.active = nil
		r.cancelled = true
		if u := r.u; u != nil {
			// The upstream socket is mid-exchange for a dead client; it
			// cannot be reused.
			r.u = nil
			u.r = nil
			if r.b != nil {
				r.b.inflight.Add(-1)
			}
			s.removeUpstream(u)
		} else if r.b != nil {
			// Waiting in the backend queue; popWaiter skips it.
			r.b.inflight.Add(-1)
		}
	}
	d.pending = nil
	d.out = nil
}

// ---------------------------------------------------------------------
// Upstream (backend) side
// ---------------------------------------------------------------------

func (s *Server) uWritable(u *uconn) {
	if u.state == uConnecting {
		if err := reactor.ConnectResult(u.fd); err != nil {
			s.upstreamFailed(u, err)
			return
		}
		u.state = uBusy
		if u.prewarm && u.r == nil {
			// A warm-up connect completed: park the socket for the next
			// relay (or hand it to a waiter already queued).
			u.prewarm = false
			u.writeArm = false
			if err := s.poller.Modify(u.fd, true, false); err != nil {
				s.removeUpstream(u)
				return
			}
			s.prewarms.add(1)
			s.parkIdle(u)
			return
		}
		if r := u.r; r != nil {
			r.bound = time.Now()
			if pl := s.obs; pl != nil {
				pl.Record(r.d.obsID, obs.QueueWait, r.bound.Sub(r.enq))
			}
		}
	}
	s.writeUpstream(u)
}

//nio:hot
func (s *Server) writeUpstream(u *uconn) {
	for u.wOff < len(u.pendingWrite) {
		n, again, err := reactor.Write(s.lane, u.fd, u.pendingWrite[u.wOff:])
		if err != nil {
			s.upstreamFailed(u, err)
			return
		}
		u.wOff += n
		if again || u.wOff < len(u.pendingWrite) {
			if !u.writeArm {
				if err := s.poller.Modify(u.fd, true, true); err != nil {
					s.upstreamFailed(u, err)
					return
				}
				u.writeArm = true
			}
			return
		}
	}
	u.pendingWrite = nil
	u.wOff = 0
	if u.writeArm {
		u.writeArm = false
		if err := s.poller.Modify(u.fd, true, false); err != nil {
			s.upstreamFailed(u, err)
		}
	}
}

func (s *Server) uReadable(u *uconn) {
	for {
		n, eof, again, err := reactor.Read(s.lane, u.fd, s.buf)
		if again {
			return
		}
		if err != nil || eof {
			s.upstreamFailed(u, err)
			return
		}
		if u.state != uBusy || u.r == nil {
			// Data on a socket with no relay bound: protocol violation
			// (or a stale idle socket); drop the socket.
			s.upstreamFailed(u, errors.New("proxy: unsolicited upstream data"))
			return
		}
		u.gotBytes = true
		s.bytesIn.add(int64(n))
		r := u.r
		d := r.d
		// Forward the raw bytes downstream while the parser tracks
		// framing. Relayed responses are never rewritten — that is the
		// shed-attribution contract.
		d.out = append(d.out, append([]byte(nil), s.buf[:n]...))
		var perr error
		s.resps, perr = u.rp.Feed(s.resps[:0], s.buf[:n])
		if perr != nil || len(s.resps) > 1 {
			s.upstreamFailed(u, perr)
			return
		}
		if len(s.resps) == 1 {
			s.relayComplete(u, r, s.resps[0])
			s.flushD(d)
			return
		}
		s.flushD(d)
		if _, open := s.uconns[u.fd]; !open {
			return // flush failed and closeD tore the upstream down
		}
	}
}

// relayComplete finishes one exchange: accounting, socket disposition
// (park for reuse or close, per the backend's keep-alive decision), and
// dispatching whatever is waiting — on the backend's queue and on the
// client connection.
func (s *Server) relayComplete(u *uconn, r *relay, resp *httpwire.Response) {
	d := r.d
	b := u.b
	b.inflight.Add(-1)
	b.relayed.Add(1)
	s.replies.add(1)
	d.replies++
	if resp.StatusCode == 503 {
		// A backend shed, relayed untouched. Counted, not rewritten.
		s.relayed503.add(1)
		b.relayed503.Add(1)
	}
	b.noteSuccess(false, s.cfg.ReviveAfter)
	if pl := s.obs; pl != nil {
		pl.Record(d.obsID, obs.Handler, time.Since(r.bound))
	}
	d.serveDone = time.Now()
	d.hasDone = true
	u.r = nil
	r.u = nil
	r.b = nil
	d.active = nil
	if r.closeAfter {
		d.closing = true
		d.pending = nil
	}
	u.fresh = false
	if !resp.KeepAlive {
		s.removeUpstream(u)
	} else {
		s.parkIdle(u)
	}
	s.pump(d)
}

// parkIdle returns a reusable socket to its backend: a queued waiter
// takes it immediately, otherwise it joins the idle pool (or closes if
// the pool is full).
func (s *Server) parkIdle(u *uconn) {
	b := u.b
	if r := s.popWaiter(b); r != nil {
		s.reuses.add(1)
		b.reuses.Add(1)
		s.bindRelay(u, r)
		return
	}
	if len(b.idle) >= s.cfg.MaxIdlePerBackend {
		s.removeUpstream(u)
		return
	}
	u.state = uIdle
	u.r = nil
	b.idle = append(b.idle, u)
	b.idleN.Add(1)
}

// popWaiter returns the backend's oldest queued live relay.
func (s *Server) popWaiter(b *Backend) *relay {
	for len(b.waitq) > 0 {
		r := b.waitq[0]
		b.waitq[0] = nil
		b.waitq = b.waitq[1:]
		if r.cancelled {
			continue
		}
		return r
	}
	return nil
}

// upstreamFailed handles any failure on an upstream socket: connect
// refused, reset, EOF mid-response, framing violation. The disposition
// depends on where the exchange stood:
//
//   - idle socket: the backend recycled a keep-alive connection — a
//     non-event, not a failure signal.
//   - busy, no response bytes yet, on a REUSED socket: almost certainly
//     the keep-alive recycling race (backend closed as we picked the
//     socket); retry silently without marking the backend.
//   - busy, no response bytes yet, on a FRESH socket: a real backend
//     failure; mark it (passive ejection) and retry elsewhere.
//   - busy with response bytes already forwarded: the downstream
//     connection is poisoned mid-response; mark the backend and cut the
//     client — a truncated response must not look complete.
func (s *Server) upstreamFailed(u *uconn, err error) {
	b := u.b
	r := u.r
	wasIdle := u.state == uIdle
	fresh := u.fresh
	gotBytes := u.gotBytes
	s.removeUpstream(u)
	if u.prewarm && r == nil {
		// A warm-up connect failed: no relay to retry, but the signal is
		// real — a re-admitted backend refusing its first connection
		// feeds the failure streak like any relay-path connect failure.
		s.upErrors.add(1)
		b.upErrors.Add(1)
		if b.noteFailure(s.cfg.FailAfter) {
			s.ejections.add(1)
			if f := s.cfg.OnHealthChange; f != nil {
				f(b.cfg.Name, false)
			}
		}
		return
	}
	if wasIdle || r == nil {
		return
	}
	r.u = nil
	if gotBytes {
		s.upErrors.add(1)
		b.upErrors.Add(1)
		b.inflight.Add(-1)
		r.b = nil
		if b.noteFailure(s.cfg.FailAfter) {
			s.ejections.add(1)
			if f := s.cfg.OnHealthChange; f != nil {
				f(b.cfg.Name, false)
			}
		}
		if d := r.d; d.active == r {
			d.active = nil
			s.closeD(d)
		}
		return
	}
	if !fresh {
		// Keep-alive recycling race: retry without blaming the backend.
		b.inflight.Add(-1)
		r.b = nil
		s.retries.add(1)
		if !r.cancelled && r.d.active == r {
			s.dispatch(r)
		}
		return
	}
	s.noteRelayFailure(b, r, err)
}

// removeUpstream unregisters and closes an upstream socket, whatever
// state it is in (including parked in the idle pool).
func (s *Server) removeUpstream(u *uconn) {
	if _, open := s.uconns[u.fd]; !open {
		return
	}
	delete(s.uconns, u.fd)
	s.poller.Remove(u.fd)
	reactor.CloseFD(s.lane, u.fd)
	b := u.b
	b.open.Add(-1)
	if u.state == uIdle {
		for i, x := range b.idle {
			if x == u {
				b.idle = append(b.idle[:i], b.idle[i+1:]...)
				b.idleN.Add(-1)
				break
			}
		}
	}
	if invariant.Enabled {
		invariant.Assertf(b.open.Load() >= 0,
			"proxy: backend %s open sockets went negative", b.cfg.Name)
	}
}
