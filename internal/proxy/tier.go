//go:build linux

package proxy

import (
	"fmt"
	"time"

	"repro/internal/sysfault"
)

// Tier runs N independent proxy Server instances — one event loop, one
// epoll fd, one upstream pool each — sharing a single listening port
// via SO_REUSEPORT, so the kernel hashes incoming connections across
// the members with no user-space handoff at all. This is the sharded
// arrangement of the serving tier, mirroring core's N-reactor mode.
//
// Each member is a full shard: it keeps its own backend health state,
// its own upstream sockets, and its own prober (jittered by a
// member-distinct seed), exactly as N separate proxy processes behind
// one port would. Member i draws syscall-fault decisions from sysfault
// lane i (member 0 stays on the legacy lane-0 stream, so a one-member
// tier replays byte-identically with a standalone Server) and records
// phase latencies into per-shard obs blocks that the plane merges at
// read time.
//
// If the kernel refuses SO_REUSEPORT the constructor degrades to a
// single member on a plain listener (AcceptMode reports which).
type Tier struct {
	members []*Server
	port    int
	mode    string
}

// NewTier builds a tier of shards members from cfg. cfg.Shard,
// cfg.Lane and cfg.ReusePort are owned by the tier and overwritten
// per member; every other field is shared verbatim.
func NewTier(cfg Config, shards int) (*Tier, error) {
	if shards < 1 {
		return nil, fmt.Errorf("proxy: tier needs at least 1 shard, got %d", shards)
	}
	if shards > sysfault.MaxLanes {
		return nil, fmt.Errorf("proxy: %d shards exceeds the %d supported fault lanes", shards, sysfault.MaxLanes)
	}
	t := &Tier{mode: "reuseport"}
	if shards == 1 {
		// One member needs no port sharing; keep the plain listener so
		// the degenerate tier is bit-for-bit a standalone Server.
		cfg.Shard, cfg.Lane, cfg.ReusePort = 0, 0, false
		s, err := NewServer(cfg)
		if err != nil {
			return nil, err
		}
		t.members = []*Server{s}
		t.port = s.Port()
		t.mode = "single"
		return t, nil
	}
	for i := 0; i < shards; i++ {
		mc := cfg
		mc.Shard = i
		mc.Lane = sysfault.Lane(i)
		mc.ReusePort = true
		// Distinct probe jitter per member, still seed-deterministic.
		mc.ProbeSeed = cfg.ProbeSeed + uint64(i)*0x9e3779b97f4a7c15
		if i > 0 {
			mc.Port = t.port // later members join the first one's port
		}
		s, err := NewServer(mc)
		if err != nil {
			if i == 0 {
				// Kernel without SO_REUSEPORT: degrade to one member
				// rather than fail the tier.
				mc.ReusePort = false
				mc.ProbeSeed = cfg.ProbeSeed
				s, err = NewServer(mc)
				if err != nil {
					return nil, err
				}
				t.members = []*Server{s}
				t.port = s.Port()
				t.mode = "single"
				return t, nil
			}
			t.closeAll()
			return nil, fmt.Errorf("proxy: tier shard %d: %w", i, err)
		}
		t.members = append(t.members, s)
		if i == 0 {
			t.port = s.Port()
		}
	}
	return t, nil
}

// closeAll tears down partially-constructed members (pre-Start).
func (t *Tier) closeAll() {
	for _, s := range t.members {
		s.Stop()
	}
}

// Members returns the live member servers (for stats and tests).
func (t *Tier) Members() []*Server { return t.members }

// NumShards reports the member count actually running.
func (t *Tier) NumShards() int { return len(t.members) }

// AcceptMode reports how connections reach members: "reuseport"
// (kernel hashing across N listeners) or "single" (one member).
func (t *Tier) AcceptMode() string { return t.mode }

// Port returns the shared data-plane port.
func (t *Tier) Port() int { return t.port }

// Addr returns the shared data-plane address.
func (t *Tier) Addr() string { return fmt.Sprintf("127.0.0.1:%d", t.port) }

// Start launches every member's event loop and probers.
func (t *Tier) Start() error {
	for i, s := range t.members {
		if err := s.Start(); err != nil {
			for _, prev := range t.members[:i] {
				prev.Stop()
			}
			return fmt.Errorf("proxy: tier shard %d: %w", i, err)
		}
	}
	return nil
}

// Stop tears every member down immediately.
func (t *Tier) Stop() {
	for _, s := range t.members {
		s.Stop()
	}
}

// Drain drains all members concurrently within one shared budget and
// reports whether every member finished cleanly.
func (t *Tier) Drain(timeout time.Duration) bool {
	done := make(chan bool, len(t.members))
	for _, s := range t.members {
		go func(s *Server) { done <- s.Drain(timeout) }(s)
	}
	clean := true
	for range t.members {
		if !<-done {
			clean = false
		}
	}
	return clean
}

// Stats sums the member snapshots. Every field is a plain additive
// counter (ConnsOpen included — each member counts only its own open
// downstream sockets), so the merge is exact, not approximate.
func (t *Tier) Stats() Stats {
	var sum Stats
	for _, s := range t.members {
		st := s.Stats()
		sum.Accepted += st.Accepted
		sum.Replies += st.Replies
		sum.BytesIn += st.BytesIn
		sum.BytesOut += st.BytesOut
		sum.ConnsOpen += st.ConnsOpen
		sum.Shed += st.Shed
		sum.NoBackend += st.NoBackend
		sum.BadRequest += st.BadRequest
		sum.BadGateway += st.BadGateway
		sum.Relayed503 += st.Relayed503
		sum.UpstreamDials += st.UpstreamDials
		sum.UpstreamReuses += st.UpstreamReuses
		sum.UpstreamErrors += st.UpstreamErrors
		sum.UpstreamRetries += st.UpstreamRetries
		sum.Ejections += st.Ejections
		sum.Readmissions += st.Readmissions
		sum.AcceptEMFILE += st.AcceptEMFILE
		sum.AcceptBackoffs += st.AcceptBackoffs
		sum.LocalResErrors += st.LocalResErrors
		sum.Prewarms += st.Prewarms
	}
	return sum
}

// BackendStats merges per-member backend views by name: counters sum;
// Inflight/Open/Idle sum (each member owns disjoint sockets); Healthy
// means healthy on every member, since any one ejection diverts that
// member's share of traffic.
func (t *Tier) BackendStats() []BackendStats {
	if len(t.members) == 0 {
		return nil
	}
	base := t.members[0].Backends()
	out := make([]BackendStats, len(base))
	for i, b := range base {
		out[i] = b.Stats()
	}
	for _, s := range t.members[1:] {
		for i, b := range s.Backends() {
			st := b.Stats()
			m := &out[i]
			m.Healthy = m.Healthy && st.Healthy
			m.Inflight += st.Inflight
			m.Open += st.Open
			m.Idle += st.Idle
			m.Relayed += st.Relayed
			m.Relayed503 += st.Relayed503
			m.Errors += st.Errors
			m.Dials += st.Dials
			m.Reuses += st.Reuses
			m.Probes += st.Probes
			m.ProbeFails += st.ProbeFails
			m.Ejections += st.Ejections
			m.Readmissions += st.Readmissions
		}
	}
	return out
}
