package metrics

import (
	"strings"
	"testing"
)

func twoSeries() (*Series, *Series) {
	a := &Series{Label: "nio"}
	b := &Series{Label: "httpd,4096"} // comma forces CSV quoting
	for i := 1; i <= 5; i++ {
		a.Add(float64(i*600), float64(i*400))
		if i != 3 { // hole in b
			b.Add(float64(i*600), float64(i*380))
		}
	}
	return a, b
}

func TestCSVBasic(t *testing.T) {
	a, b := twoSeries()
	out := CSV("clients", a, b)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != `clients,nio,"httpd,4096"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "600,400,380" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	// The hole at x=1800 must be an empty cell, not a zero.
	if lines[3] != "1800,1200," {
		t.Fatalf("hole row = %q", lines[3])
	}
}

func TestCSVEscaping(t *testing.T) {
	if got := csvEscape(`plain`); got != "plain" {
		t.Errorf("plain escaped: %q", got)
	}
	if got := csvEscape(`a"b`); got != `"a""b"` {
		t.Errorf("quote escape = %q", got)
	}
}

func TestASCIIPlotContainsShape(t *testing.T) {
	a, b := twoSeries()
	out := ASCIIPlot("Fig 1", 60, 12, a, b)
	for _, want := range []string{"Fig 1", "* = nio", "o = httpd,4096", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data glyphs plotted")
	}
	// Rising series: the first data row (max y) should contain a glyph
	// near the right edge, the bottom row near the left.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if i := strings.LastIndexByte(top, '*'); i < len(top)/2 {
		t.Fatalf("rising curve has its max on the left:\n%s", out)
	}
}

func TestASCIIPlotEmpty(t *testing.T) {
	out := ASCIIPlot("empty", 40, 8, &Series{Label: "x"})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot output:\n%s", out)
	}
}

func TestASCIIPlotSinglePoint(t *testing.T) {
	s := &Series{Label: "p"}
	s.Add(1, 1)
	out := ASCIIPlot("single", 40, 8, s)
	if !strings.Contains(out, "no data") {
		// single x means xmax == xmin; plot degrades to "no data"
		t.Fatalf("expected degenerate handling:\n%s", out)
	}
}

func TestASCIIPlotClampsTinyDimensions(t *testing.T) {
	a, _ := twoSeries()
	out := ASCIIPlot("tiny", 1, 1, a)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}
