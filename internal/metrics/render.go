package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file renders series in the two formats the figure tooling offers
// besides the aligned table: CSV (for external plotting) and a terminal
// ASCII chart (for eyeballing curve shapes without leaving the shell).

// CSV renders series sharing an x-axis as comma-separated values with a
// header row. Missing points are empty cells.
func CSV(xName string, series ...*Series) string {
	var b strings.Builder
	b.WriteString(csvEscape(xName))
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	for _, x := range mergedXs(series) {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			b.WriteByte(',')
			if y := s.YAt(x); !math.IsNaN(y) {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func mergedXs(series []*Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// ASCIIPlot renders the series as a fixed-size terminal chart: one glyph
// per series, linear axes, y auto-scaled. It is intentionally simple —
// good enough to recognize the paper's curve shapes (knees, plateaus,
// crossovers) at a glance.
func ASCIIPlot(title string, width, height int, series ...*Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1) // anchor y at zero: these are rates/times
	for _, s := range series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) || xmax == xmin {
		return fmt.Sprintf("# %s\n(no data)\n", title)
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, g byte) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = g
		}
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		// Draw line segments by sampling between consecutive points, so
		// the shape reads as a curve rather than scattered dots.
		for i := 0; i+1 < len(s.X); i++ {
			steps := width / max(1, len(s.X)-1)
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(max(1, steps))
				plot(s.X[i]+(s.X[i+1]-s.X[i])*f, s.Y[i]+(s.Y[i+1]-s.Y[i])*f, g)
			}
		}
		if len(s.X) == 1 {
			plot(s.X[0], s.Y[0], g)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%10.3g |%s\n", ymax, row)
		case height - 1:
			fmt.Fprintf(&b, "%10.3g |%s\n", ymin, row)
		default:
			fmt.Fprintf(&b, "%10s |%s\n", "", row)
		}
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*g%*g\n", "", width/2, xmin, width-width/2, xmax)
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c = %s\n", "", glyphs[si%len(glyphs)], s.Label)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
