// Package metrics provides the measurement primitives shared by the live
// servers, the load generator, and the simulator: counters, rate meters,
// log-scale latency histograms with quantile estimation, and labelled
// series that render as the rows the paper's figures plot.
//
// The hot-path types (Counter, Histogram) are safe for concurrent use and
// designed to stay off the allocator: recording a sample is an atomic add
// into a fixed bucket array.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (delta may be any non-negative
// value; negative deltas are a programming error and are ignored so a
// misbehaving caller cannot make a monotonic counter go backwards).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records positive durations (or any positive values) into
// logarithmically spaced buckets and answers count/mean/quantile queries.
// It is safe for concurrent recording. The bucket layout is fixed at
// construction: `perDecade` buckets per factor of 10 between min and max.
type Histogram struct {
	min, max  float64
	perDecade int
	factor    float64 // log-space width of one bucket
	counts    []atomic.Int64
	sum       atomic.Int64 // fixed point, micro-units (value * 1e6, rounded)
	n         atomic.Int64
	under     atomic.Int64
	over      atomic.Int64
}

// NewHistogram returns a histogram covering [min, max] with perDecade
// buckets per decade. min must be > 0 and max > min.
func NewHistogram(min, max float64, perDecade int) *Histogram {
	if min <= 0 || max <= min || perDecade <= 0 {
		panic(fmt.Sprintf("metrics: invalid histogram bounds (%v, %v, %d)", min, max, perDecade))
	}
	decades := math.Log10(max / min)
	nb := int(math.Ceil(decades*float64(perDecade))) + 1
	return &Histogram{
		min:       min,
		max:       max,
		perDecade: perDecade,
		factor:    math.Ln10 / float64(perDecade),
		counts:    make([]atomic.Int64, nb),
	}
}

// NewLatencyHistogram returns a histogram sized for request latencies:
// 10 microseconds to 1000 seconds, 20 buckets per decade (~12% relative
// resolution), which matches the precision of the paper's plots.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(10e-6, 1000, 20)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.n.Add(1)
	h.sum.Add(int64(math.Round(v * 1e6)))
	switch {
	case v < h.min:
		h.under.Add(1)
	case v >= h.max:
		h.over.Add(1)
	default:
		i := int(math.Log(v/h.min) / h.factor)
		if i < 0 {
			i = 0
		}
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i].Add(1)
	}
}

// ObserveDuration records a time.Duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Mean returns the arithmetic mean of all samples, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / 1e6 / float64(n)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using the
// geometric midpoint of the containing bucket. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(n))
	acc := h.under.Load()
	if acc > target {
		return h.min
	}
	for i := range h.counts {
		acc += h.counts[i].Load()
		if acc > target {
			lo := h.min * math.Exp(float64(i)*h.factor)
			hi := h.min * math.Exp(float64(i+1)*h.factor)
			return math.Sqrt(lo * hi)
		}
	}
	return h.max
}

// Snapshot returns a point-in-time copy suitable for reporting while
// recording continues.
type Snapshot struct {
	Count int64
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	Max   float64
}

// Snapshot captures the current distribution summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Quantile(1.0),
	}
}

// Dist is a point-in-time copy of a histogram's full bucket state —
// unlike Snapshot, which keeps only fixed summary quantiles, a Dist can
// answer any quantile later and can be merged with other Dists taken
// from histograms with the same layout (the admin plane merges per-phase
// snapshots this way). The copy is taken bucket by bucket while
// recording continues, so a Dist is consistent per bucket, not across
// buckets; totals are derived from the copied buckets so Count, Mean,
// and Quantile always agree with each other.
type Dist struct {
	Min, Max  float64
	PerDecade int
	Counts    []int64
	Under     int64
	Over      int64
	SumMicros int64
}

// Dist captures the histogram's current bucket state.
func (h *Histogram) Dist() Dist {
	d := Dist{
		Min:       h.min,
		Max:       h.max,
		PerDecade: h.perDecade,
		Counts:    make([]int64, len(h.counts)),
		Under:     h.under.Load(),
		Over:      h.over.Load(),
		SumMicros: h.sum.Load(),
	}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
	}
	return d
}

// Count returns the number of samples in the captured buckets.
func (d Dist) Count() int64 {
	n := d.Under + d.Over
	for _, c := range d.Counts {
		n += c
	}
	return n
}

// Mean returns the arithmetic mean of the captured samples, or 0 when
// empty.
func (d Dist) Mean() float64 {
	n := d.Count()
	if n == 0 {
		return 0
	}
	return float64(d.SumMicros) / 1e6 / float64(n)
}

// Quantile estimates the q-quantile from the captured buckets using the
// same geometric-midpoint rule as Histogram.Quantile.
func (d Dist) Quantile(q float64) float64 {
	n := d.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	factor := math.Ln10 / float64(d.PerDecade)
	target := int64(q * float64(n))
	acc := d.Under
	if acc > target {
		return d.Min
	}
	for i, c := range d.Counts {
		acc += c
		if acc > target {
			lo := d.Min * math.Exp(float64(i)*factor)
			hi := d.Min * math.Exp(float64(i+1)*factor)
			return math.Sqrt(lo * hi)
		}
	}
	return d.Max
}

// Merge returns the distribution of the union of the two sample sets.
// Both Dists must come from histograms with identical layouts; a
// mismatch is a programming error and panics, matching NewHistogram's
// contract.
func (d Dist) Merge(o Dist) Dist {
	if d.Min != o.Min || d.Max != o.Max || d.PerDecade != o.PerDecade || len(d.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("metrics: merging mismatched Dist layouts (%v,%v,%d,%d) vs (%v,%v,%d,%d)",
			d.Min, d.Max, d.PerDecade, len(d.Counts), o.Min, o.Max, o.PerDecade, len(o.Counts)))
	}
	out := Dist{
		Min:       d.Min,
		Max:       d.Max,
		PerDecade: d.PerDecade,
		Counts:    make([]int64, len(d.Counts)),
		Under:     d.Under + o.Under,
		Over:      d.Over + o.Over,
		SumMicros: d.SumMicros + o.SumMicros,
	}
	for i := range out.Counts {
		out.Counts[i] = d.Counts[i] + o.Counts[i]
	}
	return out
}

// Meter converts a counter into a rate over an explicit observation
// window; the simulator and the live harness both use it to report
// replies/s and errors/s exactly the way httperf does (events divided by
// test duration).
type Meter struct {
	Events Counter
}

// Rate returns events per second over the given elapsed window.
func (m *Meter) Rate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.Events.Value()) / elapsed.Seconds()
}

// Series is one labelled curve of (x, y) points — e.g. "nio 1 thread"
// throughput versus number of clients. The figure runners accumulate
// Series and render them with Table.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// YAt returns the y value for the given x, or NaN if absent.
func (s *Series) YAt(x float64) float64 {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// Table renders a set of series sharing an x-axis as an aligned text
// table: one row per x value, one column per series. This is the textual
// equivalent of one paper figure.
func Table(title, xName string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	fmt.Fprintf(&b, "%-12s", xName)
	for _, s := range series {
		fmt.Fprintf(&b, " %20s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				fmt.Fprintf(&b, " %20s", "-")
			} else {
				fmt.Fprintf(&b, " %20.3f", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
