package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 80000 {
		t.Fatalf("counter = %d, want 80000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []float64{0.001, 0.002, 0.003} {
		h.Observe(v)
	}
	if got := h.Mean(); math.Abs(got-0.002) > 1e-6 {
		t.Fatalf("mean = %v, want 0.002", got)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	// 1000 samples uniformly log-spaced between 1ms and 1s.
	for i := 0; i < 1000; i++ {
		h.Observe(0.001 * math.Pow(1000, float64(i)/999))
	}
	p50 := h.Quantile(0.5)
	// True median ~ sqrt(0.001*1) ~ 0.0316; the histogram has ~12%
	// resolution so accept 25% error.
	if p50 < 0.024 || p50 > 0.040 {
		t.Errorf("p50 = %v, want ~0.0316", p50)
	}
	if q0 := h.Quantile(0); q0 > h.Quantile(1) {
		t.Errorf("quantiles not monotone: q0=%v q1=%v", q0, h.Quantile(1))
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0.01, 10, 10)
	h.Observe(0.000001) // under
	h.Observe(1e9)      // over
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if q := h.Quantile(0.0); q != h.min {
		t.Errorf("low quantile with underflow sample = %v, want min %v", q, h.min)
	}
	if q := h.Quantile(0.99); q != h.max {
		t.Errorf("high quantile with overflow sample = %v, want max %v", q, h.max)
	}
}

func TestHistogramEmptyIsZero(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 10) },
		func() { NewHistogram(1, 1, 10) },
		func() { NewHistogram(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 20000 {
		t.Fatalf("count = %d, want 20000", h.Count())
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveDuration(150 * time.Millisecond)
	if m := h.Mean(); math.Abs(m-0.15) > 1e-6 {
		t.Fatalf("mean = %v, want 0.15", m)
	}
}

func TestSnapshotOrdering(t *testing.T) {
	h := NewLatencyHistogram()
	r := []float64{0.001, 0.005, 0.010, 0.050, 0.100, 0.500, 1, 2, 5}
	for _, v := range r {
		for i := 0; i < 100; i++ {
			h.Observe(v)
		}
	}
	s := h.Snapshot()
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("snapshot quantiles not ordered: %+v", s)
	}
	if s.Count != int64(100*len(r)) {
		t.Errorf("snapshot count = %d", s.Count)
	}
}

func TestMeterRate(t *testing.T) {
	var m Meter
	m.Events.Add(500)
	if rate := m.Rate(10 * time.Second); math.Abs(rate-50) > 1e-9 {
		t.Fatalf("rate = %v, want 50", rate)
	}
	if rate := m.Rate(0); rate != 0 {
		t.Fatalf("rate over empty window = %v, want 0", rate)
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Label: "nio"}
	b := &Series{Label: "httpd"}
	a.Add(600, 100)
	a.Add(1200, 200)
	b.Add(600, 90)
	// httpd has no 1200 point: the table should render "-".
	out := Table("Fig 1", "clients", a, b)
	if !strings.Contains(out, "Fig 1") || !strings.Contains(out, "nio") {
		t.Fatalf("table missing headers:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("table should mark missing points with '-':\n%s", out)
	}
	if got := a.YAt(600); got != 100 {
		t.Fatalf("YAt(600) = %v, want 100", got)
	}
	if !math.IsNaN(b.YAt(999)) {
		t.Fatal("YAt on missing x should be NaN")
	}
}

// Property: histogram quantiles are monotone in q for arbitrary samples.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewLatencyHistogram()
		for _, v := range raw {
			h.Observe(float64(v%1000000)/1000 + 0.0001)
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the mean always lies within [min sample, max sample].
func TestQuickMeanWithinRange(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewLatencyHistogram()
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v)/100 + 0.001
			h.Observe(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		m := h.Mean()
		return m >= lo-1e-5 && m <= hi+1e-5 // 1e-6 fixed-point resolution
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// distFromSamples builds a histogram from raw quick-generated samples
// and captures its Dist. The mapping keeps most samples in-range while
// still exercising the under/over buckets.
func distFromSamples(raw []uint32) Dist {
	h := NewLatencyHistogram()
	for _, v := range raw {
		h.Observe(float64(v%2000000)/1000 + 0.0001)
	}
	return h.Dist()
}

// Property: a Dist answers exactly what its source histogram answers —
// the snapshot loses nothing.
func TestQuickDistMatchesHistogram(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewLatencyHistogram()
		for _, v := range raw {
			h.Observe(float64(v%2000000)/1000 + 0.0001)
		}
		d := h.Dist()
		if d.Count() != h.Count() || math.Abs(d.Mean()-h.Mean()) > 1e-9 {
			return false
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if d.Quantile(q) != h.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dist merge is commutative — the admin plane may merge
// per-phase snapshots in any order.
func TestQuickDistMergeCommutative(t *testing.T) {
	f := func(a, b []uint32) bool {
		da, db := distFromSamples(a), distFromSamples(b)
		ab, ba := da.Merge(db), db.Merge(da)
		if ab.Count() != ba.Count() || ab.Under != ba.Under || ab.Over != ba.Over ||
			ab.SumMicros != ba.SumMicros {
			return false
		}
		for i := range ab.Counts {
			if ab.Counts[i] != ba.Counts[i] {
				return false
			}
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if ab.Quantile(q) != ba.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merging equals pooling — the Dist of all samples observed
// into one histogram matches the merge of the two halves' Dists.
func TestQuickDistMergeEqualsPooled(t *testing.T) {
	f := func(a, b []uint32) bool {
		merged := distFromSamples(a).Merge(distFromSamples(b))
		pooled := distFromSamples(append(append([]uint32{}, a...), b...))
		if merged.Count() != pooled.Count() || merged.SumMicros != pooled.SumMicros {
			return false
		}
		for i := range merged.Counts {
			if merged.Counts[i] != pooled.Counts[i] {
				return false
			}
		}
		return merged.Under == pooled.Under && merged.Over == pooled.Over
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched layouts should panic")
		}
	}()
	_ = NewLatencyHistogram().Dist().Merge(NewHistogram(0.01, 10, 5).Dist())
}

// Property: a Counter never goes backwards, whatever delta sequence a
// caller throws at it — negative deltas are rejected, not applied.
func TestQuickCounterMonotone(t *testing.T) {
	f := func(deltas []int64) bool {
		var c Counter
		prev := int64(0)
		for _, raw := range deltas {
			// Bound the magnitude so the expected sum cannot overflow;
			// the sign distribution is what the property is about.
			d := raw % 100000
			c.Add(d)
			cur := c.Value()
			if cur < prev {
				return false
			}
			want := prev
			if d > 0 {
				want += d
			}
			if cur != want {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewLatencyHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0123)
	}
}
