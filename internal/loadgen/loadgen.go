// Package loadgen is the live httperf equivalent: it drives real TCP
// connections against a real server with SURGE-distributed sessions and
// collects the same measurements the paper's benchmark reports —
// replies/s, response time, connection time, and the two error classes
// (client timeout, connection reset).
//
// It exists so the two live servers (internal/core, internal/mtserver)
// can be compared head-to-head on a loopback link (see examples/loadtest
// and the integration tests); the controlled-bandwidth and multi-CPU
// figures come from the simulator instead.
package loadgen

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/httpwire"
	"repro/internal/metrics"
	"repro/internal/surge"
)

// Options configures a load run.
type Options struct {
	// Addr is the server's host:port.
	Addr string
	// Clients is the number of concurrent emulated clients (closed
	// loop). Ignored when SessionRate is set.
	Clients int
	// SessionRate, when positive, selects httperf's open-loop mode:
	// single-session clients arrive as a Poisson process at this rate
	// (sessions/second) for the whole run, however the server keeps up.
	SessionRate float64
	// Warmup and Duration delimit the measurement window.
	Warmup   time.Duration
	Duration time.Duration
	// Timeout is the httperf watchdog (per activity).
	Timeout time.Duration
	// ThinkScale multiplies SURGE OFF times; loopback tests use small
	// values so sessions turn over quickly. 0 means 1.0.
	ThinkScale float64
	// Seed makes the request streams reproducible.
	Seed uint64
	// Workload and Objects define what to request. Objects must match
	// the server's store.
	Workload surge.Config
	Objects  *surge.ObjectSet
	// SourceFactory, when non-nil, supplies each client's session stream
	// instead of the SURGE generator (e.g. a sesslog.Replayer). Objects
	// is then optional.
	SourceFactory func(client int, rng *dist.RNG) surge.SessionSource
	// RevalidateFraction is the probability that a request for an object
	// the client has already fetched carries an If-None-Match with the
	// learned ETag — emulating browser-cache revalidation traffic. A
	// fresh validator earns a bodyless 304 (counted in
	// Result.NotModified). 0 (the default) disables conditional
	// requests entirely and consumes no randomness, so existing seeds
	// replay identical request streams.
	RevalidateFraction float64
}

// Validate reports option errors.
func (o Options) Validate() error {
	switch {
	case o.Addr == "":
		return fmt.Errorf("loadgen: Addr is required")
	case o.Clients <= 0 && o.SessionRate <= 0:
		return fmt.Errorf("loadgen: need Clients > 0 (closed loop) or SessionRate > 0 (open loop)")
	case o.SessionRate < 0:
		return fmt.Errorf("loadgen: negative SessionRate %v", o.SessionRate)
	case o.Duration <= 0:
		return fmt.Errorf("loadgen: Duration must be positive, got %v", o.Duration)
	case o.Timeout <= 0:
		return fmt.Errorf("loadgen: Timeout must be positive, got %v", o.Timeout)
	case o.Warmup < 0:
		return fmt.Errorf("loadgen: negative Warmup %v", o.Warmup)
	case o.ThinkScale < 0:
		return fmt.Errorf("loadgen: negative ThinkScale %v", o.ThinkScale)
	case o.Objects == nil && o.SourceFactory == nil:
		return fmt.Errorf("loadgen: Objects (or a SourceFactory) is required")
	case o.RevalidateFraction < 0 || o.RevalidateFraction > 1:
		return fmt.Errorf("loadgen: RevalidateFraction %v outside [0,1]", o.RevalidateFraction)
	}
	return nil
}

// Result is the run summary (the live analogue of simclient.Report).
type Result struct {
	Clients          int
	Duration         time.Duration
	Replies          int64
	RepliesPerSec    float64
	MeanResponseSec  float64
	P50ResponseSec   float64
	P90ResponseSec   float64
	P95ResponseSec   float64
	P99ResponseSec   float64
	MeanConnectSec   float64
	P90ConnectSec    float64
	TimeoutErrors    int64
	ResetErrors      int64
	TimeoutErrPerSec float64
	ResetErrPerSec   float64
	// UnreachableErrors counts kernel-reported network failures
	// (ETIMEDOUT, EHOSTUNREACH, ENETUNREACH) — the link failing, as
	// distinct from the client watchdog (TimeoutErrors) or the server
	// hanging up (ResetErrors). Lossy-link sweeps read this to keep the
	// taxonomy honest.
	UnreachableErrors    int64
	UnreachableErrPerSec float64
	// LocalResErrors counts failures caused by the CLIENT machine running
	// out of resources — descriptors (EMFILE/ENFILE) or ephemeral ports
	// (EADDRNOTAVAIL). They indict the measuring harness, not the server
	// under test: a sweep whose error column is dominated by this class
	// is reporting the client's fd limit, and its throughput numbers for
	// that rung should be treated as invalid rather than as server
	// saturation.
	LocalResErrors    int64
	LocalResErrPerSec float64
	BytesReceived     int64
	BandwidthBps      float64
	Sessions          int64
	// NotModified counts 304 replies to revalidation requests (they are
	// also included in Replies).
	NotModified       int64
	NotModifiedPerSec float64
	// Sheds counts 503 responses — the server refusing work under
	// overload control. They are deliberately NOT Replies (no response
	// time is recorded for them) and NOT errors: a shed is the server
	// degrading as designed, and is reported as its own class, exactly
	// as the error taxonomy separates timeouts from resets.
	Sheds       int64
	ShedsPerSec float64
	// ProxySheds and BackendSheds attribute Sheds to the tier that
	// refused the work, keyed on the Via header: an intermediary stamps
	// Via on responses it originates (and nioproxy relays backend
	// responses byte-untouched), so a 503 carrying Via was shed by the
	// proxy and one without was shed by the origin server. Against a
	// direct server every shed is a BackendShed. The two always sum to
	// Sheds.
	ProxySheds   int64
	BackendSheds int64
	// Retries counts re-dial attempts made after honoring a shed's
	// Retry-After with capped exponential backoff.
	Retries int64
}

// Run executes the load test and blocks until the window closes.
func Run(opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if opts.ThinkScale == 0 {
		opts.ThinkScale = 1
	}
	g := &generator{
		opts:         opts,
		respTimes:    metrics.NewLatencyHistogram(),
		connectTimes: metrics.NewLatencyHistogram(),
		stop:         make(chan struct{}),
	}
	root := dist.NewRNG(opts.Seed)
	var wg sync.WaitGroup
	if opts.SessionRate > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.arrivalLoop(root, &wg)
		}()
	} else {
		for i := 0; i < opts.Clients; i++ {
			i := i
			rng := root.Split()
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.clientLoop(i, rng)
			}()
		}
	}
	time.Sleep(opts.Warmup)
	g.mu.Lock()
	g.measuring = true
	g.mu.Unlock()
	time.Sleep(opts.Duration)
	g.mu.Lock()
	g.measuring = false
	g.mu.Unlock()
	close(g.stop)
	wg.Wait()

	d := opts.Duration.Seconds()
	res := Result{
		Clients:           opts.Clients,
		Duration:          opts.Duration,
		Replies:           g.replies.Value(),
		MeanResponseSec:   g.respTimes.Mean(),
		P50ResponseSec:    g.respTimes.Quantile(0.50),
		P90ResponseSec:    g.respTimes.Quantile(0.90),
		P95ResponseSec:    g.respTimes.Quantile(0.95),
		P99ResponseSec:    g.respTimes.Quantile(0.99),
		MeanConnectSec:    g.connectTimes.Mean(),
		P90ConnectSec:     g.connectTimes.Quantile(0.90),
		TimeoutErrors:     g.timeouts.Value(),
		ResetErrors:       g.resets.Value(),
		UnreachableErrors: g.unreachable.Value(),
		LocalResErrors:    g.localRes.Value(),
		BytesReceived:     g.bytes.Value(),
		Sessions:          g.sessions.Value(),
		NotModified:       g.notMod.Value(),
		Sheds:             g.sheds.Value(),
		ProxySheds:        g.proxySheds.Value(),
		BackendSheds:      g.backendSheds.Value(),
		Retries:           g.retries.Value(),
	}
	res.RepliesPerSec = float64(res.Replies) / d
	res.TimeoutErrPerSec = float64(res.TimeoutErrors) / d
	res.ResetErrPerSec = float64(res.ResetErrors) / d
	res.UnreachableErrPerSec = float64(res.UnreachableErrors) / d
	res.LocalResErrPerSec = float64(res.LocalResErrors) / d
	res.BandwidthBps = float64(res.BytesReceived) / d
	res.NotModifiedPerSec = float64(res.NotModified) / d
	res.ShedsPerSec = float64(res.Sheds) / d
	return res, nil
}

type generator struct {
	opts         Options
	respTimes    *metrics.Histogram
	connectTimes *metrics.Histogram
	replies      metrics.Counter
	timeouts     metrics.Counter
	resets       metrics.Counter
	unreachable  metrics.Counter
	localRes     metrics.Counter
	bytes        metrics.Counter
	sessions     metrics.Counter
	notMod       metrics.Counter
	sheds        metrics.Counter
	proxySheds   metrics.Counter
	backendSheds metrics.Counter
	retries      metrics.Counter

	mu        sync.Mutex
	measuring bool
	stop      chan struct{}
}

func (g *generator) inWindow() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.measuring
}

func (g *generator) stopped() bool {
	select {
	case <-g.stop:
		return true
	default:
		return false
	}
}

// errClass is the taxonomy bucket an I/O error falls into.
type errClass int

const (
	errOther       errClass = iota // unclassified (not counted)
	errTimeout                     // client watchdog fired (httperf's client-timo)
	errReset                       // abortive disconnect from the server
	errUnreachable                 // the network itself failed us
	errLocalRes                    // the client machine ran out of fds/ports
)

// classify buckets an I/O error the way httperf does, with one
// refinement: kernel-reported network failures (ETIMEDOUT from TCP
// retransmission giving up, EHOSTUNREACH/ENETUNREACH from routing) get
// their own unreachable class. They must be checked before the generic
// net.Error.Timeout() test because syscall.Errno.Timeout() reports true
// for ETIMEDOUT — and a TCP-level timeout on a lossy link is a network
// fault, not the client watchdog firing.
func classify(err error) errClass {
	if err == nil {
		return errOther
	}
	// Client-local resource exhaustion first: EMFILE/ENFILE (descriptor
	// limits) and EADDRNOTAVAIL (ephemeral ports gone, usually TIME_WAIT
	// pile-up). These say nothing about the server and must not pollute
	// the timeout/unreachable columns a sweep's verdict hangs on.
	if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.EADDRNOTAVAIL) {
		return errLocalRes
	}
	if msg := err.Error(); strings.Contains(msg, "too many open files") ||
		strings.Contains(msg, "cannot assign requested address") {
		return errLocalRes
	}
	if errors.Is(err, syscall.ETIMEDOUT) || errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENETUNREACH) {
		return errUnreachable
	}
	if msg := err.Error(); strings.Contains(msg, "host is unreachable") ||
		strings.Contains(msg, "network is unreachable") {
		return errUnreachable
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return errTimeout
	}
	// ECONNABORTED and EPIPE/"broken pipe" join ECONNRESET in the reset
	// class: httperf's accounting lumps every abortive disconnect the
	// server inflicts into connreset errors.
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNABORTED) {
		return errReset
	}
	// A close from the server mid-read surfaces as unexpected EOF.
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return errReset
	}
	if msg := err.Error(); strings.Contains(msg, "connection reset") ||
		strings.Contains(msg, "broken pipe") ||
		strings.Contains(msg, "connection aborted") {
		return errReset
	}
	return errOther
}

// arrivalLoop spawns open-loop sessions as a Poisson process.
func (g *generator) arrivalLoop(rng *dist.RNG, wg *sync.WaitGroup) {
	for {
		gap := time.Duration(rng.ExpFloat64() / g.opts.SessionRate * float64(time.Second))
		select {
		case <-g.stop:
			return
		case <-time.After(gap):
		}
		session := g.newSource(-1, rng.Split()).NextSession()
		srng := rng.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Open-loop sessions are single-visit clients: each starts
			// with an empty validator cache.
			g.runSession(session, srng, make(map[string]string))
		}()
	}
}

// newSource builds one client's session stream.
func (g *generator) newSource(client int, rng *dist.RNG) surge.SessionSource {
	if g.opts.SourceFactory != nil {
		return g.opts.SourceFactory(client, rng)
	}
	return surge.NewGenerator(g.opts.Workload, g.opts.Objects, rng)
}

// clientLoop emulates one user forever (until stop). The validator
// cache persists across the client's sessions, like a browser cache:
// an ETag learned in one session can be revalidated in the next.
func (g *generator) clientLoop(client int, rng *dist.RNG) {
	gen := g.newSource(client, rng)
	etags := make(map[string]string)
	for !g.stopped() {
		session := gen.NextSession()
		g.runSession(session, rng, etags)
		think := time.Duration(session.ThinkAfter * g.opts.ThinkScale * float64(time.Second))
		select {
		case <-g.stop:
			return
		case <-time.After(think):
		}
	}
}

// Shed-retry policy: a client that receives a 503 honors its
// Retry-After, doubling the wait on each consecutive shed (capped) and
// jittering it so a herd of shed clients does not re-arrive in lockstep,
// then re-dials and resumes the session from the first unanswered
// request — up to maxShedRetries re-dials before giving the session up.
const (
	maxShedRetries = 5
	shedBackoffCap = 8 * time.Second
)

// playOutcome is how one connection's worth of a session ended.
type playOutcome int

const (
	playDone  playOutcome = iota // every session request answered
	playFatal                    // error, close, or stop: session over
	playShed                     // 503: back off and retry the rest
)

// runSession plays the session, re-dialing with backoff when the server
// sheds it. rng gates revalidation and jitters shed backoff; etags is
// the client's learned validator cache, updated from response ETags.
func (g *generator) runSession(session surge.Session, rng *dist.RNG, etags map[string]string) {
	next := 0
	for attempt := 0; ; attempt++ {
		if attempt > 0 && g.inWindow() {
			g.retries.Inc()
		}
		n, retryAfter, outcome := g.playConn(session, next, rng, etags)
		next = n
		switch outcome {
		case playDone:
			if g.inWindow() {
				g.sessions.Inc()
			}
			return
		case playFatal:
			return
		}
		if attempt >= maxShedRetries {
			return
		}
		d := retryAfter
		for s := 0; s < attempt && d < shedBackoffCap; s++ {
			d *= 2
		}
		if d > shedBackoffCap {
			d = shedBackoffCap
		}
		if d > 0 {
			d = d/2 + time.Duration(rng.Float64()*float64(d)/2)
		}
		select {
		case <-g.stop:
			return
		case <-time.After(d):
		}
	}
}

// playConn opens one connection and plays the session from request index
// start. It returns the index of the first unanswered request, the
// server's Retry-After when the outcome is playShed, and the outcome.
func (g *generator) playConn(session surge.Session, start int, rng *dist.RNG, etags map[string]string) (int, time.Duration, playOutcome) {
	dialStart := time.Now()
	conn, err := net.DialTimeout("tcp", g.opts.Addr, g.opts.Timeout)
	if err != nil {
		if g.inWindow() {
			switch classify(err) {
			case errTimeout:
				g.timeouts.Inc()
			case errUnreachable:
				g.unreachable.Inc()
			case errLocalRes:
				g.localRes.Inc()
			}
		}
		return start, 0, playFatal
	}
	defer conn.Close()
	if g.inWindow() {
		g.connectTimes.Observe(time.Since(dialStart).Seconds())
	}
	// The generator owns its response parsing (like httperf): raw reads
	// through httpwire.RespParser, so byte accounting and stall detection
	// do not depend on a client library's buffering.
	var parser httpwire.RespParser
	buf := make([]byte, 32<<10)
	resps := make([]*httpwire.Response, 0, 4)
	// inflight holds the URL paths of issued-but-unanswered requests in
	// order, so each response can be attributed to its path (learning
	// ETags works across pipelined batches).
	var inflight []string

	i := start
	for i < len(session.Requests) {
		// Issue a batch: this request plus immediately-pipelined ones.
		batch := 1
		for i+batch < len(session.Requests) && session.Requests[i+batch].Pipelined {
			batch++
		}
		issued := time.Now()
		var wire []byte
		for j := 0; j < batch; j++ {
			path := session.Requests[i+j].Object.Path()
			wire = append(wire, "GET "...)
			wire = append(wire, path...)
			wire = append(wire, " HTTP/1.1\r\nHost: sut\r\nUser-Agent: loadgen/1.0\r\n"...)
			if g.opts.RevalidateFraction > 0 {
				if etag, ok := etags[path]; ok && rng.Float64() < g.opts.RevalidateFraction {
					wire = append(wire, "If-None-Match: "...)
					wire = append(wire, etag...)
					wire = append(wire, "\r\n"...)
				}
			}
			wire = append(wire, "\r\n"...)
			inflight = append(inflight, path)
		}
		conn.SetWriteDeadline(time.Now().Add(g.opts.Timeout))
		if _, err := conn.Write(wire); err != nil {
			g.record(err)
			return i, 0, playFatal
		}
		pending := batch
		for pending > 0 {
			conn.SetReadDeadline(time.Now().Add(g.opts.Timeout))
			n, err := conn.Read(buf)
			if n > 0 {
				var perr error
				resps, perr = parser.Feed(resps[:0], buf[:n])
				for _, resp := range resps {
					// The request index this response answers: responses
					// arrive in request order within the batch.
					respIdx := i + (batch - pending)
					pending--
					path := inflight[0]
					inflight = inflight[1:]
					if resp.StatusCode == 503 {
						// Shed: not a reply, not an error — its own class.
						// Requests pipelined behind it are lost (the server
						// closes); the retry resumes from this one. The Via
						// header attributes the refusal: a proxy stamps Via
						// on the sheds it originates but relays backend
						// responses untouched.
						if g.inWindow() {
							g.sheds.Inc()
							if _, fromProxy := resp.Get("Via"); fromProxy {
								g.proxySheds.Inc()
							} else {
								g.backendSheds.Inc()
							}
						}
						ra := time.Second
						if d, ok := httpwire.ParseRetryAfter(resp, time.Now()); ok {
							ra = d
						}
						return respIdx, ra, playShed
					}
					switch resp.StatusCode {
					case 200:
						if etag, ok := resp.Get("ETag"); ok {
							etags[path] = etag
						}
					case 304:
						if g.inWindow() {
							g.notMod.Inc()
						}
					}
					if g.inWindow() {
						g.bytes.Add(resp.BodyBytes)
						g.replies.Inc()
						g.respTimes.Observe(time.Since(issued).Seconds())
					}
					if !resp.KeepAlive {
						// Server will close; the session cannot go on.
						return respIdx + 1, 0, playFatal
					}
				}
				if perr != nil {
					g.record(perr)
					return i, 0, playFatal
				}
			}
			if err != nil {
				g.record(err)
				return i, 0, playFatal
			}
		}
		i += batch
		if i < len(session.Requests) {
			gap := time.Duration(session.Requests[i].Gap * g.opts.ThinkScale * float64(time.Second))
			select {
			case <-g.stop:
				return i, 0, playFatal
			case <-time.After(gap):
			}
		}
	}
	return i, 0, playDone
}

// record classifies and counts a session-fatal error.
func (g *generator) record(err error) {
	if !g.inWindow() {
		return
	}
	switch classify(err) {
	case errTimeout:
		g.timeouts.Inc()
	case errReset:
		g.resets.Inc()
	case errUnreachable:
		g.unreachable.Inc()
	case errLocalRes:
		g.localRes.Inc()
	}
}
