//go:build linux

package loadgen

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/docroot"
	"repro/internal/httpwire"
	"repro/internal/mtserver"
	"repro/internal/surge"
)

// workload builds a small, fast SURGE population for loopback tests.
func workload(t *testing.T) (surge.Config, *surge.ObjectSet) {
	t.Helper()
	cfg := surge.DefaultConfig()
	cfg.NumObjects = 100
	cfg.MaxObjectBytes = 256 << 10
	set, err := surge.BuildObjectSet(cfg, dist.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	return cfg, set
}

func options(addr string, cfg surge.Config, set *surge.ObjectSet, clients int) Options {
	return Options{
		Addr:       addr,
		Clients:    clients,
		Warmup:     200 * time.Millisecond,
		Duration:   1500 * time.Millisecond,
		Timeout:    5 * time.Second,
		ThinkScale: 0.01, // compress think times for a fast test
		Seed:       99,
		Workload:   cfg,
		Objects:    set,
	}
}

func TestValidate(t *testing.T) {
	cfg, set := workload(t)
	good := options("127.0.0.1:1", cfg, set, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.Addr = "" },
		func(o *Options) { o.Clients = 0 },
		func(o *Options) { o.Duration = 0 },
		func(o *Options) { o.Timeout = 0 },
		func(o *Options) { o.Warmup = -time.Second },
		func(o *Options) { o.ThinkScale = -1 },
		func(o *Options) { o.Objects = nil },
	}
	for i, mutate := range bad {
		o := good
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAgainstEventDrivenServer(t *testing.T) {
	cfg, set := workload(t)
	store := core.NewSurgeStore(set, cfg.MaxObjectBytes, 3)
	srv, err := core.NewServer(core.DefaultConfig(store))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	res, err := Run(options(srv.Addr(), cfg, set, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replies == 0 {
		t.Fatalf("no replies: %+v", res)
	}
	if res.ResetErrors != 0 {
		t.Fatalf("event-driven server produced %d resets", res.ResetErrors)
	}
	if res.MeanResponseSec <= 0 || res.MeanResponseSec > 1 {
		t.Fatalf("implausible loopback response time %v", res.MeanResponseSec)
	}
	if res.BytesReceived == 0 || res.Sessions == 0 {
		t.Fatalf("missing accounting: %+v", res)
	}
}

func TestAgainstThreadPoolServer(t *testing.T) {
	cfg, set := workload(t)
	store := core.NewSurgeStore(set, cfg.MaxObjectBytes, 3)
	mcfg := mtserver.DefaultConfig(store)
	mcfg.Threads = 16
	srv, err := mtserver.NewServer(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	res, err := Run(options(srv.Addr(), cfg, set, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replies == 0 {
		t.Fatalf("no replies: %+v", res)
	}
}

func TestThreadServerShortKeepAliveCausesResets(t *testing.T) {
	cfg, set := workload(t)
	store := core.NewSurgeStore(set, cfg.MaxObjectBytes, 3)
	mcfg := mtserver.DefaultConfig(store)
	mcfg.Threads = 8
	mcfg.KeepAlive = 30 * time.Millisecond // far below intra-session gaps
	srv, err := mtserver.NewServer(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	opts := options(srv.Addr(), cfg, set, 8)
	opts.ThinkScale = 0.05 // gaps ~100ms > 30ms keep-alive
	opts.Duration = 2 * time.Second
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResetErrors == 0 {
		t.Fatalf("expected resets with a 30ms keep-alive: %+v", res)
	}
}

func TestErrorClassification(t *testing.T) {
	if c := classify(nil); c != errOther {
		t.Fatal("nil misclassified")
	}
	if c := classify(timeoutErr{}); c != errTimeout {
		t.Fatal("timeout not classified")
	}
	// httperf's reset class covers every abortive server disconnect.
	resetClass := []error{
		syscall.ECONNRESET,
		syscall.ECONNABORTED,
		syscall.EPIPE,
		&net.OpError{Op: "write", Err: os.NewSyscallError("write", syscall.EPIPE)},
		&net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ECONNABORTED)},
		errors.New("write tcp 127.0.0.1:1->127.0.0.1:2: write: broken pipe"),
		errors.New("read tcp 127.0.0.1:1->127.0.0.1:2: read: connection reset by peer"),
		errors.New("accept tcp 127.0.0.1:1: software caused connection aborted"),
		io.EOF,
		io.ErrUnexpectedEOF,
	}
	for _, err := range resetClass {
		if c := classify(err); c != errReset {
			t.Errorf("classify(%v) = %v, want errReset", err, c)
		}
	}
	if c := classify(errors.New("no route to host")); c == errReset {
		t.Error("unrelated error landed in the reset class")
	}
}

func TestUnreachableClassification(t *testing.T) {
	// Kernel-level network failures get their own class — critically,
	// ETIMEDOUT must NOT fall into the client-watchdog timeout bucket
	// even though syscall.Errno.Timeout() reports true for it.
	unreachableClass := []error{
		syscall.ETIMEDOUT,
		syscall.EHOSTUNREACH,
		syscall.ENETUNREACH,
		&net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ETIMEDOUT)},
		&net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.EHOSTUNREACH)},
		&net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ENETUNREACH)},
		errors.New("dial tcp 10.0.0.1:80: connect: host is unreachable"),
		errors.New("dial tcp 10.0.0.1:80: connect: network is unreachable"),
	}
	for _, err := range unreachableClass {
		if c := classify(err); c != errUnreachable {
			t.Errorf("classify(%v) = %v, want errUnreachable", err, c)
		}
	}
	// The watchdog timeout class must still catch deadline expiries.
	if c := classify(&net.OpError{Op: "read", Err: timeoutErr{}}); c != errTimeout {
		t.Error("deadline expiry no longer classified as client timeout")
	}
}

func TestLocalResClassification(t *testing.T) {
	// Client-side resource exhaustion is its own class: it indicts the
	// measuring harness, not the server, and must not be mistaken for
	// server saturation (resets/timeouts) in sweep verdicts.
	localResClass := []error{
		syscall.EMFILE,
		syscall.ENFILE,
		syscall.EADDRNOTAVAIL,
		&net.OpError{Op: "dial", Err: os.NewSyscallError("socket", syscall.EMFILE)},
		&net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.EADDRNOTAVAIL)},
		errors.New("dial tcp 127.0.0.1:80: socket: too many open files"),
		errors.New("dial tcp 127.0.0.1:80: connect: cannot assign requested address"),
	}
	for _, err := range localResClass {
		if c := classify(err); c != errLocalRes {
			t.Errorf("classify(%v) = %v, want errLocalRes", err, c)
		}
	}
	// The pre-existing classes must not have been cannibalized.
	if c := classify(syscall.ETIMEDOUT); c != errUnreachable {
		t.Error("ETIMEDOUT no longer unreachable")
	}
	if c := classify(syscall.ECONNRESET); c != errReset {
		t.Error("ECONNRESET no longer reset")
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "deadline exceeded" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestOpenLoopAgainstEventDriven(t *testing.T) {
	cfg, set := workload(t)
	store := core.NewSurgeStore(set, cfg.MaxObjectBytes, 3)
	srv, err := core.NewServer(core.DefaultConfig(store))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	opts := options(srv.Addr(), cfg, set, 0)
	opts.Clients = 0
	opts.SessionRate = 40 // sessions/s
	opts.Duration = 2 * time.Second
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replies == 0 {
		t.Fatalf("open-loop produced no replies: %+v", res)
	}
	// ~40 sessions/s × ~6.5 requests ≈ 260 replies/s; accept a wide
	// window for scheduling noise on a loaded CI box.
	if res.RepliesPerSec < 60 || res.RepliesPerSec > 700 {
		t.Fatalf("open-loop rate %v far from expectation (~260)", res.RepliesPerSec)
	}
}

func TestOpenLoopValidationLive(t *testing.T) {
	cfg, set := workload(t)
	o := options("127.0.0.1:1", cfg, set, 1)
	o.Clients = 0
	if err := o.Validate(); err == nil {
		t.Fatal("no clients and no rate accepted")
	}
	o.SessionRate = -2
	if err := o.Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestRevalidationEarns304s(t *testing.T) {
	cfg, set := workload(t)
	dir := t.TempDir()
	if err := docroot.MaterializeSurge(dir, set, cfg.MaxObjectBytes, 3); err != nil {
		t.Fatal(err)
	}
	root, err := docroot.Open(dir, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	scfg := core.DefaultConfig(nil)
	scfg.Docroot = root
	srv, err := core.NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	opts := options(srv.Addr(), cfg, set, 4)
	opts.RevalidateFraction = 1 // every repeat visit revalidates
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replies == 0 {
		t.Fatalf("no replies: %+v", res)
	}
	// With persistent per-client validator caches and the SURGE
	// popularity skew, repeat requests are common; every one of them
	// must have earned a bodyless 304.
	if res.NotModified == 0 {
		t.Fatalf("no 304s observed: %+v", res)
	}
	if res.NotModified > res.Replies {
		t.Fatalf("NotModified %d exceeds Replies %d", res.NotModified, res.Replies)
	}
	if got := srv.Stats().NotModified; got < res.NotModified {
		t.Fatalf("server counted %d 304s, client saw %d", got, res.NotModified)
	}
}

func TestRevalidateFractionValidated(t *testing.T) {
	cfg, set := workload(t)
	o := options("127.0.0.1:1", cfg, set, 1)
	o.RevalidateFraction = 1.5
	if err := o.Validate(); err == nil {
		t.Fatal("RevalidateFraction 1.5 accepted")
	}
	o.RevalidateFraction = -0.1
	if err := o.Validate(); err == nil {
		t.Fatal("RevalidateFraction -0.1 accepted")
	}
}

// shedServer is a fake server that sheds every odd-numbered connection
// with a 503 carrying the given headers + close and serves every
// even-numbered one with a 200 per request — the minimal peer for
// exercising the client's shed/backoff/resume loop deterministically
// and fast.
type shedServer struct {
	ln    net.Listener
	conns atomic.Int64
	wg    sync.WaitGroup
}

func newShedServer(t *testing.T, shedHeaders ...httpwire.Header) *shedServer {
	t.Helper()
	if len(shedHeaders) == 0 {
		shedHeaders = []httpwire.Header{{Name: "Retry-After", Value: "0"}}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &shedServer{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := s.conns.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				buf := make([]byte, 4096)
				if n%2 == 1 {
					_, _ = conn.Read(buf)
					_, _ = conn.Write(httpwire.AppendResponseHeaderExtra(nil, 503, "text/plain", 0, false,
						shedHeaders...))
					return
				}
				var parser httpwire.Parser
				var reqs []*httpwire.Request
				for {
					rn, err := conn.Read(buf)
					if err != nil {
						return
					}
					reqs, _ = parser.Feed(reqs[:0], buf[:rn])
					for range reqs {
						if _, err := conn.Write(httpwire.AppendResponseHeader(nil, 200, "text/plain", 0, true)); err != nil {
							return
						}
					}
				}
			}()
		}
	}()
	return s
}

func (s *shedServer) stop() {
	s.ln.Close()
	s.wg.Wait()
}

func TestShedRetryAfterHonored(t *testing.T) {
	srv := newShedServer(t)
	defer srv.stop()

	oneReq := surge.Session{Requests: []surge.Request{{Object: surge.Object{ID: 0}}}}
	opts := Options{
		Addr:     srv.ln.Addr().String(),
		Clients:  1,
		Warmup:   0,
		Duration: 700 * time.Millisecond,
		Timeout:  5 * time.Second,
		Seed:     7,
		SourceFactory: func(int, *dist.RNG) surge.SessionSource {
			return sessionFunc(func() surge.Session { return oneReq })
		},
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every session's first dial is shed; the client must back off per
	// Retry-After (0 s here, so immediately), re-dial, and complete the
	// session on the serving connection.
	if res.Sheds == 0 || res.Retries == 0 {
		t.Fatalf("sheds=%d retries=%d, want both positive: %+v", res.Sheds, res.Retries, res)
	}
	if res.Sessions == 0 || res.Replies == 0 {
		t.Fatalf("no completed sessions through the shed/retry path: %+v", res)
	}
	// Sheds are their own class: neither replies nor errors.
	if res.ResetErrors != 0 || res.TimeoutErrors != 0 {
		t.Fatalf("sheds leaked into error counters: %+v", res)
	}
	if res.Replies < res.Sessions {
		t.Fatalf("replies %d below sessions %d", res.Replies, res.Sessions)
	}
	// No Via header on these 503s: every shed is attributed to the
	// backend tier.
	if res.BackendSheds != res.Sheds || res.ProxySheds != 0 {
		t.Fatalf("attribution: sheds=%d proxy=%d backend=%d, want all backend",
			res.Sheds, res.ProxySheds, res.BackendSheds)
	}
}

// TestShedAttributionVia proves the Via-keyed split: a 503 stamped with
// a Via header is a proxy-originated shed, and the HTTP-date Retry-After
// form (a date in the past → retry immediately) is honored on the
// shed-retry path.
func TestShedAttributionVia(t *testing.T) {
	srv := newShedServer(t,
		httpwire.Header{Name: "Retry-After", Value: "Sun, 06 Nov 1994 08:49:37 GMT"},
		httpwire.Header{Name: "Via", Value: "1.1 nioproxy"})
	defer srv.stop()

	oneReq := surge.Session{Requests: []surge.Request{{Object: surge.Object{ID: 0}}}}
	opts := Options{
		Addr:     srv.ln.Addr().String(),
		Clients:  1,
		Warmup:   0,
		Duration: 700 * time.Millisecond,
		Timeout:  5 * time.Second,
		Seed:     7,
		SourceFactory: func(int, *dist.RNG) surge.SessionSource {
			return sessionFunc(func() surge.Session { return oneReq })
		},
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sheds == 0 || res.Sessions == 0 {
		t.Fatalf("shed/retry path not exercised: %+v", res)
	}
	if res.ProxySheds != res.Sheds || res.BackendSheds != 0 {
		t.Fatalf("attribution: sheds=%d proxy=%d backend=%d, want all proxy",
			res.Sheds, res.ProxySheds, res.BackendSheds)
	}
}

// sessionFunc adapts a function to surge.SessionSource.
type sessionFunc func() surge.Session

func (f sessionFunc) NextSession() surge.Session { return f() }
