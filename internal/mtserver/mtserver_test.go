package mtserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func testStore() core.MapStore {
	return core.MapStore{
		"/hello": []byte("hello world"),
		"/big":   make([]byte, 200<<10),
	}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestServeBasicGet(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	resp, err := http.Get("http://" + s.Addr() + "/hello")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "hello world" {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}
	if st := s.Stats(); st.Replies < 1 || st.Accepted < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServe404And501(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	resp, err := http.Get("http://" + s.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "PUT /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
	data, _ := io.ReadAll(c)
	if !strings.Contains(string(data), "501") {
		t.Fatalf("response %q", data)
	}
}

func TestKeepAliveReuse(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	for i := 0; i < 4; i++ {
		fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
		resp, err := http.ReadResponse(r, nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := s.Stats().Accepted; got != 1 {
		t.Fatalf("accepted = %d, want 1", got)
	}
}

func TestPipelinedSequentialService(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wire := strings.Repeat("GET /hello HTTP/1.1\r\n\r\n", 3)
	if _, err := c.Write([]byte(wire)); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(c)
	for i := 0; i < 3; i++ {
		resp, err := http.ReadResponse(r, nil)
		if err != nil {
			t.Fatalf("pipelined %d: %v", i, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) != "hello world" {
			t.Fatalf("pipelined %d: %q", i, b)
		}
	}
}

func TestKeepAliveTimeoutDisconnects(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.KeepAlive = 150 * time.Millisecond
	s := startServer(t, cfg)
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	r := bufio.NewReader(c)
	resp, err := http.ReadResponse(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// Exceed the idle timeout, then try to reuse the connection: the
	// server has closed it (Apache-style thread recycling).
	time.Sleep(400 * time.Millisecond)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	_, err = io.ReadAll(r)
	if err == nil && s.Stats().IdleCloses == 0 {
		t.Fatalf("idle connection survived the keep-alive timeout: %+v", s.Stats())
	}
	if s.Stats().IdleCloses != 1 {
		t.Fatalf("IdleCloses = %d, want 1", s.Stats().IdleCloses)
	}
}

func TestPoolBoundConcurrency(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.Threads = 2
	cfg.KeepAlive = 500 * time.Millisecond
	s := startServer(t, cfg)

	// Two clients occupy both threads with open keep-alive connections.
	var holds []net.Conn
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
		r := bufio.NewReader(c)
		resp, err := http.ReadResponse(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		holds = append(holds, c)
	}
	// A third client connects (kernel accepts) but is not served until a
	// thread frees up at the keep-alive timeout.
	c3, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	start := time.Now()
	fmt.Fprintf(c3, "GET /hello HTTP/1.1\r\n\r\n")
	r3 := bufio.NewReader(c3)
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := http.ReadResponse(r3, nil)
	if err != nil {
		t.Fatalf("third client never served: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if waited := time.Since(start); waited < 300*time.Millisecond {
		t.Fatalf("third client served in %v; pool bound not enforced", waited)
	}
	_ = holds
}

func TestManyConcurrentClients(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.Threads = 16
	s := startServer(t, cfg)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get("http://" + s.Addr() + "/big")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if len(b) != 200<<10 {
				errs <- fmt.Errorf("short body: %d", len(b))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestBadRequest400(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "TOTAL GARBAGE HERE\r\n")
	data, _ := io.ReadAll(c)
	if !strings.Contains(string(data), "400") {
		t.Fatalf("response %q", data)
	}
	if s.Stats().BadRequest != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestConfigValidation(t *testing.T) {
	store := testStore()
	bad := []Config{
		{Threads: 0, KeepAlive: time.Second, ReadBuf: 4096, Store: store},
		{Threads: 1, KeepAlive: -time.Second, ReadBuf: 4096, Store: store},
		{Threads: 1, KeepAlive: time.Second, ReadBuf: 1, Store: store},
		{Threads: 1, KeepAlive: time.Second, ReadBuf: 4096, Store: nil},
		{Threads: 1, KeepAlive: time.Second, ReadBuf: 4096, Store: store, Port: 70000},
		{Threads: 1, KeepAlive: time.Second, ReadBuf: 4096, Store: store, MaxConns: -1},
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStopIdempotent(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	s.Stop()
	s.Stop()
}

// Regression: KeepAlive == 0 used to arm time.Now().Add(0) deadlines, so
// every read and write expired immediately. Zero must mean "no deadline".
func TestZeroKeepAliveMeansNoDeadline(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.KeepAlive = 0
	s := startServer(t, cfg)

	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// With the bug, the worker's read deadline has long expired by the
	// time this request arrives and the connection is already doomed.
	time.Sleep(150 * time.Millisecond)
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
	r := bufio.NewReader(c)
	resp, err := http.ReadResponse(r, nil)
	if err != nil {
		t.Fatalf("request on a zero-KeepAlive server failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello world" {
		t.Fatalf("body = %q", body)
	}
	// And the connection survives arbitrary idling: no recycling policy.
	time.Sleep(300 * time.Millisecond)
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
	if _, err := http.ReadResponse(r, nil); err != nil {
		t.Fatalf("idle connection died with KeepAlive=0: %v", err)
	}
	if ic := s.Stats().IdleCloses; ic != 0 {
		t.Fatalf("idle closes with the policy disabled: %d", ic)
	}
}

func TestMaxConnsShedsWith503(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.Threads = 2
	cfg.MaxConns = 2
	s := startServer(t, cfg)

	var held []net.Conn
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
		fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
		if _, err := http.ReadResponse(bufio.NewReader(c), nil); err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}

	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	data, _ := io.ReadAll(c)
	if !strings.Contains(string(data), "503") {
		t.Fatalf("over-limit connection got %q, want a 503", data)
	}
	st := s.Stats()
	if st.Shed == 0 {
		t.Fatalf("no shed accounting: %+v", st)
	}
	if st.ConnsOpen > int64(cfg.MaxConns) {
		t.Fatalf("ConnsOpen %d exceeds MaxConns %d", st.ConnsOpen, cfg.MaxConns)
	}
}

func TestDrainFinishesInFlightAndClosesIdle(t *testing.T) {
	store := testStore()
	store["/huge"] = make([]byte, 8<<20)
	cfg := DefaultConfig(store)
	cfg.Threads = 4
	s := startServer(t, cfg)

	// Idle keep-alive connection: drain must close it cleanly (EOF, not
	// the RST an expired keep-alive produces).
	idle, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	fmt.Fprintf(idle, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
	ri := bufio.NewReader(idle)
	resp, err := http.ReadResponse(ri, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// In-flight response: huge object read slowly, so the blocking
	// write is still in progress when the drain begins.
	slow, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fmt.Fprintf(slow, "GET /huge HTTP/1.1\r\nHost: x\r\n\r\n")
	time.Sleep(50 * time.Millisecond)

	type result struct {
		n   int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		var total int64
		buf := make([]byte, 256<<10)
		for {
			slow.SetReadDeadline(time.Now().Add(10 * time.Second))
			n, err := slow.Read(buf)
			total += int64(n)
			if err != nil {
				done <- result{total, err}
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	if !s.Drain(10 * time.Second) {
		t.Fatal("drain timed out with a live in-flight response")
	}
	res := <-done
	if res.err != io.EOF {
		t.Fatalf("in-flight read ended with %v, want clean EOF", res.err)
	}
	if res.n < 8<<20 {
		t.Fatalf("in-flight response truncated at %d bytes", res.n)
	}
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ri.ReadByte(); err != io.EOF {
		t.Fatalf("idle connection saw %v, want EOF", err)
	}
	st := s.Stats()
	if st.ConnsOpen != 0 {
		t.Fatalf("connections survived drain: %+v", st)
	}
	if st.IdleCloses != 0 {
		t.Fatalf("drain wake-ups miscounted as idle closes: %+v", st)
	}
	if _, err := net.DialTimeout("tcp", s.Addr(), 500*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}
