// Package mtserver is the live baseline the paper compares against: a
// multithreaded web server in the style of Apache 2's worker MPM. A
// bounded pool of worker threads each handles one connection at a time
// with blocking reads and writes, and a keep-alive idle timeout
// disconnects inactive clients to recycle threads — the behaviour the
// paper identifies as the source of httpd2's connection-reset errors.
//
// Threads are goroutines here; the architectural property under study —
// one connection bound to one execution context, blocking I/O, a hard
// pool limit — is preserved exactly: when all workers are busy, accepted
// connections wait and new ones pile up in the kernel backlog.
package mtserver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/docroot"
	"repro/internal/httpwire"
)

// Config parameterizes the thread-pool server.
type Config struct {
	// Port to listen on (0 picks a free port).
	Port int
	// Threads is the worker-pool size (the paper sweeps 128–6000).
	Threads int
	// KeepAlive is the idle timeout after which the server closes a
	// connection (the paper configures 15 s). 0 disables the timeout:
	// reads and writes then carry no deadline at all — the ablation
	// that shows the reset errors come from the recycling policy.
	KeepAlive time.Duration
	// ReadBuf is the per-thread read buffer size.
	ReadBuf int
	// Store serves the content from memory. Required unless Docroot is
	// set.
	Store core.Store
	// Docroot, when non-nil, serves real files from disk through the
	// bounded content cache instead of Store: cache hits are written
	// from memory, misses are delivered with blocking sendfile(2) (the
	// thread parks until the kernel drains the file into the socket),
	// and conditional GETs are answered with 304.
	Docroot *docroot.Root
	// MaxConns, when positive, caps connections the server will hold
	// (serving plus queued for a free thread): excess accepts get an
	// immediate 503 + close (counted in Stats.Shed) instead of piling
	// into the handoff queue and kernel backlog. 0 = unlimited.
	MaxConns int
}

// DefaultConfig returns the paper's best configuration (scaled pool).
func DefaultConfig(store core.Store) Config {
	return Config{
		Threads:   64,
		KeepAlive: 15 * time.Second,
		ReadBuf:   16 << 10,
		Store:     store,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("mtserver: Threads must be positive, got %d", c.Threads)
	case c.KeepAlive < 0:
		return fmt.Errorf("mtserver: negative KeepAlive %v", c.KeepAlive)
	case c.MaxConns < 0:
		return fmt.Errorf("mtserver: negative MaxConns %d", c.MaxConns)
	case c.ReadBuf < 256:
		return fmt.Errorf("mtserver: ReadBuf must be at least 256, got %d", c.ReadBuf)
	case c.Store == nil && c.Docroot == nil:
		return fmt.Errorf("mtserver: a Store or a Docroot is required")
	case c.Port < 0 || c.Port > 65535:
		return fmt.Errorf("mtserver: invalid port %d", c.Port)
	}
	return nil
}

// Stats are the server's counters.
type Stats struct {
	Accepted   int64
	Replies    int64
	BytesOut   int64
	IdleCloses int64
	BadRequest int64
	ConnsOpen  int64
	// Shed counts connections refused with a 503 by MaxConns admission
	// control.
	Shed int64
	// NotModified counts 304 replies to conditional GETs (docroot only).
	NotModified int64
	// SendfileBytes counts body bytes delivered via sendfile(2);
	// BytesOut includes them.
	SendfileBytes int64
}

// Server is the live thread-pool web server.
type Server struct {
	cfg Config
	ln  net.Listener

	// handoff carries accepted connections to worker threads. It is
	// unbuffered: when every thread is busy the acceptor blocks, exactly
	// like Apache with a saturated pool — further connections queue in
	// the kernel's accept backlog.
	handoff chan net.Conn

	wg        sync.WaitGroup
	stopping  chan struct{}
	stopOnce  sync.Once
	draining  chan struct{}
	drainOnce sync.Once

	mu     sync.Mutex
	active map[net.Conn]struct{}

	accepted      atomic.Int64
	replies       atomic.Int64
	bytesOut      atomic.Int64
	idleCloses    atomic.Int64
	badRequest    atomic.Int64
	connsOpen     atomic.Int64
	shed          atomic.Int64
	notModified   atomic.Int64
	sendfileBytes atomic.Int64
	// inflight counts accepted-and-admitted connections from accept to
	// handler exit (ConnsOpen only counts those a thread has picked up);
	// MaxConns admission and Drain completion are judged against it.
	inflight atomic.Int64
}

// NewServer validates the configuration and binds the listener.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", cfg.Port))
	if err != nil {
		return nil, fmt.Errorf("mtserver: listen: %w", err)
	}
	return &Server{
		cfg:      cfg,
		ln:       ln,
		handoff:  make(chan net.Conn),
		stopping: make(chan struct{}),
		draining: make(chan struct{}),
		active:   make(map[net.Conn]struct{}),
	}, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Port returns the bound port.
func (s *Server) Port() int { return s.ln.Addr().(*net.TCPAddr).Port }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:   s.accepted.Load(),
		Replies:    s.replies.Load(),
		BytesOut:   s.bytesOut.Load(),
		IdleCloses: s.idleCloses.Load(),
		BadRequest: s.badRequest.Load(),
		ConnsOpen:  s.connsOpen.Load(),
		Shed:       s.shed.Load(),

		NotModified:   s.notModified.Load(),
		SendfileBytes: s.sendfileBytes.Load(),
	}
}

// Start launches the worker pool and the acceptor.
func (s *Server) Start() error {
	for i := 0; i < s.cfg.Threads; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Stop closes the listener and all active connections, then waits for
// every thread to exit.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.active {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// Drain gracefully shuts the server down: it stops accepting, wakes
// threads parked in keep-alive reads (their connections close cleanly,
// with no RST and no idle-close accounting), lets responses already
// being served finish, and then stops. It reports whether every
// connection finished before the timeout; on false, Stop cut off the
// stragglers.
func (s *Server) Drain(timeout time.Duration) bool {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.ln.Close()
		// Wake every thread blocked in a keep-alive read; handleConn
		// sees the draining signal and exits instead of idling on.
		s.mu.Lock()
		for c := range s.active {
			_ = c.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
	})
	drained := false
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.inflight.Load() == 0 {
			drained = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Stop()
	return drained
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-s.stopping:
				return
			default:
				continue // transient accept error
			}
		}
		s.accepted.Add(1)
		// Admission control: past MaxConns the connection is answered
		// with an immediate 503 and closed instead of joining the
		// handoff queue — bounded degradation instead of an unbounded
		// accept pile-up.
		if mc := s.cfg.MaxConns; mc > 0 && s.inflight.Load() >= int64(mc) {
			s.shed.Add(1)
			shedConn(conn)
			continue
		}
		s.inflight.Add(1)
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		select {
		case s.handoff <- conn: // blocks while the pool is saturated
		case <-s.draining:
			conn.Close()
			s.inflight.Add(-1)
			return
		case <-s.stopping:
			conn.Close()
			s.inflight.Add(-1)
			return
		}
	}
}

// shedConn answers an over-limit accept with a best-effort 503 + close.
func shedConn(conn net.Conn) {
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	_, _ = conn.Write(httpwire.AppendResponseHeader(nil, 503, "text/plain", 0, false))
	conn.Close()
}

func (s *Server) track(c net.Conn, on bool) {
	s.mu.Lock()
	if on {
		s.active[c] = struct{}{}
	} else {
		delete(s.active, c)
	}
	s.mu.Unlock()
}

func (s *Server) workerLoop() {
	defer s.wg.Done()
	buf := make([]byte, s.cfg.ReadBuf)
	var out []byte
	for {
		select {
		case conn := <-s.handoff:
			s.connsOpen.Add(1)
			s.track(conn, true)
			s.handleConn(conn, buf, &out)
			s.track(conn, false)
			s.connsOpen.Add(-1)
			s.inflight.Add(-1)
		case <-s.stopping:
			return
		}
	}
}

// handleConn serves one connection to completion — the thread is bound to
// it for the connection's whole lifetime, requests are served strictly
// sequentially, and responses are written with blocking writes.
func (s *Server) handleConn(conn net.Conn, buf []byte, out *[]byte) {
	defer conn.Close()
	var parser httpwire.Parser
	reqs := make([]*httpwire.Request, 0, 4)
	for {
		select {
		case <-s.draining:
			// Graceful drain: the previous response is fully written;
			// close instead of waiting for another request.
			return
		case <-s.stopping:
			return
		default:
		}
		if err := conn.SetReadDeadline(s.ioDeadline()); err != nil {
			return
		}
		// Re-check after arming the deadline: Drain closes s.draining
		// before setting its wake-up deadlines, so if ours overwrote the
		// drain's, the signal is already visible here.
		select {
		case <-s.draining:
			return
		default:
		}
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				select {
				case <-s.draining:
					// Woken by Drain, not by an expired keep-alive:
					// close cleanly, no RST, no idle-close accounting.
					return
				default:
				}
				// Keep-alive expired: disconnect the idle client. The
				// client that writes later gets a reset — the paper's
				// connection-reset error class.
				s.idleCloses.Add(1)
				if tc, ok := conn.(*net.TCPConn); ok {
					_ = tc.SetLinger(0) // force RST, as a full Apache accept queue would
				}
			}
			return
		}
		var perr error
		reqs, perr = parser.Feed(reqs[:0], buf[:n])
		for _, req := range reqs {
			if !s.serve(conn, req, out) {
				return
			}
		}
		if perr != nil {
			s.badRequest.Add(1)
			*out = httpwire.AppendResponseHeader((*out)[:0], 400, "text/plain", 0, false)
			s.write(conn, *out)
			return
		}
	}
}

// serve writes one response; the return value reports whether the
// connection should stay open.
func (s *Server) serve(conn net.Conn, req *httpwire.Request, out *[]byte) bool {
	switch {
	case req.Method != "GET" && req.Method != "HEAD":
		*out = httpwire.AppendResponseHeader((*out)[:0], 501, "text/plain", 0, req.KeepAlive)
	case s.cfg.Docroot != nil:
		return s.serveDocroot(conn, req, out)
	default:
		body, ctype, ok := s.cfg.Store.Get(req.Path)
		if !ok {
			*out = httpwire.AppendResponseHeader((*out)[:0], 404, "text/plain", 0, req.KeepAlive)
		} else {
			*out = httpwire.AppendResponseHeader((*out)[:0], 200, ctype, int64(len(body)), req.KeepAlive)
			if req.Method == "GET" {
				*out = append(*out, body...)
			}
		}
	}
	if !s.write(conn, *out) {
		return false
	}
	s.replies.Add(1)
	return req.KeepAlive
}

// serveDocroot answers one request from the disk-backed docroot:
// 404/304 and cache-hit bodies go out as one blocking write; fd-only
// entries get their header written first and the body pushed with
// blocking sendfile — the thread stays parked in the kernel until the
// file range has drained into the socket, the thread-pool counterpart
// of the reactor's resumable sendfile state machine.
func (s *Server) serveDocroot(conn net.Conn, req *httpwire.Request, out *[]byte) bool {
	ent, err := s.cfg.Docroot.Get(req.Path)
	if err != nil {
		*out = httpwire.AppendResponseHeader((*out)[:0], 404, "text/plain", 0, req.KeepAlive)
		return s.finish(conn, *out, req.KeepAlive)
	}
	defer ent.Release()
	if httpwire.NotModified(req, ent.ETag, ent.ModTime) {
		s.notModified.Add(1)
		*out = httpwire.AppendResponseHeaderValidators((*out)[:0], 304,
			ent.ContentType, 0, req.KeepAlive, ent.ETag, ent.LastModified)
		return s.finish(conn, *out, req.KeepAlive)
	}
	*out = httpwire.AppendResponseHeaderValidators((*out)[:0], 200,
		ent.ContentType, ent.Size, req.KeepAlive, ent.ETag, ent.LastModified)
	if req.Method != "GET" || ent.Size == 0 {
		return s.finish(conn, *out, req.KeepAlive)
	}
	if body := ent.Body(); body != nil {
		*out = append(*out, body...)
		return s.finish(conn, *out, req.KeepAlive)
	}
	// Zero-copy path: header, then the file range straight from the fd.
	if !s.write(conn, *out) {
		return false
	}
	if err := conn.SetWriteDeadline(s.ioDeadline()); err != nil {
		return false
	}
	n, err := docroot.SendfileTo(conn, ent)
	s.bytesOut.Add(n)
	s.sendfileBytes.Add(n)
	if err != nil {
		return false
	}
	s.replies.Add(1)
	return req.KeepAlive
}

// finish writes a fully assembled response and counts the reply.
func (s *Server) finish(conn net.Conn, data []byte, keepAlive bool) bool {
	if !s.write(conn, data) {
		return false
	}
	s.replies.Add(1)
	return keepAlive
}

// ioDeadline converts the KeepAlive knob into a deadline: zero means
// "no deadline" (time.Time{} clears any previously armed one), not
// "expire immediately".
func (s *Server) ioDeadline() time.Time {
	if s.cfg.KeepAlive <= 0 {
		return time.Time{}
	}
	return time.Now().Add(s.cfg.KeepAlive)
}

// write performs the blocking write of a complete response — the
// architectural signature of the multithreaded server: nothing else
// happens on this thread until the whole response is in the socket.
func (s *Server) write(conn net.Conn, data []byte) bool {
	if err := conn.SetWriteDeadline(s.ioDeadline()); err != nil {
		return false
	}
	n, err := conn.Write(data)
	s.bytesOut.Add(int64(n))
	return err == nil
}
