// Package mtserver is the live baseline the paper compares against: a
// multithreaded web server in the style of Apache 2's worker MPM. A
// bounded pool of worker threads each handles one connection at a time
// with blocking reads and writes, and a keep-alive idle timeout
// disconnects inactive clients to recycle threads — the behaviour the
// paper identifies as the source of httpd2's connection-reset errors.
//
// Threads are goroutines here; the architectural property under study —
// one connection bound to one execution context, blocking I/O, a hard
// pool limit — is preserved exactly: when all workers are busy, accepted
// connections wait and new ones pile up in the kernel backlog.
package mtserver

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/docroot"
	"repro/internal/httpwire"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/sysfault"
)

// Config parameterizes the thread-pool server.
type Config struct {
	// Port to listen on (0 picks a free port).
	Port int
	// Threads is the worker-pool size (the paper sweeps 128–6000).
	Threads int
	// KeepAlive is the idle timeout after which the server closes a
	// connection (the paper configures 15 s). 0 disables the timeout:
	// reads and writes then carry no deadline at all — the ablation
	// that shows the reset errors come from the recycling policy.
	KeepAlive time.Duration
	// ReadBuf is the per-thread read buffer size.
	ReadBuf int
	// Store serves the content from memory. Required unless Docroot is
	// set.
	Store core.Store
	// Docroot, when non-nil, serves real files from disk through the
	// bounded content cache instead of Store: cache hits are written
	// from memory, misses are delivered with blocking sendfile(2) (the
	// thread parks until the kernel drains the file into the socket),
	// and conditional GETs are answered with 304.
	Docroot *docroot.Root
	// MaxConns, when positive, caps connections the server will hold
	// (serving plus queued for a free thread): excess accepts get an
	// immediate 503 + close (counted in Stats.Shed) instead of piling
	// into the handoff queue and kernel backlog. 0 = unlimited.
	MaxConns int
	// Admission, when non-nil, is the adaptive overload controller: it
	// is consulted on every accept (before the MaxConns ceiling), and fed
	// each admitted connection's accept-to-first-response latency — which
	// for a saturated pool is dominated by the handoff wait, exactly the
	// queueing delay a static thread cap cannot see. Refused connections
	// are shed with 503 + Retry-After + close.
	Admission *overload.Controller
	// Watchdog, when non-nil, monitors every pool thread for wedged
	// handlers: each worker registers a heartbeat and brackets handler
	// work with Begin/End (keep-alive reads are legitimate parks and are
	// not bracketed), so a hung handler is flagged within roughly one
	// watchdog interval. Caller-owned; not stopped by Stop.
	Watchdog *overload.Watchdog
	// HandlerFault, when non-nil, injects faults into request handling
	// (see core.Fault) — the hook the robustness tests drive panics and
	// wedges through. nil in production.
	HandlerFault core.FaultFunc
	// Obs, when non-nil, is the live observability plane: connection
	// lifecycles are traced into its ring and the phase latencies feed
	// its histograms, read live by the admin endpoint. On this
	// architecture the handler phase includes the blocking response
	// write — that IS the pool thread's occupancy — while the write
	// phase isolates each write(2)/sendfile(2) call. Every recording
	// site is behind this nil check; nil costs nothing.
	Obs *obs.Plane
}

// DefaultConfig returns the paper's best configuration (scaled pool).
func DefaultConfig(store core.Store) Config {
	return Config{
		Threads:   64,
		KeepAlive: 15 * time.Second,
		ReadBuf:   16 << 10,
		Store:     store,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("mtserver: Threads must be positive, got %d", c.Threads)
	case c.KeepAlive < 0:
		return fmt.Errorf("mtserver: negative KeepAlive %v", c.KeepAlive)
	case c.MaxConns < 0:
		return fmt.Errorf("mtserver: negative MaxConns %d", c.MaxConns)
	case c.ReadBuf < 256:
		return fmt.Errorf("mtserver: ReadBuf must be at least 256, got %d", c.ReadBuf)
	case c.Store == nil && c.Docroot == nil:
		return fmt.Errorf("mtserver: a Store or a Docroot is required")
	case c.Port < 0 || c.Port > 65535:
		return fmt.Errorf("mtserver: invalid port %d", c.Port)
	}
	return nil
}

// Stats are the server's counters.
type Stats struct {
	Accepted   int64
	Replies    int64
	BytesOut   int64
	IdleCloses int64
	BadRequest int64
	ConnsOpen  int64
	// Shed counts connections refused with a 503 by MaxConns admission
	// control.
	Shed int64
	// NotModified counts 304 replies to conditional GETs (docroot only).
	NotModified int64
	// SendfileBytes counts body bytes delivered via sendfile(2);
	// BytesOut includes them.
	SendfileBytes int64
	// HandlerPanics counts handler panics that were isolated to their
	// connection (best-effort 500 + close) instead of killing the
	// process.
	HandlerPanics int64
	// AcceptEMFILE counts accept attempts refused by the kernel for
	// descriptor exhaustion (EMFILE/ENFILE) and absorbed by the
	// reserve-descriptor recovery instead of hot-spinning the acceptor.
	AcceptEMFILE int64
	// AcceptBackoffs counts backoff waits taken by the accept gate
	// after a failed accept (the replacement for retrying immediately
	// on an error that will not have gone away).
	AcceptBackoffs int64
	// ShortWrites counts blocking writes that delivered only part of
	// the response and were resumed from the cut — the response bytes
	// stay exact.
	ShortWrites int64
	// SendfileFallbacks counts sendfile(2) failures recovered by
	// buffered delivery from the same offset (docroot path).
	SendfileFallbacks int64
}

// Server is the live thread-pool web server.
type Server struct {
	cfg Config
	ln  net.Listener
	// tcpLn is the unwrapped listener underneath ln, kept for deadline
	// control during fd-exhaustion recovery.
	tcpLn net.Listener

	// handoff carries accepted connections (stamped with their accept
	// time, so first-response latency includes the wait for a free
	// thread) to worker threads. It is unbuffered: when every thread is
	// busy the acceptor blocks, exactly like Apache with a saturated
	// pool — further connections queue in the kernel's accept backlog.
	handoff chan handoffConn

	wg        sync.WaitGroup
	stopping  chan struct{}
	stopOnce  sync.Once
	draining  chan struct{}
	drainOnce sync.Once

	mu     sync.Mutex
	active map[net.Conn]struct{}

	accepted      atomic.Int64
	replies       atomic.Int64
	bytesOut      atomic.Int64
	idleCloses    atomic.Int64
	badRequest    atomic.Int64
	connsOpen     atomic.Int64
	shed          atomic.Int64
	notModified   atomic.Int64
	sendfileBytes atomic.Int64
	handlerPanics atomic.Int64

	acceptEMFILE      atomic.Int64
	acceptBackoffs    atomic.Int64
	shortWrites       atomic.Int64
	sendfileFallbacks atomic.Int64
	// inflight counts accepted-and-admitted connections from accept to
	// handler exit (ConnsOpen only counts those a thread has picked up);
	// MaxConns admission and Drain completion are judged against it.
	inflight atomic.Int64
}

// NewServer validates the configuration and binds the listener.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rawLn, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", cfg.Port))
	if err != nil {
		return nil, fmt.Errorf("mtserver: listen: %w", err)
	}
	// The listener is always wrapped in the sysfault seam: with no
	// injector installed the wrapper is one atomic load per accept and
	// hands back UNWRAPPED connections, so the steady-state data path
	// is untouched; with one installed, accepts and per-connection
	// reads/writes draw from the seeded fault schedule.
	ln := sysfault.WrapListener(rawLn)
	// With an admission controller the handoff queue must be visible, not
	// hidden: an unbuffered handoff blocks the acceptor once the pool is
	// saturated, which throttles accepts to the service rate — the token
	// bucket then never refuses anyone and the real queue builds in the
	// kernel backlog, where neither the controller's clock nor its Admit
	// gate can see it. Buffering the handoff (a SEDA-style bounded stage
	// queue) keeps the acceptor accepting at the arrival rate, so excess
	// arrivals meet Admit() and admitted connections' queue wait lands in
	// the accept-to-first-response latency the AIMD loop steers by.
	depth := 0
	if cfg.Admission != nil {
		depth = admissionQueueDepth
	}
	return &Server{
		cfg:      cfg,
		ln:       ln,
		tcpLn:    rawLn,
		handoff:  make(chan handoffConn, depth),
		stopping: make(chan struct{}),
		draining: make(chan struct{}),
		active:   make(map[net.Conn]struct{}),
	}, nil
}

// admissionQueueDepth bounds the visible accept queue used when an
// admission controller is configured. It is a backstop, not a policy
// knob: the controller sheds load long before the queue fills.
const admissionQueueDepth = 1024

// handoffConn is one accepted connection in flight to a worker.
type handoffConn struct {
	conn net.Conn
	at   time.Time // accept time; the controller's latency clock starts here
}

// connState is per-connection bookkeeping threaded through the serve
// path: whether the accept-to-first-response latency has been reported
// to the admission controller yet, plus the observability-plane state
// (only maintained when Config.Obs is set).
type connState struct {
	acceptedAt time.Time
	observed   bool
	// id is the plane-assigned connection id; reqStart and handlerStart
	// are the phase clocks; firstByte flips once the first response
	// byte has been traced.
	id           uint64
	reqStart     time.Time
	handlerStart time.Time
	firstByte    bool
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Port returns the bound port.
func (s *Server) Port() int { return s.ln.Addr().(*net.TCPAddr).Port }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:   s.accepted.Load(),
		Replies:    s.replies.Load(),
		BytesOut:   s.bytesOut.Load(),
		IdleCloses: s.idleCloses.Load(),
		BadRequest: s.badRequest.Load(),
		ConnsOpen:  s.connsOpen.Load(),
		Shed:       s.shed.Load(),

		NotModified:   s.notModified.Load(),
		SendfileBytes: s.sendfileBytes.Load(),
		HandlerPanics: s.handlerPanics.Load(),

		AcceptEMFILE:      s.acceptEMFILE.Load(),
		AcceptBackoffs:    s.acceptBackoffs.Load(),
		ShortWrites:       s.shortWrites.Load(),
		SendfileFallbacks: s.sendfileFallbacks.Load(),
	}
}

// Start launches the worker pool and the acceptor.
func (s *Server) Start() error {
	for i := 0; i < s.cfg.Threads; i++ {
		s.wg.Add(1)
		go s.workerLoop(i)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Stop closes the listener and all active connections, then waits for
// every thread to exit.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.active {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	// Connections still queued in a buffered handoff were never picked up
	// by a worker; close them so their fds do not outlive the server.
	for {
		select {
		case h := <-s.handoff:
			h.conn.Close()
			s.inflight.Add(-1)
		default:
			return
		}
	}
}

// Drain gracefully shuts the server down: it stops accepting, wakes
// threads parked in keep-alive reads (their connections close cleanly,
// with no RST and no idle-close accounting), lets responses already
// being served finish, and then stops. It reports whether every
// connection finished before the timeout; on false, Stop cut off the
// stragglers.
func (s *Server) Drain(timeout time.Duration) bool {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.ln.Close()
		// Wake every thread blocked in a keep-alive read; handleConn
		// sees the draining signal and exits instead of idling on.
		s.mu.Lock()
		for c := range s.active {
			_ = c.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
	})
	drained := false
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.inflight.Load() == 0 {
			drained = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Stop()
	return drained
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	// The fd-exhaustion reserve is acceptor-owned: one descriptor held
	// on /dev/null purely so it can be closed to free a slot when
	// accept reports EMFILE (see recoverFDExhaustion).
	reserve := openReserve()
	defer func() {
		if reserve >= 0 {
			_ = syscall.Close(reserve)
		}
	}()
	backoff := time.Duration(0)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-s.stopping:
				return
			default:
			}
			if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) {
				s.acceptEMFILE.Add(1)
				s.recoverFDExhaustion(&reserve)
			}
			// Whatever the failure, retrying instantly would spin a hot
			// loop against a condition that has not changed; pace the
			// retries with a capped exponential backoff instead.
			if backoff < acceptBackoffMin {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			s.acceptBackoffs.Add(1)
			select {
			case <-s.stopping:
				return
			case <-s.draining:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		s.accepted.Add(1)
		// Adaptive admission first: the controller's token bucket paces
		// accepts against its latency target. Shed clients are told when
		// to come back.
		if ac := s.cfg.Admission; ac != nil && !ac.Admit() {
			s.shed.Add(1)
			if pl := s.cfg.Obs; pl != nil {
				pl.Record(0, obs.Shed, 0)
			}
			shedConn(conn, ac.RetryAfterSeconds())
			continue
		}
		// MaxConns stays as the hard ceiling above the controller: past
		// it the connection is answered with an immediate 503 and closed
		// instead of joining the handoff queue — bounded degradation
		// instead of an unbounded accept pile-up.
		if mc := s.cfg.MaxConns; mc > 0 && s.inflight.Load() >= int64(mc) {
			s.shed.Add(1)
			if pl := s.cfg.Obs; pl != nil {
				pl.Record(0, obs.Shed, 0)
			}
			shedConn(conn, shedRetryAfterSec)
			continue
		}
		s.inflight.Add(1)
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		h := handoffConn{conn: conn, at: time.Now()}
		select {
		case s.handoff <- h: // blocks while the pool is saturated
		case <-s.draining:
			conn.Close()
			s.inflight.Add(-1)
			return
		case <-s.stopping:
			conn.Close()
			s.inflight.Add(-1)
			return
		}
	}
}

// shedRetryAfterSec is the Retry-After advertised on sheds not governed
// by an admission controller (the static MaxConns ceiling).
const shedRetryAfterSec = 1

// shedConn answers an over-limit accept with a best-effort 503 + close,
// carrying Retry-After so a well-behaved client backs off instead of
// hammering.
func shedConn(conn net.Conn, retryAfterSec int) {
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	_, _ = conn.Write(httpwire.AppendResponseHeaderExtra(nil, 503, "text/plain", 0, false,
		httpwire.Header{Name: "Retry-After", Value: strconv.Itoa(retryAfterSec)}))
	conn.Close()
}

// openReserve opens the fd-exhaustion reserve descriptor. A failure
// to open it (-1) only disables the recovery, never the server.
func openReserve() int {
	fd, err := syscall.Open("/dev/null", syscall.O_RDONLY|syscall.O_CLOEXEC, 0)
	if err != nil {
		return -1
	}
	return fd
}

// docrootPressureEvictions is how many cached entries (and so file
// descriptors) the acceptor asks the docroot to give back per EMFILE
// event.
const docrootPressureEvictions = 8

// Accept-gate backoff bounds: exponential from 5ms, capped at 250ms,
// reset by any successful accept.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 250 * time.Millisecond
)

// recoverFDExhaustion is the reserve-descriptor dance on the blocking
// accept path: shrink the docroot cache (cached entries pin fds),
// close the reserve to free one slot, accept the connection the
// kernel is holding — under a short deadline, so a vanished client
// cannot park the acceptor — answer it 503 + Retry-After, close it,
// and re-open the reserve.
func (s *Server) recoverFDExhaustion(reserve *int) {
	if dr := s.cfg.Docroot; dr != nil {
		dr.ShedFDs(docrootPressureEvictions)
	}
	if *reserve < 0 {
		return
	}
	_ = syscall.Close(*reserve)
	*reserve = -1
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := s.tcpLn.(deadliner); ok {
		_ = d.SetDeadline(time.Now().Add(50 * time.Millisecond))
		if conn, err := s.ln.Accept(); err == nil {
			s.shed.Add(1)
			if pl := s.cfg.Obs; pl != nil {
				pl.Record(0, obs.Shed, 0)
			}
			shedConn(conn, shedRetryAfterSec)
		}
		_ = d.SetDeadline(time.Time{})
	}
	*reserve = openReserve()
}

func (s *Server) track(c net.Conn, on bool) {
	s.mu.Lock()
	if on {
		s.active[c] = struct{}{}
	} else {
		delete(s.active, c)
	}
	s.mu.Unlock()
}

func (s *Server) workerLoop(idx int) {
	defer s.wg.Done()
	buf := make([]byte, s.cfg.ReadBuf)
	var out []byte
	var hb *overload.Heartbeat
	if wd := s.cfg.Watchdog; wd != nil {
		hb = wd.Register(fmt.Sprintf("mt-worker-%d", idx))
	}
	for {
		select {
		case h := <-s.handoff:
			s.connsOpen.Add(1)
			s.track(h.conn, true)
			s.handleConn(h, buf, &out, hb)
			s.track(h.conn, false)
			s.connsOpen.Add(-1)
			left := s.inflight.Add(-1)
			if invariant.Enabled {
				// inflight spans accept to handler exit and is incremented
				// strictly before the handoff, so it can never undershoot.
				invariant.Assertf(left >= 0, "mtserver: inflight went negative (%d)", left)
			}
		case <-s.stopping:
			return
		}
	}
}

// handleConn serves one connection to completion — the thread is bound to
// it for the connection's whole lifetime, requests are served strictly
// sequentially, and responses are written with blocking writes.
func (s *Server) handleConn(h handoffConn, buf []byte, out *[]byte, hb *overload.Heartbeat) {
	conn := h.conn
	cs := &connState{acceptedAt: h.at}
	pl := s.cfg.Obs
	if pl != nil {
		// Queue-wait on the pool is the handoff ride: the wait for a
		// free thread that dominates first-response latency once the
		// pool saturates — invisible to external measurement, front and
		// center here.
		cs.id = pl.NextConnID()
		pl.Record(cs.id, obs.Accept, 0)
		pl.Record(cs.id, obs.QueueWait, time.Since(h.at))
		defer pl.Record(cs.id, obs.Close, 0)
	}
	defer conn.Close()
	var parser httpwire.Parser
	reqs := make([]*httpwire.Request, 0, 4)
	for {
		select {
		case <-s.draining:
			// Graceful drain: the previous response is fully written;
			// close instead of waiting for another request.
			return
		case <-s.stopping:
			return
		default:
		}
		if err := conn.SetReadDeadline(s.ioDeadline()); err != nil {
			return
		}
		// Re-check after arming the deadline: Drain closes s.draining
		// before setting its wake-up deadlines, so if ours overwrote the
		// drain's, the signal is already visible here.
		select {
		case <-s.draining:
			return
		default:
		}
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				select {
				case <-s.draining:
					// Woken by Drain, not by an expired keep-alive:
					// close cleanly, no RST, no idle-close accounting.
					return
				default:
				}
				// Keep-alive expired: disconnect the idle client. The
				// client that writes later gets a reset — the paper's
				// connection-reset error class.
				s.idleCloses.Add(1)
				if tc, ok := conn.(*net.TCPConn); ok {
					_ = tc.SetLinger(0) // force RST, as a full Apache accept queue would
				}
			}
			return
		}
		if pl != nil && cs.reqStart.IsZero() {
			cs.reqStart = time.Now()
			pl.Record(cs.id, obs.HeaderRead, 0)
		}
		var perr error
		reqs, perr = parser.Feed(reqs[:0], buf[:n])
		for _, req := range reqs {
			if pl != nil {
				now := time.Now()
				pl.Record(cs.id, obs.Parse, now.Sub(cs.reqStart))
				// Pipelined followers in the same batch parse from here.
				cs.reqStart = now
				cs.handlerStart = now
			}
			// The heartbeat span brackets handler work only: keep-alive
			// reads between requests are legitimate parks, not stalls.
			if hb != nil {
				hb.Begin()
			}
			alive, panicked := s.serveSafe(conn, req, out, cs)
			if hb != nil {
				hb.End()
			}
			if panicked {
				// Panic isolation: this connection gets a best-effort
				// 500 and closes; the thread returns to the pool intact.
				s.handlerPanics.Add(1)
				if pl != nil {
					pl.Record(cs.id, obs.Panic, 0)
				}
				_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
				_, _ = conn.Write(httpwire.AppendResponseHeader(nil, 500, "text/plain", 0, false))
				return
			}
			if pl != nil {
				// Recorded after serve bumps Stats.Replies (and includes
				// the blocking write — this thread's real occupancy), so
				// the handler-phase count never exceeds replies.
				pl.Record(cs.id, obs.Handler, time.Since(cs.handlerStart))
			}
			if !alive {
				return
			}
		}
		if pl != nil && !parser.Pending() {
			cs.reqStart = time.Time{}
		}
		if perr != nil {
			s.badRequest.Add(1)
			*out = httpwire.AppendResponseHeader((*out)[:0], 400, "text/plain", 0, false)
			s.write(conn, *out, cs)
			return
		}
	}
}

// serveSafe serves one request with panic isolation: a panicking handler
// is converted into (alive=false, panicked=true) so the caller can send
// a best-effort 500 and close that one connection — the pool thread
// itself survives untouched.
func (s *Server) serveSafe(conn net.Conn, req *httpwire.Request, out *[]byte, cs *connState) (alive, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			alive, panicked = false, true
		}
	}()
	return s.serve(conn, req, out, cs), false
}

// applyFault executes an injected fault on this pool thread. Delay and
// Wedge both yield to server stop so a fault cannot outlive Stop.
func (s *Server) applyFault(f core.Fault) {
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-s.stopping:
			t.Stop()
		}
	}
	if f.Wedge != nil {
		select {
		case <-f.Wedge:
		case <-s.stopping:
		}
	}
	if f.Panic {
		panic("mtserver: injected handler panic")
	}
}

// observeReply feeds the admission controller the connection's
// accept-to-first-response latency, once per connection. Under a
// saturated pool that latency is dominated by the handoff wait — the
// queueing delay the AIMD loop steers by.
func (s *Server) observeReply(cs *connState) {
	if cs.observed {
		return
	}
	cs.observed = true
	if ac := s.cfg.Admission; ac != nil {
		ac.Observe(time.Since(cs.acceptedAt))
	}
}

// serve writes one response; the return value reports whether the
// connection should stay open.
func (s *Server) serve(conn net.Conn, req *httpwire.Request, out *[]byte, cs *connState) bool {
	if ff := s.cfg.HandlerFault; ff != nil {
		s.applyFault(ff(req.Path))
	}
	switch {
	case req.Method != "GET" && req.Method != "HEAD":
		*out = httpwire.AppendResponseHeader((*out)[:0], 501, "text/plain", 0, req.KeepAlive)
	case s.cfg.Docroot != nil:
		return s.serveDocroot(conn, req, out, cs)
	default:
		body, ctype, ok := s.cfg.Store.Get(req.Path)
		if !ok {
			*out = httpwire.AppendResponseHeader((*out)[:0], 404, "text/plain", 0, req.KeepAlive)
		} else {
			*out = httpwire.AppendResponseHeader((*out)[:0], 200, ctype, int64(len(body)), req.KeepAlive)
			if req.Method == "GET" {
				*out = append(*out, body...)
			}
		}
	}
	if !s.write(conn, *out, cs) {
		return false
	}
	s.replies.Add(1)
	s.observeReply(cs)
	return req.KeepAlive
}

// serveDocroot answers one request from the disk-backed docroot:
// 404/304 and cache-hit bodies go out as one blocking write; fd-only
// entries get their header written first and the body pushed with
// blocking sendfile — the thread stays parked in the kernel until the
// file range has drained into the socket, the thread-pool counterpart
// of the reactor's resumable sendfile state machine.
func (s *Server) serveDocroot(conn net.Conn, req *httpwire.Request, out *[]byte, cs *connState) bool {
	ent, err := s.cfg.Docroot.Get(req.Path)
	if err != nil {
		*out = httpwire.AppendResponseHeader((*out)[:0], 404, "text/plain", 0, req.KeepAlive)
		return s.finish(conn, *out, req.KeepAlive, cs)
	}
	defer ent.Release()
	if httpwire.NotModified(req, ent.ETag, ent.ModTime) {
		s.notModified.Add(1)
		*out = httpwire.AppendResponseHeaderValidators((*out)[:0], 304,
			ent.ContentType, 0, req.KeepAlive, ent.ETag, ent.LastModified)
		return s.finish(conn, *out, req.KeepAlive, cs)
	}
	*out = httpwire.AppendResponseHeaderValidators((*out)[:0], 200,
		ent.ContentType, ent.Size, req.KeepAlive, ent.ETag, ent.LastModified)
	if req.Method != "GET" || ent.Size == 0 {
		return s.finish(conn, *out, req.KeepAlive, cs)
	}
	if body := ent.Body(); body != nil {
		*out = append(*out, body...)
		return s.finish(conn, *out, req.KeepAlive, cs)
	}
	// Zero-copy path: header, then the file range straight from the fd.
	if !s.write(conn, *out, cs) {
		return false
	}
	if err := conn.SetWriteDeadline(s.ioDeadline()); err != nil {
		return false
	}
	t0 := time.Now()
	n, fellBack, err := docroot.SendfileTo(conn, ent)
	s.bytesOut.Add(n)
	if fellBack {
		// The body completed over the buffered path; the degradation is
		// counted, and the bytes stay out of the zero-copy tally.
		s.sendfileFallbacks.Add(1)
	} else {
		s.sendfileBytes.Add(n)
	}
	if pl := s.cfg.Obs; pl != nil && n > 0 {
		// The header write above already traced FirstByte; the sendfile
		// park is its own write-phase sample — the blocking counterpart
		// of the reactor's resumable sendfile state machine.
		pl.Record(cs.id, obs.WriteComplete, time.Since(t0))
	}
	if err != nil {
		return false
	}
	s.replies.Add(1)
	s.observeReply(cs)
	return req.KeepAlive
}

// finish writes a fully assembled response and counts the reply.
func (s *Server) finish(conn net.Conn, data []byte, keepAlive bool, cs *connState) bool {
	if !s.write(conn, data, cs) {
		return false
	}
	s.replies.Add(1)
	s.observeReply(cs)
	return keepAlive
}

// ioDeadline converts the KeepAlive knob into a deadline: zero means
// "no deadline" (time.Time{} clears any previously armed one), not
// "expire immediately".
func (s *Server) ioDeadline() time.Time {
	if s.cfg.KeepAlive <= 0 {
		return time.Time{}
	}
	return time.Now().Add(s.cfg.KeepAlive)
}

// write performs the blocking write of a complete response — the
// architectural signature of the multithreaded server: nothing else
// happens on this thread until the whole response is in the socket.
func (s *Server) write(conn net.Conn, data []byte, cs *connState) bool {
	if err := conn.SetWriteDeadline(s.ioDeadline()); err != nil {
		return false
	}
	pl := s.cfg.Obs
	var t0 time.Time
	if pl != nil {
		t0 = time.Now()
	}
	// Resume-on-short-write loop: a write that delivers only part of
	// the response (kernel memory pressure, or an injected fault) is
	// continued from the cut rather than treated as success — a
	// truncated response that reports true would corrupt the HTTP
	// stream for every pipelined request behind it.
	written := 0
	var err error
	for written < len(data) {
		var n int
		n, err = conn.Write(data[written:])
		written += n
		if err != nil {
			break
		}
		if written >= len(data) {
			break
		}
		if n == 0 {
			err = errors.New("mtserver: write made no progress")
			break
		}
		s.shortWrites.Add(1)
	}
	s.bytesOut.Add(int64(written))
	if pl != nil && written > 0 {
		if !cs.firstByte {
			cs.firstByte = true
			pl.Record(cs.id, obs.FirstByte, time.Since(cs.acceptedAt))
		}
		pl.Record(cs.id, obs.WriteComplete, time.Since(t0))
	}
	return err == nil
}

// StatsFields renders a Stats snapshot as the admin plane's ordered
// field list — the field order here is the /stats wire contract for
// this server (see the golden-file tests in internal/obs).
func StatsFields(st Stats) []obs.Field {
	return []obs.Field{
		{Name: "accepted", Value: st.Accepted},
		{Name: "replies", Value: st.Replies},
		{Name: "bytes_out", Value: st.BytesOut},
		{Name: "idle_closes", Value: st.IdleCloses},
		{Name: "bad_request", Value: st.BadRequest},
		{Name: "conns_open", Value: st.ConnsOpen},
		{Name: "shed", Value: st.Shed},
		{Name: "not_modified", Value: st.NotModified},
		{Name: "sendfile_bytes", Value: st.SendfileBytes},
		{Name: "handler_panics", Value: st.HandlerPanics},
		{Name: "accept_emfile", Value: st.AcceptEMFILE},
		{Name: "accept_backoffs", Value: st.AcceptBackoffs},
		{Name: "short_writes", Value: st.ShortWrites},
		{Name: "sendfile_fallbacks", Value: st.SendfileFallbacks},
	}
}
