// Package mtserver is the live baseline the paper compares against: a
// multithreaded web server in the style of Apache 2's worker MPM. A
// bounded pool of worker threads each handles one connection at a time
// with blocking reads and writes, and a keep-alive idle timeout
// disconnects inactive clients to recycle threads — the behaviour the
// paper identifies as the source of httpd2's connection-reset errors.
//
// Threads are goroutines here; the architectural property under study —
// one connection bound to one execution context, blocking I/O, a hard
// pool limit — is preserved exactly: when all workers are busy, accepted
// connections wait and new ones pile up in the kernel backlog.
package mtserver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/httpwire"
)

// Config parameterizes the thread-pool server.
type Config struct {
	// Port to listen on (0 picks a free port).
	Port int
	// Threads is the worker-pool size (the paper sweeps 128–6000).
	Threads int
	// KeepAlive is the idle timeout after which the server closes a
	// connection (the paper configures 15 s).
	KeepAlive time.Duration
	// ReadBuf is the per-thread read buffer size.
	ReadBuf int
	// Store serves the content; required.
	Store core.Store
}

// DefaultConfig returns the paper's best configuration (scaled pool).
func DefaultConfig(store core.Store) Config {
	return Config{
		Threads:   64,
		KeepAlive: 15 * time.Second,
		ReadBuf:   16 << 10,
		Store:     store,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("mtserver: Threads must be positive, got %d", c.Threads)
	case c.KeepAlive <= 0:
		return fmt.Errorf("mtserver: KeepAlive must be positive, got %v", c.KeepAlive)
	case c.ReadBuf < 256:
		return fmt.Errorf("mtserver: ReadBuf must be at least 256, got %d", c.ReadBuf)
	case c.Store == nil:
		return fmt.Errorf("mtserver: Store is required")
	case c.Port < 0 || c.Port > 65535:
		return fmt.Errorf("mtserver: invalid port %d", c.Port)
	}
	return nil
}

// Stats are the server's counters.
type Stats struct {
	Accepted   int64
	Replies    int64
	BytesOut   int64
	IdleCloses int64
	BadRequest int64
	ConnsOpen  int64
}

// Server is the live thread-pool web server.
type Server struct {
	cfg Config
	ln  net.Listener

	// handoff carries accepted connections to worker threads. It is
	// unbuffered: when every thread is busy the acceptor blocks, exactly
	// like Apache with a saturated pool — further connections queue in
	// the kernel's accept backlog.
	handoff chan net.Conn

	wg       sync.WaitGroup
	stopping chan struct{}
	stopOnce sync.Once

	mu     sync.Mutex
	active map[net.Conn]struct{}

	accepted   atomic.Int64
	replies    atomic.Int64
	bytesOut   atomic.Int64
	idleCloses atomic.Int64
	badRequest atomic.Int64
	connsOpen  atomic.Int64
}

// NewServer validates the configuration and binds the listener.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", cfg.Port))
	if err != nil {
		return nil, fmt.Errorf("mtserver: listen: %w", err)
	}
	return &Server{
		cfg:      cfg,
		ln:       ln,
		handoff:  make(chan net.Conn),
		stopping: make(chan struct{}),
		active:   make(map[net.Conn]struct{}),
	}, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Port returns the bound port.
func (s *Server) Port() int { return s.ln.Addr().(*net.TCPAddr).Port }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:   s.accepted.Load(),
		Replies:    s.replies.Load(),
		BytesOut:   s.bytesOut.Load(),
		IdleCloses: s.idleCloses.Load(),
		BadRequest: s.badRequest.Load(),
		ConnsOpen:  s.connsOpen.Load(),
	}
}

// Start launches the worker pool and the acceptor.
func (s *Server) Start() error {
	for i := 0; i < s.cfg.Threads; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Stop closes the listener and all active connections, then waits for
// every thread to exit.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.active {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-s.stopping:
				return
			default:
				continue // transient accept error
			}
		}
		s.accepted.Add(1)
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		select {
		case s.handoff <- conn: // blocks while the pool is saturated
		case <-s.stopping:
			conn.Close()
			return
		}
	}
}

func (s *Server) track(c net.Conn, on bool) {
	s.mu.Lock()
	if on {
		s.active[c] = struct{}{}
	} else {
		delete(s.active, c)
	}
	s.mu.Unlock()
}

func (s *Server) workerLoop() {
	defer s.wg.Done()
	buf := make([]byte, s.cfg.ReadBuf)
	var out []byte
	for {
		select {
		case conn := <-s.handoff:
			s.connsOpen.Add(1)
			s.track(conn, true)
			s.handleConn(conn, buf, &out)
			s.track(conn, false)
			s.connsOpen.Add(-1)
		case <-s.stopping:
			return
		}
	}
}

// handleConn serves one connection to completion — the thread is bound to
// it for the connection's whole lifetime, requests are served strictly
// sequentially, and responses are written with blocking writes.
func (s *Server) handleConn(conn net.Conn, buf []byte, out *[]byte) {
	defer conn.Close()
	var parser httpwire.Parser
	reqs := make([]*httpwire.Request, 0, 4)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.KeepAlive)); err != nil {
			return
		}
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// Keep-alive expired: disconnect the idle client. The
				// client that writes later gets a reset — the paper's
				// connection-reset error class.
				s.idleCloses.Add(1)
				if tc, ok := conn.(*net.TCPConn); ok {
					_ = tc.SetLinger(0) // force RST, as a full Apache accept queue would
				}
			}
			return
		}
		var perr error
		reqs, perr = parser.Feed(reqs[:0], buf[:n])
		for _, req := range reqs {
			if !s.serve(conn, req, out) {
				return
			}
		}
		if perr != nil {
			s.badRequest.Add(1)
			*out = httpwire.AppendResponseHeader((*out)[:0], 400, "text/plain", 0, false)
			s.write(conn, *out)
			return
		}
	}
}

// serve writes one response; the return value reports whether the
// connection should stay open.
func (s *Server) serve(conn net.Conn, req *httpwire.Request, out *[]byte) bool {
	switch {
	case req.Method != "GET" && req.Method != "HEAD":
		*out = httpwire.AppendResponseHeader((*out)[:0], 501, "text/plain", 0, req.KeepAlive)
	default:
		body, ctype, ok := s.cfg.Store.Get(req.Path)
		if !ok {
			*out = httpwire.AppendResponseHeader((*out)[:0], 404, "text/plain", 0, req.KeepAlive)
		} else {
			*out = httpwire.AppendResponseHeader((*out)[:0], 200, ctype, int64(len(body)), req.KeepAlive)
			if req.Method == "GET" {
				*out = append(*out, body...)
			}
		}
	}
	if !s.write(conn, *out) {
		return false
	}
	s.replies.Add(1)
	return req.KeepAlive
}

// write performs the blocking write of a complete response — the
// architectural signature of the multithreaded server: nothing else
// happens on this thread until the whole response is in the socket.
func (s *Server) write(conn net.Conn, data []byte) bool {
	if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.KeepAlive)); err != nil {
		return false
	}
	n, err := conn.Write(data)
	s.bytesOut.Add(int64(n))
	return err == nil
}
