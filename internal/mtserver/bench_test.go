package mtserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"

	"repro/internal/core"
)

// benchServer starts a thread-pool server with a fixed-size object.
func benchServer(b *testing.B, threads, bodyBytes int) (*Server, net.Conn, *bufio.Reader) {
	b.Helper()
	store := core.MapStore{"/obj": make([]byte, bodyBytes)}
	cfg := DefaultConfig(store)
	cfg.Threads = threads
	s, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Stop)
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return s, c, bufio.NewReaderSize(c, 64<<10)
}

// BenchmarkSequentialRequests mirrors the core package's bench so the
// two live architectures are directly comparable at the syscall level.
func BenchmarkSequentialRequests(b *testing.B) {
	for _, size := range []int{1 << 10, 16 << 10, 128 << 10} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			_, c, r := benchServer(b, 4, size)
			req := []byte("GET /obj HTTP/1.1\r\nHost: x\r\n\r\n")
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Write(req); err != nil {
					b.Fatal(err)
				}
				resp, err := http.ReadResponse(r, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
			}
		})
	}
}
