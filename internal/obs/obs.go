// Package obs is the live observability plane: per-connection lifecycle
// tracing and phase-latency histograms for the two real servers
// (internal/core, internal/mtserver), plus the admin introspection
// endpoint that exposes both over HTTP.
//
// It is the live, concurrent counterpart of internal/trace: the
// simulator's ring is single-threaded because simulations are, but the
// live plane is written by every reactor thread and pool thread at once
// and read concurrently by the admin endpoint — so the ring here is a
// fixed array of per-slot seqlocks built entirely from atomics. Recording
// an event is a handful of atomic stores (no locks, no allocation), and a
// reader that races a writer retries or skips the slot instead of
// observing a torn event. When no Plane is configured the servers skip
// every recording site on a nil check, so the plane costs nothing
// disabled.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Kind is the lifecycle event class, in the order the phases occur on a
// healthy connection.
type Kind uint8

const (
	// Accept: the connection was admitted and handed to a worker.
	Accept Kind = iota
	// HeaderRead: the first bytes of a request arrived.
	HeaderRead
	// Parse: a complete request was parsed. Value is the first-byte to
	// parsed latency (the parse phase).
	Parse
	// QueueWait: the connection reached an execution context. Value is
	// the accept-to-pickup wait — the reactor inbox on core, the
	// handoff queue on mtserver — the queueing delay a saturated server
	// hides from external measurement.
	QueueWait
	// Handler: a request was served. Value is the handler duration.
	Handler
	// FirstByte: the first response bytes reached the socket. Value is
	// the accept-to-first-byte latency.
	FirstByte
	// WriteComplete: a response (or response batch) finished flushing.
	// Value is the serve-to-flushed duration (the write phase).
	WriteComplete
	// Close: the connection was torn down.
	Close
	// Shed: an accept was refused by overload control (503). Shed
	// connections carry conn id 0: they never enter the lifecycle.
	Shed
	// Panic: a handler panic was isolated to this connection.
	Panic

	// NumKinds is the size of the event vocabulary.
	NumKinds = int(Panic) + 1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Accept:
		return "accept"
	case HeaderRead:
		return "header-read"
	case Parse:
		return "parse"
	case QueueWait:
		return "queue-wait"
	case Handler:
		return "handler"
	case FirstByte:
		return "first-byte"
	case WriteComplete:
		return "write-complete"
	case Close:
		return "close"
	case Shed:
		return "shed"
	case Panic:
		return "panic"
	default:
		return "unknown"
	}
}

// ParseKind resolves an event-class name as rendered by Kind.String.
func ParseKind(s string) (Kind, bool) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one lifecycle record.
type Event struct {
	// At is the time since the plane was created.
	At time.Duration
	// Conn is the plane-assigned connection id (0: no connection, e.g.
	// a shed accept).
	Conn uint64
	// Kind is the event class.
	Kind Kind
	// Value carries the kind-specific duration (see the Kind constants);
	// zero for marker events.
	Value time.Duration
}

// slot is one seqlocked ring entry. seq is even when the slot is stable
// and odd while a writer owns it; a reader accepts the payload only if
// seq is even and unchanged across the payload loads. All fields are
// atomics, so concurrent access is both race-clean and tear-free.
type slot struct {
	seq  atomic.Uint64
	at   atomic.Int64
	conn atomic.Uint64
	kind atomic.Uint64
	val  atomic.Int64
}

// Ring is a bounded concurrent trace: O(1) lock-free append from any
// number of writers, consistent snapshot reads from any number of
// readers. The zero value is unusable; create with NewRing.
type Ring struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
	// skipped counts events dropped because their slot was still owned
	// by a straggling writer when the ring lapped it (vanishingly rare:
	// it needs a full ring wrap inside one writer's store sequence).
	skipped atomic.Uint64
}

// NewRing returns a tracer retaining at least capacity events (rounded
// up to a power of two, minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Cap returns the number of slots.
func (r *Ring) Cap() int { return len(r.slots) }

// Record appends one event, evicting the oldest when full.
//
//nio:hot
func (r *Ring) Record(at time.Duration, conn uint64, k Kind, v time.Duration) {
	i := r.next.Add(1) - 1
	s := &r.slots[i&r.mask]
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		// A lapped writer still owns the slot; drop rather than spin —
		// the hot path never waits on the observability plane.
		r.skipped.Add(1)
		return
	}
	s.at.Store(int64(at))
	s.conn.Store(conn)
	s.kind.Store(uint64(k))
	s.val.Store(int64(v))
	s.seq.Store(seq + 2)
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	n := r.next.Load()
	if c := uint64(len(r.slots)); n > c {
		return int(c)
	}
	return int(n)
}

// Dropped returns how many events were evicted or skipped.
func (r *Ring) Dropped() uint64 {
	n := r.next.Load()
	var evicted uint64
	if c := uint64(len(r.slots)); n > c {
		evicted = n - c
	}
	return evicted + r.skipped.Load()
}

// Events returns the retained events, oldest first. Events recorded
// while the snapshot is being taken may or may not appear; every event
// returned is internally consistent (never torn).
func (r *Ring) Events() []Event {
	n := r.next.Load()
	start := uint64(0)
	if c := uint64(len(r.slots)); n > c {
		start = n - c
	}
	out := make([]Event, 0, n-start)
	for i := start; i < n; i++ {
		s := &r.slots[i&r.mask]
		for attempt := 0; attempt < 4; attempt++ {
			s1 := s.seq.Load()
			if s1&1 != 0 {
				continue // writer mid-store; retry
			}
			if s1 == 0 {
				break // claimed but never written (skipped slot)
			}
			ev := Event{
				At:    time.Duration(s.at.Load()),
				Conn:  s.conn.Load(),
				Kind:  Kind(s.kind.Load()),
				Value: time.Duration(s.val.Load()),
			}
			if s.seq.Load() == s1 {
				out = append(out, ev)
				break
			}
		}
	}
	return out
}

// Phases holds the per-phase latency histograms the admin endpoint
// exposes: the decomposition of "why was this request slow?" into the
// queueing, parsing, handling, and writing components.
type Phases struct {
	QueueWait *metrics.Histogram
	Parse     *metrics.Histogram
	Handler   *metrics.Histogram
	Write     *metrics.Histogram
}

// NewPhases returns latency-sized histograms for every phase.
func NewPhases() *Phases {
	return &Phases{
		QueueWait: metrics.NewLatencyHistogram(),
		Parse:     metrics.NewLatencyHistogram(),
		Handler:   metrics.NewLatencyHistogram(),
		Write:     metrics.NewLatencyHistogram(),
	}
}

// Plane bundles the ring, the phase histograms, and per-kind event
// counters into the single object a server is configured with. All
// methods are safe for concurrent use.
//
// Under reactor sharding the ring, the connection-id stream, and the
// per-kind counters stay shared (they are already lock-free and
// multi-writer), but each shard records its phase latencies into its
// own histogram block (see View) so the hot path never contends on a
// cache line with another shard. Readers merge the blocks bucketwise
// via metrics.Dist.Merge — histogram buckets add commutatively, so
// /stats and /rollup stay honest no matter how work spread across
// shards.
type Plane struct {
	start  time.Time
	ring   *Ring
	phases *Phases
	connID atomic.Uint64
	counts [NumKinds]atomic.Int64

	// mu guards extra, the lazily-grown phase blocks of shards >= 1
	// (extra[i] belongs to shard i+1; shard 0 records into phases).
	mu    sync.Mutex
	extra []*Phases
}

// NewPlane returns a plane whose ring retains at least ringCap events.
func NewPlane(ringCap int) *Plane {
	return &Plane{start: time.Now(), ring: NewRing(ringCap), phases: NewPhases()}
}

// NextConnID issues a fresh connection id (ids start at 1; 0 means "no
// connection").
func (p *Plane) NextConnID() uint64 { return p.connID.Add(1) }

// Record logs one lifecycle event: it stamps the ring, bumps the
// per-kind counter, and — for the four phase kinds — feeds the matching
// latency histogram. Allocation-free.
//
//nio:hot
func (p *Plane) Record(conn uint64, k Kind, v time.Duration) {
	p.counts[k].Add(1)
	p.ring.Record(time.Since(p.start), conn, k, v)
	if h := p.phaseFor(k); h != nil {
		h.ObserveDuration(v)
	}
}

func (p *Plane) phaseFor(k Kind) *metrics.Histogram {
	switch k {
	case QueueWait:
		return p.phases.QueueWait
	case Parse:
		return p.phases.Parse
	case Handler:
		return p.phases.Handler
	case WriteComplete:
		return p.phases.Write
	default:
		return nil
	}
}

// Ring returns the trace ring.
func (p *Plane) Ring() *Ring { return p.ring }

// Phases returns shard 0's phase histograms — the only block an
// unsharded server ever records into. Merged readers (the admin
// endpoint, rollup snapshots) must use PhaseDist instead.
func (p *Plane) Phases() *Phases { return p.phases }

// View returns the recording handle for one shard: shard 0 records
// into the plane's legacy block, higher shards into their own lazily
// created blocks. Views share the plane's ring, id stream, and kind
// counters; only the phase histograms are per-shard. Safe to call from
// any goroutine; each shard should call it once at setup and keep the
// handle.
func (p *Plane) View(shard int) *View {
	if shard <= 0 {
		return &View{p: p, ph: p.phases}
	}
	p.mu.Lock()
	for len(p.extra) < shard {
		p.extra = append(p.extra, NewPhases())
	}
	ph := p.extra[shard-1]
	p.mu.Unlock()
	return &View{p: p, ph: ph}
}

// PhaseDist returns one phase's latency distribution merged across
// every shard's histogram block — the consistent read side of sharded
// recording. get selects the phase from a block (see the admin
// endpoint's phase table).
func (p *Plane) PhaseDist(get func(*Phases) *metrics.Histogram) metrics.Dist {
	d := get(p.phases).Dist()
	p.mu.Lock()
	blocks := p.extra
	p.mu.Unlock()
	for _, ph := range blocks {
		d = d.Merge(get(ph).Dist())
	}
	return d
}

// View is one shard's recording handle into a shared Plane.
type View struct {
	p  *Plane
	ph *Phases
}

// Plane returns the shared plane the view records into.
func (v *View) Plane() *Plane { return v.p }

// NextConnID issues a fresh connection id from the plane-wide stream.
func (v *View) NextConnID() uint64 { return v.p.NextConnID() }

// Record logs one lifecycle event exactly like Plane.Record, but phase
// latencies land in this shard's histogram block. Allocation-free.
//
//nio:hot
func (v *View) Record(conn uint64, k Kind, val time.Duration) {
	p := v.p
	p.counts[k].Add(1)
	p.ring.Record(time.Since(p.start), conn, k, val)
	switch k {
	case QueueWait:
		v.ph.QueueWait.ObserveDuration(val)
	case Parse:
		v.ph.Parse.ObserveDuration(val)
	case Handler:
		v.ph.Handler.ObserveDuration(val)
	case WriteComplete:
		v.ph.Write.ObserveDuration(val)
	}
}

// Count returns how many events of the given kind have been recorded.
func (p *Plane) Count(k Kind) int64 { return p.counts[k].Load() }

// OpenConns derives the traced-connections gauge from the lifecycle
// counters. Close is loaded before Accept: every Close has an earlier
// matching Accept, so this ordering makes the gauge non-negative at
// every instant even while both counters are moving.
func (p *Plane) OpenConns() int64 {
	closed := p.counts[Close].Load()
	return p.counts[Accept].Load() - closed
}
