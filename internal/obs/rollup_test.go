package obs_test

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

func sampleSnapshot(name string, scale int64) obs.RollupSnapshot {
	h := metrics.NewLatencyHistogram()
	for i := int64(0); i < 100*scale; i++ {
		h.ObserveDuration(time.Duration(i%10+1) * time.Millisecond)
	}
	s := obs.RollupSnapshot{
		Name: name,
		Fields: []obs.Field{
			{Name: "accepted", Value: 10 * scale},
			{Name: "replies", Value: 9 * scale},
		},
		Phases: map[string]metrics.Dist{"handler": h.Dist()},
	}
	s.Kinds[obs.Accept] = 10 * scale
	s.Kinds[obs.Shed] = scale
	return s
}

func TestRollupRoundTrip(t *testing.T) {
	in := sampleSnapshot("nio-a", 3)
	var buf bytes.Buffer
	obs.RenderRollup(&buf, in)

	out, err := obs.ParseRollup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "nio-a" {
		t.Fatalf("name = %q", out.Name)
	}
	if len(out.Fields) != 2 || out.Fields[0] != in.Fields[0] || out.Fields[1] != in.Fields[1] {
		t.Fatalf("fields = %+v", out.Fields)
	}
	if out.Kinds != in.Kinds {
		t.Fatalf("kinds = %v, want %v", out.Kinds, in.Kinds)
	}
	d, ok := out.Phases["handler"]
	if !ok {
		t.Fatal("handler dist lost")
	}
	want := in.Phases["handler"]
	if d.Count() != want.Count() || d.SumMicros != want.SumMicros ||
		d.Min != want.Min || d.Max != want.Max || d.PerDecade != want.PerDecade {
		t.Fatalf("dist mangled: %+v vs %+v", d, want)
	}
	for i := range want.Counts {
		if d.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: %d != %d", i, d.Counts[i], want.Counts[i])
		}
	}
	// Quantiles must survive the round trip exactly.
	if d.Quantile(0.95) != want.Quantile(0.95) {
		t.Fatalf("p95 changed: %v vs %v", d.Quantile(0.95), want.Quantile(0.95))
	}
}

func TestRollupParseRejectsTruncated(t *testing.T) {
	in := sampleSnapshot("x", 1)
	var buf bytes.Buffer
	obs.RenderRollup(&buf, in)
	whole := buf.String()

	// Cut before the end marker: must be rejected, not silently partial.
	cut := strings.TrimSuffix(whole, "end\n")
	if _, err := obs.ParseRollup(strings.NewReader(cut)); err == nil {
		t.Fatal("truncated document parsed")
	}
	if _, err := obs.ParseRollup(strings.NewReader("gibberish\n")); err == nil {
		t.Fatal("garbage parsed")
	}
	if _, err := obs.ParseRollup(strings.NewReader("")); err == nil {
		t.Fatal("empty document parsed")
	}
}

func TestRollupMerge(t *testing.T) {
	a := sampleSnapshot("a", 1)
	b := sampleSnapshot("b", 4)

	m := a.Merge(b, "tier")
	if m.Name != "tier" {
		t.Fatalf("name = %q", m.Name)
	}
	for _, f := range m.Fields {
		var want int64
		switch f.Name {
		case "accepted":
			want = 10 + 40
		case "replies":
			want = 9 + 36
		}
		if f.Value != want {
			t.Fatalf("merged %s = %d, want %d", f.Name, f.Value, want)
		}
	}
	if m.Kinds[obs.Accept] != 50 || m.Kinds[obs.Shed] != 5 {
		t.Fatalf("merged kinds = %v", m.Kinds)
	}
	md := m.Phases["handler"]
	if md.Count() != a.Phases["handler"].Count()+b.Phases["handler"].Count() {
		t.Fatalf("merged dist count = %d", md.Count())
	}

	// Commutativity: a+b == b+a, field order aside.
	m2 := b.Merge(a, "tier")
	if m2.Kinds != m.Kinds || m2.Phases["handler"].Count() != md.Count() {
		t.Fatal("merge is not commutative")
	}

	// The merged quantile is the quantile of the union — recompute from
	// one histogram fed both sample sets and compare.
	h := metrics.NewLatencyHistogram()
	for i := int64(0); i < 100; i++ {
		h.ObserveDuration(time.Duration(i%10+1) * time.Millisecond)
	}
	for i := int64(0); i < 400; i++ {
		h.ObserveDuration(time.Duration(i%10+1) * time.Millisecond)
	}
	union := h.Dist()
	if md.Quantile(0.95) != union.Quantile(0.95) || md.Mean() != union.Mean() {
		t.Fatalf("merged dist p95/mean (%v/%v) != union (%v/%v)",
			md.Quantile(0.95), md.Mean(), union.Quantile(0.95), union.Mean())
	}
}

// TestAdminServesRollup drives the new /rollup route over HTTP and
// checks the exported document parses back to the plane's own numbers.
// The existing /stats golden files pin that route's format separately;
// this test only touches /rollup.
func TestAdminServesRollup(t *testing.T) {
	pl := seedPlane()
	ad, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Name:  "nio-under-test",
		Stats: func() []obs.Field { return []obs.Field{{Name: "replies", Value: 7}} },
		Plane: pl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ad.Close()

	resp, err := http.Get("http://" + ad.Addr() + "/rollup")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseRollup(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("exported rollup does not parse: %v\n%s", err, raw)
	}
	if snap.Name != "nio-under-test" {
		t.Fatalf("name = %q", snap.Name)
	}
	if len(snap.Fields) != 1 || snap.Fields[0] != (obs.Field{Name: "replies", Value: 7}) {
		t.Fatalf("fields = %+v", snap.Fields)
	}
	if snap.Kinds[obs.Accept] != 1 || snap.Kinds[obs.Shed] != 1 {
		t.Fatalf("kinds = %v", snap.Kinds)
	}
	if d, ok := snap.Phases["handler"]; !ok || d.Count() != 1 {
		t.Fatalf("exported handler dist: ok=%v count=%d", ok, d.Count())
	}
}
