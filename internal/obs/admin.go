package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// This file is the admin introspection endpoint: a separate listener
// (never the data-plane port) serving plain-text /stats and /trace plus
// the stdlib pprof handlers. The admin plane is read-only and cold, so
// it rides on net/http; only the data plane speaks internal/httpwire.

// Field is one named server counter or gauge, rendered in the order
// given — /stats output is a stable, diffable text format, so field
// order is part of the contract (see the golden-file tests).
type Field struct {
	Name  string
	Value int64
}

// AdminConfig wires an Admin to one server.
type AdminConfig struct {
	// Stats returns the server's counters in render order. Required.
	Stats func() []Field
	// Plane supplies the trace ring and phase histograms; nil serves
	// /stats without phase or trace sections.
	Plane *Plane
	// Name identifies this server in /rollup exports (the source tag a
	// rollup collector aggregates under). Defaults to "server".
	Name string
	// Extra mounts additional read-only routes on the admin mux (path
	// -> handler), e.g. a proxy's tier-merged /backends view. Paths
	// colliding with the built-in routes are rejected.
	Extra map[string]http.HandlerFunc
}

// Admin is the introspection endpoint for one server.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// NewAdmin binds addr (e.g. "127.0.0.1:0") and starts serving /stats,
// /trace, and /debug/pprof/ on it. Close releases the listener.
func NewAdmin(addr string, cfg AdminConfig) (*Admin, error) {
	if cfg.Stats == nil {
		return nil, fmt.Errorf("obs: AdminConfig.Stats is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		RenderStats(w, cfg.Stats(), cfg.Plane)
	})
	name := cfg.Name
	if name == "" {
		name = "server"
	}
	mux.HandleFunc("/rollup", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		RenderRollup(w, SnapshotRollup(name, cfg.Stats(), cfg.Plane))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		f, err := ParseTraceFilter(r.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		RenderTrace(w, cfg.Plane, f)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for path, h := range cfg.Extra {
		switch path {
		case "/stats", "/trace", "/rollup", "", "/debug/pprof/",
			"/debug/pprof/cmdline", "/debug/pprof/profile",
			"/debug/pprof/symbol", "/debug/pprof/trace":
			ln.Close()
			return nil, fmt.Errorf("obs: extra route %q collides with a built-in", path)
		}
		mux.HandleFunc(path, h)
	}
	a := &Admin{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound admin address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the admin endpoint immediately.
func (a *Admin) Close() { a.srv.Close() }

// phaseOrder fixes the phase section's rendering order.
var phaseOrder = []struct {
	name string
	get  func(*Phases) *metrics.Histogram
}{
	{"queue_wait", func(p *Phases) *metrics.Histogram { return p.QueueWait }},
	{"parse", func(p *Phases) *metrics.Histogram { return p.Parse }},
	{"handler", func(p *Phases) *metrics.Histogram { return p.Handler }},
	{"write", func(p *Phases) *metrics.Histogram { return p.Write }},
}

// RenderStats writes the plain-text /stats document: server fields
// first, then the per-phase latency summaries, then the trace-plane
// counters. One "name value" pair per line, fixed order, durations in
// seconds with microsecond precision — stable enough to diff, simple
// enough to scrape with a split.
func RenderStats(w io.Writer, fields []Field, pl *Plane) {
	for _, f := range fields {
		fmt.Fprintf(w, "server.%s %d\n", f.Name, f.Value)
	}
	if pl == nil {
		return
	}
	for _, ph := range phaseOrder {
		// Dist is a consistent point-in-time copy: every quantile below
		// comes from the same bucket state even while recording
		// continues — merged bucketwise across shard blocks, so the
		// numbers stay honest under reactor sharding.
		d := pl.PhaseDist(ph.get)
		fmt.Fprintf(w, "phase.%s.count %d\n", ph.name, d.Count())
		fmt.Fprintf(w, "phase.%s.mean %.6f\n", ph.name, d.Mean())
		fmt.Fprintf(w, "phase.%s.p50 %.6f\n", ph.name, d.Quantile(0.50))
		fmt.Fprintf(w, "phase.%s.p95 %.6f\n", ph.name, d.Quantile(0.95))
		fmt.Fprintf(w, "phase.%s.p99 %.6f\n", ph.name, d.Quantile(0.99))
	}
	// trace.open before the per-kind counters: it is derived Close-first
	// (see OpenConns), so it is non-negative on its own, and rendering it
	// first keeps "gauge then counters" reading order.
	fmt.Fprintf(w, "trace.open %d\n", pl.OpenConns())
	for k := Kind(0); int(k) < NumKinds; k++ {
		fmt.Fprintf(w, "trace.%s %d\n", statsName(k), pl.Count(k))
	}
	fmt.Fprintf(w, "trace.events %d\n", pl.ring.Len())
	fmt.Fprintf(w, "trace.dropped %d\n", pl.ring.Dropped())
}

// statsName converts a Kind's display name to a stats field name
// ("header-read" -> "header_read").
func statsName(k Kind) string {
	b := []byte(k.String())
	for i, c := range b {
		if c == '-' {
			b[i] = '_'
		}
	}
	return string(b)
}

// RenderTrace writes the filtered ring dump, one line per event,
// oldest first.
func RenderTrace(w io.Writer, pl *Plane, f Filter) {
	if pl == nil {
		fmt.Fprintln(w, "(tracing disabled)")
		return
	}
	evs := f.Apply(pl.ring.Events())
	for _, ev := range evs {
		fmt.Fprintf(w, "%12.6f  conn=%-8d %-14s", ev.At.Seconds(), ev.Conn, ev.Kind)
		if ev.Value != 0 {
			fmt.Fprintf(w, " %.6fs", ev.Value.Seconds())
		}
		fmt.Fprintln(w)
	}
	if d := pl.ring.Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d earlier events evicted)\n", d)
	}
}
