package rollup_test

import (
	"bytes"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/rollup"
)

func snap(name string, replies int64, handlerMillis ...int) obs.RollupSnapshot {
	h := metrics.NewLatencyHistogram()
	for _, ms := range handlerMillis {
		h.ObserveDuration(time.Duration(ms) * time.Millisecond)
	}
	s := obs.RollupSnapshot{
		Name:   name,
		Fields: []obs.Field{{Name: "replies", Value: replies}},
		Phases: map[string]metrics.Dist{"handler": h.Dist()},
	}
	s.Kinds[obs.Accept] = replies
	return s
}

func TestCollectorMerges(t *testing.T) {
	c := rollup.NewCollector()
	c.Ingest(snap("nio-a", 10, 1, 2, 3))
	c.Ingest(snap("mt-b", 20, 4, 5))

	if got := c.Sources(); len(got) != 2 || got[0] != "mt-b" || got[1] != "nio-a" {
		t.Fatalf("sources = %v", got)
	}
	m := c.Merged("tier")
	if m.Name != "tier" {
		t.Fatalf("name = %q", m.Name)
	}
	if len(m.Fields) != 1 || m.Fields[0].Value != 30 {
		t.Fatalf("merged fields = %+v", m.Fields)
	}
	if m.Kinds[obs.Accept] != 30 {
		t.Fatalf("merged accepts = %d", m.Kinds[obs.Accept])
	}
	if d := m.Phases["handler"]; d.Count() != 5 {
		t.Fatalf("merged handler count = %d", d.Count())
	}

	// Re-ingesting a source REPLACES its snapshot (cumulative, not delta).
	c.Ingest(snap("nio-a", 15, 1, 2, 3, 4))
	m = c.Merged("tier")
	if m.Fields[0].Value != 35 {
		t.Fatalf("after re-ingest, merged replies = %d, want 35", m.Fields[0].Value)
	}
}

func TestRenderMergedLayout(t *testing.T) {
	c := rollup.NewCollector()
	c.Ingest(snap("nio-a", 1, 1))
	c.Ingest(snap("mt-b", 2, 2))
	c.NoteError("ghost", errors.New("connection refused"))

	var buf bytes.Buffer
	c.RenderMerged(&buf)
	out := buf.String()
	for _, want := range []string{
		"== merged (2 sources) ==",
		"server.replies 3",
		"== backend mt-b ==",
		"== backend nio-a ==",
		"phase.handler.count 2",
		"== scrape-error ghost: connection refused ==",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged render missing %q:\n%s", want, out)
		}
	}
	// The merged section must come first.
	if strings.Index(out, "== merged") > strings.Index(out, "== backend") {
		t.Fatalf("merged section not first:\n%s", out)
	}
}

// TestScraperEndToEnd runs two real admin endpoints and one dead
// target: the scraper must pull and re-tag both live snapshots, note
// the dead one, and the merged view must sum the live pair.
func TestScraperEndToEnd(t *testing.T) {
	mkAdmin := func(replies int64) *obs.Admin {
		pl := obs.NewPlane(16)
		id := pl.NextConnID()
		pl.Record(id, obs.Accept, 0)
		pl.Record(id, obs.Handler, 2*time.Millisecond)
		ad, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
			Stats: func() []obs.Field { return []obs.Field{{Name: "replies", Value: replies}} },
			Plane: pl,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ad.Close)
		return ad
	}
	a1 := mkAdmin(5)
	a2 := mkAdmin(7)

	c := rollup.NewCollector()
	s := rollup.NewScraper(c, []rollup.Target{
		{Name: "nio-a", Addr: a1.Addr()},
		{Name: "mt-b", Addr: a2.Addr()},
		{Name: "dead", Addr: "127.0.0.1:1"},
	}, time.Hour) // interval irrelevant: Start does an immediate sweep
	s.Start()
	defer s.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for len(c.Sources()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Sources(); len(got) != 2 {
		t.Fatalf("sources = %v", got)
	}
	if _, ok := c.Snapshot("nio-a"); !ok {
		t.Fatal("scraper did not re-tag the default source name")
	}
	m := c.Merged("tier")
	if len(m.Fields) != 1 || m.Fields[0].Value != 12 {
		t.Fatalf("merged replies = %+v, want 12", m.Fields)
	}
	if m.Kinds[obs.Accept] != 2 {
		t.Fatalf("merged accepts = %d", m.Kinds[obs.Accept])
	}

	var buf bytes.Buffer
	c.RenderMerged(&buf)
	if !strings.Contains(buf.String(), "== scrape-error dead:") {
		t.Fatalf("dead target not surfaced:\n%s", buf.String())
	}
}

func TestScrapeRejectsNon200(t *testing.T) {
	// An admin endpoint serves 404 for unknown paths; Scrape against a
	// wrong port must error rather than hang or fabricate a snapshot.
	if _, err := rollup.Scrape(&http.Client{Timeout: 200 * time.Millisecond}, "127.0.0.1:1"); err == nil {
		t.Fatal("scrape of a dead address succeeded")
	}
}
