// Package rollup aggregates per-server telemetry snapshots into one
// tier-level view. Each backend's admin endpoint exports its counters
// and full phase histograms at /rollup (see obs.RenderRollup); a
// Scraper polls those endpoints into a Collector; the Collector merges
// them — counters summed, histogram buckets bucket-merged — so the
// proxy's admin plane can serve one honest merged /stats alongside the
// per-backend breakdown. Because the merge runs over full bucket
// state, the merged p95 is the true p95 of the union of samples, not
// an average of per-backend quantiles.
package rollup

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Collector holds the latest snapshot per source and merges on demand.
type Collector struct {
	mu    sync.Mutex
	snaps map[string]obs.RollupSnapshot
	errs  map[string]error
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		snaps: make(map[string]obs.RollupSnapshot),
		errs:  make(map[string]error),
	}
}

// Ingest stores s as the latest snapshot for its source name,
// replacing any prior one (snapshots are cumulative state, not deltas).
func (c *Collector) Ingest(s obs.RollupSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps[s.Name] = s
	delete(c.errs, s.Name)
}

// NoteError records a scrape failure for a source; it clears on the
// next successful Ingest and surfaces in RenderMerged.
func (c *Collector) NoteError(source string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs[source] = err
}

// Sources returns the source names seen so far, sorted.
func (c *Collector) Sources() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.snaps))
	for n := range c.snaps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the latest snapshot for one source.
func (c *Collector) Snapshot(name string) (obs.RollupSnapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.snaps[name]
	return s, ok
}

// Merged folds every source's latest snapshot into one, under the
// given name. Merging is order-independent; sources are still folded
// in sorted order so repeated calls produce identical field ordering.
func (c *Collector) Merged(name string) obs.RollupSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.snaps))
	for n := range c.snaps {
		names = append(names, n)
	}
	sort.Strings(names)
	out := obs.RollupSnapshot{Name: name}
	first := true
	for _, n := range names {
		if first {
			s := c.snaps[n]
			out = s.Merge(obs.RollupSnapshot{}, name)
			first = false
			continue
		}
		out = out.Merge(c.snaps[n], name)
	}
	return out
}

// RenderMerged writes the tier view: the merged totals in /stats
// format, then each source's own numbers, then any scrape errors.
func (c *Collector) RenderMerged(w io.Writer) {
	merged := c.Merged("merged")
	sources := c.Sources()
	fmt.Fprintf(w, "== merged (%d sources) ==\n", len(sources))
	obs.RenderMergedStats(w, merged)
	for _, n := range sources {
		s, _ := c.Snapshot(n)
		fmt.Fprintf(w, "== backend %s ==\n", n)
		obs.RenderMergedStats(w, s)
	}
	c.mu.Lock()
	errNames := make([]string, 0, len(c.errs))
	for n := range c.errs {
		errNames = append(errNames, n)
	}
	sort.Strings(errNames)
	errs := make(map[string]error, len(errNames))
	for _, n := range errNames {
		errs[n] = c.errs[n]
	}
	c.mu.Unlock()
	for _, n := range errNames {
		fmt.Fprintf(w, "== scrape-error %s: %v ==\n", n, errs[n])
	}
}

// Scrape fetches and parses one /rollup document from an admin
// endpoint ("host:port").
func Scrape(client *http.Client, adminAddr string) (obs.RollupSnapshot, error) {
	resp, err := client.Get("http://" + adminAddr + "/rollup")
	if err != nil {
		return obs.RollupSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.RollupSnapshot{}, fmt.Errorf("rollup: %s returned %d", adminAddr, resp.StatusCode)
	}
	return obs.ParseRollup(resp.Body)
}

// Target is one admin endpoint a Scraper polls. Name overrides the
// source tag in the scraped snapshot — backends often all call
// themselves "server", and the tier needs them distinguishable.
type Target struct {
	Name string
	Addr string
}

// Scraper periodically pulls every target's /rollup into a Collector.
type Scraper struct {
	c       *Collector
	targets []Target
	every   time.Duration
	client  *http.Client
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
}

// NewScraper builds a scraper; Start launches it.
func NewScraper(c *Collector, targets []Target, every time.Duration) *Scraper {
	return &Scraper{
		c:       c,
		targets: targets,
		every:   every,
		client:  &http.Client{Timeout: 2 * time.Second},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start begins polling (one immediate sweep, then every interval).
func (s *Scraper) Start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.every)
		defer t.Stop()
		s.sweep()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sweep()
			}
		}
	}()
}

// Stop halts polling and waits for the loop to exit.
func (s *Scraper) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// Sweep runs one synchronous scrape of all targets (exported so tests
// and drains can force a final collection).
func (s *Scraper) Sweep() { s.sweep() }

func (s *Scraper) sweep() {
	for _, t := range s.targets {
		snap, err := Scrape(s.client, t.Addr)
		if err != nil {
			s.c.NoteError(t.Name, err)
			continue
		}
		if t.Name != "" {
			snap.Name = t.Name
		}
		s.c.Ingest(snap)
	}
}
