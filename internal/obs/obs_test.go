package obs_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestKindStringRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := obs.Kind(0); int(k) < obs.NumKinds; k++ {
		s := k.String()
		if s == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
		got, ok := obs.ParseKind(s)
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", s, got, ok, k)
		}
	}
	if _, ok := obs.ParseKind("nope"); ok {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

func TestRingRecordAndEvict(t *testing.T) {
	r := obs.NewRing(16)
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Record(time.Duration(i), uint64(i), obs.Accept, 0)
	}
	evs := r.Events()
	if len(evs) != 10 || r.Len() != 10 {
		t.Fatalf("got %d events (Len %d), want 10", len(evs), r.Len())
	}
	for i, ev := range evs {
		if ev.Conn != uint64(i) || ev.At != time.Duration(i) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
	// Overfill: the ring keeps the newest Cap() events and counts the rest
	// as dropped.
	for i := 10; i < 40; i++ {
		r.Record(time.Duration(i), uint64(i), obs.Accept, 0)
	}
	evs = r.Events()
	if len(evs) != 16 {
		t.Fatalf("got %d events after wrap, want 16", len(evs))
	}
	if evs[0].Conn != 24 || evs[15].Conn != 39 {
		t.Fatalf("wrap kept wrong window: first=%d last=%d", evs[0].Conn, evs[15].Conn)
	}
	if r.Dropped() != 24 {
		t.Fatalf("Dropped = %d, want 24", r.Dropped())
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if got := obs.NewRing(0).Cap(); got != 16 {
		t.Fatalf("Cap(0) = %d, want 16", got)
	}
	if got := obs.NewRing(17).Cap(); got != 32 {
		t.Fatalf("Cap(17) = %d, want 32", got)
	}
}

// TestRingConcurrent hammers the ring from several writers while readers
// snapshot continuously. Every event is written with Value and At derived
// from Conn, so a torn read — payload words from two different writers —
// is detectable in the snapshot. Run with -race this also proves the
// seqlock is built honestly from atomics.
func TestRingConcurrent(t *testing.T) {
	r := obs.NewRing(256)
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				conn := uint64(w*perWriter + i + 1)
				r.Record(time.Duration(conn), conn, obs.Handler, time.Duration(conn*3))
			}
		}(w)
	}
	var readerWg sync.WaitGroup
	for g := 0; g < 2; g++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				for _, ev := range r.Events() {
					if ev.At != time.Duration(ev.Conn) || ev.Value != time.Duration(ev.Conn*3) {
						t.Errorf("torn event: %+v", ev)
						return
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWg.Wait()
	// Every record either landed or was counted: retained + dropped equals
	// the number of Record calls.
	total := uint64(r.Len()) + r.Dropped()
	if want := uint64(writers * perWriter); total != want {
		t.Fatalf("retained+dropped = %d, want %d", total, want)
	}
}

func TestPlaneCountsAndPhases(t *testing.T) {
	pl := obs.NewPlane(64)
	id := pl.NextConnID()
	if id != 1 {
		t.Fatalf("first conn id = %d, want 1", id)
	}
	pl.Record(id, obs.Accept, 0)
	pl.Record(id, obs.QueueWait, 100*time.Microsecond)
	pl.Record(id, obs.Parse, 50*time.Microsecond)
	pl.Record(id, obs.Handler, 2*time.Millisecond)
	pl.Record(id, obs.WriteComplete, 400*time.Microsecond)
	if pl.OpenConns() != 1 {
		t.Fatalf("OpenConns = %d before close, want 1", pl.OpenConns())
	}
	pl.Record(id, obs.Close, 0)
	if pl.OpenConns() != 0 {
		t.Fatalf("OpenConns = %d after close, want 0", pl.OpenConns())
	}
	for _, k := range []obs.Kind{obs.Accept, obs.QueueWait, obs.Parse, obs.Handler, obs.WriteComplete, obs.Close} {
		if pl.Count(k) != 1 {
			t.Fatalf("Count(%v) = %d, want 1", k, pl.Count(k))
		}
	}
	ph := pl.Phases()
	if ph.Handler.Count() != 1 || ph.QueueWait.Count() != 1 || ph.Parse.Count() != 1 || ph.Write.Count() != 1 {
		t.Fatal("phase histograms did not each receive one sample")
	}
	// The phase sample must land near its recorded value (log-bucket
	// resolution is ~12%).
	if got := ph.Handler.Quantile(0.5); got < 1.5e-3 || got > 2.5e-3 {
		t.Fatalf("handler p50 = %v, want ~2ms", got)
	}
	// Marker kinds do not feed any histogram.
	if n := pl.Ring().Len(); n != 6 {
		t.Fatalf("ring has %d events, want 6", n)
	}
}

func TestParseTraceFilter(t *testing.T) {
	f, err := obs.ParseTraceFilter("conn=12&kind=close&last=100")
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasConn || f.Conn != 12 || !f.HasKind || f.Kind != obs.Close || f.Last != 100 {
		t.Fatalf("bad filter: %+v", f)
	}
	if f, err := obs.ParseTraceFilter(""); err != nil || f != (obs.Filter{}) {
		t.Fatalf("empty query: %+v, %v", f, err)
	}
	for _, bad := range []string{"conn=abc", "kind=nope", "last=-1", "last=x", "typo=1", "conn", "=3"} {
		if _, err := obs.ParseTraceFilter(bad); err == nil {
			t.Fatalf("ParseTraceFilter(%q) accepted", bad)
		}
	}
}

func TestFilterApply(t *testing.T) {
	evs := []obs.Event{
		{Conn: 1, Kind: obs.Accept},
		{Conn: 1, Kind: obs.Close},
		{Conn: 2, Kind: obs.Accept},
		{Conn: 2, Kind: obs.Handler},
		{Conn: 2, Kind: obs.Close},
	}
	got := obs.Filter{Conn: 2, HasConn: true}.Apply(evs)
	if len(got) != 3 {
		t.Fatalf("conn filter kept %d, want 3", len(got))
	}
	got = obs.Filter{Kind: obs.Close, HasKind: true}.Apply(evs)
	if len(got) != 2 {
		t.Fatalf("kind filter kept %d, want 2", len(got))
	}
	got = obs.Filter{Last: 2}.Apply(evs)
	if len(got) != 2 || got[0].Kind != obs.Handler || got[1].Kind != obs.Close {
		t.Fatalf("last filter kept wrong window: %+v", got)
	}
	got = obs.Filter{Conn: 2, HasConn: true, Kind: obs.Accept, HasKind: true, Last: 5}.Apply(evs)
	if len(got) != 1 || got[0].Conn != 2 {
		t.Fatalf("combined filter: %+v", got)
	}
}

func TestRenderTraceDisabled(t *testing.T) {
	var b strings.Builder
	obs.RenderTrace(&b, nil, obs.Filter{})
	if !strings.Contains(b.String(), "tracing disabled") {
		t.Fatalf("nil-plane trace rendered %q", b.String())
	}
}
