package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Filter selects a subset of the trace ring for the /trace endpoint.
// The zero value selects everything.
type Filter struct {
	// Conn, when HasConn, keeps only one connection's events.
	Conn    uint64
	HasConn bool
	// Kind, when HasKind, keeps only one event class.
	Kind    Kind
	HasKind bool
	// Last, when positive, keeps only the newest Last events (applied
	// after the other filters).
	Last int
}

// ParseTraceFilter parses a /trace query string of the form
// "conn=12&kind=close&last=100". Keys may appear in any order; unknown
// keys are rejected so a typo cannot silently select everything. The
// empty string yields the zero Filter.
func ParseTraceFilter(raw string) (Filter, error) {
	var f Filter
	if raw == "" {
		return f, nil
	}
	for _, part := range strings.Split(raw, "&") {
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Filter{}, fmt.Errorf("obs: malformed filter term %q", part)
		}
		switch key {
		case "conn":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Filter{}, fmt.Errorf("obs: bad conn %q", val)
			}
			f.Conn, f.HasConn = n, true
		case "kind":
			k, ok := ParseKind(val)
			if !ok {
				return Filter{}, fmt.Errorf("obs: unknown kind %q", val)
			}
			f.Kind, f.HasKind = k, true
		case "last":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Filter{}, fmt.Errorf("obs: bad last %q", val)
			}
			f.Last = n
		default:
			return Filter{}, fmt.Errorf("obs: unknown filter key %q", key)
		}
	}
	return f, nil
}

// Keep reports whether the event passes the conn/kind terms (Last is
// positional and applied by Apply).
func (f Filter) Keep(ev Event) bool {
	if f.HasConn && ev.Conn != f.Conn {
		return false
	}
	if f.HasKind && ev.Kind != f.Kind {
		return false
	}
	return true
}

// Apply filters a chronological event slice.
func (f Filter) Apply(evs []Event) []Event {
	out := evs[:0:0]
	for _, ev := range evs {
		if f.Keep(ev) {
			out = append(out, ev)
		}
	}
	if f.Last > 0 && len(out) > f.Last {
		out = out[len(out)-f.Last:]
	}
	return out
}
