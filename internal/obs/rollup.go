package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// A RollupSnapshot is one server's telemetry captured for aggregation:
// its counters, its lifecycle-event counts, and its FULL phase latency
// distributions — not pre-computed quantiles. Quantiles do not compose
// (the p95 of two servers is not any function of their p95s), but
// histogram buckets add, so shipping the buckets is what makes a
// tier-level merged view honest. Merging is commutative and associative
// by construction: fields and kinds sum, distributions merge through
// metrics.Dist.Merge.
type RollupSnapshot struct {
	// Name identifies the source server ("nio-a", "mt-b", ...).
	Name string
	// Fields are the server counters, in the source's render order.
	Fields []Field
	// Kinds are the trace-plane event counts, indexed by Kind.
	Kinds [NumKinds]int64
	// Phases maps phase name ("queue_wait", "parse", "handler",
	// "write") to the full bucket state of that phase's histogram.
	Phases map[string]metrics.Dist
}

// SnapshotRollup captures a server's current state for export. pl may
// be nil (fields only).
func SnapshotRollup(name string, fields []Field, pl *Plane) RollupSnapshot {
	s := RollupSnapshot{Name: name, Fields: fields, Phases: map[string]metrics.Dist{}}
	if pl == nil {
		return s
	}
	for _, ph := range phaseOrder {
		s.Phases[ph.name] = pl.PhaseDist(ph.get)
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		s.Kinds[k] = pl.Count(k)
	}
	return s
}

// Merge combines two snapshots into one named as given: counters with
// the same field name sum (a field present on one side passes through),
// kind counts sum, and phase distributions bucket-merge. Distributions
// for the same phase must share a histogram layout — all servers in
// this repo use metrics.NewLatencyHistogram, and a mismatch panics per
// the metrics.Dist.Merge contract rather than silently corrupting the
// merged view.
func (s RollupSnapshot) Merge(o RollupSnapshot, name string) RollupSnapshot {
	out := RollupSnapshot{Name: name, Phases: map[string]metrics.Dist{}}
	seen := make(map[string]int)
	for _, f := range s.Fields {
		if i, dup := seen[f.Name]; dup {
			out.Fields[i].Value += f.Value
			continue
		}
		seen[f.Name] = len(out.Fields)
		out.Fields = append(out.Fields, f)
	}
	for _, f := range o.Fields {
		if i, dup := seen[f.Name]; dup {
			out.Fields[i].Value += f.Value
			continue
		}
		seen[f.Name] = len(out.Fields)
		out.Fields = append(out.Fields, f)
	}
	for k := 0; k < NumKinds; k++ {
		out.Kinds[k] = s.Kinds[k] + o.Kinds[k]
	}
	for name, d := range s.Phases {
		if od, ok := o.Phases[name]; ok {
			out.Phases[name] = d.Merge(od)
		} else {
			out.Phases[name] = d
		}
	}
	for name, d := range o.Phases {
		if _, ok := s.Phases[name]; !ok {
			out.Phases[name] = d
		}
	}
	return out
}

// RenderRollup writes the snapshot in the line-oriented wire format:
//
//	rollup <name>
//	field <name> <value>
//	kind <kind-name> <count>
//	dist <phase> <min> <max> <perDecade> <nbuckets> <under> <over> <sumMicros> [<i>:<count> ...]
//	end
//
// Bucket counts are sparse (only non-zero buckets appear), floats use
// the shortest exact representation, and the document ends with an
// explicit "end" so a truncated scrape is detectable.
func RenderRollup(w io.Writer, s RollupSnapshot) {
	fmt.Fprintf(w, "rollup %s\n", s.Name)
	for _, f := range s.Fields {
		fmt.Fprintf(w, "field %s %d\n", f.Name, f.Value)
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		fmt.Fprintf(w, "kind %s %d\n", k, s.Kinds[k])
	}
	names := make([]string, 0, len(s.Phases))
	for name := range s.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := s.Phases[name]
		fmt.Fprintf(w, "dist %s %s %s %d %d %d %d %d",
			name,
			strconv.FormatFloat(d.Min, 'g', -1, 64),
			strconv.FormatFloat(d.Max, 'g', -1, 64),
			d.PerDecade, len(d.Counts), d.Under, d.Over, d.SumMicros)
		for i, c := range d.Counts {
			if c != 0 {
				fmt.Fprintf(w, " %d:%d", i, c)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "end")
}

// ParseRollup reads one snapshot in RenderRollup's wire format.
func ParseRollup(r io.Reader) (RollupSnapshot, error) {
	s := RollupSnapshot{Phases: map[string]metrics.Dist{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	sawHeader, sawEnd := false, false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Fields(line)
		switch parts[0] {
		case "rollup":
			if len(parts) != 2 {
				return s, fmt.Errorf("obs: bad rollup header %q", line)
			}
			s.Name = parts[1]
			sawHeader = true
		case "field":
			if len(parts) != 3 {
				return s, fmt.Errorf("obs: bad field line %q", line)
			}
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return s, fmt.Errorf("obs: bad field value %q: %w", line, err)
			}
			s.Fields = append(s.Fields, Field{Name: parts[1], Value: v})
		case "kind":
			if len(parts) != 3 {
				return s, fmt.Errorf("obs: bad kind line %q", line)
			}
			k, ok := ParseKind(parts[1])
			if !ok {
				// A newer exporter may know kinds this parser does not;
				// skip rather than fail, so versions can roll forward.
				continue
			}
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return s, fmt.Errorf("obs: bad kind value %q: %w", line, err)
			}
			s.Kinds[k] = v
		case "dist":
			d, name, err := parseDistLine(parts)
			if err != nil {
				return s, err
			}
			s.Phases[name] = d
		case "end":
			sawEnd = true
		default:
			return s, fmt.Errorf("obs: unknown rollup line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	if !sawHeader {
		return s, fmt.Errorf("obs: rollup document has no header")
	}
	if !sawEnd {
		return s, fmt.Errorf("obs: rollup document truncated (no end marker)")
	}
	return s, nil
}

func parseDistLine(parts []string) (metrics.Dist, string, error) {
	var d metrics.Dist
	if len(parts) < 9 {
		return d, "", fmt.Errorf("obs: short dist line %q", strings.Join(parts, " "))
	}
	name := parts[1]
	var err error
	if d.Min, err = strconv.ParseFloat(parts[2], 64); err != nil {
		return d, "", fmt.Errorf("obs: dist %s min: %w", name, err)
	}
	if d.Max, err = strconv.ParseFloat(parts[3], 64); err != nil {
		return d, "", fmt.Errorf("obs: dist %s max: %w", name, err)
	}
	ints := make([]int64, 5)
	for i, p := range parts[4:9] {
		if ints[i], err = strconv.ParseInt(p, 10, 64); err != nil {
			return d, "", fmt.Errorf("obs: dist %s field %d: %w", name, i, err)
		}
	}
	nbuckets := ints[1]
	if nbuckets < 0 || nbuckets > 1<<20 {
		return d, "", fmt.Errorf("obs: dist %s has absurd bucket count %d", name, nbuckets)
	}
	d.PerDecade = int(ints[0])
	d.Counts = make([]int64, nbuckets)
	d.Under, d.Over, d.SumMicros = ints[2], ints[3], ints[4]
	for _, p := range parts[9:] {
		idx := strings.IndexByte(p, ':')
		if idx < 0 {
			return d, "", fmt.Errorf("obs: dist %s bad bucket %q", name, p)
		}
		i, err := strconv.ParseInt(p[:idx], 10, 64)
		if err != nil || i < 0 || i >= nbuckets {
			return d, "", fmt.Errorf("obs: dist %s bucket index %q out of range", name, p)
		}
		c, err := strconv.ParseInt(p[idx+1:], 10, 64)
		if err != nil {
			return d, "", fmt.Errorf("obs: dist %s bucket count %q: %w", name, p, err)
		}
		d.Counts[i] = c
	}
	return d, name, nil
}

// RenderMergedStats writes a merged snapshot in the /stats text format
// (server.\* fields, phase.\* summaries recomputed from the MERGED
// buckets, trace.\* counts), so tier-level and single-server telemetry
// read identically.
func RenderMergedStats(w io.Writer, s RollupSnapshot) {
	for _, f := range s.Fields {
		fmt.Fprintf(w, "server.%s %d\n", f.Name, f.Value)
	}
	names := make([]string, 0, len(s.Phases))
	for name := range s.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := s.Phases[name]
		fmt.Fprintf(w, "phase.%s.count %d\n", name, d.Count())
		fmt.Fprintf(w, "phase.%s.mean %.6f\n", name, d.Mean())
		fmt.Fprintf(w, "phase.%s.p50 %.6f\n", name, d.Quantile(0.50))
		fmt.Fprintf(w, "phase.%s.p95 %.6f\n", name, d.Quantile(0.95))
		fmt.Fprintf(w, "phase.%s.p99 %.6f\n", name, d.Quantile(0.99))
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		fmt.Fprintf(w, "trace.%s %d\n", statsName(k), s.Kinds[k])
	}
}
