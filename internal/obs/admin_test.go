package obs_test

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mtserver"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// seedPlane records one fixed connection lifecycle (plus one shed) so
// /stats renders deterministic phase and trace sections.
func seedPlane() *obs.Plane {
	pl := obs.NewPlane(64)
	id := pl.NextConnID()
	pl.Record(id, obs.Accept, 0)
	pl.Record(id, obs.QueueWait, 100*time.Microsecond)
	pl.Record(id, obs.HeaderRead, 0)
	pl.Record(id, obs.Parse, 50*time.Microsecond)
	pl.Record(id, obs.Handler, 2*time.Millisecond)
	pl.Record(id, obs.FirstByte, 3*time.Millisecond)
	pl.Record(id, obs.WriteComplete, 400*time.Microsecond)
	pl.Record(id, obs.Close, 0)
	pl.Record(0, obs.Shed, 0)
	return pl
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// The /stats text is a wire contract scraped by wload and EXPERIMENTS.md
// recipes: field names, order, and formatting are pinned by golden files,
// one per server (their counter sections differ).
func TestRenderStatsGoldenCore(t *testing.T) {
	fields := core.StatsFields(core.Stats{
		Accepted: 12, Replies: 11, BytesOut: 34567, NotFound: 2, BadRequest: 1,
		ConnsOpen: 3, IdleCloses: 4, Shed: 1, HeaderTimeouts: 1,
		NotModified: 5, SendfileBytes: 1024, HandlerPanics: 1,
	})
	var b bytes.Buffer
	obs.RenderStats(&b, fields, seedPlane())
	checkGolden(t, "stats_core.golden", b.Bytes())
}

func TestRenderStatsGoldenMt(t *testing.T) {
	fields := mtserver.StatsFields(mtserver.Stats{
		Accepted: 22, Replies: 21, BytesOut: 7890, IdleCloses: 6, BadRequest: 2,
		ConnsOpen: 4, Shed: 3, NotModified: 7, SendfileBytes: 2048, HandlerPanics: 2,
	})
	var b bytes.Buffer
	obs.RenderStats(&b, fields, seedPlane())
	checkGolden(t, "stats_mt.golden", b.Bytes())
}

func TestRenderStatsNilPlane(t *testing.T) {
	var b bytes.Buffer
	obs.RenderStats(&b, []obs.Field{{Name: "accepted", Value: 1}}, nil)
	if got := b.String(); got != "server.accepted 1\n" {
		t.Fatalf("nil-plane stats rendered %q", got)
	}
}

// TestAdminEndpoint exercises the real listener: /stats and /trace over
// HTTP, filter errors as 400s, and pprof's index responding.
func TestAdminEndpoint(t *testing.T) {
	pl := seedPlane()
	ad, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Stats: func() []obs.Field { return []obs.Field{{Name: "accepted", Value: 42}} },
		Plane: pl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ad.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + ad.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/stats")
	if code != 200 || !strings.Contains(body, "server.accepted 42\n") {
		t.Fatalf("/stats: %d %q", code, body)
	}
	if !strings.Contains(body, "phase.handler.count 1\n") || !strings.Contains(body, "trace.open 0\n") {
		t.Fatalf("/stats missing phase/trace sections: %q", body)
	}

	code, body = get("/trace?kind=close")
	if code != 200 || !strings.Contains(body, "close") {
		t.Fatalf("/trace?kind=close: %d %q", code, body)
	}
	if strings.Contains(body, "accept") {
		t.Fatalf("/trace filter leaked other kinds: %q", body)
	}

	code, _ = get("/trace?bogus=1")
	if code != http.StatusBadRequest {
		t.Fatalf("/trace with bad filter: status %d, want 400", code)
	}

	code, body = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}

	if _, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{}); err == nil {
		t.Fatal("NewAdmin accepted a config without Stats")
	}
}
