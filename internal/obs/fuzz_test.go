package obs_test

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// FuzzTraceFilter is the admin plane's request-parser fuzz target: the
// /trace query parser takes attacker-controlled input from an HTTP query
// string, so it must never panic, and an accepted filter must behave
// sanely when applied. Seeds follow the internal/httpwire pattern: the
// corpus runs as a regular test; `go test -fuzz=FuzzTraceFilter
// ./internal/obs` explores further.
func FuzzTraceFilter(f *testing.F) {
	seeds := []string{
		"",
		"conn=12",
		"kind=close",
		"kind=header-read",
		"last=100",
		"conn=1&kind=accept&last=5",
		"conn=18446744073709551615",
		"&&&",
		"conn=abc",
		"kind=nope",
		"last=-1",
		"bogus=1",
		"conn",
		"=3",
		"conn=1&conn=2",
		"kind=close&last=0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	evs := []obs.Event{
		{At: 1, Conn: 1, Kind: obs.Accept},
		{At: 2, Conn: 1, Kind: obs.QueueWait, Value: time.Millisecond},
		{At: 3, Conn: 2, Kind: obs.Accept},
		{At: 4, Conn: 2, Kind: obs.Close},
		{At: 5, Conn: 1, Kind: obs.Close},
	}
	f.Fuzz(func(t *testing.T, raw string) {
		flt, err := obs.ParseTraceFilter(raw)
		if err != nil {
			// Rejected input must reject loudly, not half-parse: the
			// returned filter is the zero value.
			if flt != (obs.Filter{}) {
				t.Fatalf("ParseTraceFilter(%q) errored but returned %+v", raw, flt)
			}
			return
		}
		if flt.Last < 0 {
			t.Fatalf("ParseTraceFilter(%q) accepted negative last %d", raw, flt.Last)
		}
		out := flt.Apply(evs)
		if len(out) > len(evs) {
			t.Fatalf("filter %+v grew the event set: %d > %d", flt, len(out), len(evs))
		}
		if flt.Last > 0 && len(out) > flt.Last {
			t.Fatalf("filter %+v kept %d events, cap was %d", flt, len(out), flt.Last)
		}
		for _, ev := range out {
			if !flt.Keep(ev) {
				t.Fatalf("filter %+v returned event it should drop: %+v", flt, ev)
			}
		}
	})
}
