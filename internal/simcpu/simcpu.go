// Package simcpu models the SUT's processors: P identical CPUs shared by
// all runnable threads under processor sharing (the fluid limit of a
// preemptive round-robin scheduler), with per-job overhead that grows with
// the number of runnable threads (run-queue scanning + context switches)
// and with the total thread population (memory footprint). These two
// overheads are what make Apache's 4096- and 6000-thread configurations
// degrade in the paper while the event-driven server's 1–2 workers do not.
//
// The implementation uses the classic virtual-time trick for processor
// sharing: a global virtual clock V advances at the per-job service rate
// min(1, P/n(t)); a job arriving with service demand S completes when V
// reaches V_arrival + S. Every arrival and departure is O(log n), so
// simulating thousands of threads is cheap.
package simcpu

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Params are the machine's cost knobs. All times are seconds of CPU time.
type Params struct {
	// Processors is the number of CPUs (1 for the paper's UP runs, 4 for
	// the SMP runs).
	Processors int
	// SwitchOverhead inflates each job by this fraction per e-fold of
	// runnable threads: factor 1 + SwitchOverhead*ln(1+runnable). It
	// models context-switch and run-queue-scan cost.
	SwitchOverhead float64
	// MemThreshold is the thread count beyond which the working set no
	// longer fits and jobs slow down (thread stacks + connection state).
	MemThreshold int
	// MemPenaltyPerK inflates each job by this fraction per 1000 threads
	// beyond MemThreshold.
	MemPenaltyPerK float64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Processors <= 0 {
		return fmt.Errorf("simcpu: Processors must be positive, got %d", p.Processors)
	}
	if p.SwitchOverhead < 0 || p.MemPenaltyPerK < 0 {
		return fmt.Errorf("simcpu: overheads must be non-negative")
	}
	if p.MemThreshold < 0 {
		return fmt.Errorf("simcpu: MemThreshold must be non-negative")
	}
	return nil
}

// Job is one CPU burst submitted to the pool.
type Job struct {
	targetV float64
	index   int
	done    func()
}

type jobHeap []*Job

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return h[i].targetV < h[j].targetV }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *jobHeap) Push(x any)        { j := x.(*Job); j.index = len(*h); *h = append(*h, j) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}

// Pool is the shared-CPU execution resource. Not safe for concurrent use;
// it lives inside a single-threaded simulation.
type Pool struct {
	engine Engine
	params Params

	jobs       jobHeap
	v          float64 // virtual time
	lastUpdate sim.Time
	completion *sim.Event

	totalThreads int

	busyIntegral float64 // ∫ min(n, P) dt — for utilization reporting
	doneJobs     uint64
	doneWork     float64 // CPU-seconds actually charged (incl. overhead)
}

// Engine is the subset of sim.Engine the pool needs; declared as an
// interface so tests can interpose, and satisfied by *sim.Engine.
type Engine interface {
	Now() sim.Time
	Schedule(delay sim.Duration, fn func()) *sim.Event
	Cancel(ev *sim.Event)
}

var _ Engine = (*sim.Engine)(nil)

// NewPool returns a CPU pool on the given engine. It panics on invalid
// params (construction-time programming error).
func NewPool(engine Engine, params Params) *Pool {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Pool{engine: engine, params: params, lastUpdate: engine.Now()}
}

// SetThreadCount tells the pool how many OS threads exist in the server
// process (runnable or not); it drives the memory-pressure penalty.
func (p *Pool) SetThreadCount(n int) {
	if n < 0 {
		n = 0
	}
	p.totalThreads = n
}

// Runnable returns the number of jobs currently consuming CPU.
func (p *Pool) Runnable() int { return len(p.jobs) }

// Utilization returns mean busy processors over [0, now] divided by P.
func (p *Pool) Utilization() float64 {
	now := float64(p.engine.Now())
	if now <= 0 {
		return 0
	}
	p.advance()
	return p.busyIntegral / now / float64(p.params.Processors)
}

// CompletedJobs returns the number of finished CPU bursts.
func (p *Pool) CompletedJobs() uint64 { return p.doneJobs }

// ChargedCPUSeconds returns total CPU time consumed including overhead.
func (p *Pool) ChargedCPUSeconds() float64 { return p.doneWork }

// OverheadFactor returns the inflation applied to a job submitted when
// `runnable` threads are runnable and the configured thread population is
// resident. Exposed for calibration tests.
func (p *Pool) OverheadFactor(runnable int) float64 {
	f := 1 + p.params.SwitchOverhead*math.Log1p(float64(runnable))
	if p.totalThreads > p.params.MemThreshold && p.params.MemThreshold > 0 {
		f += p.params.MemPenaltyPerK * float64(p.totalThreads-p.params.MemThreshold) / 1000
	}
	return f
}

// rate returns the current per-job service rate.
func (p *Pool) rate() float64 {
	n := len(p.jobs)
	if n == 0 {
		return 0
	}
	r := float64(p.params.Processors) / float64(n)
	if r > 1 {
		r = 1
	}
	return r
}

// advance moves the virtual clock up to engine.Now().
func (p *Pool) advance() {
	now := p.engine.Now()
	dt := float64(now - p.lastUpdate)
	if dt > 0 {
		n := len(p.jobs)
		if n > 0 {
			p.v += p.rate() * dt
			busy := float64(n)
			if busy > float64(p.params.Processors) {
				busy = float64(p.params.Processors)
			}
			p.busyIntegral += busy * dt
		}
	}
	p.lastUpdate = now
}

// Submit queues a CPU burst of `service` CPU-seconds (pre-overhead) and
// invokes done when it completes. Zero-service jobs complete on the next
// event boundary. Returns the handle (opaque; jobs cannot be canceled —
// a CPU burst, once started, runs to completion in this model).
func (p *Pool) Submit(service float64, done func()) *Job {
	if service < 0 || math.IsNaN(service) {
		panic(fmt.Sprintf("simcpu: invalid service demand %v", service))
	}
	if done == nil {
		panic("simcpu: nil completion callback")
	}
	p.advance()
	charged := service * p.OverheadFactor(len(p.jobs)+1)
	j := &Job{targetV: p.v + charged, done: done}
	p.doneWork += charged
	heap.Push(&p.jobs, j)
	p.rearm()
	return j
}

// rearm schedules the completion event for the earliest-finishing job.
func (p *Pool) rearm() {
	if p.completion != nil {
		p.engine.Cancel(p.completion)
		p.completion = nil
	}
	if len(p.jobs) == 0 {
		return
	}
	remaining := p.jobs[0].targetV - p.v
	if remaining < 0 {
		remaining = 0
	}
	dt := remaining / p.rate()
	p.completion = p.engine.Schedule(dt, p.complete)
}

// complete pops every job whose virtual target has been reached.
func (p *Pool) complete() {
	p.completion = nil
	p.advance()
	if len(p.jobs) == 0 {
		return
	}
	// The completion event always corresponds to the current head (every
	// arrival re-arms), so the head is done even if float rounding left
	// p.v a hair short — without this, sub-ULP remainders at large
	// simulation times would re-arm forever without advancing the clock.
	head := heap.Pop(&p.jobs).(*Job)
	if head.targetV > p.v {
		p.v = head.targetV
	}
	finished := []*Job{head}
	const eps = 1e-9
	for len(p.jobs) > 0 && p.jobs[0].targetV <= p.v+eps {
		finished = append(finished, heap.Pop(&p.jobs).(*Job))
	}
	p.rearm()
	for _, j := range finished {
		p.doneJobs++
		j.done()
	}
}
