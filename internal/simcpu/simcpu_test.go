package simcpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newPool(t testing.TB, procs int) (*sim.Engine, *Pool) {
	t.Helper()
	e := sim.NewEngine()
	p := NewPool(e, Params{Processors: procs})
	return e, p
}

func TestSingleJobRunsAtFullSpeed(t *testing.T) {
	e, p := newPool(t, 1)
	var doneAt sim.Time = -1
	p.Submit(2.0, func() { doneAt = e.Now() })
	e.Run()
	if math.Abs(float64(doneAt)-2.0) > 1e-9 {
		t.Fatalf("job finished at %v, want 2.0", doneAt)
	}
}

func TestTwoJobsShareOneCPU(t *testing.T) {
	e, p := newPool(t, 1)
	var first, second sim.Time = -1, -1
	p.Submit(1.0, func() { first = e.Now() })
	p.Submit(1.0, func() { second = e.Now() })
	e.Run()
	// Equal demands sharing one CPU both finish at t=2.
	if math.Abs(float64(first)-2.0) > 1e-9 || math.Abs(float64(second)-2.0) > 1e-9 {
		t.Fatalf("finish times %v, %v; want 2.0, 2.0", first, second)
	}
}

func TestUnequalJobsProcessorSharing(t *testing.T) {
	e, p := newPool(t, 1)
	var short, long sim.Time = -1, -1
	p.Submit(1.0, func() { short = e.Now() })
	p.Submit(3.0, func() { long = e.Now() })
	e.Run()
	// Short job: shares until it has 1.0 of service at t=2. Long job then
	// runs alone: has 1.0 done at t=2, needs 2 more → t=4.
	if math.Abs(float64(short)-2.0) > 1e-9 {
		t.Errorf("short finished at %v, want 2.0", short)
	}
	if math.Abs(float64(long)-4.0) > 1e-9 {
		t.Errorf("long finished at %v, want 4.0", long)
	}
}

func TestMultipleCPUsRunJobsInParallel(t *testing.T) {
	e, p := newPool(t, 4)
	times := make([]sim.Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		p.Submit(1.0, func() { times[i] = e.Now() })
	}
	e.Run()
	for i, ft := range times {
		if math.Abs(float64(ft)-1.0) > 1e-9 {
			t.Fatalf("job %d finished at %v, want 1.0 (4 CPUs, 4 jobs)", i, ft)
		}
	}
}

func TestFiveJobsOnFourCPUs(t *testing.T) {
	e, p := newPool(t, 4)
	var last sim.Time
	for i := 0; i < 5; i++ {
		p.Submit(1.0, func() { last = e.Now() })
	}
	e.Run()
	// 5 CPU-seconds of demand on 4 CPUs, perfectly shared: all at t=1.25.
	if math.Abs(float64(last)-1.25) > 1e-9 {
		t.Fatalf("last finished at %v, want 1.25", last)
	}
}

func TestLateArrival(t *testing.T) {
	e, p := newPool(t, 1)
	var a, b sim.Time = -1, -1
	p.Submit(2.0, func() { a = e.Now() })
	e.Schedule(1.0, func() {
		p.Submit(0.5, func() { b = e.Now() })
	})
	e.Run()
	// Job A runs alone for 1s (1.0 done). Then shares: each gets 0.5/s.
	// B needs 0.5 → finishes at t=2. A has 1.5 done at t=2, runs alone,
	// finishes at t=2.5.
	if math.Abs(float64(b)-2.0) > 1e-9 {
		t.Errorf("B finished at %v, want 2.0", b)
	}
	if math.Abs(float64(a)-2.5) > 1e-9 {
		t.Errorf("A finished at %v, want 2.5", a)
	}
}

func TestZeroServiceJobCompletes(t *testing.T) {
	e, p := newPool(t, 1)
	done := false
	p.Submit(0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-service job never completed")
	}
}

func TestThroughputConservation(t *testing.T) {
	// Work conservation: total demand D on P processors with jobs always
	// available finishes in exactly D/P.
	e, p := newPool(t, 4)
	const jobs = 1000
	const each = 0.01
	finished := 0
	for i := 0; i < jobs; i++ {
		p.Submit(each, func() { finished++ })
	}
	e.Run()
	want := jobs * each / 4
	if math.Abs(float64(e.Now())-want) > 1e-6 {
		t.Fatalf("all work done at %v, want %v", e.Now(), want)
	}
	if finished != jobs {
		t.Fatalf("finished %d, want %d", finished, jobs)
	}
}

func TestUtilization(t *testing.T) {
	e, p := newPool(t, 2)
	p.Submit(1.0, func() {}) // one job on two CPUs: 50% utilization
	e.Run()
	if u := p.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestOverheadFactorGrowsWithRunnable(t *testing.T) {
	e := sim.NewEngine()
	p := NewPool(e, Params{Processors: 1, SwitchOverhead: 0.05})
	f1 := p.OverheadFactor(1)
	f100 := p.OverheadFactor(100)
	f5000 := p.OverheadFactor(5000)
	if !(f1 < f100 && f100 < f5000) {
		t.Fatalf("overhead not increasing: %v %v %v", f1, f100, f5000)
	}
	if f1 < 1 {
		t.Fatalf("overhead factor below 1: %v", f1)
	}
}

func TestMemoryPenaltyAppliesBeyondThreshold(t *testing.T) {
	e := sim.NewEngine()
	p := NewPool(e, Params{Processors: 1, MemThreshold: 1000, MemPenaltyPerK: 0.5})
	p.SetThreadCount(500)
	below := p.OverheadFactor(1)
	p.SetThreadCount(3000)
	above := p.OverheadFactor(1)
	if below != 1 {
		t.Errorf("penalty below threshold: factor %v", below)
	}
	if math.Abs(above-(1+0.5*2)) > 1e-9 {
		t.Errorf("penalty above threshold = %v, want 2.0", above)
	}
}

func TestOverheadSlowsCompletion(t *testing.T) {
	e := sim.NewEngine()
	p := NewPool(e, Params{Processors: 1, SwitchOverhead: 0.1})
	var doneAt sim.Time
	p.Submit(1.0, func() { doneAt = e.Now() })
	e.Run()
	want := 1 * (1 + 0.1*math.Log1p(1))
	if math.Abs(float64(doneAt)-want) > 1e-9 {
		t.Fatalf("job with overhead finished at %v, want %v", doneAt, want)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Processors: 0},
		{Processors: 1, SwitchOverhead: -1},
		{Processors: 1, MemPenaltyPerK: -1},
		{Processors: 1, MemThreshold: -5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if err := (Params{Processors: 4}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestSubmitPanics(t *testing.T) {
	e, p := newPool(t, 1)
	_ = e
	for _, fn := range []func(){
		func() { p.Submit(-1, func() {}) },
		func() { p.Submit(math.NaN(), func() {}) },
		func() { p.Submit(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCountersAdvance(t *testing.T) {
	e, p := newPool(t, 1)
	for i := 0; i < 10; i++ {
		p.Submit(0.1, func() {})
	}
	e.Run()
	if p.CompletedJobs() != 10 {
		t.Fatalf("completed = %d, want 10", p.CompletedJobs())
	}
	if math.Abs(p.ChargedCPUSeconds()-1.0) > 1e-9 {
		t.Fatalf("charged = %v, want 1.0", p.ChargedCPUSeconds())
	}
}

// Property: with any batch of job demands on one CPU and no overhead, the
// makespan equals the sum of demands (work conservation) and every job's
// completion time is at least its own demand.
func TestQuickWorkConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		e, p := sim.NewEngine(), (*Pool)(nil)
		p = NewPool(e, Params{Processors: 1})
		total := 0.0
		type rec struct {
			demand float64
			at     sim.Time
		}
		recs := make([]*rec, len(raw))
		for i, r := range raw {
			d := float64(r%1000)/1000 + 0.001
			total += d
			rc := &rec{demand: d}
			recs[i] = rc
			p.Submit(d, func() { rc.at = e.Now() })
		}
		e.Run()
		if math.Abs(float64(e.Now())-total) > 1e-6*float64(len(raw)) {
			return false
		}
		for _, rc := range recs {
			if float64(rc.at) < rc.demand-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSubmitComplete(b *testing.B) {
	e := sim.NewEngine()
	p := NewPool(e, Params{Processors: 4, SwitchOverhead: 0.02})
	n := 0
	var feed func()
	feed = func() {
		n++
		if n < b.N {
			p.Submit(0.001, feed)
		}
	}
	p.Submit(0.001, feed)
	b.ResetTimer()
	e.Run()
}
