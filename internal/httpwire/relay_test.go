package httpwire

import (
	"strings"
	"testing"
	"time"
)

func TestForwardHeaders(t *testing.T) {
	req := &Request{
		Method: "GET", Path: "/obj/1", Proto: "HTTP/1.1",
		Headers: []Header{
			{Name: "Host", Value: "sut"},
			{Name: "Connection", Value: "keep-alive"},
			{Name: "Keep-Alive", Value: "timeout=5"},
			{Name: "User-Agent", Value: "loadgen/1.0"},
			{Name: "Via", Value: "1.0 edge"},
			{Name: "X-Forwarded-For", Value: "10.1.2.3"},
		},
	}
	out := ForwardHeaders(req, "1.1 nioproxy", "127.0.0.1")
	get := func(name string) (string, bool) {
		for _, h := range out {
			if equalFold(h.Name, name) {
				return h.Value, true
			}
		}
		return "", false
	}
	if _, found := get("Connection"); found {
		t.Fatal("Connection forwarded")
	}
	if _, found := get("Keep-Alive"); found {
		t.Fatal("Keep-Alive forwarded")
	}
	if v, _ := get("Host"); v != "sut" {
		t.Fatalf("Host = %q", v)
	}
	if v, _ := get("Via"); v != "1.0 edge, 1.1 nioproxy" {
		t.Fatalf("Via = %q, want chain preserved and extended", v)
	}
	if v, _ := get("X-Forwarded-For"); v != "10.1.2.3, 127.0.0.1" {
		t.Fatalf("X-Forwarded-For = %q", v)
	}

	// Without prior provenance, the relay's own entries start the lists.
	out = ForwardHeaders(&Request{Headers: []Header{{Name: "Host", Value: "h"}}}, "1.1 nioproxy", "192.168.0.9")
	joined := ""
	for _, h := range out {
		joined += h.Name + ":" + h.Value + ";"
	}
	if joined != "Host:h;Via:1.1 nioproxy;X-Forwarded-For:192.168.0.9;" {
		t.Fatalf("unexpected headers %q", joined)
	}
}

func TestAppendRequestHeadRoundTrips(t *testing.T) {
	wire := AppendRequestHead(nil, "GET", "/obj/7", "HTTP/1.1", []Header{
		{Name: "Host", Value: "sut"},
		{Name: "Via", Value: "1.1 nioproxy"},
	})
	var p Parser
	reqs, err := p.Feed(nil, wire)
	if err != nil || len(reqs) != 1 {
		t.Fatalf("re-parse: %d reqs, err %v (wire %q)", len(reqs), err, wire)
	}
	r := reqs[0]
	if r.Method != "GET" || r.Path != "/obj/7" || r.Proto != "HTTP/1.1" {
		t.Fatalf("round-trip mangled request line: %+v", r)
	}
	if v, _ := r.Get("Via"); v != "1.1 nioproxy" {
		t.Fatalf("Via = %q", v)
	}
	if !r.KeepAlive {
		t.Fatal("HTTP/1.1 head without Connection must be keep-alive")
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2004, 8, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		v    string
		want time.Duration
		ok   bool
	}{
		{"3", 3 * time.Second, true},
		{"0", 0, true},
		{" 12 ", 12 * time.Second, true},
		{"Sun, 01 Aug 2004 12:00:30 GMT", 30 * time.Second, true},
		{"Sun, 01 Aug 2004 11:00:00 GMT", 0, true}, // past date clamps to 0
		{"-5", 0, false},
		{"soon", 0, false},
		{"", 0, false},
		{"99999999999999999999", 0, false}, // overflow is unparseable
	}
	for _, c := range cases {
		resp := &Response{Headers: []Header{{Name: "Retry-After", Value: c.v}}}
		d, ok := ParseRetryAfter(resp, now)
		if ok != c.ok || d != c.want {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.v, d, ok, c.want, c.ok)
		}
	}
	if _, ok := ParseRetryAfter(&Response{}, now); ok {
		t.Error("absent header parsed ok")
	}
}

func TestStatusTextBadGateway(t *testing.T) {
	if s := StatusText(502); s != "Bad Gateway" {
		t.Fatalf("StatusText(502) = %q", s)
	}
	head := AppendResponseHeaderExtra(nil, 502, "text/plain", 0, false,
		Header{Name: "Via", Value: "1.1 nioproxy"})
	if !strings.Contains(string(head), "HTTP/1.1 502 Bad Gateway\r\n") ||
		!strings.Contains(string(head), "\r\nVia: 1.1 nioproxy\r\n") {
		t.Fatalf("502 head malformed: %q", head)
	}
}
