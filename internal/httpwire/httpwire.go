// Package httpwire is the HTTP/1.x wire substrate shared by both live
// servers: an *incremental* request parser that can be fed arbitrary byte
// fragments (which a non-blocking reactor requires — a read may end in the
// middle of a header), and a response serializer with a cached Date
// header. Persistent connections and pipelining are supported, because
// the workload the paper generates uses both.
//
// The parser is deliberately restricted to what a static web server
// needs: request line + headers, no request bodies beyond an optional
// Content-Length skip, bounded line and header sizes.
package httpwire

import (
	"bytes"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// Limits protecting the parser from hostile or corrupt input.
const (
	// MaxLineBytes bounds the request line and any single header line.
	MaxLineBytes = 8 << 10
	// MaxHeaderCount bounds the number of headers per request.
	MaxHeaderCount = 64
	// MaxBodyBytes bounds an optional request body we are asked to skip.
	MaxBodyBytes = 1 << 20
)

// Request is one parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Proto   string // "HTTP/1.0" or "HTTP/1.1"
	Headers []Header
	// KeepAlive reports whether the connection should persist after the
	// response, per the HTTP/1.0 and 1.1 rules.
	KeepAlive bool
}

// Header is a single header field.
type Header struct {
	Name  string
	Value string
}

// Get returns the first header with the given case-insensitive name.
//
//nio:hot
func (r *Request) Get(name string) (string, bool) {
	for _, h := range r.Headers {
		if equalFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// equalFold is an allocation-free ASCII case-insensitive compare.
//
//nio:hot
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// ParseError describes malformed input; servers answer it with 400.
type ParseError struct {
	Reason string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return "httpwire: " + e.Reason }

func parseErr(format string, args ...any) error {
	return &ParseError{Reason: fmt.Sprintf(format, args...)}
}

// parserState is the incremental parser's position in the grammar.
type parserState int

const (
	stRequestLine parserState = iota
	stHeaders
	stBody
)

// Parser converts a byte stream into requests. Feed it whatever the
// socket produced; it buffers partial lines internally. Not safe for
// concurrent use — each connection owns one parser.
type Parser struct {
	state    parserState
	buf      []byte
	cur      Request
	bodyLeft int64
	// counters for diagnostics
	parsed int64
}

// Reset returns the parser to its initial state, retaining the buffer's
// capacity (connection reuse in a pool).
func (p *Parser) Reset() {
	p.state = stRequestLine
	p.buf = p.buf[:0]
	p.cur = Request{}
	p.bodyLeft = 0
}

// Parsed returns how many complete requests this parser has produced.
func (p *Parser) Parsed() int64 { return p.parsed }

// Pending reports whether the parser holds a partially received request
// (buffered bytes or mid-grammar state). This is the condition a
// header-read timeout guards: a peer that opened a request but never
// finishes it is pinning parser buffers.
func (p *Parser) Pending() bool { return len(p.buf) > 0 || p.state != stRequestLine }

// Feed consumes data and appends any completed requests to dst, returning
// the extended slice. A non-nil error means the stream is unrecoverable
// (the connection should be answered with 400 and closed).
//
//nio:hot
func (p *Parser) Feed(dst []*Request, data []byte) ([]*Request, error) {
	p.buf = append(p.buf, data...)
	for {
		switch p.state {
		case stBody:
			n := int64(len(p.buf))
			if n >= p.bodyLeft {
				p.buf = p.buf[p.bodyLeft:]
				p.bodyLeft = 0
				p.state = stRequestLine
				continue
			}
			p.bodyLeft -= n
			p.buf = p.buf[:0]
			return dst, nil
		default:
			line, rest, ok := cutLine(p.buf)
			if !ok {
				if len(p.buf) > MaxLineBytes {
					return dst, parseErr("line exceeds %d bytes", MaxLineBytes)
				}
				return dst, nil
			}
			p.buf = rest
			done, err := p.consumeLine(line)
			if err != nil {
				return dst, err
			}
			if done {
				req := p.cur
				p.cur = Request{}
				p.parsed++
				dst = append(dst, &req)
			}
		}
	}
}

// cutLine splits buf at the first LF, trimming an optional CR. ok is
// false when no complete line is buffered yet.
//
//nio:hot
func cutLine(buf []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		return nil, buf, false
	}
	line = buf[:i]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, buf[i+1:], true
}

// consumeLine advances the state machine by one line; done reports a
// completed request.
//
//nio:hot
func (p *Parser) consumeLine(line []byte) (done bool, err error) {
	if len(line) > MaxLineBytes {
		return false, parseErr("line exceeds %d bytes", MaxLineBytes)
	}
	switch p.state {
	case stRequestLine:
		if len(line) == 0 {
			return false, nil // tolerate leading blank lines (RFC 9112 §2.2)
		}
		if err := parseRequestLine(line, &p.cur); err != nil {
			return false, err
		}
		p.state = stHeaders
		return false, nil
	case stHeaders:
		if len(line) == 0 {
			p.finishHeaders()
			if p.bodyLeft > 0 {
				p.state = stBody
			} else {
				p.state = stRequestLine
			}
			return true, nil
		}
		if len(p.cur.Headers) >= MaxHeaderCount {
			return false, parseErr("more than %d headers", MaxHeaderCount)
		}
		name, value, err := parseHeaderLine(line)
		if err != nil {
			return false, err
		}
		p.cur.Headers = append(p.cur.Headers, Header{Name: name, Value: value})
		if equalFold(name, "Content-Length") {
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil || n < 0 || n > MaxBodyBytes {
				return false, parseErr("bad Content-Length %q", value)
			}
			p.bodyLeft = n
		}
		return false, nil
	default:
		return false, parseErr("internal: consumeLine in body state")
	}
}

func parseRequestLine(line []byte, req *Request) error {
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 <= 0 {
		return parseErr("malformed request line %q", line)
	}
	sp2 := bytes.IndexByte(line[sp1+1:], ' ')
	if sp2 <= 0 {
		return parseErr("malformed request line %q", line)
	}
	sp2 += sp1 + 1
	req.Method = string(line[:sp1])
	req.Path = string(line[sp1+1 : sp2])
	req.Proto = string(line[sp2+1:])
	switch req.Proto {
	case "HTTP/1.1", "HTTP/1.0":
	default:
		return parseErr("unsupported protocol %q", req.Proto)
	}
	if len(req.Path) == 0 || req.Path[0] != '/' && req.Path != "*" {
		return parseErr("bad request target %q", req.Path)
	}
	return nil
}

func parseHeaderLine(line []byte) (name, value string, err error) {
	i := bytes.IndexByte(line, ':')
	if i <= 0 {
		return "", "", parseErr("malformed header %q", line)
	}
	name = string(line[:i])
	v := line[i+1:]
	for len(v) > 0 && (v[0] == ' ' || v[0] == '\t') {
		v = v[1:]
	}
	for len(v) > 0 && (v[len(v)-1] == ' ' || v[len(v)-1] == '\t') {
		v = v[:len(v)-1]
	}
	return name, string(v), nil
}

// finishHeaders resolves keep-alive per the protocol rules.
//
//nio:hot
func (p *Parser) finishHeaders() {
	conn, _ := p.cur.Get("Connection")
	switch p.cur.Proto {
	case "HTTP/1.1":
		p.cur.KeepAlive = !equalFold(conn, "close")
	default: // HTTP/1.0
		p.cur.KeepAlive = equalFold(conn, "keep-alive")
	}
}

// ---------------------------------------------------------------------
// Response serialization
// ---------------------------------------------------------------------

// StatusText returns the reason phrase for the handful of statuses a
// static server emits.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 408:
		return "Request Timeout"
	case 500:
		return "Internal Server Error"
	case 501:
		return "Not Implemented"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

// dateCache caches the formatted Date header; formatting RFC 1123 on
// every response measurably costs under load.
type dateCache struct {
	v atomic.Value // string
}

var httpDate dateCache

// DateString returns the current RFC 1123 date, refreshed at most once a
// second by RefreshDate (the servers tick it); it is initialized lazily.
//
//nio:hot
func DateString() string {
	if s, ok := httpDate.v.Load().(string); ok && s != "" {
		return s
	}
	return RefreshDate(time.Now())
}

// RefreshDate formats and caches the Date header for t.
func RefreshDate(t time.Time) string {
	s := t.UTC().Format(time.RFC1123)
	// RFC 9110 wants "GMT", Go's RFC1123 produces "UTC".
	if len(s) >= 3 && s[len(s)-3:] == "UTC" {
		s = s[:len(s)-3] + "GMT"
	}
	httpDate.v.Store(s)
	return s
}

// AppendResponseHeader serializes a response head into dst and returns
// the extended slice. keepAlive controls the Connection header;
// contentLen is required (static server — always known).
//
//nio:hot
func AppendResponseHeader(dst []byte, code int, contentType string, contentLen int64, keepAlive bool) []byte {
	return AppendResponseHeaderValidators(dst, code, contentType, contentLen, keepAlive, "", "")
}

// AppendResponseHeaderExtra is AppendResponseHeader plus arbitrary
// additional header fields, emitted just before the Connection header —
// e.g. Retry-After on a shed 503. Names and values must already be
// valid header text; nothing is escaped.
//
//nio:hot
func AppendResponseHeaderExtra(dst []byte, code int, contentType string, contentLen int64, keepAlive bool, extra ...Header) []byte {
	return appendHead(dst, code, contentType, contentLen, keepAlive, "", "", extra)
}

// AppendResponseHeaderValidators is AppendResponseHeader plus cache
// validators: non-empty etag and lastModified (a preformatted HTTP-date)
// are emitted as ETag and Last-Modified. A 304 carries its validators
// but no Content-Length — it has no body by definition, and repeating
// the entity length would only invite client disagreement about framing.
//
//nio:hot
func AppendResponseHeaderValidators(dst []byte, code int, contentType string, contentLen int64, keepAlive bool, etag, lastModified string) []byte {
	return appendHead(dst, code, contentType, contentLen, keepAlive, etag, lastModified, nil)
}

// appendHead is the single serialization path under the three public
// Append wrappers: pure appends into the caller's buffer, no
// intermediate allocation.
//
//nio:hot
func appendHead(dst []byte, code int, contentType string, contentLen int64, keepAlive bool, etag, lastModified string, extra []Header) []byte {
	dst = append(dst, "HTTP/1.1 "...)
	dst = strconv.AppendInt(dst, int64(code), 10)
	dst = append(dst, ' ')
	dst = append(dst, StatusText(code)...)
	dst = append(dst, "\r\nServer: nio-go/1.0\r\nDate: "...)
	dst = append(dst, DateString()...)
	dst = append(dst, "\r\nContent-Type: "...)
	if contentType == "" {
		contentType = "application/octet-stream"
	}
	dst = append(dst, contentType...)
	if code != 304 {
		dst = append(dst, "\r\nContent-Length: "...)
		dst = strconv.AppendInt(dst, contentLen, 10)
	}
	if etag != "" {
		dst = append(dst, "\r\nETag: "...)
		dst = append(dst, etag...)
	}
	if lastModified != "" {
		dst = append(dst, "\r\nLast-Modified: "...)
		dst = append(dst, lastModified...)
	}
	for _, h := range extra {
		dst = append(dst, "\r\n"...)
		dst = append(dst, h.Name...)
		dst = append(dst, ": "...)
		dst = append(dst, h.Value...)
	}
	if keepAlive {
		dst = append(dst, "\r\nConnection: keep-alive\r\n\r\n"...)
	} else {
		dst = append(dst, "\r\nConnection: close\r\n\r\n"...)
	}
	return dst
}
