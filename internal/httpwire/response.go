package httpwire

import (
	"bytes"
	"strconv"
)

// This file is the client side of the wire: an incremental HTTP/1.x
// *response* parser. httperf parses responses itself rather than using a
// client library (it needs to count bytes and detect stalls precisely);
// the load generator here does the same, so both directions of the
// protocol are owned by this package.

// Response is one parsed response head plus body accounting. The body is
// not retained — the load generator only needs its length — but every
// body byte must be fed through the parser for framing.
type Response struct {
	Proto      string
	StatusCode int
	Headers    []Header
	// ContentLength is the declared body size (-1 if absent).
	ContentLength int64
	// BodyBytes is how many body bytes have been consumed so far.
	BodyBytes int64
	// KeepAlive reports whether the connection may be reused.
	KeepAlive bool
	// Chunked reports Transfer-Encoding: chunked framing.
	Chunked bool
}

// Get returns the first header with the given case-insensitive name.
func (r *Response) Get(name string) (string, bool) {
	for _, h := range r.Headers {
		if equalFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// respState is the response parser's position in the grammar.
type respState int

const (
	rsStatusLine respState = iota
	rsHeaders
	rsBody
	rsChunkSize
	rsChunkData
	rsChunkCRLF
	rsTrailer
	rsDone
)

// RespParser converts a response byte stream into Responses. Feed it
// whatever the socket produced. Not safe for concurrent use.
type RespParser struct {
	state    respState
	buf      []byte
	cur      *Response
	bodyLeft int64
	parsed   int64
}

// Reset clears parser state for connection reuse.
func (p *RespParser) Reset() {
	p.state = rsStatusLine
	p.buf = p.buf[:0]
	p.cur = nil
	p.bodyLeft = 0
}

// Parsed returns how many complete responses have been produced.
func (p *RespParser) Parsed() int64 { return p.parsed }

// Feed consumes data and appends completed responses to dst. Responses
// appear once fully framed (headers + body consumed). A non-nil error is
// unrecoverable for the connection.
func (p *RespParser) Feed(dst []*Response, data []byte) ([]*Response, error) {
	p.buf = append(p.buf, data...)
	for {
		switch p.state {
		case rsStatusLine, rsHeaders, rsChunkSize, rsChunkCRLF, rsTrailer:
			line, rest, ok := cutLine(p.buf)
			if !ok {
				if len(p.buf) > MaxLineBytes {
					return dst, parseErr("response line exceeds %d bytes", MaxLineBytes)
				}
				return dst, nil
			}
			p.buf = rest
			done, err := p.consumeLine(line)
			if err != nil {
				return dst, err
			}
			if done {
				dst = append(dst, p.finish())
			}
		case rsBody:
			if p.bodyLeft < 0 { // read-to-EOF body: consume everything
				p.cur.BodyBytes += int64(len(p.buf))
				p.buf = p.buf[:0]
				return dst, nil
			}
			n := int64(len(p.buf))
			if n >= p.bodyLeft {
				p.cur.BodyBytes += p.bodyLeft
				p.buf = p.buf[p.bodyLeft:]
				p.bodyLeft = 0
				dst = append(dst, p.finish())
				continue
			}
			p.cur.BodyBytes += n
			p.bodyLeft -= n
			p.buf = p.buf[:0]
			return dst, nil
		case rsChunkData:
			n := int64(len(p.buf))
			if n >= p.bodyLeft {
				p.cur.BodyBytes += p.bodyLeft
				p.buf = p.buf[p.bodyLeft:]
				p.bodyLeft = 0
				p.state = rsChunkCRLF
				continue
			}
			p.cur.BodyBytes += n
			p.bodyLeft -= n
			p.buf = p.buf[:0]
			return dst, nil
		default:
			return dst, parseErr("internal: bad response parser state %d", p.state)
		}
	}
}

// finish emits the current response and resets for the next one.
func (p *RespParser) finish() *Response {
	resp := p.cur
	p.cur = nil
	p.state = rsStatusLine
	p.parsed++
	return resp
}

func (p *RespParser) consumeLine(line []byte) (done bool, err error) {
	switch p.state {
	case rsStatusLine:
		if len(line) == 0 {
			return false, nil // tolerate stray CRLF between responses
		}
		resp, err := parseStatusLine(line)
		if err != nil {
			return false, err
		}
		p.cur = resp
		p.state = rsHeaders
		return false, nil

	case rsHeaders:
		if len(line) != 0 {
			if len(p.cur.Headers) >= MaxHeaderCount {
				return false, parseErr("more than %d headers", MaxHeaderCount)
			}
			name, value, err := parseHeaderLine(line)
			if err != nil {
				return false, err
			}
			p.cur.Headers = append(p.cur.Headers, Header{Name: name, Value: value})
			return false, nil
		}
		// Blank line: resolve framing.
		p.resolveFraming()
		switch {
		case p.cur.Chunked:
			p.state = rsChunkSize
			return false, nil
		case p.cur.ContentLength == 0 || noBody(p.cur.StatusCode):
			return true, nil
		case p.cur.ContentLength > 0:
			p.bodyLeft = p.cur.ContentLength
			p.state = rsBody
			return false, nil
		default:
			// No length, not chunked: body runs to connection close.
			p.bodyLeft = -1
			p.state = rsBody
			return false, nil
		}

	case rsChunkSize:
		size, err := parseChunkSize(line)
		if err != nil {
			return false, err
		}
		if size == 0 {
			p.state = rsTrailer
			return false, nil
		}
		p.bodyLeft = size
		p.state = rsChunkData
		return false, nil

	case rsChunkCRLF:
		if len(line) != 0 {
			return false, parseErr("missing CRLF after chunk data")
		}
		p.state = rsChunkSize
		return false, nil

	case rsTrailer:
		if len(line) == 0 {
			return true, nil // end of trailers: response complete
		}
		return false, nil // ignore trailer fields

	default:
		return false, parseErr("internal: consumeLine in state %d", p.state)
	}
}

// resolveFraming inspects the headers once they are complete.
func (p *RespParser) resolveFraming() {
	p.cur.ContentLength = -1
	if v, ok := p.cur.Get("Content-Length"); ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			p.cur.ContentLength = n
		}
	}
	if v, ok := p.cur.Get("Transfer-Encoding"); ok && equalFold(v, "chunked") {
		p.cur.Chunked = true
	}
	conn, _ := p.cur.Get("Connection")
	if p.cur.Proto == "HTTP/1.1" {
		p.cur.KeepAlive = !equalFold(conn, "close")
	} else {
		p.cur.KeepAlive = equalFold(conn, "keep-alive")
	}
	// A read-to-EOF body forbids reuse regardless of headers.
	if !p.cur.Chunked && p.cur.ContentLength < 0 && !noBody(p.cur.StatusCode) {
		p.cur.KeepAlive = false
	}
}

// noBody reports statuses that never carry a body.
func noBody(code int) bool {
	return code/100 == 1 || code == 204 || code == 304
}

func parseStatusLine(line []byte) (*Response, error) {
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 <= 0 {
		return nil, parseErr("malformed status line %q", line)
	}
	proto := string(line[:sp1])
	if proto != "HTTP/1.1" && proto != "HTTP/1.0" {
		return nil, parseErr("unsupported protocol %q", proto)
	}
	rest := line[sp1+1:]
	if len(rest) < 3 {
		return nil, parseErr("malformed status line %q", line)
	}
	code, err := strconv.Atoi(string(rest[:3]))
	if err != nil || code < 100 || code > 599 {
		return nil, parseErr("bad status code in %q", line)
	}
	return &Response{Proto: proto, StatusCode: code}, nil
}

func parseChunkSize(line []byte) (int64, error) {
	// Chunk extensions (";...") are permitted and ignored.
	if i := bytes.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	line = bytes.TrimSpace(line)
	if len(line) == 0 || len(line) > 16 {
		return 0, parseErr("bad chunk size %q", line)
	}
	n, err := strconv.ParseInt(string(line), 16, 64)
	if err != nil || n < 0 {
		return 0, parseErr("bad chunk size %q", line)
	}
	if n > MaxBodyBytes*64 {
		return 0, parseErr("chunk size %d too large", n)
	}
	return n, nil
}
