package httpwire

import (
	"strconv"
	"strings"
	"time"
)

// This file is the relay third of the wire: the header surgery an L7
// proxy performs when it forwards a request upstream (hop-by-hop
// stripping, Via and X-Forwarded-For provenance), the request-head
// serializer the proxy re-emits the rewritten request with, and the
// Retry-After parser both the proxy and the load generator use to honor
// a 503's backoff advice. Responses are deliberately NOT rewritten
// anywhere in this package: the serving tier's contract is that a
// backend's response — especially an overload 503 and its Retry-After —
// passes through byte-identical, so shed attribution can key on the Via
// header only the proxy's own responses carry.

// hopByHop reports header fields that are connection-scoped (RFC 9110
// §7.6.1) and must not be forwarded by an intermediary. Connection and
// Keep-Alive govern the downstream leg only; the proxy owns its own
// upstream connection policy.
func hopByHop(name string) bool {
	switch {
	case equalFold(name, "Connection"),
		equalFold(name, "Keep-Alive"),
		equalFold(name, "Proxy-Connection"),
		equalFold(name, "Transfer-Encoding"),
		equalFold(name, "TE"),
		equalFold(name, "Trailer"),
		equalFold(name, "Upgrade"):
		return true
	}
	return false
}

// ForwardHeaders builds the header set for relaying req upstream:
// hop-by-hop fields are dropped, Via is extended with the relaying
// intermediary's token (e.g. "1.1 nioproxy"), and X-Forwarded-For is
// extended with the downstream client's address. Existing Via and
// X-Forwarded-For values are preserved and appended to, comma-separated,
// so a chain of proxies accumulates provenance in order.
func ForwardHeaders(req *Request, via, clientAddr string) []Header {
	out := make([]Header, 0, len(req.Headers)+2)
	var prevVia, prevXFF string
	for _, h := range req.Headers {
		if hopByHop(h.Name) {
			continue
		}
		if equalFold(h.Name, "Via") {
			prevVia = joinListValue(prevVia, h.Value)
			continue
		}
		if equalFold(h.Name, "X-Forwarded-For") {
			prevXFF = joinListValue(prevXFF, h.Value)
			continue
		}
		out = append(out, h)
	}
	if via != "" {
		out = append(out, Header{Name: "Via", Value: joinListValue(prevVia, via)})
	} else if prevVia != "" {
		out = append(out, Header{Name: "Via", Value: prevVia})
	}
	if clientAddr != "" {
		out = append(out, Header{Name: "X-Forwarded-For", Value: joinListValue(prevXFF, clientAddr)})
	} else if prevXFF != "" {
		out = append(out, Header{Name: "X-Forwarded-For", Value: prevXFF})
	}
	return out
}

// joinListValue appends elem to a comma-separated list value.
func joinListValue(list, elem string) string {
	elem = strings.TrimSpace(elem)
	if list == "" {
		return elem
	}
	if elem == "" {
		return list
	}
	return list + ", " + elem
}

// AppendRequestHead serializes a request head — request line, headers,
// terminating blank line — into dst and returns the extended slice.
// Names and values must already be valid header text; nothing is
// escaped. The relay path uses this to re-emit a parsed-and-rewritten
// request upstream.
func AppendRequestHead(dst []byte, method, path, proto string, headers []Header) []byte {
	dst = append(dst, method...)
	dst = append(dst, ' ')
	dst = append(dst, path...)
	dst = append(dst, ' ')
	dst = append(dst, proto...)
	dst = append(dst, "\r\n"...)
	for _, h := range headers {
		dst = append(dst, h.Name...)
		dst = append(dst, ": "...)
		dst = append(dst, h.Value...)
		dst = append(dst, "\r\n"...)
	}
	return append(dst, "\r\n"...)
}

// ParseRetryAfter resolves a response's Retry-After header into a wait
// duration. Both standard forms are accepted (RFC 9110 §10.2.3):
// delta-seconds, and an HTTP-date resolved against now (a date in the
// past yields 0, not a negative wait). ok is false when the header is
// absent or unparseable — the caller falls back to its own default.
func ParseRetryAfter(resp *Response, now time.Time) (time.Duration, bool) {
	v, found := resp.Get("Retry-After")
	if !found {
		return 0, false
	}
	return ParseRetryAfterValue(v, now)
}

// ParseRetryAfterValue parses one Retry-After field value (see
// ParseRetryAfter).
func ParseRetryAfterValue(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	// delta-seconds: all digits. A leading sign is not grammar.
	allDigits := true
	for i := 0; i < len(v); i++ {
		if v[i] < '0' || v[i] > '9' {
			allDigits = false
			break
		}
	}
	if allDigits {
		secs, err := strconv.ParseInt(v, 10, 32)
		if err != nil {
			return 0, false // overflow: treat as unparseable
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, ok := ParseHTTPDate(v); ok {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
