package httpwire

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func feedResp(t *testing.T, p *RespParser, s string) []*Response {
	t.Helper()
	resps, err := p.Feed(nil, []byte(s))
	if err != nil {
		t.Fatalf("Feed(%q): %v", s, err)
	}
	return resps
}

func TestParseSimpleResponse(t *testing.T) {
	var p RespParser
	resps := feedResp(t, &p, "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")
	if len(resps) != 1 {
		t.Fatalf("got %d responses", len(resps))
	}
	r := resps[0]
	if r.StatusCode != 200 || r.ContentLength != 5 || r.BodyBytes != 5 {
		t.Fatalf("parsed %+v", r)
	}
	if !r.KeepAlive {
		t.Fatal("HTTP/1.1 with length should be reusable")
	}
}

func TestParsePipelinedResponses(t *testing.T) {
	var p RespParser
	wire := "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc" +
		"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n" +
		"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nxy"
	resps := feedResp(t, &p, wire)
	if len(resps) != 3 {
		t.Fatalf("got %d responses, want 3", len(resps))
	}
	if resps[1].StatusCode != 404 || resps[2].BodyBytes != 2 {
		t.Fatalf("parsed %+v %+v", resps[1], resps[2])
	}
	if p.Parsed() != 3 {
		t.Fatalf("Parsed = %d", p.Parsed())
	}
}

func TestParseFragmentedResponse(t *testing.T) {
	var p RespParser
	var resps []*Response
	var err error
	wire := "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n0123456789"
	for i := 0; i < len(wire); i += 3 {
		end := i + 3
		if end > len(wire) {
			end = len(wire)
		}
		resps, err = p.Feed(resps, []byte(wire[i:end]))
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(resps) != 1 || resps[0].BodyBytes != 10 {
		t.Fatalf("fragmented parse: %+v", resps)
	}
}

func TestParseChunkedResponse(t *testing.T) {
	var p RespParser
	wire := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n"
	resps := feedResp(t, &p, wire)
	if len(resps) != 1 {
		t.Fatalf("got %d responses", len(resps))
	}
	if resps[0].BodyBytes != 9 || !resps[0].Chunked {
		t.Fatalf("chunked parse: %+v", resps[0])
	}
	if !resps[0].KeepAlive {
		t.Fatal("chunked HTTP/1.1 should be reusable")
	}
}

func TestParseChunkedWithExtensionAndTrailer(t *testing.T) {
	var p RespParser
	wire := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n"
	resps := feedResp(t, &p, wire)
	if len(resps) != 1 || resps[0].BodyBytes != 5 {
		t.Fatalf("parse: %+v", resps)
	}
}

func TestNoBodyStatuses(t *testing.T) {
	var p RespParser
	wire := "HTTP/1.1 304 Not Modified\r\n\r\nHTTP/1.1 204 No Content\r\n\r\n"
	resps := feedResp(t, &p, wire)
	if len(resps) != 2 {
		t.Fatalf("got %d responses, want 2", len(resps))
	}
	for _, r := range resps {
		if r.BodyBytes != 0 {
			t.Fatalf("no-body status carried bytes: %+v", r)
		}
	}
}

func TestReadToEOFBody(t *testing.T) {
	var p RespParser
	resps := feedResp(t, &p, "HTTP/1.0 200 OK\r\n\r\nsome data")
	// Body runs to EOF: no complete response yet.
	if len(resps) != 0 {
		t.Fatalf("premature completion: %+v", resps)
	}
	resps, err := p.Feed(resps, []byte(" and more"))
	if err != nil || len(resps) != 0 {
		t.Fatalf("still streaming: %v %v", resps, err)
	}
}

func TestConnectionCloseHeader(t *testing.T) {
	var p RespParser
	resps := feedResp(t, &p, "HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
	if resps[0].KeepAlive {
		t.Fatal("Connection: close ignored")
	}
}

func TestResponseHeaderLookup(t *testing.T) {
	var p RespParser
	resps := feedResp(t, &p, "HTTP/1.1 200 OK\r\nContent-Length: 0\r\nServer: nio-go/1.0\r\n\r\n")
	if v, ok := resps[0].Get("SERVER"); !ok || v != "nio-go/1.0" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := resps[0].Get("Missing"); ok {
		t.Fatal("missing header found")
	}
}

func TestMalformedResponses(t *testing.T) {
	bad := []string{
		"NONSENSE 200 OK\r\n\r\n",
		"HTTP/2.0 200 OK\r\n\r\n",
		"HTTP/1.1 99 Low\r\n\r\n",
		"HTTP/1.1 banana\r\n\r\n",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloX",
	}
	for _, wire := range bad {
		var p RespParser
		resps, err := p.Feed(nil, []byte(wire))
		if err == nil && len(resps) > 0 {
			t.Errorf("accepted malformed response %q", wire)
		}
	}
}

func TestRespParserReset(t *testing.T) {
	var p RespParser
	if _, err := p.Feed(nil, []byte("HTTP/1.1 200 OK\r\nPartial")); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	resps := feedResp(t, &p, "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
	if len(resps) != 1 {
		t.Fatalf("reset parser broken: %+v", resps)
	}
}

func TestRoundTripWithRequestSerializer(t *testing.T) {
	// The response writer's output must parse with the response parser —
	// the two halves of this package agree on the wire format.
	body := strings.Repeat("x", 1234)
	wire := string(AppendResponseHeader(nil, 200, "text/plain", int64(len(body)), true)) + body
	var p RespParser
	resps := feedResp(t, &p, wire)
	if len(resps) != 1 {
		t.Fatalf("round trip: %d responses", len(resps))
	}
	r := resps[0]
	if r.StatusCode != 200 || r.BodyBytes != 1234 || !r.KeepAlive {
		t.Fatalf("round trip: %+v", r)
	}
	if ct, _ := r.Get("Content-Type"); ct != "text/plain" {
		t.Fatalf("content type %q", ct)
	}
}

// Property: the response stream parses identically under any
// fragmentation.
func TestQuickResponseFragmentation(t *testing.T) {
	wire := []byte("HTTP/1.1 200 OK\r\nContent-Length: 7\r\n\r\npayload" +
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n")
	f := func(cuts []uint8) bool {
		var p RespParser
		var got []*Response
		var err error
		prev := 0
		for _, c := range cuts {
			at := prev + int(c)%(len(wire)-prev)
			if at <= prev {
				continue
			}
			got, err = p.Feed(got, wire[prev:at])
			if err != nil {
				return false
			}
			prev = at
		}
		got, err = p.Feed(got, wire[prev:])
		if err != nil || len(got) != 2 {
			return false
		}
		return got[0].BodyBytes == 7 && got[1].BodyBytes == 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary bytes never panic the response parser.
func TestQuickResponseGarbage(t *testing.T) {
	f := func(data []byte) bool {
		var p RespParser
		_, _ = p.Feed(nil, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseResponse(b *testing.B) {
	wire := []byte(fmt.Sprintf("HTTP/1.1 200 OK\r\nServer: nio-go/1.0\r\nContent-Length: %d\r\n\r\n%s",
		4096, strings.Repeat("y", 4096)))
	var p RespParser
	out := make([]*Response, 0, 1)
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		var err error
		out, err = p.Feed(out[:0], wire)
		if err != nil {
			b.Fatal(err)
		}
	}
}
