package httpwire

import (
	"strings"
	"testing"
	"time"
)

func TestParseHTTPDate(t *testing.T) {
	want := time.Date(1994, time.November, 6, 8, 49, 37, 0, time.UTC)
	for _, s := range []string{
		"Sun, 06 Nov 1994 08:49:37 GMT",  // IMF-fixdate
		"Sunday, 06-Nov-94 08:49:37 GMT", // RFC 850
		"Sun Nov  6 08:49:37 1994",       // asctime
	} {
		got, ok := ParseHTTPDate(s)
		if !ok {
			t.Fatalf("ParseHTTPDate(%q) failed", s)
		}
		if !got.Equal(want) {
			t.Fatalf("ParseHTTPDate(%q) = %v, want %v", s, got, want)
		}
	}
	for _, s := range []string{"", "yesterday", "Sun, 06 Nov 1994", "06 Nov 1994 08:49:37"} {
		if _, ok := ParseHTTPDate(s); ok {
			t.Fatalf("ParseHTTPDate(%q) unexpectedly succeeded", s)
		}
	}
}

func TestFormatHTTPDateRoundTrip(t *testing.T) {
	orig := time.Date(2026, time.August, 6, 12, 30, 45, 0, time.UTC)
	s := FormatHTTPDate(orig)
	if !strings.HasSuffix(s, "GMT") {
		t.Fatalf("FormatHTTPDate = %q, want GMT suffix", s)
	}
	back, ok := ParseHTTPDate(s)
	if !ok || !back.Equal(orig) {
		t.Fatalf("round trip %q -> %v (ok=%v), want %v", s, back, ok, orig)
	}
}

func TestETagMatch(t *testing.T) {
	const et = `"5c1-1a2b"`
	cases := []struct {
		header string
		want   bool
	}{
		{`"5c1-1a2b"`, true},
		{`W/"5c1-1a2b"`, true}, // weak comparison
		{`*`, true},
		{` * `, true},
		{`"other"`, false},
		{`"other", "5c1-1a2b"`, true},
		{`"a" , W/"5c1-1a2b" , "b"`, true},
		{`"a", "b"`, false},
		{``, false},
		{`5c1-1a2b`, false},              // unquoted: malformed
		{`"unterminated`, false},         // unterminated: malformed
		{`"a" "5c1-1a2b"`, false},        // missing comma: scan stops
		{`"bad"tail, "5c1-1a2b"`, false}, // junk after tag: scan stops
	}
	for _, c := range cases {
		if got := ETagMatch(c.header, et); got != c.want {
			t.Errorf("ETagMatch(%q, %q) = %v, want %v", c.header, et, got, c.want)
		}
	}
	if ETagMatch(`*`, "") {
		t.Error("ETagMatch with empty etag must never match")
	}
}

func condReq(t *testing.T, headers string) *Request {
	t.Helper()
	var p Parser
	reqs, err := p.Feed(nil, []byte("GET /x HTTP/1.1\r\n"+headers+"\r\n"))
	if err != nil || len(reqs) != 1 {
		t.Fatalf("parse: %v (%d reqs)", err, len(reqs))
	}
	return reqs[0]
}

func TestNotModified(t *testing.T) {
	const et = `"abc"`
	mod := time.Date(2026, time.January, 2, 3, 4, 5, 0, time.UTC)
	fresh := FormatHTTPDate(mod)
	stale := FormatHTTPDate(mod.Add(-time.Hour))
	later := FormatHTTPDate(mod.Add(time.Hour))

	cases := []struct {
		headers string
		want    bool
	}{
		{"If-None-Match: \"abc\"\r\n", true},
		{"If-None-Match: W/\"abc\"\r\n", true},
		{"If-None-Match: \"zzz\"\r\n", false},
		{"If-Modified-Since: " + fresh + "\r\n", true},
		{"If-Modified-Since: " + later + "\r\n", true},
		{"If-Modified-Since: " + stale + "\r\n", false},
		{"If-Modified-Since: not a date\r\n", false},
		// If-None-Match wins over If-Modified-Since, both directions.
		{"If-None-Match: \"zzz\"\r\nIf-Modified-Since: " + fresh + "\r\n", false},
		{"If-None-Match: \"abc\"\r\nIf-Modified-Since: " + stale + "\r\n", true},
		{"", false},
	}
	for _, c := range cases {
		req := condReq(t, c.headers)
		if got := NotModified(req, et, mod); got != c.want {
			t.Errorf("NotModified(%q) = %v, want %v", c.headers, got, c.want)
		}
	}
	// Sub-second mtimes truncate: a client holding the same second is fresh.
	req := condReq(t, "If-Modified-Since: "+fresh+"\r\n")
	if !NotModified(req, "", mod.Add(500*time.Millisecond)) {
		t.Error("sub-second mtime skew must still revalidate")
	}
}

func TestAppendResponseHeaderValidators(t *testing.T) {
	h := string(AppendResponseHeaderValidators(nil, 200, "text/html", 42, true, `"e1"`, "Sun, 06 Nov 1994 08:49:37 GMT"))
	for _, want := range []string{
		"HTTP/1.1 200 OK\r\n",
		"Content-Length: 42\r\n",
		"ETag: \"e1\"\r\n",
		"Last-Modified: Sun, 06 Nov 1994 08:49:37 GMT\r\n",
		"Connection: keep-alive\r\n\r\n",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("header missing %q:\n%s", want, h)
		}
	}
	// 304: validators, no Content-Length.
	h = string(AppendResponseHeaderValidators(nil, 304, "text/html", 42, true, `"e1"`, ""))
	if !strings.Contains(h, "HTTP/1.1 304 Not Modified\r\n") || !strings.Contains(h, "ETag: \"e1\"\r\n") {
		t.Errorf("bad 304 head:\n%s", h)
	}
	if strings.Contains(h, "Content-Length") {
		t.Errorf("304 must not carry Content-Length:\n%s", h)
	}
	// Plain AppendResponseHeader emits no validator lines.
	h = string(AppendResponseHeader(nil, 200, "text/plain", 0, false))
	if strings.Contains(h, "ETag") || strings.Contains(h, "Last-Modified") {
		t.Errorf("validator lines leaked into plain header:\n%s", h)
	}
}

// TestRespParser304NoBody pins the client side: a 304 is fully framed at
// the blank line even though no Content-Length is present, and the
// connection stays reusable.
func TestRespParser304NoBody(t *testing.T) {
	var p RespParser
	wire := AppendResponseHeaderValidators(nil, 304, "text/html", 0, true, `"e1"`, "")
	wire = append(wire, AppendResponseHeader(nil, 200, "text/plain", 2, true)...)
	wire = append(wire, "ok"...)
	resps, err := p.Feed(nil, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Fatalf("parsed %d responses, want 2", len(resps))
	}
	if resps[0].StatusCode != 304 || resps[0].BodyBytes != 0 || !resps[0].KeepAlive {
		t.Fatalf("bad 304: %+v", resps[0])
	}
	if et, _ := resps[0].Get("ETag"); et != `"e1"` {
		t.Fatalf("304 ETag = %q", et)
	}
	if resps[1].StatusCode != 200 || resps[1].BodyBytes != 2 {
		t.Fatalf("bad follow-up: %+v", resps[1])
	}
}
