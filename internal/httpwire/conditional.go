package httpwire

import (
	"strings"
	"time"
)

// This file implements the validator half of the wire: HTTP-date
// formatting/parsing, entity-tag comparison, and the conditional-GET
// decision (If-None-Match / If-Modified-Since → 304 Not Modified). It is
// what makes a content cache observable end-to-end: a client that
// revalidates with a fresh validator costs the server a header, not a
// body.

// HTTPTimeFormat is the preferred HTTP-date layout (RFC 9110 §5.6.7).
// Unlike time.RFC1123 it pins the zone to the literal "GMT".
const HTTPTimeFormat = "Mon, 02 Jan 2006 15:04:05 GMT"

// FormatHTTPDate renders t as an HTTP-date (always GMT, as required).
func FormatHTTPDate(t time.Time) string {
	return t.UTC().Format(HTTPTimeFormat)
}

// httpDateLayouts are the three formats a server must accept (RFC 9110
// §5.6.7): IMF-fixdate, obsolete RFC 850, and ANSI C asctime.
var httpDateLayouts = []string{
	HTTPTimeFormat,
	"Monday, 02-Jan-06 15:04:05 GMT",
	time.ANSIC,
}

// ParseHTTPDate parses an HTTP-date in any of the three standard
// formats. ok is false for anything unparseable; per RFC 9110 §13.1.3 a
// recipient ignores If-Modified-Since values it cannot parse.
func ParseHTTPDate(s string) (t time.Time, ok bool) {
	for _, layout := range httpDateLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// scanETag parses one entity-tag at the start of s: an optional W/
// prefix followed by a quoted opaque string. It returns the opaque part
// including quotes but excluding any W/ (If-None-Match uses weak
// comparison, so the prefix never matters here), the unconsumed rest,
// and ok=false on malformed input.
func scanETag(s string) (tag, rest string, ok bool) {
	if strings.HasPrefix(s, "W/") {
		s = s[2:]
	}
	if len(s) < 2 || s[0] != '"' {
		return "", "", false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			return s[:i+1], s[i+1:], true
		case c == 0x21 || (0x23 <= c && c <= 0x7e) || c >= 0x80:
			// etagc: anything printable except the double quote.
		default:
			return "", "", false
		}
	}
	return "", "", false // unterminated
}

// ETagMatch reports whether the If-None-Match header value — "*" or a
// comma-separated list of entity-tags — matches etag (which must include
// its quotes, e.g. `"5c1-1a2b"`). Comparison is weak, as If-None-Match
// requires. Malformed members end the scan without matching, so a
// hostile header can never turn into a spurious 304-for-stale.
func ETagMatch(header, etag string) bool {
	if etag == "" {
		return false
	}
	s := strings.TrimSpace(header)
	if s == "*" {
		return true
	}
	for s != "" {
		tag, rest, ok := scanETag(s)
		if !ok {
			return false
		}
		if tag == etag {
			return true
		}
		// Skip optional whitespace, one comma, more whitespace.
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return false
		}
		if rest[0] != ',' {
			return false
		}
		s = strings.TrimLeft(rest[1:], " \t")
	}
	return false
}

// NotModified evaluates req's conditional headers against the
// representation's validators and reports whether a 304 may be sent
// instead of the body. If-None-Match, when present, takes precedence
// over If-Modified-Since (RFC 9110 §13.2.2); a zero modTime disables the
// date check.
func NotModified(req *Request, etag string, modTime time.Time) bool {
	if inm, ok := req.Get("If-None-Match"); ok {
		return ETagMatch(inm, etag)
	}
	ims, ok := req.Get("If-Modified-Since")
	if !ok || modTime.IsZero() {
		return false
	}
	t, ok := ParseHTTPDate(ims)
	if !ok {
		return false
	}
	// HTTP dates have second resolution; a file modified within the same
	// second as the client's copy counts as unmodified.
	return !modTime.Truncate(time.Second).After(t)
}
