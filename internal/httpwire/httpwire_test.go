package httpwire

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func feedAll(t *testing.T, p *Parser, s string) []*Request {
	t.Helper()
	reqs, err := p.Feed(nil, []byte(s))
	if err != nil {
		t.Fatalf("Feed(%q): %v", s, err)
	}
	return reqs
}

func TestParseSimpleGet(t *testing.T) {
	var p Parser
	reqs := feedAll(t, &p, "GET /obj/1 HTTP/1.1\r\nHost: sut\r\n\r\n")
	if len(reqs) != 1 {
		t.Fatalf("got %d requests", len(reqs))
	}
	r := reqs[0]
	if r.Method != "GET" || r.Path != "/obj/1" || r.Proto != "HTTP/1.1" {
		t.Fatalf("parsed %+v", r)
	}
	if !r.KeepAlive {
		t.Fatal("HTTP/1.1 should default to keep-alive")
	}
	if host, ok := r.Get("host"); !ok || host != "sut" {
		t.Fatalf("Get(host) = %q, %v", host, ok)
	}
}

func TestParseFragmented(t *testing.T) {
	var p Parser
	var reqs []*Request
	var err error
	for _, frag := range []string{"GE", "T /a", "b HTTP/1.", "1\r\nX: ", "1\r\n", "\r", "\n"} {
		reqs, err = p.Feed(reqs, []byte(frag))
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(reqs) != 1 || reqs[0].Path != "/ab" {
		t.Fatalf("fragmented parse got %+v", reqs)
	}
}

func TestParsePipelined(t *testing.T) {
	var p Parser
	wire := "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n"
	reqs := feedAll(t, &p, wire)
	if len(reqs) != 3 {
		t.Fatalf("got %d requests, want 3", len(reqs))
	}
	for i, want := range []string{"/a", "/b", "/c"} {
		if reqs[i].Path != want {
			t.Fatalf("request %d path %q, want %q", i, reqs[i].Path, want)
		}
	}
	if p.Parsed() != 3 {
		t.Fatalf("Parsed() = %d", p.Parsed())
	}
}

func TestKeepAliveRules(t *testing.T) {
	cases := []struct {
		wire string
		want bool
	}{
		{"GET / HTTP/1.1\r\n\r\n", true},
		{"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
		{"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n", false},
		{"GET / HTTP/1.0\r\n\r\n", false},
		{"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
		{"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", true},
	}
	for _, c := range cases {
		var p Parser
		reqs := feedAll(t, &p, c.wire)
		if len(reqs) != 1 {
			t.Fatalf("%q: %d requests", c.wire, len(reqs))
		}
		if reqs[0].KeepAlive != c.want {
			t.Errorf("%q: keepalive = %v, want %v", c.wire, reqs[0].KeepAlive, c.want)
		}
	}
}

func TestBareLFAccepted(t *testing.T) {
	var p Parser
	reqs := feedAll(t, &p, "GET /x HTTP/1.1\nA: b\n\n")
	if len(reqs) != 1 || reqs[0].Path != "/x" {
		t.Fatalf("bare-LF parse failed: %+v", reqs)
	}
}

func TestLeadingBlankLinesTolerated(t *testing.T) {
	var p Parser
	reqs := feedAll(t, &p, "\r\n\r\nGET /x HTTP/1.1\r\n\r\n")
	if len(reqs) != 1 {
		t.Fatalf("got %d requests", len(reqs))
	}
}

func TestContentLengthBodySkipped(t *testing.T) {
	var p Parser
	wire := "POST /form HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /next HTTP/1.1\r\n\r\n"
	reqs := feedAll(t, &p, wire)
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	if reqs[1].Path != "/next" {
		t.Fatalf("second request %+v", reqs[1])
	}
}

func TestBodySplitAcrossFeeds(t *testing.T) {
	var p Parser
	reqs := feedAll(t, &p, "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345")
	if len(reqs) != 1 {
		t.Fatalf("header not parsed")
	}
	reqs, err := p.Feed(nil, []byte("67890GET /after HTTP/1.1\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].Path != "/after" {
		t.Fatalf("request after split body: %+v", reqs)
	}
}

func TestMalformedInputs(t *testing.T) {
	bad := []string{
		"GARBAGE\r\n\r\n",
		"GET /x HTTP/2.0\r\n\r\n",
		"GET noslash HTTP/1.1\r\n\r\n",
		"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
		"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
		"GET /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
		"GET /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
	}
	for _, wire := range bad {
		var p Parser
		if _, err := p.Feed(nil, []byte(wire)); err == nil {
			t.Errorf("accepted malformed input %q", wire)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("error for %q is %T, want *ParseError", wire, err)
		}
	}
}

func TestOversizedLineRejected(t *testing.T) {
	var p Parser
	_, err := p.Feed(nil, []byte("GET /"+strings.Repeat("a", MaxLineBytes+10)))
	if err == nil {
		t.Fatal("oversized request line accepted")
	}
}

func TestTooManyHeadersRejected(t *testing.T) {
	var b strings.Builder
	b.WriteString("GET / HTTP/1.1\r\n")
	for i := 0; i <= MaxHeaderCount; i++ {
		b.WriteString("X: y\r\n")
	}
	b.WriteString("\r\n")
	var p Parser
	if _, err := p.Feed(nil, []byte(b.String())); err == nil {
		t.Fatal("header flood accepted")
	}
}

func TestReset(t *testing.T) {
	var p Parser
	if _, err := p.Feed(nil, []byte("GET /partial HTT")); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	reqs := feedAll(t, &p, "GET /fresh HTTP/1.1\r\n\r\n")
	if len(reqs) != 1 || reqs[0].Path != "/fresh" {
		t.Fatalf("reset parser state leaked: %+v", reqs)
	}
}

func TestHeaderWhitespaceTrimmed(t *testing.T) {
	var p Parser
	reqs := feedAll(t, &p, "GET / HTTP/1.1\r\nX:   padded value \t\r\n\r\n")
	v, _ := reqs[0].Get("x")
	if v != "padded value" {
		t.Fatalf("header value %q", v)
	}
}

func TestAppendResponseHeader(t *testing.T) {
	RefreshDate(time.Date(2004, 4, 26, 12, 0, 0, 0, time.UTC))
	h := string(AppendResponseHeader(nil, 200, "text/html", 1234, true))
	for _, want := range []string{
		"HTTP/1.1 200 OK\r\n",
		"Content-Length: 1234\r\n",
		"Content-Type: text/html\r\n",
		"Connection: keep-alive\r\n\r\n",
		"Date: Mon, 26 Apr 2004 12:00:00 GMT",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("header missing %q:\n%s", want, h)
		}
	}
	h = string(AppendResponseHeader(nil, 404, "", 0, false))
	if !strings.Contains(h, "404 Not Found") || !strings.Contains(h, "Connection: close") {
		t.Errorf("404 header wrong:\n%s", h)
	}
	if !strings.Contains(h, "application/octet-stream") {
		t.Errorf("default content type missing:\n%s", h)
	}
}

func TestStatusText(t *testing.T) {
	for _, code := range []int{200, 400, 404, 408, 500, 501, 503, 299} {
		if StatusText(code) == "" {
			t.Errorf("empty status text for %d", code)
		}
	}
}

func TestDateStringStable(t *testing.T) {
	a := DateString()
	b := DateString()
	if a != b || a == "" {
		t.Fatalf("date cache unstable: %q vs %q", a, b)
	}
	if !strings.HasSuffix(a, "GMT") {
		t.Fatalf("date %q does not end in GMT", a)
	}
}

// Property: a valid request stream parses identically regardless of how
// it is fragmented into Feed calls.
func TestQuickFragmentationInvariance(t *testing.T) {
	wire := []byte("GET /obj/1 HTTP/1.1\r\nHost: a\r\n\r\nGET /obj/22 HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n")
	var want []*Request
	{
		var p Parser
		var err error
		want, err = p.Feed(nil, wire)
		if err != nil || len(want) != 2 {
			t.Fatalf("baseline parse failed: %v %d", err, len(want))
		}
	}
	f := func(cuts []uint8) bool {
		var p Parser
		var got []*Request
		var err error
		prev := 0
		for _, c := range cuts {
			at := prev + int(c)%(len(wire)-prev)
			if at <= prev {
				continue
			}
			got, err = p.Feed(got, wire[prev:at])
			if err != nil {
				return false
			}
			prev = at
		}
		got, err = p.Feed(got, wire[prev:])
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Path != want[i].Path || got[i].KeepAlive != want[i].KeepAlive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the parser never panics on arbitrary bytes; it either parses
// or returns a ParseError.
func TestQuickNoPanicOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		var p Parser
		_, _ = p.Feed(nil, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseRequest(b *testing.B) {
	wire := []byte("GET /obj/123 HTTP/1.1\r\nHost: sut\r\nUser-Agent: httperf/0.8\r\nAccept: */*\r\n\r\n")
	var p Parser
	reqs := make([]*Request, 0, 1)
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		var err error
		reqs, err = p.Feed(reqs[:0], wire)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendResponseHeader(b *testing.B) {
	buf := make([]byte, 0, 256)
	for i := 0; i < b.N; i++ {
		buf = AppendResponseHeader(buf[:0], 200, "text/plain", 4096, true)
	}
}

// AppendResponseHeaderExtra must emit the extra fields where a client
// parser finds them, and leave framing (Content-Length, Connection)
// intact — the shed-503 shape both servers put on the wire.
func TestAppendResponseHeaderExtra(t *testing.T) {
	wire := AppendResponseHeaderExtra(nil, 503, "text/plain", 0, false,
		Header{Name: "Retry-After", Value: "2"})
	var p RespParser
	resps, err := p.Feed(nil, wire)
	if err != nil || len(resps) != 1 {
		t.Fatalf("Feed = (%d resps, %v), want one clean response\n%q", len(resps), err, wire)
	}
	resp := resps[0]
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if v, ok := resp.Get("Retry-After"); !ok || v != "2" {
		t.Fatalf("Retry-After = %q (present=%v), want \"2\"", v, ok)
	}
	if resp.KeepAlive {
		t.Fatal("shed response parsed as keep-alive; want Connection: close")
	}
	if resp.ContentLength != 0 {
		t.Fatalf("ContentLength = %d, want 0", resp.ContentLength)
	}
	// No extras degenerates to the plain header, byte for byte.
	plain := AppendResponseHeader(nil, 503, "text/plain", 0, false)
	bare := AppendResponseHeaderExtra(nil, 503, "text/plain", 0, false)
	if string(plain) != string(bare) {
		t.Fatalf("extra-less helper diverged:\n%q\n%q", plain, bare)
	}
}
