package httpwire

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Native fuzz targets. `go test` runs the seed corpus as regular tests;
// `go test -fuzz=FuzzRequestParser ./internal/httpwire` explores further.

func FuzzRequestParser(f *testing.F) {
	seeds := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		[]byte("GET /obj/1 HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n"),
		[]byte("POST /f HTTP/1.0\r\nContent-Length: 4\r\n\r\nbody"),
		[]byte("GET / HTTP/1.1\r\nX: " + string(bytes.Repeat([]byte("a"), 100)) + "\r\n\r\n"),
		[]byte("\r\n\r\nGET / HTTP/1.1\r\n\r\n"),
		[]byte{0x00, 0xff, '\n', '\n'},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Parser
		// Must not panic; on success, every parsed request has a method
		// and a path beginning with '/' (or '*').
		reqs, err := p.Feed(nil, data)
		for _, r := range reqs {
			if r.Method == "" {
				t.Fatalf("empty method from %q", data)
			}
			if r.Path != "*" && (len(r.Path) == 0 || r.Path[0] != '/') {
				t.Fatalf("bad path %q from %q", r.Path, data)
			}
		}
		_ = err
		// Feeding the same input split in two must never yield more
		// requests than feeding it whole.
		if len(data) > 1 {
			var p2 Parser
			half := len(data) / 2
			reqs2, err2 := p2.Feed(nil, data[:half])
			if err2 == nil {
				reqs2, _ = p2.Feed(reqs2, data[half:])
			}
			if err == nil && err2 == nil && len(reqs2) != len(reqs) {
				t.Fatalf("fragmentation changed request count: %d vs %d for %q",
					len(reqs), len(reqs2), data)
			}
		}
	})
}

// FuzzConditional exercises the conditional-GET header parsers: the
// entity-tag list scanner and the HTTP-date parser. Neither may panic on
// arbitrary input, a matched header must actually contain the etag's
// opaque tag, and date parsing must round-trip through FormatHTTPDate.
func FuzzConditional(f *testing.F) {
	seeds := []struct{ header, etag string }{
		{`"abc"`, `"abc"`},
		{`W/"abc"`, `"abc"`},
		{`*`, `"abc"`},
		{`"a", W/"b" , "c"`, `"c"`},
		{`"un,usual"`, `"un,usual"`}, // comma inside a quoted tag
		{`"unterminated`, `"x"`},
		{`Sun, 06 Nov 1994 08:49:37 GMT`, `"x"`},
		{`Sunday, 06-Nov-94 08:49:37 GMT`, `"x"`},
		{`Sun Nov  6 08:49:37 1994`, `"x"`},
		{"\x00\xff,\"", `"x"`},
	}
	for _, s := range seeds {
		f.Add(s.header, s.etag)
	}
	f.Fuzz(func(t *testing.T, header, etag string) {
		if ETagMatch(header, etag) && etag != "" {
			// The opaque tag (quotes included) must appear in the header,
			// unless the wildcard matched.
			if !bytes.Contains([]byte(header), []byte(etag)) &&
				!bytes.Contains([]byte(header), []byte("*")) {
				t.Fatalf("ETagMatch(%q, %q) matched without containing the tag", header, etag)
			}
		}
		if ts, ok := ParseHTTPDate(header); ok {
			rt, ok2 := ParseHTTPDate(FormatHTTPDate(ts))
			if !ok2 || !rt.Equal(ts.UTC().Truncate(time.Second)) {
				t.Fatalf("HTTP date %q did not round-trip: %v -> %v", header, ts, rt)
			}
		}
	})
}

// FuzzRetryAfter exercises the Retry-After value parser the relay path
// and the load generator's shed backoff depend on. It must never panic,
// never produce a negative wait, and must agree with the delta-seconds
// grammar on all-digit inputs.
func FuzzRetryAfter(f *testing.F) {
	seeds := []string{
		"1", "0", "120", "  30  ", "999999999999999999999",
		"Sun, 06 Nov 1994 08:49:37 GMT",
		"Sunday, 06-Nov-94 08:49:37 GMT",
		"Sun Nov  6 08:49:37 1994",
		"-5", "1.5", "", "soon", "\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	now := time.Date(2004, 8, 1, 12, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, v string) {
		d, ok := ParseRetryAfterValue(v, now)
		if d < 0 {
			t.Fatalf("ParseRetryAfterValue(%q) returned negative wait %v", v, d)
		}
		if !ok && d != 0 {
			t.Fatalf("ParseRetryAfterValue(%q) not-ok but nonzero %v", v, d)
		}
		// A parsed HTTP-date in the future must resolve to now-relative
		// delta, and delta-seconds must round-trip exactly.
		trimmed := strings.TrimSpace(v)
		if ok && trimmed != "" {
			allDigits := true
			for i := 0; i < len(trimmed); i++ {
				if trimmed[i] < '0' || trimmed[i] > '9' {
					allDigits = false
					break
				}
			}
			if allDigits {
				secs, err := strconv.ParseInt(trimmed, 10, 32)
				if err == nil && time.Duration(secs)*time.Second != d {
					t.Fatalf("delta-seconds %q parsed to %v", v, d)
				}
			}
		}
	})
}

// FuzzForwardHeaders feeds arbitrary parsed requests through the relay
// rewrite: it must never panic, never emit a hop-by-hop field, and must
// always stamp the relaying Via token exactly once (last element).
func FuzzForwardHeaders(f *testing.F) {
	f.Add("Via", "1.0 upstream", "Connection", "keep-alive")
	f.Add("X-Forwarded-For", "10.0.0.1", "Host", "sut")
	f.Add("via", "a, b", "x-forwarded-for", "::1")
	f.Add("Transfer-Encoding", "chunked", "TE", "trailers")
	f.Add("\x00", "\xff", "", "")
	f.Fuzz(func(t *testing.T, n1, v1, n2, v2 string) {
		req := &Request{Headers: []Header{{Name: n1, Value: v1}, {Name: n2, Value: v2}}}
		out := ForwardHeaders(req, "1.1 nioproxy", "127.0.0.1")
		seenVia := 0
		for _, h := range out {
			if hopByHop(h.Name) {
				t.Fatalf("hop-by-hop header %q forwarded from (%q,%q)", h.Name, n1, n2)
			}
			if equalFold(h.Name, "Via") {
				seenVia++
				if !strings.HasSuffix(h.Value, "1.1 nioproxy") {
					t.Fatalf("Via %q does not end with the relay token", h.Value)
				}
			}
		}
		if seenVia != 1 {
			t.Fatalf("want exactly one Via header, got %d from (%q,%q)", seenVia, n1, n2)
		}
	})
}

func FuzzResponseParser(f *testing.F) {
	seeds := [][]byte{
		[]byte("HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc"),
		[]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n"),
		[]byte("HTTP/1.0 204 No Content\r\n\r\n"),
		[]byte("HTTP/1.1 500 Oops\r\nConnection: close\r\n\r\n"),
		[]byte{0x00, '\r', '\n'},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p RespParser
		resps, _ := p.Feed(nil, data)
		for _, r := range resps {
			if r.StatusCode < 100 || r.StatusCode > 599 {
				t.Fatalf("bad status %d from %q", r.StatusCode, data)
			}
			if r.BodyBytes < 0 {
				t.Fatalf("negative body bytes from %q", data)
			}
		}
	})
}
