// Package trace records per-request lifecycle events from a simulation
// run into a bounded ring buffer, so the experiment tooling can answer
// "why was this request slow?" after the fact without paying unbounded
// memory for multi-minute runs.
//
// The tracer is deliberately simple: fixed event vocabulary, one record
// per event, O(1) append, dump filtered by client or kind. It is wired
// into simclient behind a nil-checked interface so tracing costs nothing
// when disabled.
//
// This ring is single-threaded because simulations are. The live
// servers' counterpart is internal/obs: the same idea — bounded ring,
// fixed vocabulary, nil-checked recording — rebuilt on per-slot
// seqlocks so every reactor worker and pool thread can record
// concurrently while the admin endpoint reads.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is the lifecycle event class.
type Kind uint8

// Lifecycle events, in the order they normally occur.
const (
	SessionStart Kind = iota
	ConnectStart
	Connected
	RequestSent
	ReplyDone
	GapStart
	SessionEnd
	ClientTimeout
	ConnReset
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SessionStart:
		return "session-start"
	case ConnectStart:
		return "connect-start"
	case Connected:
		return "connected"
	case RequestSent:
		return "request-sent"
	case ReplyDone:
		return "reply-done"
	case GapStart:
		return "gap-start"
	case SessionEnd:
		return "session-end"
	case ClientTimeout:
		return "client-timeout"
	case ConnReset:
		return "conn-reset"
	default:
		return "unknown"
	}
}

// Event is one lifecycle record.
type Event struct {
	// At is the simulated time in seconds.
	At float64
	// Client identifies the emulated client.
	Client int
	// Kind is the event class.
	Kind Kind
	// Value carries a kind-specific number: connect duration for
	// Connected, response time for ReplyDone, 0 otherwise.
	Value float64
}

// Ring is a bounded in-memory trace. The zero value is unusable; create
// with NewRing. Not safe for concurrent use (simulations are
// single-threaded; the live path does not trace).
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewRing returns a tracer retaining the most recent cap events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: non-positive capacity %d", capacity))
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Record appends one event, evicting the oldest when full.
func (r *Ring) Record(ev Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
	r.dropped++
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.buf) }

// Dropped returns how many events were evicted.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	if !r.wrapped {
		out = append(out[:0], r.buf...)
	}
	return out
}

// Filter returns the retained events matching the predicate, in order.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// ByClient returns one client's events in order.
func (r *Ring) ByClient(client int) []Event {
	return r.Filter(func(ev Event) bool { return ev.Client == client })
}

// Summary aggregates the retained events per kind.
func (r *Ring) Summary() map[Kind]int {
	out := map[Kind]int{}
	for _, ev := range r.Events() {
		out[ev.Kind]++
	}
	return out
}

// Dump renders the retained events as a timeline, one line per event.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		fmt.Fprintf(&b, "%12.6f  client=%-6d %-14s", ev.At, ev.Client, ev.Kind)
		if ev.Value != 0 {
			fmt.Fprintf(&b, " %.6fs", ev.Value)
		}
		b.WriteByte('\n')
	}
	if r.dropped > 0 {
		fmt.Fprintf(&b, "(%d earlier events evicted)\n", r.dropped)
	}
	return b.String()
}

// SlowestReplies returns the n ReplyDone events with the largest
// response times, most severe first — the entry point for "why slow".
func (r *Ring) SlowestReplies(n int) []Event {
	replies := r.Filter(func(ev Event) bool { return ev.Kind == ReplyDone })
	sort.Slice(replies, func(i, j int) bool { return replies[i].Value > replies[j].Value })
	if len(replies) > n {
		replies = replies[:n]
	}
	return replies
}
