package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(10)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: float64(i), Client: i, Kind: RequestSent})
	}
	if r.Len() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.At != float64(i) {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: float64(i), Kind: RequestSent})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	if evs[0].At != 6 || evs[3].At != 9 {
		t.Fatalf("retained window wrong: %+v", evs)
	}
}

func TestRingPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(0)
}

func TestFilterAndByClient(t *testing.T) {
	r := NewRing(16)
	r.Record(Event{At: 1, Client: 1, Kind: RequestSent})
	r.Record(Event{At: 2, Client: 2, Kind: RequestSent})
	r.Record(Event{At: 3, Client: 1, Kind: ReplyDone, Value: 0.5})
	if got := r.ByClient(1); len(got) != 2 {
		t.Fatalf("client 1 events: %+v", got)
	}
	replies := r.Filter(func(ev Event) bool { return ev.Kind == ReplyDone })
	if len(replies) != 1 || replies[0].Value != 0.5 {
		t.Fatalf("replies: %+v", replies)
	}
}

func TestSummary(t *testing.T) {
	r := NewRing(16)
	r.Record(Event{Kind: SessionStart})
	r.Record(Event{Kind: RequestSent})
	r.Record(Event{Kind: RequestSent})
	s := r.Summary()
	if s[SessionStart] != 1 || s[RequestSent] != 2 {
		t.Fatalf("summary = %v", s)
	}
}

func TestSlowestReplies(t *testing.T) {
	r := NewRing(16)
	for i, v := range []float64{0.1, 0.9, 0.5, 0.7} {
		r.Record(Event{At: float64(i), Kind: ReplyDone, Value: v})
	}
	r.Record(Event{Kind: ClientTimeout}) // not a reply; must be excluded
	top := r.SlowestReplies(2)
	if len(top) != 2 || top[0].Value != 0.9 || top[1].Value != 0.7 {
		t.Fatalf("slowest = %+v", top)
	}
	all := r.SlowestReplies(100)
	if len(all) != 4 {
		t.Fatalf("slowest(100) returned %d", len(all))
	}
}

func TestDump(t *testing.T) {
	r := NewRing(2)
	r.Record(Event{At: 1.5, Client: 7, Kind: Connected, Value: 0.002})
	r.Record(Event{At: 2.0, Client: 7, Kind: ConnReset})
	r.Record(Event{At: 2.5, Client: 8, Kind: ClientTimeout})
	out := r.Dump()
	for _, want := range []string{"client=7", "conn-reset", "client-timeout", "evicted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{SessionStart, ConnectStart, Connected, RequestSent,
		ReplyDone, GapStart, SessionEnd, ClientTimeout, ConnReset, Kind(200)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Fatalf("empty string for kind %d", k)
		}
		if seen[s] && s != "unknown" {
			t.Fatalf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

// Property: after any sequence of records, Events() returns exactly
// min(len(records), cap) events and they are the most recent ones in
// order.
func TestQuickRingWindow(t *testing.T) {
	f := func(times []uint16, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		r := NewRing(capacity)
		for i := range times {
			r.Record(Event{At: float64(i)})
		}
		evs := r.Events()
		want := len(times)
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i, ev := range evs {
			if ev.At != float64(len(times)-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
