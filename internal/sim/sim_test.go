package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, d := range []Duration{5, 1, 3, 2, 4} {
		e.Schedule(d, func() { order = append(order, e.Now()) })
	}
	e.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.Schedule(0.5, tick)
		}
	}
	e.Schedule(0.5, tick)
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
}

func TestCancelOneOfSimultaneous(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []*Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, e.Schedule(1, func() { got = append(got, i) }))
	}
	e.Cancel(evs[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRescheduleExtendsTimer(t *testing.T) {
	e := NewEngine()
	var firedAt Time = -1
	ev := e.Schedule(1, func() { firedAt = e.Now() })
	e.Schedule(0.5, func() { e.Reschedule(ev, 2) })
	e.Run()
	if firedAt != 2 {
		t.Fatalf("rescheduled event fired at %v, want 2", firedAt)
	}
}

func TestRescheduleAfterFireCreatesNew(t *testing.T) {
	e := NewEngine()
	count := 0
	ev := e.Schedule(1, func() { count++ })
	e.Run()
	e.Reschedule(ev, e.Now()+1)
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (reschedule after fire should re-arm)", count)
	}
}

func TestRunUntilLeavesClockAtDeadline(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestRunUntilInclusiveAtDeadline(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5, func() { fired = true })
	e.RunUntil(5)
	if !fired {
		t.Fatal("event exactly at the deadline did not fire")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
	// A subsequent Run resumes.
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	e.At(1, func() {})
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Schedule(3, func() {
		e.Schedule(-0.5, func() { at = e.Now() })
	})
	e.Run()
	if at != 3 {
		t.Fatalf("clamped event fired at %v, want 3", at)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	NewEngine().Schedule(1, nil)
}

func TestProcessedAndPending(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i+1), func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", e.Pending())
	}
	e.RunUntil(5)
	if e.Processed() != 5 {
		t.Fatalf("processed = %d, want 5", e.Processed())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := NewTicker(e, 1, func() {
		ticks++
		if ticks == 5 {
			e.Stop()
		}
	})
	e.Run()
	tk.Stop()
	e.Run()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
}

func TestTickerStopFromOutside(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := NewTicker(e, 1, func() { ticks++ })
	e.Schedule(3.5, func() { tk.Stop() })
	e.RunUntil(10)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestTickerBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTicker(NewEngine(), 0, func() {})
}

// Property: for any set of non-negative delays, events fire in
// nondecreasing time order and the clock ends at the max delay.
func TestQuickOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var max Duration
		var last Time
		ok := true
		for _, r := range raw {
			d := Duration(r) / 100
			if d > max {
				max = d
			}
			e.Schedule(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		if len(raw) > 0 && e.Now() != Time(max) {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	var churn func()
	n := 0
	churn = func() {
		n++
		if n < b.N {
			e.Schedule(1, churn)
		}
	}
	e.Schedule(1, churn)
	b.ResetTimer()
	e.Run()
}
