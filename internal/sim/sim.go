// Package sim is a deterministic discrete-event simulation kernel: a
// virtual clock and an event heap. Everything in the simulated testbed —
// CPUs, links, servers, clients — advances by scheduling callbacks on one
// Engine, so a run is a pure function of its inputs and seed.
//
// The kernel is event-oriented rather than goroutine-oriented on purpose:
// no scheduling nondeterminism, no synchronization cost, and millions of
// events per second on one core, which is what sweeping 600–6000 clients
// over ten figures requires.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = float64

// Infinity is a time later than any event.
const Infinity = Time(math.MaxFloat64)

// Event is a scheduled callback. Obtain events via Engine.Schedule/At;
// the zero value is inert.
type Event struct {
	when     Time
	seq      uint64 // FIFO tie-break for simultaneous events
	index    int    // heap position, -1 when not queued
	fn       func()
	canceled bool
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e == nil || e.canceled }

// When returns the scheduled time of the event.
func (e *Event) When() Time { return e.when }

// eventHeap implements container/heap ordered by (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine owns the clock and the pending-event heap. It is not safe for
// concurrent use; a simulation is single-threaded by design.
type Engine struct {
	now       Time
	seq       uint64
	heap      eventHeap
	processed uint64
	stopped   bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the heap.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics (it would silently corrupt causality).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, fn: fn}
	heap.Push(&e.heap, ev)
	return ev
}

// Schedule schedules fn to run after delay seconds. Negative delays are
// clamped to zero so that floating-point jitter in model code cannot
// violate causality.
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+Time(delay), fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op, so callers can cancel timers
// unconditionally.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.heap, ev.index)
	ev.index = -1
}

// Reschedule moves a pending event to a new absolute time (used by timer
// wheels: e.g. pushing out an idle timeout on activity). If the event has
// already fired or been canceled, a fresh event is scheduled instead.
func (e *Engine) Reschedule(ev *Event, t Time) *Event {
	if ev != nil && !ev.canceled && ev.index >= 0 {
		if t < e.now {
			panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
		}
		ev.when = t
		e.seq++
		ev.seq = e.seq
		heap.Fix(&e.heap, ev.index)
		return ev
	}
	if ev == nil || ev.fn == nil {
		panic("sim: rescheduling an event with no callback")
	}
	return e.At(t, ev.fn)
}

// Step executes the single next event. It reports false when the heap is
// empty or the engine was stopped.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.canceled {
			continue
		}
		if ev.when < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.when
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// RunUntil processes events until the clock would pass deadline, the heap
// drains, or Stop is called. The clock is left at min(deadline, last event
// time); events scheduled exactly at the deadline are executed.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.heap[0].when <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline && deadline < Infinity {
		e.now = deadline
	}
}

// Run processes events until the heap drains or Stop is called.
func (e *Engine) Run() { e.RunUntil(Infinity) }

// Stop halts Run/RunUntil after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Ticker invokes fn every interval seconds until canceled; it is the
// building block for periodic samplers (e.g. per-second error rates).
type Ticker struct {
	engine   *Engine
	interval Duration
	fn       func()
	ev       *Event
	stopped  bool
}

// NewTicker starts a ticker whose first tick is one interval from now.
func NewTicker(e *Engine, interval Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.ev)
}
