package seda

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func passthrough(ev Event, emit func(Event)) { emit(ev) }

func mustPipeline(t *testing.T, sink func(Event), cfgs ...StageConfig) *Pipeline {
	t.Helper()
	p, err := NewPipeline(sink, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	return p
}

func TestSingleStageFlow(t *testing.T) {
	var got atomic.Int64
	p := mustPipeline(t, func(Event) { got.Add(1) },
		StageConfig{Name: "s", Workers: 1, QueueCap: 16, Handler: passthrough})
	for i := 0; i < 10; i++ {
		if !p.Submit(i) {
			t.Fatal("submit shed under light load")
		}
	}
	p.Stop()
	if got.Load() != 10 {
		t.Fatalf("sink saw %d events, want 10", got.Load())
	}
}

func TestMultiStageOrderOfStages(t *testing.T) {
	// Each stage tags the event; the sink verifies the pipeline order.
	var mu sync.Mutex
	var paths []string
	tag := func(name string) Handler {
		return func(ev Event, emit func(Event)) {
			emit(ev.(string) + name)
		}
	}
	p := mustPipeline(t, func(ev Event) {
		mu.Lock()
		paths = append(paths, ev.(string))
		mu.Unlock()
	},
		StageConfig{Name: "a", Workers: 1, QueueCap: 8, Handler: tag("a")},
		StageConfig{Name: "b", Workers: 1, QueueCap: 8, Handler: tag("b")},
		StageConfig{Name: "c", Workers: 1, QueueCap: 8, Handler: tag("c")},
	)
	for i := 0; i < 5; i++ {
		p.Submit("")
	}
	p.Stop()
	if len(paths) != 5 {
		t.Fatalf("got %d events", len(paths))
	}
	for _, s := range paths {
		if s != "abc" {
			t.Fatalf("event traversed %q, want abc", s)
		}
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	release := make(chan struct{})
	p := mustPipeline(t, nil,
		StageConfig{Name: "slow", Workers: 1, QueueCap: 2, Handler: func(ev Event, emit func(Event)) {
			<-release
		}})
	// Fill: 1 in the worker + 2 in the queue; further submits shed.
	deadline := time.Now().Add(2 * time.Second)
	accepted := 0
	for accepted < 3 && time.Now().Before(deadline) {
		if p.Submit(accepted) {
			accepted++
		}
	}
	shed := false
	for i := 0; i < 100; i++ {
		if !p.Submit(i) {
			shed = true
			break
		}
	}
	close(release)
	if !shed {
		t.Fatal("full stage never shed load")
	}
	st := p.Stats()[0]
	if st.Dropped == 0 {
		t.Fatalf("dropped counter = 0: %+v", st)
	}
}

func TestFanOutEmit(t *testing.T) {
	var got atomic.Int64
	p := mustPipeline(t, func(Event) { got.Add(1) },
		StageConfig{Name: "fan", Workers: 2, QueueCap: 64, Handler: func(ev Event, emit func(Event)) {
			emit(ev)
			emit(ev) // duplicate every event
		}})
	for i := 0; i < 20; i++ {
		p.Submit(i)
	}
	p.Stop()
	if got.Load() != 40 {
		t.Fatalf("sink saw %d, want 40", got.Load())
	}
}

func TestFilterEmitNothing(t *testing.T) {
	var got atomic.Int64
	p := mustPipeline(t, func(Event) { got.Add(1) },
		StageConfig{Name: "filter", Workers: 1, QueueCap: 16, Handler: func(ev Event, emit func(Event)) {
			if ev.(int)%2 == 0 {
				emit(ev)
			}
		}})
	for i := 0; i < 10; i++ {
		p.Submit(i)
	}
	p.Stop()
	if got.Load() != 5 {
		t.Fatalf("sink saw %d, want 5", got.Load())
	}
}

func TestParallelWorkersProcessAll(t *testing.T) {
	var got atomic.Int64
	p := mustPipeline(t, func(Event) { got.Add(1) },
		StageConfig{Name: "par", Workers: 8, QueueCap: 256, Handler: passthrough})
	const n = 1000
	for i := 0; i < n; i++ {
		for !p.Submit(i) {
			time.Sleep(time.Microsecond)
		}
	}
	p.Stop()
	if got.Load() != n {
		t.Fatalf("sink saw %d, want %d", got.Load(), n)
	}
}

func TestStatsShape(t *testing.T) {
	p := mustPipeline(t, nil,
		StageConfig{Name: "one", Workers: 2, QueueCap: 4, Handler: passthrough},
		StageConfig{Name: "two", Workers: 3, QueueCap: 4, Handler: passthrough})
	p.Submit(1)
	p.Stop()
	st := p.Stats()
	if len(st) != 2 || st[0].Name != "one" || st[1].Name != "two" {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].Workers != 2 || st[1].Workers != 3 {
		t.Fatalf("worker counts wrong: %+v", st)
	}
	if st[0].Processed != 1 || st[1].Processed != 1 {
		t.Fatalf("processed wrong: %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []StageConfig{
		{Name: "", Workers: 1, QueueCap: 1, Handler: passthrough},
		{Name: "x", Workers: 0, QueueCap: 1, Handler: passthrough},
		{Name: "x", Workers: 1, QueueCap: 0, Handler: passthrough},
		{Name: "x", Workers: 1, QueueCap: 1, Handler: nil},
	}
	for i, cfg := range bad {
		if _, err := NewPipeline(nil, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewPipeline(nil); err == nil {
		t.Error("empty pipeline accepted")
	}
}

func TestStopIsIdempotentAndDrains(t *testing.T) {
	var got atomic.Int64
	p, err := NewPipeline(func(Event) { got.Add(1) },
		StageConfig{Name: "s", Workers: 1, QueueCap: 100, Handler: passthrough})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	for i := 0; i < 50; i++ {
		p.Submit(i)
	}
	p.Stop()
	p.Stop()
	if got.Load() != 50 {
		t.Fatalf("drain incomplete: %d/50", got.Load())
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	for _, stages := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1stage", 2: "2stages", 4: "4stages"}[stages], func(b *testing.B) {
			var cfgs []StageConfig
			for i := 0; i < stages; i++ {
				cfgs = append(cfgs, StageConfig{
					Name: "s", Workers: 1, QueueCap: 1024, Handler: passthrough,
				})
			}
			done := make(chan struct{}, 1)
			var got atomic.Int64
			target := int64(b.N)
			p, err := NewPipeline(func(Event) {
				if got.Add(1) == target {
					done <- struct{}{}
				}
			}, cfgs...)
			if err != nil {
				b.Fatal(err)
			}
			p.Start()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !p.Submit(i) {
				}
			}
			<-done
			b.StopTimer()
			p.Stop()
		})
	}
}
