// Package seda implements the paper's §6 proposal: a staged event-driven
// pipeline ("dividing the server in pipelined stages, adding one or more
// threads to each stage") in the style of Welsh et al.'s SEDA. Each stage
// owns a bounded event queue and a private worker pool; stages are
// chained so a request flows queue → handler → next queue. Bounded queues
// give per-stage admission control: when a stage is overloaded, Submit
// sheds load at the front instead of collapsing the whole server — the
// "well-conditioned" property.
//
// The package is execution-substrate-agnostic: handlers run on real
// goroutines, so the pipeline can front a live server (see
// examples/staged) or be driven synthetically by the ablation benches.
package seda

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Event is the unit of work flowing through the pipeline.
type Event any

// Handler processes one event for a stage. Calling emit forwards an
// event to the next stage (emit may be called zero or more times).
type Handler func(ev Event, emit func(Event))

// StageConfig describes one pipeline stage.
type StageConfig struct {
	// Name identifies the stage in stats.
	Name string
	// Workers is the stage's thread-pool size.
	Workers int
	// QueueCap bounds the stage's event queue; a full queue sheds load.
	QueueCap int
	// Handler is the stage body.
	Handler Handler
}

// Validate reports configuration errors.
func (c StageConfig) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("seda: stage name required")
	case c.Workers <= 0:
		return fmt.Errorf("seda: stage %q needs at least one worker", c.Name)
	case c.QueueCap <= 0:
		return fmt.Errorf("seda: stage %q needs a positive queue capacity", c.Name)
	case c.Handler == nil:
		return fmt.Errorf("seda: stage %q has no handler", c.Name)
	}
	return nil
}

// StageStats is a point-in-time view of one stage.
type StageStats struct {
	Name      string
	Processed int64
	Dropped   int64
	QueueLen  int
	Workers   int
}

// stage is the runtime state of one pipeline stage.
type stage struct {
	cfg       StageConfig
	queue     chan Event
	next      *stage
	stop      chan struct{}
	wg        sync.WaitGroup
	processed atomic.Int64
	dropped   atomic.Int64
}

// Pipeline is a chain of stages. Events submitted to the pipeline enter
// the first stage; events a handler emits enter the following stage;
// events emitted by the last stage go to the sink.
type Pipeline struct {
	stages  []*stage
	sink    func(Event)
	once    sync.Once
	runOnce sync.Once
}

// NewPipeline builds a pipeline from the given stages; sink receives
// events emitted by the final stage (nil discards them).
func NewPipeline(sink func(Event), configs ...StageConfig) (*Pipeline, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("seda: pipeline needs at least one stage")
	}
	p := &Pipeline{sink: sink}
	if p.sink == nil {
		p.sink = func(Event) {}
	}
	for _, cfg := range configs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		p.stages = append(p.stages, &stage{
			cfg:   cfg,
			queue: make(chan Event, cfg.QueueCap),
			stop:  make(chan struct{}),
		})
	}
	for i := 0; i < len(p.stages)-1; i++ {
		p.stages[i].next = p.stages[i+1]
	}
	return p, nil
}

// Start launches every stage's worker pool. Call once.
func (p *Pipeline) Start() {
	p.runOnce.Do(func() {
		for _, st := range p.stages {
			for w := 0; w < st.cfg.Workers; w++ {
				st.wg.Add(1)
				go p.workerLoop(st)
			}
		}
	})
}

// workerLoop is one stage thread.
func (p *Pipeline) workerLoop(st *stage) {
	defer st.wg.Done()
	emit := func(ev Event) { p.forward(st.next, ev) }
	for {
		select {
		case ev := <-st.queue:
			st.cfg.Handler(ev, emit)
			st.processed.Add(1)
		case <-st.stop:
			// Drain what is already queued, then exit.
			for {
				select {
				case ev := <-st.queue:
					st.cfg.Handler(ev, emit)
					st.processed.Add(1)
				default:
					return
				}
			}
		}
	}
}

// forward moves an event to the target stage (or the sink past the end).
// Inter-stage forwarding blocks rather than drops: load shedding happens
// at admission (Submit), which is where SEDA applies its controllers.
// Blocking is safe during shutdown because Stop drains stages in pipeline
// order — a downstream stage always outlives its upstream.
func (p *Pipeline) forward(st *stage, ev Event) {
	if st == nil {
		p.sink(ev)
		return
	}
	st.queue <- ev
}

// Submit offers an event to the first stage. It returns false — shedding
// the event — when the stage's queue is full (admission control).
func (p *Pipeline) Submit(ev Event) bool {
	st := p.stages[0]
	select {
	case st.queue <- ev:
		return true
	default:
		st.dropped.Add(1)
		return false
	}
}

// Stop shuts the pipeline down after draining queued events, and waits
// for all stage threads to exit. Stages drain in pipeline order, so every
// event already admitted flows through to the sink. Idempotent.
func (p *Pipeline) Stop() {
	p.once.Do(func() {
		for _, st := range p.stages {
			close(st.stop)
			st.wg.Wait()
		}
	})
	// After once: all stages have been waited on; later calls return
	// immediately because wg counters are already zero.
	for _, st := range p.stages {
		st.wg.Wait()
	}
}

// Stats returns a snapshot per stage, in pipeline order.
func (p *Pipeline) Stats() []StageStats {
	out := make([]StageStats, 0, len(p.stages))
	for _, st := range p.stages {
		out = append(out, StageStats{
			Name:      st.cfg.Name,
			Processed: st.processed.Load(),
			Dropped:   st.dropped.Load(),
			QueueLen:  len(st.queue),
			Workers:   st.cfg.Workers,
		})
	}
	return out
}
