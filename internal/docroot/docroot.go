// Package docroot is the disk-backed content store shared by both live
// servers: a real filesystem directory served through a bounded-byte LRU
// cache of open file descriptors and (for small objects) in-memory
// bodies, with per-file validators (ETag, Last-Modified) computed at
// open time.
//
// It exists because the paper's httpd2 baseline served a real SURGE file
// set from disk while our seed stores answered from memory, so the
// reproduction never exercised the filesystem, the page cache, or the
// copy costs that dominate real static serving. The docroot restores
// that substrate and adds the modern lever the related work identifies
// as first-order (Voras & Žagar; Ruhland et al.): zero-copy delivery.
// A cache miss hands the server a shared open fd to drive sendfile(2)
// from; a cache hit hands it an in-memory body for the buffered path.
//
// Entries are reference counted: the cache holds one reference, every
// in-flight response holds another, and sendfile with an explicit offset
// never touches the shared fd's file position — so one fd serves any
// number of concurrent responses and survives eviction until the last
// response finishes.
package docroot

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/httpwire"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/surge"
)

// Entry is one openable file: metadata plus either a cached body (serve
// buffered) or just the shared open fd (serve via sendfile). Callers
// must Release every Entry obtained from Get exactly once, after the
// last byte has been queued or sent.
type Entry struct {
	// Size is the file length in bytes.
	Size int64
	// ModTime is the file's modification time.
	ModTime time.Time
	// ETag is the strong validator, quotes included (size-mtime hex).
	ETag string
	// LastModified is ModTime preformatted as an HTTP-date.
	LastModified string
	// ContentType is inferred from the file extension.
	ContentType string

	f    *os.File
	body []byte
	refs atomic.Int32

	// cache bookkeeping (owned by Root.mu)
	key    string
	charge int64
	lru    *lruNode
}

// Body returns the in-memory body, or nil when the entry is fd-only and
// must be delivered with sendfile (or a read loop on non-Linux). The
// slice outlives Release — it is immutable and garbage collected — so
// buffered responses may Release immediately after queueing it.
func (e *Entry) Body() []byte { return e.body }

// FD returns the shared open file descriptor. Valid until Release;
// always read it with an explicit offset (pread/sendfile-with-offset),
// never through the fd's file position.
func (e *Entry) FD() int { return int(e.f.Fd()) }

// ReadAt reads from the entry's file at an explicit offset (the
// buffered fallback path on platforms without sendfile).
func (e *Entry) ReadAt(p []byte, off int64) (int, error) { return e.f.ReadAt(p, off) }

// Release drops one reference; the fd closes when the cache and every
// in-flight response are done with it.
func (e *Entry) Release() {
	n := e.refs.Add(-1)
	if invariant.Enabled {
		invariant.Assertf(n >= 0,
			"docroot: entry %q refcount went negative (%d): double Release", e.key, n)
	}
	if n == 0 {
		_ = e.f.Close()
	}
}

// Config parameterizes a Root.
type Config struct {
	// Dir is the directory to serve. Required; must exist.
	Dir string
	// CacheBytes bounds the cache's total charge (body bytes plus a
	// fixed per-entry overhead). <= 0 disables caching entirely: every
	// Get opens the file fresh and Release closes it.
	CacheBytes int64
	// MemLimit is the largest body held in memory. Files at most this
	// size are served from cached bytes (the buffered path); larger
	// files keep only the open fd cached and are served zero-copy.
	// 0 means no bodies are cached — everything goes through sendfile.
	MemLimit int64
}

// DefaultMemLimit is the per-object body-cache ceiling Open picks:
// large enough to keep the SURGE body mass in memory, small enough that
// the heavy tail stays on the sendfile path.
const DefaultMemLimit = 256 << 10

// entryOverhead is the nominal cache charge for an entry's fd and
// metadata, so even a body-less (fd-only) cache is bounded.
const entryOverhead = 4096

// Root serves one directory through the content cache.
type Root struct {
	dir string
	cfg Config

	mu    sync.Mutex
	items map[string]*lruNode
	head  lruNode // sentinel: head.next is most recent, head.prev least
	used  int64

	hits      metrics.Counter
	misses    metrics.Counter
	evictions metrics.Counter
	opens     metrics.Counter
	pressure  metrics.Counter
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count cache lookups; Misses includes paths that
	// turned out not to exist.
	Hits, Misses int64
	// Evictions counts entries pushed out by the byte budget.
	Evictions int64
	// Opens counts actual open(2) calls (misses that found a file).
	Opens int64
	// PressureEvictions counts entries shed by ShedFDs under
	// descriptor pressure (included in Evictions).
	PressureEvictions int64
	// CachedBytes and CachedEntries describe the current cache content.
	CachedBytes   int64
	CachedEntries int
}

// New validates cfg and returns a Root over cfg.Dir.
func New(cfg Config) (*Root, error) {
	fi, err := os.Stat(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("docroot: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("docroot: %s is not a directory", cfg.Dir)
	}
	if cfg.MemLimit < 0 {
		return nil, fmt.Errorf("docroot: negative MemLimit %d", cfg.MemLimit)
	}
	r := &Root{dir: cfg.Dir, cfg: cfg, items: make(map[string]*lruNode)}
	r.head.next = &r.head
	r.head.prev = &r.head
	return r, nil
}

// Open returns a Root with the default body-cache policy: cacheBytes of
// total budget, bodies up to DefaultMemLimit (but never more than a
// quarter of the budget) held in memory.
func Open(dir string, cacheBytes int64) (*Root, error) {
	memLimit := int64(DefaultMemLimit)
	if q := cacheBytes / 4; q < memLimit {
		memLimit = q
	}
	if memLimit < 0 {
		memLimit = 0
	}
	return New(Config{Dir: dir, CacheBytes: cacheBytes, MemLimit: memLimit})
}

// Dir returns the served directory.
func (r *Root) Dir() string { return r.dir }

// Stats returns a snapshot of the cache counters.
func (r *Root) Stats() Stats {
	r.mu.Lock()
	used, n := r.used, len(r.items)
	r.mu.Unlock()
	return Stats{
		Hits:              r.hits.Value(),
		Misses:            r.misses.Value(),
		Evictions:         r.evictions.Value(),
		Opens:             r.opens.Value(),
		PressureEvictions: r.pressure.Value(),
		CachedBytes:       used,
		CachedEntries:     n,
	}
}

// NotFound reports whether a Get error means the path has no servable
// file (→ 404), as opposed to an I/O failure.
func NotFound(err error) bool {
	var pe *pathError
	// ENOTDIR: a path component that exists but is a file ("/a.txt/x").
	return errors.Is(err, fs.ErrNotExist) || errors.Is(err, syscall.ENOTDIR) ||
		errors.As(err, &pe)
}

// pathError marks URL paths the docroot refuses to resolve (escapes,
// non-regular files, embedded NULs).
type pathError struct{ path string }

func (e *pathError) Error() string { return "docroot: unservable path " + strconv.Quote(e.path) }

// Get resolves a URL path to an Entry, consulting the cache first. The
// caller owns one reference and must Release it. Errors satisfying
// NotFound should be answered with 404.
func (r *Root) Get(urlPath string) (*Entry, error) {
	key, file, err := r.resolve(urlPath)
	if err != nil {
		r.misses.Inc()
		return nil, err
	}
	if r.cfg.CacheBytes > 0 {
		if e := r.cacheGet(key); e != nil {
			return e, nil
		}
	}
	r.misses.Inc()
	e, err := r.openEntry(key, file)
	if err != nil {
		return nil, err
	}
	r.opens.Inc()
	if r.cfg.CacheBytes <= 0 {
		return e, nil
	}
	return r.cacheInsert(e), nil
}

// resolve canonicalizes a URL path and maps it under the root. Rooted
// path.Clean cannot escape "/", so the docroot never serves outside
// Dir; directory requests map to their index.html.
func (r *Root) resolve(urlPath string) (key, file string, err error) {
	if urlPath == "" || urlPath[0] != '/' || strings.IndexByte(urlPath, 0) >= 0 {
		return "", "", &pathError{urlPath}
	}
	if i := strings.IndexByte(urlPath, '?'); i >= 0 {
		urlPath = urlPath[:i]
	}
	p := path.Clean(urlPath)
	if p == "/" || strings.HasSuffix(urlPath, "/") {
		p = path.Join(p, "index.html")
	}
	return p, filepath.Join(r.dir, filepath.FromSlash(p[1:])), nil
}

// openEntry opens and stats the file and builds its Entry (refs = 1,
// owned by the caller), loading the body when the policy allows.
func (r *Root) openEntry(key, file string) (*Entry, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if !fi.Mode().IsRegular() {
		f.Close()
		return nil, &pathError{key}
	}
	e := &Entry{
		Size:         fi.Size(),
		ModTime:      fi.ModTime(),
		ETag:         etagFor(fi),
		LastModified: httpwire.FormatHTTPDate(fi.ModTime()),
		ContentType:  TypeByExt(key),
		f:            f,
		key:          key,
		charge:       entryOverhead,
	}
	e.refs.Store(1)
	if e.Size > 0 && e.Size <= r.cfg.MemLimit {
		body := make([]byte, e.Size)
		if _, err := f.ReadAt(body, 0); err != nil {
			f.Close()
			return nil, err
		}
		e.body = body
		e.charge += e.Size
	}
	return e, nil
}

// etagFor derives the strong validator from file metadata: size and
// mtime in hex. Deterministic materialization (fixed mtimes) therefore
// yields identical ETags across servers and across runs.
func etagFor(fi fs.FileInfo) string {
	return `"` + strconv.FormatInt(fi.Size(), 16) + "-" +
		strconv.FormatInt(fi.ModTime().UnixNano(), 16) + `"`
}

// ---------------------------------------------------------------------
// SURGE materialization
// ---------------------------------------------------------------------

// surgeEpoch is the fixed mtime stamped on materialized objects so
// validators are identical across servers, runs, and machines.
var surgeEpoch = time.Unix(1_000_000_000, 0)

// SurgeBlob generates the shared pseudo-random content blob all SURGE
// object bodies are views of; it is deterministic in seed and identical
// to what core.SurgeStore serves from memory.
func SurgeBlob(maxObjectBytes int64, seed uint64) []byte {
	blob := make([]byte, maxObjectBytes)
	rng := dist.NewRNG(seed)
	for i := 0; i+8 <= len(blob); i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			blob[i+j] = byte(v >> (8 * j))
		}
	}
	return blob
}

// MaterializeSurge writes set's objects as real files under dir/obj/<id>
// — the URL layout both servers already use — with contents identical to
// core.NewSurgeStore(set, maxObjectBytes, seed) and a fixed mtime, so a
// disk-backed server and an in-memory one are byte-for-byte comparable.
func MaterializeSurge(dir string, set *surge.ObjectSet, maxObjectBytes int64, seed uint64) error {
	blob := SurgeBlob(maxObjectBytes, seed)
	objDir := filepath.Join(dir, "obj")
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		return fmt.Errorf("docroot: materialize: %w", err)
	}
	for i := 0; i < set.Len(); i++ {
		o := set.Object(i)
		size := o.Size
		if size > int64(len(blob)) {
			size = int64(len(blob))
		}
		name := filepath.Join(objDir, strconv.Itoa(o.ID))
		if err := os.WriteFile(name, blob[:size], 0o644); err != nil {
			return fmt.Errorf("docroot: materialize %s: %w", name, err)
		}
		if err := os.Chtimes(name, surgeEpoch, surgeEpoch); err != nil {
			return fmt.Errorf("docroot: materialize %s: %w", name, err)
		}
	}
	return nil
}
