package docroot

import "repro/internal/invariant"

// The bounded-byte LRU behind Root. One mutex guards the map, the
// intrusive list, and the byte accounting; the entries themselves are
// immutable after construction and reference counted, so eviction never
// races an in-flight response — it merely drops the cache's reference
// and the fd closes when the last response releases its own.

// lruNode is an intrusive doubly-linked list node (head sentinel in
// Root). Intrusive rather than container/list so a hit is two pointer
// swaps and zero allocations.
type lruNode struct {
	ent        *Entry
	prev, next *lruNode
}

func (n *lruNode) unlink() {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

func (r *Root) pushFront(n *lruNode) {
	n.next = r.head.next
	n.prev = &r.head
	r.head.next.prev = n
	r.head.next = n
}

// cacheGet returns a referenced entry on hit, nil on miss.
func (r *Root) cacheGet(key string) *Entry {
	r.mu.Lock()
	n, ok := r.items[key]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	n.unlink()
	r.pushFront(n)
	refs := n.ent.refs.Add(1)
	r.mu.Unlock()
	if invariant.Enabled {
		// The cache holds one reference, this caller now holds another.
		invariant.Assertf(refs >= 2,
			"docroot: cache hit on entry %q with %d refs (cache reference lost)", n.ent.key, refs)
	}
	r.hits.Inc()
	return n.ent
}

// cacheInsert offers a freshly opened entry (caller holds one reference)
// to the cache and returns the entry the caller should use. If another
// goroutine cached the same key while this one was opening the file, the
// duplicate is discarded in favour of the cached copy. Entries whose
// charge exceeds the whole budget are served uncached.
func (r *Root) cacheInsert(e *Entry) *Entry {
	if e.charge > r.cfg.CacheBytes {
		return e
	}
	r.mu.Lock()
	if n, ok := r.items[e.key]; ok {
		// Lost the open race: adopt the cached entry.
		n.unlink()
		r.pushFront(n)
		n.ent.refs.Add(1)
		r.mu.Unlock()
		e.Release()
		return n.ent
	}
	e.refs.Add(1) // the cache's reference
	n := &lruNode{ent: e}
	e.lru = n
	r.items[e.key] = n
	r.pushFront(n)
	r.used += e.charge
	var evicted []*Entry
	for r.used > r.cfg.CacheBytes {
		tail := r.head.prev
		if tail == &r.head || tail == n {
			break // cannot happen while charge <= budget; belt and braces
		}
		tail.unlink()
		delete(r.items, tail.ent.key)
		r.used -= tail.ent.charge
		evicted = append(evicted, tail.ent)
	}
	if invariant.Enabled {
		invariant.Assertf(r.used >= 0,
			"docroot: cache byte accounting went negative (%d)", r.used)
	}
	r.mu.Unlock()
	for _, ev := range evicted {
		r.evictions.Inc()
		ev.Release() // cache reference; fd closes once responses finish
	}
	return e
}

// ShedFDs evicts up to n least-recently-used entries regardless of the
// byte budget and returns how many it dropped — the fd-pressure valve:
// every cached entry pins an open file descriptor, so when accept(2)
// reports EMFILE the server can trade cache warmth for descriptor
// slots. Entries still referenced by in-flight responses only lose the
// cache's reference here; their fds close when the last response
// finishes, exactly as with budget eviction.
func (r *Root) ShedFDs(n int) int {
	if n <= 0 {
		return 0
	}
	r.mu.Lock()
	var evicted []*Entry
	for len(evicted) < n {
		tail := r.head.prev
		if tail == &r.head {
			break // cache empty
		}
		tail.unlink()
		delete(r.items, tail.ent.key)
		r.used -= tail.ent.charge
		evicted = append(evicted, tail.ent)
	}
	if invariant.Enabled {
		invariant.Assertf(r.used >= 0,
			"docroot: cache byte accounting went negative (%d) after pressure shed", r.used)
	}
	r.mu.Unlock()
	for _, ev := range evicted {
		r.evictions.Inc()
		r.pressure.Inc()
		ev.Release()
	}
	return len(evicted)
}
