package docroot

import "strings"

// TypeByExt infers a Content-Type from a path's extension. Both live
// servers thread it through their response writers (fixing the seed
// stores' hardcoded application/octet-stream), and the docroot stamps it
// on every Entry at open time so the hot path never re-derives it.
//
// The table covers what a static docroot realistically holds; anything
// unrecognized — including the extensionless /obj/<id> SURGE population —
// falls back to application/octet-stream.
func TypeByExt(path string) string {
	dot := strings.LastIndexByte(path, '.')
	if dot < 0 || dot < strings.LastIndexByte(path, '/') {
		return "application/octet-stream"
	}
	switch strings.ToLower(path[dot+1:]) {
	case "html", "htm":
		return "text/html"
	case "css":
		return "text/css"
	case "js", "mjs":
		return "text/javascript"
	case "txt", "log":
		return "text/plain"
	case "json":
		return "application/json"
	case "xml":
		return "application/xml"
	case "svg":
		return "image/svg+xml"
	case "png":
		return "image/png"
	case "jpg", "jpeg":
		return "image/jpeg"
	case "gif":
		return "image/gif"
	case "ico":
		return "image/x-icon"
	case "pdf":
		return "application/pdf"
	case "wasm":
		return "application/wasm"
	case "gz":
		return "application/gzip"
	default:
		return "application/octet-stream"
	}
}
