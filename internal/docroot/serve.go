package docroot

import "io"

// Writer is the connection surface SendfileTo needs: an io.Writer that
// may additionally implement syscall.Conn (net.TCPConn does) to unlock
// the zero-copy path.
type Writer interface {
	io.Writer
}

// copyTo is the buffered delivery loop: pread into a scratch buffer,
// write to the connection. Taken on non-Linux platforms and for
// connections that do not expose a raw descriptor.
func copyTo(conn Writer, e *Entry) (int64, error) {
	buf := make([]byte, 64<<10)
	var off int64
	for off < e.Size {
		want := e.Size - off
		if want > int64(len(buf)) {
			want = int64(len(buf))
		}
		n, err := e.ReadAt(buf[:want], off)
		if n > 0 {
			m, werr := conn.Write(buf[:n])
			off += int64(m)
			if werr != nil {
				return off, werr
			}
		}
		if off >= e.Size {
			break // a full final read may carry io.EOF; that's success
		}
		if err == io.EOF || (err == nil && n == 0) {
			return off, io.ErrUnexpectedEOF // file shrank underneath us
		}
		if err != nil {
			return off, err
		}
	}
	return off, nil
}
