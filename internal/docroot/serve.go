package docroot

import "io"

// Writer is the connection surface SendfileTo needs: an io.Writer that
// may additionally implement syscall.Conn (net.TCPConn does) to unlock
// the zero-copy path.
type Writer interface {
	io.Writer
}

// copyTo is the buffered delivery loop: pread into a scratch buffer,
// write to the connection. Taken on non-Linux platforms and for
// connections that do not expose a raw descriptor.
func copyTo(conn Writer, e *Entry) (int64, error) {
	return copyToFrom(conn, e, 0)
}

// copyToFrom delivers the entry's body from offset off onward and
// returns how many bytes it wrote (not counting anything delivered
// before off). It re-reads at the current offset after every write,
// so short writes — a kernel under memory pressure, or an injected
// fault — cost a retry, never a corrupt byte stream. This is also the
// resume path when sendfile(2) fails mid-response: the kernel never
// advances the offset of a failing sendfile, so continuing from the
// recorded offset is exact.
func copyToFrom(conn Writer, e *Entry, off int64) (int64, error) {
	buf := make([]byte, 64<<10)
	start := off
	for off < e.Size {
		want := e.Size - off
		if want > int64(len(buf)) {
			want = int64(len(buf))
		}
		n, err := e.ReadAt(buf[:want], off)
		if n > 0 {
			m, werr := conn.Write(buf[:n])
			off += int64(m)
			if werr != nil {
				return off - start, werr
			}
		}
		if off >= e.Size {
			break // a full final read may carry io.EOF; that's success
		}
		if err == io.EOF || (err == nil && n == 0) {
			return off - start, io.ErrUnexpectedEOF // file shrank underneath us
		}
		if err != nil {
			return off - start, err
		}
	}
	return off - start, nil
}
