package docroot

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/surge"
)

func writeFile(t *testing.T, dir, name string, body []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGetServesFileWithValidators(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "index.html", []byte("<html>hi</html>"))
	r, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/index.html", "/", "/./index.html", "/x/../index.html"} {
		e, err := r.Get(path)
		if err != nil {
			t.Fatalf("Get(%q): %v", path, err)
		}
		if e.ContentType != "text/html" {
			t.Fatalf("Get(%q) ContentType = %q", path, e.ContentType)
		}
		if e.Size != 15 || string(e.Body()) != "<html>hi</html>" {
			t.Fatalf("Get(%q) body = %q (size %d)", path, e.Body(), e.Size)
		}
		if e.ETag == "" || e.ETag[0] != '"' || e.LastModified == "" {
			t.Fatalf("Get(%q) validators = %q / %q", path, e.ETag, e.LastModified)
		}
		e.Release()
	}
}

func TestGetRejectsEscapesAndSpecials(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.txt", []byte("a"))
	// A sibling file outside the root that "/../" would reach.
	outside := filepath.Join(filepath.Dir(dir), "secret-"+filepath.Base(dir))
	if err := os.WriteFile(outside, []byte("s"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(outside)

	r, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"", "relative", "/missing.txt", "/a.txt/deeper",
		"/../" + filepath.Base(outside), "/\x00", "/subdir-not-there/",
	} {
		e, err := r.Get(path)
		if err == nil {
			e.Release()
			t.Fatalf("Get(%q) unexpectedly succeeded", path)
		}
		if !NotFound(err) {
			t.Fatalf("Get(%q) error %v not classified NotFound", path, err)
		}
	}
	// A directory itself is not servable (no index.html inside).
	if err := os.MkdirAll(filepath.Join(dir, "d"), 0o755); err != nil {
		t.Fatal(err)
	}
	if e, err := r.Get("/d"); err == nil {
		e.Release()
		t.Fatal("Get of a bare directory succeeded")
	} else if !NotFound(err) {
		t.Fatalf("directory error %v not NotFound", err)
	}
}

func TestCacheHitMissEviction(t *testing.T) {
	dir := t.TempDir()
	bodyA := bytes.Repeat([]byte("a"), 8<<10)
	bodyB := bytes.Repeat([]byte("b"), 8<<10)
	bodyC := bytes.Repeat([]byte("c"), 8<<10)
	writeFile(t, dir, "a.bin", bodyA)
	writeFile(t, dir, "b.bin", bodyB)
	writeFile(t, dir, "c.bin", bodyC)

	// Budget fits two 8 KiB bodies (+ overhead) but not three.
	r, err := New(Config{Dir: dir, CacheBytes: 2 * (8<<10 + entryOverhead), MemLimit: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	get := func(p string, want []byte) *Entry {
		t.Helper()
		e, err := r.Get(p)
		if err != nil {
			t.Fatalf("Get(%q): %v", p, err)
		}
		if !bytes.Equal(e.Body(), want) {
			t.Fatalf("Get(%q) wrong body", p)
		}
		return e
	}
	get("/a.bin", bodyA).Release()
	get("/b.bin", bodyB).Release()
	get("/a.bin", bodyA).Release() // hit; A is now most recent
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 || st.CachedEntries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	get("/c.bin", bodyC).Release() // evicts B (LRU tail)
	st = r.Stats()
	if st.Evictions != 1 || st.CachedEntries != 2 {
		t.Fatalf("after eviction: %+v", st)
	}
	get("/a.bin", bodyA).Release() // still cached
	get("/b.bin", bodyB).Release() // must re-open and still serve correctly
	st = r.Stats()
	if st.Hits != 2 || st.Opens != 4 {
		t.Fatalf("final stats = %+v", st)
	}
}

func TestEvictionKeepsInFlightEntryUsable(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "big.bin", bytes.Repeat([]byte("x"), 32<<10))
	writeFile(t, dir, "other.bin", bytes.Repeat([]byte("y"), 32<<10))
	// MemLimit 0: fd-only entries; budget holds exactly one.
	r, err := New(Config{Dir: dir, CacheBytes: entryOverhead, MemLimit: 0})
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.Get("/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if e.Body() != nil {
		t.Fatal("MemLimit 0 still cached a body")
	}
	// Force big.bin out of the cache while we still hold it.
	e2, err := r.Get("/other.bin")
	if err != nil {
		t.Fatal(err)
	}
	e2.Release()
	if r.Stats().Evictions != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
	// The evicted entry's fd must still pread correctly.
	buf := make([]byte, 16)
	if _, err := e.ReadAt(buf, 16<<10-8); err != nil {
		t.Fatalf("ReadAt after eviction: %v", err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte("x"), 16)) {
		t.Fatalf("ReadAt after eviction read %q", buf)
	}
	e.Release()
}

func TestCacheDisabled(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.txt", []byte("hello"))
	r, err := New(Config{Dir: dir, CacheBytes: 0, MemLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e, err := r.Get("/a.txt")
		if err != nil {
			t.Fatal(err)
		}
		if string(e.Body()) != "hello" {
			t.Fatalf("body = %q", e.Body())
		}
		e.Release()
	}
	st := r.Stats()
	if st.Hits != 0 || st.Opens != 3 || st.CachedEntries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendfileToDeliversAndMatches(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte{0xAB, 0xCD, 0x01}, 700*1024) // ~2 MiB, > one chunk
	writeFile(t, dir, "blob.bin", body)
	r, err := New(Config{Dir: dir, CacheBytes: 1 << 20, MemLimit: 0})
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.Get("/blob.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Release()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			got <- nil
			return
		}
		defer c.Close()
		var sink bytes.Buffer
		buf := make([]byte, 64<<10)
		for {
			n, err := c.Read(buf)
			sink.Write(buf[:n])
			if err != nil {
				break
			}
		}
		got <- sink.Bytes()
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	n, fellBack, err := SendfileTo(conn, e)
	conn.Close()
	if err != nil || n != e.Size || fellBack {
		t.Fatalf("SendfileTo = (%d, %v, %v), want (%d, false, nil)", n, fellBack, err, e.Size)
	}
	received := <-got
	if !bytes.Equal(received, body) {
		t.Fatalf("sendfile delivered %d bytes, want %d (content mismatch)", len(received), len(body))
	}
}

func TestCopyToMatchesSendfile(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("0123456789abcdef"), 10_001) // not buffer-aligned
	writeFile(t, dir, "blob.bin", body)
	r, err := New(Config{Dir: dir, CacheBytes: 1 << 20, MemLimit: 0})
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.Get("/blob.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Release()
	var sink bytes.Buffer
	n, err := copyTo(&sink, e)
	if err != nil || n != e.Size {
		t.Fatalf("copyTo = (%d, %v), want (%d, nil)", n, err, e.Size)
	}
	if !bytes.Equal(sink.Bytes(), body) {
		t.Fatal("copyTo content mismatch")
	}
}

func TestMaterializeSurgeMatchesSurgeStore(t *testing.T) {
	cfg := surge.DefaultConfig()
	cfg.NumObjects = 16
	cfg.MaxObjectBytes = 64 << 10
	set, err := surge.BuildObjectSet(cfg, dist.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := MaterializeSurge(dir, set, cfg.MaxObjectBytes, 11); err != nil {
		t.Fatal(err)
	}
	blob := SurgeBlob(cfg.MaxObjectBytes, 11)
	r, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var firstETag string
	for i := 0; i < set.Len(); i++ {
		o := set.Object(i)
		e, err := r.Get(o.Path())
		if err != nil {
			t.Fatalf("Get(%s): %v", o.Path(), err)
		}
		if e.Size != o.Size {
			t.Fatalf("object %d size %d, want %d", i, e.Size, o.Size)
		}
		if e.Body() != nil && !bytes.Equal(e.Body(), blob[:o.Size]) {
			t.Fatalf("object %d content mismatch", i)
		}
		if !e.ModTime.Equal(surgeEpoch) {
			t.Fatalf("object %d mtime %v, want fixed epoch", i, e.ModTime)
		}
		if i == 0 {
			firstETag = e.ETag
		}
		e.Release()
	}
	// Re-materializing elsewhere yields identical validators.
	dir2 := t.TempDir()
	if err := MaterializeSurge(dir2, set, cfg.MaxObjectBytes, 11); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	e, err := r2.Get(set.Object(0).Path())
	if err != nil {
		t.Fatal(err)
	}
	if e.ETag != firstETag {
		t.Fatalf("ETag not deterministic across materializations: %q vs %q", e.ETag, firstETag)
	}
	e.Release()
}

func TestTypeByExt(t *testing.T) {
	cases := map[string]string{
		"/index.html":    "text/html",
		"/a/b/style.CSS": "text/css",
		"/app.js":        "text/javascript",
		"/data.json":     "application/json",
		"/pic.jpeg":      "image/jpeg",
		"/obj/123":       "application/octet-stream",
		"/no.ext/file":   "application/octet-stream",
		"/archive.gz":    "application/gzip",
	}
	for p, want := range cases {
		if got := TypeByExt(p); got != want {
			t.Errorf("TypeByExt(%q) = %q, want %q", p, got, want)
		}
	}
}

func TestConcurrentGetRelease(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"a", "b", "c", "d"} {
		writeFile(t, dir, n+".bin", bytes.Repeat([]byte(n), 4<<10))
	}
	r, err := New(Config{Dir: dir, CacheBytes: 2 * (4<<10 + entryOverhead), MemLimit: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			names := []string{"a", "b", "c", "d"}
			for i := 0; i < 200; i++ {
				name := names[(i+g)%4]
				e, err := r.Get("/" + name + ".bin")
				if err != nil {
					done <- err
					return
				}
				if e.Size != 4<<10 {
					done <- err
					return
				}
				if e.Body() != nil && e.Body()[0] != name[0] {
					done <- err
					return
				}
				time.Sleep(time.Microsecond)
				e.Release()
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
