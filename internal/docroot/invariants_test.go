//go:build invariants

package docroot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A deliberate refcount violation must trip the invariant layer: with
// -tags invariants a double Release panics at the point of corruption
// instead of silently closing a shared fd out from under a response in
// flight. (The no-tag counterpart — assertions compiling out — is
// covered by internal/invariant's untagged test.)
func TestDoubleReleasePanicsUnderInvariants(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	// CacheBytes 0: the cache holds no reference, so the caller's single
	// reference is the only one and the second Release drives it to -1.
	r, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.Get("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	e.Release() // the one legitimate release; refs 1 -> 0, fd closes
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("double Release did not panic under -tags invariants")
		}
		msg, _ := rec.(string)
		if !strings.HasPrefix(msg, "invariant violation: ") ||
			!strings.Contains(msg, "refcount went negative") {
			t.Fatalf("unexpected panic message %q", msg)
		}
	}()
	e.Release() // the violation: refs 0 -> -1
}
