//go:build !linux

package docroot

// SendfileTo on platforms without sendfile(2) is the buffered fallback:
// a pread/write copy loop. Same contract as the Linux version.
func SendfileTo(conn Writer, e *Entry) (int64, bool, error) {
	n, err := copyTo(conn, e)
	return n, false, err
}
