//go:build linux

package docroot

import (
	"io"
	"syscall"
)

// sendfileChunk bounds one sendfile(2) call so a multi-gigabyte file
// cannot pin a blocking worker in a single uninterruptible syscall and
// write deadlines keep getting re-checked.
const sendfileChunk = 1 << 20

// SendfileTo delivers the entry's whole body to conn with blocking
// sendfile(2) — zero-copy, the thread parked by the runtime poller while
// the socket buffer is full, write deadlines honoured. This is the
// thread-pool server's delivery path; the reactor uses the non-blocking
// variant in internal/reactor instead. Falls back to a pread/write copy
// loop when conn does not expose a raw descriptor.
func SendfileTo(conn Writer, e *Entry) (int64, error) {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return copyTo(conn, e)
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return copyTo(conn, e)
	}
	var (
		off  int64
		sent int64
		serr error
	)
	werr := rc.Write(func(fd uintptr) bool {
		for sent < e.Size {
			chunk := e.Size - sent
			if chunk > sendfileChunk {
				chunk = sendfileChunk
			}
			n, err := syscall.Sendfile(int(fd), e.FD(), &off, int(chunk))
			if n > 0 {
				sent += int64(n)
				continue
			}
			switch err {
			case syscall.EAGAIN:
				return false // park until the socket is writable again
			case syscall.EINTR:
				continue
			case nil:
				serr = io.ErrUnexpectedEOF // file shrank underneath us
				return true
			default:
				serr = err
				return true
			}
		}
		return true
	})
	if werr != nil {
		return sent, werr
	}
	return sent, serr
}
