//go:build linux

package docroot

import (
	"errors"
	"io"
	"syscall"

	"repro/internal/sysfault"
)

// sendfileChunk bounds one sendfile(2) call so a multi-gigabyte file
// cannot pin a blocking worker in a single uninterruptible syscall and
// write deadlines keep getting re-checked.
const sendfileChunk = 1 << 20

// SendfileTo delivers the entry's whole body to conn — zero-copy with
// blocking sendfile(2) when conn exposes a raw descriptor, buffered
// otherwise. This is the thread-pool server's delivery path; the
// reactor uses the non-blocking variant in internal/reactor instead.
//
// When sendfile(2) fails mid-response with anything other than a dead
// peer (EINVAL/EIO — a filesystem refusing the fast path, an injected
// fault), delivery falls back to the buffered copy loop from the
// exact resume offset (a failing sendfile never advances its offset),
// so the byte stream stays correct; fellBack reports it so the server
// can count the degradation. Peer-death errors (ECONNRESET, EPIPE)
// are returned as-is — there is no one left to deliver to.
func SendfileTo(conn Writer, e *Entry) (n int64, fellBack bool, err error) {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		n, err = copyTo(conn, e)
		return n, false, err
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		n, err = copyTo(conn, e)
		return n, false, err
	}
	var (
		off  int64
		sent int64
		serr error
	)
	werr := rc.Write(func(fd uintptr) bool {
		for sent < e.Size {
			chunk := e.Size - sent
			if chunk > sendfileChunk {
				chunk = sendfileChunk
			}
			n, err := sysfault.Sendfile(0, int(fd), e.FD(), &off, int(chunk))
			if n > 0 {
				sent += int64(n)
				continue
			}
			switch err {
			case syscall.EAGAIN:
				return false // park until the socket is writable again
			case nil:
				serr = io.ErrUnexpectedEOF // file shrank underneath us
				return true
			default:
				serr = err
				return true
			}
		}
		return true
	})
	if werr != nil {
		return sent, false, werr
	}
	if serr != nil && serr != io.ErrUnexpectedEOF &&
		!errors.Is(serr, syscall.ECONNRESET) && !errors.Is(serr, syscall.EPIPE) {
		copied, cerr := copyToFrom(conn, e, sent)
		return sent + copied, true, cerr
	}
	return sent, false, serr
}
