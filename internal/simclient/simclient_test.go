package simclient

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/simcpu"
	"repro/internal/simnet"
	"repro/internal/simsrv"
	"repro/internal/surge"
	"repro/internal/trace"
)

// testbed wires a full simulated experiment: network, CPUs, one server,
// one fleet.
type testbed struct {
	engine *sim.Engine
	net    *simnet.Network
	cpu    *simcpu.Pool
	cfg    surge.Config
	set    *surge.ObjectSet
	rng    *dist.RNG
}

func newTestbed(t testing.TB, seed uint64) *testbed {
	t.Helper()
	e := sim.NewEngine()
	rng := dist.NewRNG(seed)
	cfg := surge.DefaultConfig()
	cfg.NumObjects = 200
	set, err := surge.BuildObjectSet(cfg, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{
		engine: e,
		net: simnet.NewNetwork(e, simnet.Params{
			BandwidthBps: 117e6,
			Latency:      100e-6,
			Backlog:      1024,
			SynRetries:   5,
		}),
		cpu: simcpu.NewPool(e, simcpu.Params{Processors: 1, SwitchOverhead: 0.01}),
		cfg: cfg,
		set: set,
		rng: rng,
	}
}

func (tb *testbed) fleet(t testing.TB, opts Options) *Fleet {
	t.Helper()
	f, err := NewFleet(tb.engine, tb.net, tb.cfg, tb.set, tb.rng.Split(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func shortOpts(clients int) Options {
	return Options{Clients: clients, Timeout: 10, RampOver: 2, Warmup: 5, Duration: 20}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions(100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{Clients: 0, Timeout: 10, Duration: 1},
		{Clients: 1, Timeout: 0, Duration: 1},
		{Clients: 1, Timeout: 10, Duration: 0},
		{Clients: 1, Timeout: 10, Duration: 1, RampOver: -1},
		{Clients: 1, Timeout: 10, Duration: 1, Warmup: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFleetAgainstEventDriven(t *testing.T) {
	tb := newTestbed(t, 1)
	srv := simsrv.NewEventDriven(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 1)
	srv.Start()
	f := tb.fleet(t, shortOpts(30))
	rep := f.Run()

	if rep.RepliesPerSec <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.ResetErrPerSec != 0 {
		t.Fatalf("event-driven server produced resets: %+v", rep)
	}
	if rep.MeanResponseSec <= 0 || rep.MeanResponseSec > 5 {
		t.Fatalf("implausible response time: %+v", rep)
	}
	if rep.MeanConnectSec <= 0 || rep.MeanConnectSec > 0.01 {
		t.Fatalf("event-driven connect time should be ~2 latencies: %+v", rep)
	}
	if rep.Sessions == 0 {
		t.Fatal("no sessions completed")
	}
}

func TestFleetAgainstThreaded(t *testing.T) {
	tb := newTestbed(t, 2)
	srv := simsrv.NewThreaded(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 64, 15)
	srv.Start()
	f := tb.fleet(t, shortOpts(30))
	rep := f.Run()
	if rep.RepliesPerSec <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.MeanResponseSec <= 0 {
		t.Fatalf("no response times: %+v", rep)
	}
}

func TestThreadedProducesResetsOnLongThinks(t *testing.T) {
	tb := newTestbed(t, 3)
	// A 2-second keep-alive guarantees many intra-session gaps overrun it.
	srv := simsrv.NewThreaded(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 64, 2)
	srv.Start()
	f := tb.fleet(t, Options{Clients: 40, Timeout: 10, RampOver: 2, Warmup: 5, Duration: 60})
	rep := f.Run()
	if rep.ResetErrPerSec <= 0 {
		t.Fatalf("threaded server with short keep-alive produced no resets: %+v", rep)
	}
}

func TestPoolExhaustionCausesClientTimeouts(t *testing.T) {
	tb := newTestbed(t, 4)
	// 2 threads, 40 clients: most clients can connect (backlog) but
	// never get served before the 10 s watchdog.
	srv := simsrv.NewThreaded(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 2, 15)
	srv.Start()
	f := tb.fleet(t, Options{Clients: 40, Timeout: 10, RampOver: 2, Warmup: 5, Duration: 40})
	rep := f.Run()
	if rep.TimeoutErrPerSec <= 0 {
		t.Fatalf("expected client timeouts when pool ≪ clients: %+v", rep)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Report {
		tb := newTestbed(t, 42)
		srv := simsrv.NewEventDriven(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 2)
		srv.Start()
		return tb.fleet(t, shortOpts(20)).Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	tb := newTestbed(t, 5)
	srv := simsrv.NewEventDriven(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 1)
	srv.Start()
	f := tb.fleet(t, shortOpts(10))
	rep := f.Run()
	// Mean reply ≈ set.MeanBytes; bandwidth should roughly equal
	// replies/s × mean bytes (within 3x, since only measured-window
	// replies are counted and tails are heavy).
	if rep.RepliesPerSec > 0 {
		perReply := rep.BandwidthBps / rep.RepliesPerSec
		if perReply < tb.set.MeanBytes()/4 || perReply > tb.set.MeanBytes()*4 {
			t.Fatalf("bytes per reply %v, object mean %v", perReply, tb.set.MeanBytes())
		}
	} else {
		t.Fatal("no replies")
	}
}

func TestMoreClientsMoreThroughputBelowSaturation(t *testing.T) {
	run := func(clients int) Report {
		tb := newTestbed(t, 6)
		srv := simsrv.NewEventDriven(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 1)
		srv.Start()
		return tb.fleet(t, shortOpts(clients)).Run()
	}
	lo, hi := run(5), run(40)
	if hi.RepliesPerSec <= lo.RepliesPerSec {
		t.Fatalf("throughput did not grow with offered load: %v → %v",
			lo.RepliesPerSec, hi.RepliesPerSec)
	}
}

func TestStartTwicePanics(t *testing.T) {
	tb := newTestbed(t, 7)
	srv := simsrv.NewEventDriven(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 1)
	srv.Start()
	f := tb.fleet(t, shortOpts(2))
	f.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Start")
		}
	}()
	f.Start()
}

func TestBadOptionsRejected(t *testing.T) {
	tb := newTestbed(t, 8)
	_, err := NewFleet(tb.engine, tb.net, tb.cfg, tb.set, tb.rng, Options{})
	if err == nil {
		t.Fatal("zero options accepted")
	}
}

func TestOpenLoopSessionRate(t *testing.T) {
	tb := newTestbed(t, 20)
	srv := simsrv.NewEventDriven(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 2)
	srv.Start()
	f, err := NewFleet(tb.engine, tb.net, tb.cfg, tb.set, tb.rng.Split(), Options{
		SessionRate: 20, // sessions/s, Poisson
		Timeout:     10,
		Warmup:      5,
		Duration:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Run()
	if rep.RepliesPerSec <= 0 {
		t.Fatalf("open-loop run produced no replies: %+v", rep)
	}
	// ~20 sessions/s × ~6.5 requests ≈ 130 replies/s expected; allow a
	// broad window for Poisson + session-length variance.
	if rep.RepliesPerSec < 60 || rep.RepliesPerSec > 260 {
		t.Fatalf("open-loop reply rate %v far from expectation (~130)", rep.RepliesPerSec)
	}
	// Sessions completed per second should be near the arrival rate.
	perSec := float64(rep.Sessions) / 30
	if perSec < 10 || perSec > 30 {
		t.Fatalf("completed sessions %.1f/s, offered 20/s", perSec)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	tb := newTestbed(t, 21)
	if _, err := NewFleet(tb.engine, tb.net, tb.cfg, tb.set, tb.rng, Options{
		SessionRate: -1, Timeout: 10, Duration: 10,
	}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewFleet(tb.engine, tb.net, tb.cfg, tb.set, tb.rng, Options{
		Timeout: 10, Duration: 10,
	}); err == nil {
		t.Fatal("neither clients nor rate accepted")
	}
}

func TestReportPercentilesOrdered(t *testing.T) {
	tb := newTestbed(t, 22)
	srv := simsrv.NewEventDriven(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 1)
	srv.Start()
	rep := tb.fleet(t, shortOpts(30)).Run()
	if !(rep.P50ResponseSec <= rep.P90ResponseSec && rep.P90ResponseSec <= rep.P99ResponseSec) {
		t.Fatalf("percentiles not ordered: %+v", rep)
	}
	if rep.P50ResponseSec <= 0 {
		t.Fatalf("missing percentiles: %+v", rep)
	}
}

func TestTraceIntegration(t *testing.T) {
	tb := newTestbed(t, 23)
	srv := simsrv.NewEventDriven(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 1)
	srv.Start()
	f := tb.fleet(t, shortOpts(5))
	ring := trace.NewRing(4096)
	f.Trace = ring
	rep := f.Run()
	if rep.RepliesPerSec <= 0 {
		t.Fatal("no traffic")
	}
	sum := ring.Summary()
	if sum[trace.SessionStart] == 0 || sum[trace.Connected] == 0 ||
		sum[trace.RequestSent] == 0 || sum[trace.ReplyDone] == 0 {
		t.Fatalf("lifecycle events missing: %v", sum)
	}
	// Requests sent must be >= replies observed.
	if sum[trace.RequestSent] < sum[trace.ReplyDone] {
		t.Fatalf("more replies than requests: %v", sum)
	}
	// Per-client timelines must be chronologically ordered.
	evs := ring.ByClient(1)
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("client timeline out of order: %+v", evs)
		}
	}
	if slow := ring.SlowestReplies(3); len(slow) == 0 {
		t.Fatal("no slowest replies")
	}
}

func TestFairnessOfEventDrivenService(t *testing.T) {
	// Paper §4.2: the event-driven server shares the network "in a more
	// fair way" among clients, while the thread-pool server serializes
	// whole responses and starves unbound clients. Proxy metric: the
	// spread of the response-time distribution (p90/p50) under a pool
	// far smaller than the client population.
	spread := func(build func(tb *testbed)) float64 {
		tb := newTestbed(t, 31)
		build(tb)
		rep := tb.fleet(t, Options{Clients: 60, Timeout: 30, RampOver: 2, Warmup: 5, Duration: 40}).Run()
		if rep.P50ResponseSec <= 0 {
			t.Fatalf("no percentiles: %+v", rep)
		}
		return rep.P90ResponseSec / rep.P50ResponseSec
	}
	edSpread := spread(func(tb *testbed) {
		simsrv.NewEventDriven(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 1).Start()
	})
	thSpread := spread(func(tb *testbed) {
		// 4 threads for 60 clients: most clients wait for a recycled
		// thread; the lucky bound ones are served fast.
		simsrv.NewThreaded(tb.engine, tb.net, tb.cpu, simsrv.DefaultCosts(), 4, 15).Start()
	})
	if edSpread >= thSpread {
		t.Fatalf("event-driven response spread (p90/p50=%v) not tighter than thread-pool (%v)",
			edSpread, thSpread)
	}
}
