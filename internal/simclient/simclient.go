// Package simclient emulates the paper's load generator: httperf driving
// SURGE-distributed sessions from emulated clients. Each client loops
// forever: think, connect, issue ≈6.5 requests (some pipelined) over a
// persistent connection, close, think again. A 10-second watchdog covers
// every activity — connecting, sending, waiting, receiving — exactly like
// httperf's --timeout; an expiry is a *client-timeout* error. A write on
// a connection the server has idle-closed is a *connection-reset* error.
// Both error classes, plus reply throughput, response times and
// connection times, are what the paper's figures plot.
package simclient

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/simsrv"
	"repro/internal/surge"
	"repro/internal/trace"
)

// Options configures a fleet of emulated clients.
type Options struct {
	// Clients is the number of concurrent emulated clients (the paper
	// sweeps 600–6000). Closed-loop mode: each client loops sessions
	// forever. Ignored when SessionRate is set.
	Clients int
	// SessionRate, when positive, selects httperf's open-loop mode
	// instead: new single-session clients arrive as a Poisson process at
	// this rate (sessions/second), regardless of how the server keeps
	// up. Open-loop load is how httperf overloads a server past
	// saturation without the think-time feedback of a fixed population.
	SessionRate float64
	// Timeout is the httperf watchdog in seconds (the paper uses 10).
	Timeout float64
	// RampOver staggers client start times uniformly over this many
	// seconds so the SUT does not see one synchronized SYN flood.
	RampOver float64
	// Warmup is how long to run before measurement starts.
	Warmup float64
	// Duration is the measurement window length.
	Duration float64
}

// DefaultOptions returns the paper's httperf settings with a short ramp.
func DefaultOptions(clients int) Options {
	return Options{
		Clients:  clients,
		Timeout:  10,
		RampOver: 5,
		Warmup:   10,
		Duration: 60,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	switch {
	case o.Clients <= 0 && o.SessionRate <= 0:
		return fmt.Errorf("simclient: need Clients > 0 (closed loop) or SessionRate > 0 (open loop)")
	case o.SessionRate < 0:
		return fmt.Errorf("simclient: negative SessionRate %v", o.SessionRate)
	case o.Timeout <= 0:
		return fmt.Errorf("simclient: Timeout must be positive, got %v", o.Timeout)
	case o.RampOver < 0:
		return fmt.Errorf("simclient: negative RampOver %v", o.RampOver)
	case o.Warmup < 0:
		return fmt.Errorf("simclient: negative Warmup %v", o.Warmup)
	case o.Duration <= 0:
		return fmt.Errorf("simclient: Duration must be positive, got %v", o.Duration)
	}
	return nil
}

// Collector accumulates the httperf-style measurements over the
// measurement window.
type Collector struct {
	Replies        metrics.Counter
	BytesReceived  metrics.Counter
	ConnectsOK     metrics.Counter
	ClientTimeouts metrics.Counter
	Resets         metrics.Counter
	Sessions       metrics.Counter

	ResponseTime *metrics.Histogram
	ConnectTime  *metrics.Histogram
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		ResponseTime: metrics.NewLatencyHistogram(),
		ConnectTime:  metrics.NewLatencyHistogram(),
	}
}

// Report is the per-run summary a figure point is computed from.
type Report struct {
	Clients          int
	Duration         float64
	RepliesPerSec    float64
	MeanResponseSec  float64
	P50ResponseSec   float64
	P90ResponseSec   float64
	P99ResponseSec   float64
	MeanConnectSec   float64
	P90ConnectSec    float64
	TimeoutErrPerSec float64
	ResetErrPerSec   float64
	BandwidthBps     float64
	Sessions         int64
}

// Fleet is a population of emulated clients attached to one network.
type Fleet struct {
	engine *sim.Engine
	net    *simnet.Network
	cfg    surge.Config
	set    *surge.ObjectSet
	rng    *dist.RNG
	opts   Options

	collector *Collector
	measuring bool
	started   bool

	// Trace, when non-nil, receives per-request lifecycle events (see
	// internal/trace). Set it before Start; tracing is free when nil.
	Trace *trace.Ring

	// SourceFactory, when non-nil, supplies each client's session stream
	// instead of the SURGE generator — e.g. a sesslog.Replayer for
	// recorded workloads. Set it before Start.
	SourceFactory func(client int, rng *dist.RNG) surge.SessionSource

	nextClientID int
}

// NewFleet builds a fleet. The object set must be the one the server
// advertises (sizes drive response lengths).
func NewFleet(engine *sim.Engine, net *simnet.Network, cfg surge.Config, set *surge.ObjectSet, rng *dist.RNG, opts Options) (*Fleet, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Fleet{
		engine:    engine,
		net:       net,
		cfg:       cfg,
		set:       set,
		rng:       rng,
		opts:      opts,
		collector: NewCollector(),
	}, nil
}

// Collector exposes the fleet's measurements.
func (f *Fleet) Collector() *Collector { return f.collector }

// Start launches every client and arms the measurement window. Call once.
func (f *Fleet) Start() {
	if f.started {
		panic("simclient: Fleet.Start called twice")
	}
	f.started = true
	if f.opts.SessionRate > 0 {
		f.scheduleArrival(f.rng.Split())
	} else {
		for i := 0; i < f.opts.Clients; i++ {
			c := &emuClient{
				fleet: f,
				id:    f.claimClientID(),
				rng:   f.rng.Split(),
			}
			c.gen = f.newSource(c.id, c.rng)
			start := c.rng.Float64() * f.opts.RampOver
			f.engine.Schedule(start, c.startSession)
		}
	}
	f.engine.Schedule(f.opts.Warmup, func() { f.measuring = true })
	f.engine.Schedule(f.opts.Warmup+f.opts.Duration, func() {
		f.measuring = false
		f.engine.Stop()
	})
}

// EndTime returns the simulated time at which measurement completes.
func (f *Fleet) EndTime() sim.Time {
	return sim.Time(f.opts.Warmup + f.opts.Duration)
}

// Run executes the whole experiment and returns the report.
func (f *Fleet) Run() Report {
	if !f.started {
		f.Start()
	}
	f.engine.RunUntil(f.EndTime())
	return f.Report()
}

// scheduleArrival arms the next open-loop session arrival (Poisson
// process: exponential inter-arrival times).
func (f *Fleet) scheduleArrival(arrivalRNG *dist.RNG) {
	gap := arrivalRNG.ExpFloat64() / f.opts.SessionRate
	f.engine.Schedule(gap, func() {
		if f.engine.Now() >= f.EndTime() {
			return
		}
		c := &emuClient{
			fleet:   f,
			id:      f.claimClientID(),
			rng:     f.rng.Split(),
			oneShot: true,
		}
		c.gen = f.newSource(c.id, c.rng)
		c.startSession()
		f.scheduleArrival(arrivalRNG)
	})
}

// Report summarises the collector into figure-ready numbers.
func (f *Fleet) Report() Report {
	c := f.collector
	d := f.opts.Duration
	return Report{
		Clients:          f.opts.Clients,
		Duration:         d,
		RepliesPerSec:    float64(c.Replies.Value()) / d,
		MeanResponseSec:  c.ResponseTime.Mean(),
		P50ResponseSec:   c.ResponseTime.Quantile(0.50),
		P90ResponseSec:   c.ResponseTime.Quantile(0.90),
		P99ResponseSec:   c.ResponseTime.Quantile(0.99),
		MeanConnectSec:   c.ConnectTime.Mean(),
		P90ConnectSec:    c.ConnectTime.Quantile(0.90),
		TimeoutErrPerSec: float64(c.ClientTimeouts.Value()) / d,
		ResetErrPerSec:   float64(c.Resets.Value()) / d,
		BandwidthBps:     float64(c.BytesReceived.Value()) / d,
		Sessions:         c.Sessions.Value(),
	}
}

// clientState is the emulated client's lifecycle position.
type clientState int

const (
	stateThinking clientState = iota
	stateConnecting
	stateInSession
)

// outstanding tracks one issued, unanswered request.
type outstanding struct {
	issuedAt sim.Time
}

// emuClient is one emulated user.
type emuClient struct {
	fleet *Fleet
	id    int
	rng   *dist.RNG
	gen   surge.SessionSource
	// oneShot clients (open-loop mode) run a single session and exit.
	oneShot bool

	state    clientState
	conn     *simnet.Conn
	session  surge.Session
	nextReq  int // index into session.Requests of the next to issue
	inflight []outstanding
	gapTimer *sim.Event
	watchdog *sim.Event
}

// newSource builds one client's session stream.
func (f *Fleet) newSource(client int, rng *dist.RNG) surge.SessionSource {
	if f.SourceFactory != nil {
		return f.SourceFactory(client, rng)
	}
	return surge.NewGenerator(f.cfg, f.set, rng)
}

// claimClientID hands out stable client identifiers for tracing.
func (f *Fleet) claimClientID() int {
	f.nextClientID++
	return f.nextClientID
}

// emit records a trace event when tracing is enabled.
func (c *emuClient) emit(kind trace.Kind, value float64) {
	if c.fleet.Trace == nil {
		return
	}
	c.fleet.Trace.Record(trace.Event{
		At:     float64(c.fleet.engine.Now()),
		Client: c.id,
		Kind:   kind,
		Value:  value,
	})
}

// startSession draws a new session and opens a fresh connection.
func (c *emuClient) startSession() {
	c.emit(trace.SessionStart, 0)
	c.session = c.gen.NextSession()
	c.nextReq = 0
	c.inflight = c.inflight[:0]
	c.state = stateConnecting
	conn := &simnet.Conn{}
	c.conn = conn
	conn.OnConnected = func(d float64) { c.onConnected(conn, d) }
	conn.OnClientRecv = func(bytes int64, meta any) { c.onRecv(conn, bytes, meta) }
	conn.OnReset = func() { c.onReset(conn) }
	c.armWatchdog()
	c.emit(trace.ConnectStart, 0)
	c.fleet.net.Connect(conn)
}

func (c *emuClient) onConnected(conn *simnet.Conn, dur float64) {
	if conn != c.conn {
		return // stale connection from an abandoned attempt
	}
	c.state = stateInSession
	c.emit(trace.Connected, dur)
	if c.fleet.measuring {
		c.fleet.collector.ConnectsOK.Inc()
		c.fleet.collector.ConnectTime.Observe(dur)
	}
	c.armWatchdog()
	c.issueBatch()
}

// issueBatch sends the next request plus any immediately-pipelined
// followers, httperf's burst behaviour.
func (c *emuClient) issueBatch() {
	if c.nextReq >= len(c.session.Requests) {
		return
	}
	c.send(c.session.Requests[c.nextReq])
	c.nextReq++
	for c.nextReq < len(c.session.Requests) && c.session.Requests[c.nextReq].Pipelined {
		c.send(c.session.Requests[c.nextReq])
		c.nextReq++
	}
}

// requestWireBytes approximates one HTTP/1.1 GET with headers.
const requestWireBytes = 220

func (c *emuClient) send(r surge.Request) {
	c.inflight = append(c.inflight, outstanding{issuedAt: c.fleet.engine.Now()})
	c.emit(trace.RequestSent, 0)
	c.fleet.net.ClientSend(c.conn, requestWireBytes, &simsrv.Request{
		ResponseBytes: r.Object.Size,
		Tag:           nil,
	})
	c.armWatchdog()
}

// onRecv handles downlink bytes; the final chunk of a response carries a
// *simsrv.ResponseDone meta.
func (c *emuClient) onRecv(conn *simnet.Conn, bytes int64, meta any) {
	if conn != c.conn || c.state != stateInSession {
		return
	}
	if c.fleet.measuring {
		c.fleet.collector.BytesReceived.Add(bytes)
	}
	// Any received byte is forward progress for the watchdog.
	c.armWatchdog()
	if _, ok := meta.(*simsrv.ResponseDone); !ok {
		return
	}
	if len(c.inflight) == 0 {
		return // response to a request from a previous life of the conn
	}
	issued := c.inflight[0]
	c.inflight = c.inflight[1:]
	c.emit(trace.ReplyDone, float64(c.fleet.engine.Now()-issued.issuedAt))
	if c.fleet.measuring {
		c.fleet.collector.Replies.Inc()
		c.fleet.collector.ResponseTime.Observe(float64(c.fleet.engine.Now() - issued.issuedAt))
	}
	if len(c.inflight) > 0 {
		return // still waiting for pipelined replies
	}
	if c.nextReq >= len(c.session.Requests) {
		c.finishSession()
		return
	}
	// Active OFF gap before the next page of the session.
	gap := c.session.Requests[c.nextReq].Gap
	c.emit(trace.GapStart, gap)
	c.disarmWatchdog() // idle inside a session is not an activity timeout
	c.gapTimer = c.fleet.engine.Schedule(gap, func() {
		c.gapTimer = nil
		if c.state == stateInSession && c.conn == conn {
			c.armWatchdog()
			c.issueBatch()
		}
	})
}

// nextLife schedules the next session for closed-loop clients; open-loop
// one-shot clients simply end.
func (c *emuClient) nextLife() {
	if c.oneShot {
		return
	}
	c.fleet.engine.Schedule(c.session.ThinkAfter, c.startSession)
}

// finishSession closes the connection gracefully and schedules the next
// session after the inactive OFF (think) time.
func (c *emuClient) finishSession() {
	c.emit(trace.SessionEnd, 0)
	if c.fleet.measuring {
		c.fleet.collector.Sessions.Inc()
	}
	c.teardown(false)
	c.nextLife()
}

// onReset records a connection-reset error and abandons the session.
func (c *emuClient) onReset(conn *simnet.Conn) {
	if conn != c.conn {
		return
	}
	c.emit(trace.ConnReset, 0)
	if c.fleet.measuring {
		c.fleet.collector.Resets.Inc()
	}
	c.teardown(false)
	c.nextLife()
}

// onWatchdog records a client-timeout error and abandons the session.
func (c *emuClient) onWatchdog() {
	c.watchdog = nil
	c.emit(trace.ClientTimeout, 0)
	if c.fleet.measuring {
		c.fleet.collector.ClientTimeouts.Inc()
	}
	c.teardown(true)
	c.nextLife()
}

// teardown abandons the current connection. abort distinguishes a
// watchdog kill (may still be connecting) from a graceful finish.
func (c *emuClient) teardown(abort bool) {
	c.disarmWatchdog()
	if c.gapTimer != nil {
		c.fleet.engine.Cancel(c.gapTimer)
		c.gapTimer = nil
	}
	conn := c.conn
	c.conn = nil
	c.inflight = c.inflight[:0]
	if conn != nil {
		if c.state == stateConnecting {
			c.fleet.net.AbortConnect(conn)
		} else {
			c.fleet.net.ClientClose(conn)
		}
	}
	_ = abort
	c.state = stateThinking
}

func (c *emuClient) armWatchdog() {
	now := c.fleet.engine.Now()
	deadline := now + sim.Time(c.fleet.opts.Timeout)
	if c.watchdog != nil && !c.watchdog.Canceled() {
		c.watchdog = c.fleet.engine.Reschedule(c.watchdog, deadline)
		return
	}
	c.watchdog = c.fleet.engine.At(deadline, c.onWatchdog)
}

func (c *emuClient) disarmWatchdog() {
	if c.watchdog != nil {
		c.fleet.engine.Cancel(c.watchdog)
		c.watchdog = nil
	}
}
