package sesslog

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/surge"
)

func sampleSessions(t *testing.T, n int) []surge.Session {
	t.Helper()
	cfg := surge.DefaultConfig()
	cfg.NumObjects = 50
	set, err := surge.BuildObjectSet(cfg, dist.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	return Record(surge.NewGenerator(cfg, set, dist.NewRNG(4)), n)
}

func TestWriteReadRoundTrip(t *testing.T) {
	sessions := sampleSessions(t, 20)
	var b strings.Builder
	if err := Write(&b, sessions); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sessions) {
		t.Fatalf("round trip lost sessions: %d vs %d", len(got), len(sessions))
	}
	for i := range got {
		if got[i].ThinkAfter != sessions[i].ThinkAfter {
			t.Fatalf("session %d think %v vs %v", i, got[i].ThinkAfter, sessions[i].ThinkAfter)
		}
		if len(got[i].Requests) != len(sessions[i].Requests) {
			t.Fatalf("session %d request count differs", i)
		}
		for j := range got[i].Requests {
			a, b := got[i].Requests[j], sessions[i].Requests[j]
			if a.Object.ID != b.Object.ID || a.Object.Size != b.Object.Size ||
				a.Gap != b.Gap || a.Pipelined != b.Pipelined {
				t.Fatalf("session %d request %d differs: %+v vs %+v", i, j, a, b)
			}
		}
	}
	if TotalBytes(got) != TotalBytes(sessions) {
		t.Fatal("byte totals differ")
	}
	if TotalRequests(got) != TotalRequests(sessions) {
		t.Fatal("request totals differ")
	}
}

func TestReadTolerantOfCommentsAndBlanks(t *testing.T) {
	log := "# header\n\nS 1.5\n# mid comment\nR 3 100 0 -\nR 4 200 0.5 P\n\n"
	got, err := Read(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Requests) != 2 {
		t.Fatalf("parsed %+v", got)
	}
	if !got[0].Requests[1].Pipelined {
		t.Fatal("pipeline flag lost")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"R 1 100 0 -\n",       // request before session
		"S\n",                 // missing think
		"S -1\n",              // negative think
		"S 0\nR 1 100 0\n",    // missing flag
		"S 0\nR 1 100 0 X\n",  // bad flag
		"S 0\nR x 100 0 -\n",  // bad id
		"S 0\nR 1 0 0 -\n",    // zero size
		"S 0\nR 1 100 -2 -\n", // negative gap
		"Q what\n",            // unknown record
	}
	for _, log := range bad {
		if _, err := Read(strings.NewReader(log)); err == nil {
			t.Errorf("accepted malformed log %q", log)
		}
	}
}

func TestEmptySessionsDropped(t *testing.T) {
	got, err := Read(strings.NewReader("S 1\nS 2\nR 1 100 0 -\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("empty session retained: %+v", got)
	}
}

func TestReplayerWrapsAround(t *testing.T) {
	sessions := sampleSessions(t, 3)
	r := NewReplayer(sessions, 0)
	var seen []int64
	for i := 0; i < 7; i++ {
		seen = append(seen, r.NextSession().TotalBytes())
	}
	if seen[0] != seen[3] || seen[1] != seen[4] || seen[2] != seen[5] {
		t.Fatalf("replayer did not wrap in order: %v", seen)
	}
}

func TestReplayerOffset(t *testing.T) {
	sessions := sampleSessions(t, 3)
	a := NewReplayer(sessions, 0).NextSession().TotalBytes()
	b := NewReplayer(sessions, 1).NextSession().TotalBytes()
	c := NewReplayer(sessions, 3).NextSession().TotalBytes() // wraps to 0
	if a != c {
		t.Fatalf("offset wrap broken: %v vs %v", a, c)
	}
	_ = b
}

func TestReplayerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReplayer(nil, 0)
}

// Replayer must satisfy the shared source interface.
var _ surge.SessionSource = (*Replayer)(nil)
