// Package sesslog records and replays session logs — the equivalent of
// httperf's --wsesslog input. A recorded log makes the exact request
// sequence portable: the same sessions can drive the live servers
// (internal/loadgen) and the simulated testbed (internal/simclient),
// which is how the repository cross-checks that the two substrates agree
// byte-for-byte on what a workload transfers.
//
// The format is line-oriented text:
//
//	# comment
//	S <think-after-seconds>
//	R <object-id> <size-bytes> <gap-seconds> <P|->
//
// An "S" line opens a session; following "R" lines are its requests in
// order ("P" marks a pipelined request). Object sizes are embedded so a
// replayer needs no object set.
package sesslog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/surge"
)

// Write serializes sessions to w.
func Write(w io.Writer, sessions []surge.Session) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# sesslog v1: %d sessions\n", len(sessions))
	for _, s := range sessions {
		fmt.Fprintf(bw, "S %g\n", s.ThinkAfter)
		for _, r := range s.Requests {
			flag := "-"
			if r.Pipelined {
				flag = "P"
			}
			fmt.Fprintf(bw, "R %d %d %g %s\n", r.Object.ID, r.Object.Size, r.Gap, flag)
		}
	}
	return bw.Flush()
}

// Read parses a session log.
func Read(r io.Reader) ([]surge.Session, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var sessions []surge.Session
	var cur *surge.Session
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "S":
			if len(fields) != 2 {
				return nil, fmt.Errorf("sesslog: line %d: malformed session header %q", line, text)
			}
			think, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || think < 0 {
				return nil, fmt.Errorf("sesslog: line %d: bad think time %q", line, fields[1])
			}
			sessions = append(sessions, surge.Session{ThinkAfter: think})
			cur = &sessions[len(sessions)-1]
		case "R":
			if cur == nil {
				return nil, fmt.Errorf("sesslog: line %d: request before any session", line)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("sesslog: line %d: malformed request %q", line, text)
			}
			id, err1 := strconv.Atoi(fields[1])
			size, err2 := strconv.ParseInt(fields[2], 10, 64)
			gap, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil || id < 0 || size <= 0 || gap < 0 {
				return nil, fmt.Errorf("sesslog: line %d: bad request fields %q", line, text)
			}
			var pipelined bool
			switch fields[4] {
			case "P":
				pipelined = true
			case "-":
			default:
				return nil, fmt.Errorf("sesslog: line %d: bad pipeline flag %q", line, fields[4])
			}
			cur.Requests = append(cur.Requests, surge.Request{
				Object:    surge.Object{ID: id, Size: size},
				Gap:       gap,
				Pipelined: pipelined,
			})
		default:
			return nil, fmt.Errorf("sesslog: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sesslog: %w", err)
	}
	// Drop empty sessions (an S line with no requests is a recording
	// artifact, not a playable session).
	out := sessions[:0]
	for _, s := range sessions {
		if len(s.Requests) > 0 {
			out = append(out, s)
		}
	}
	return out, nil
}

// Record samples n sessions from a generator into a log.
func Record(g *surge.Generator, n int) []surge.Session {
	out := make([]surge.Session, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.NextSession())
	}
	return out
}

// Replayer replays a fixed session list in order, wrapping around — a
// surge.SessionSource. Each client should get its own Replayer (with a
// distinct offset) so concurrent clients do not mirror each other.
type Replayer struct {
	sessions []surge.Session
	next     int
}

// NewReplayer returns a source starting at the given offset.
func NewReplayer(sessions []surge.Session, offset int) *Replayer {
	if len(sessions) == 0 {
		panic("sesslog: empty session log")
	}
	return &Replayer{sessions: sessions, next: offset % len(sessions)}
}

// NextSession implements surge.SessionSource.
func (r *Replayer) NextSession() surge.Session {
	s := r.sessions[r.next]
	r.next = (r.next + 1) % len(r.sessions)
	return s
}

// TotalBytes sums the response payloads of all sessions in the log.
func TotalBytes(sessions []surge.Session) int64 {
	var n int64
	for _, s := range sessions {
		n += s.TotalBytes()
	}
	return n
}

// TotalRequests counts the requests in the log.
func TotalRequests(sessions []surge.Session) int {
	n := 0
	for _, s := range sessions {
		n += len(s.Requests)
	}
	return n
}
