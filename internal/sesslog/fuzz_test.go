package sesslog

import (
	"strings"
	"testing"
)

// FuzzRead checks the log reader never panics and that anything it
// accepts round-trips through Write/Read unchanged.
func FuzzRead(f *testing.F) {
	f.Add("S 1\nR 1 100 0 -\n")
	f.Add("# c\nS 0\nR 2 64 0.5 P\nR 3 128 0 -\n")
	f.Add("garbage")
	f.Add("S\n")
	f.Fuzz(func(t *testing.T, log string) {
		sessions, err := Read(strings.NewReader(log))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := Write(&b, sessions); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("reparse failed: %v\nlog: %q", err, b.String())
		}
		if len(again) != len(sessions) {
			t.Fatalf("round trip changed session count: %d vs %d", len(again), len(sessions))
		}
		if TotalBytes(again) != TotalBytes(sessions) {
			t.Fatal("round trip changed byte total")
		}
	})
}
