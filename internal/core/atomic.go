package core

import "sync/atomic"

// Thin wrappers keep the counter type readable at its call sites.

func atomicAdd(p *int64, d int64) { atomic.AddInt64(p, d) }
func atomicLoad(p *int64) int64   { return atomic.LoadInt64(p) }
func atomicCAS(p *int64, old, new int64) bool {
	return atomic.CompareAndSwapInt64(p, old, new)
}
