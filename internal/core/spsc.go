//go:build linux

package core

import "sync/atomic"

// spscRing is a bounded lock-free single-producer/single-consumer
// queue: the acceptor thread pushes accepted fds and exactly one shard
// loop pops them — the fan-out fallback's handoff lane when
// SO_REUSEPORT accept sharding is unavailable. tail is advanced only
// by the producer and head only by the consumer, so one atomic
// store/load pair per operation is the whole protocol: the producer's
// slot write happens-before its tail store, which the consumer's tail
// load observes before reading the slot.
type spscRing struct {
	buf  []pendingConn
	mask uint64
	// head and tail are padded apart so the producer and consumer do
	// not false-share a cache line.
	head atomic.Uint64 // consumer position
	_    [56]byte
	tail atomic.Uint64 // producer position
}

// newSPSCRing returns a ring holding at least capacity entries
// (rounded up to a power of two).
func newSPSCRing(capacity int) *spscRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &spscRing{buf: make([]pendingConn, n), mask: uint64(n - 1)}
}

// push appends p; false means the ring is full. Producer only.
func (r *spscRing) push(p pendingConn) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = p
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest entry; false means empty. Consumer only.
func (r *spscRing) pop() (pendingConn, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return pendingConn{}, false
	}
	p := r.buf[h&r.mask]
	r.buf[h&r.mask] = pendingConn{}
	r.head.Store(h + 1)
	return p, true
}
