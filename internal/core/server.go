//go:build linux

package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/httpwire"
	"repro/internal/reactor"
)

// Config parameterizes the event-driven server.
type Config struct {
	// Port to listen on (0 picks a free port; see Server.Port).
	Port int
	// Workers is the number of reactor worker threads (the paper's key
	// knob: 1–2 suffice on a uniprocessor, 2 on the 4-way SMP).
	Workers int
	// Backlog is the listen(2) backlog.
	Backlog int
	// ReadBuf is the per-read buffer size.
	ReadBuf int
	// Store serves the content; required.
	Store Store
	// IdleTimeout, when positive, disconnects connections with no
	// activity for this long — the policy a thread-pool server is
	// *forced* to adopt to recycle threads. The event-driven
	// architecture does not need it (a paper headline), so the default
	// is 0 = never; the knob exists for the live ablation that shows
	// the reset errors appear with the policy, not the architecture.
	IdleTimeout time.Duration
}

// DefaultConfig returns the paper's best uniprocessor configuration.
func DefaultConfig(store Store) Config {
	return Config{
		Workers: 1,
		Backlog: 1024,
		ReadBuf: 16 << 10,
		Store:   store,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("core: Workers must be positive, got %d", c.Workers)
	case c.Backlog <= 0:
		return fmt.Errorf("core: Backlog must be positive, got %d", c.Backlog)
	case c.ReadBuf < 256:
		return fmt.Errorf("core: ReadBuf must be at least 256, got %d", c.ReadBuf)
	case c.Store == nil:
		return fmt.Errorf("core: Store is required")
	case c.Port < 0 || c.Port > 65535:
		return fmt.Errorf("core: invalid port %d", c.Port)
	case c.IdleTimeout < 0:
		return fmt.Errorf("core: negative IdleTimeout %v", c.IdleTimeout)
	}
	return nil
}

// Stats are the server's counters (all atomic; safe to read live).
type Stats struct {
	Accepted   int64
	Replies    int64
	BytesOut   int64
	NotFound   int64
	BadRequest int64
	ConnsOpen  int64
	IdleCloses int64
}

// Server is the live event-driven web server.
type Server struct {
	cfg  Config
	lfd  int
	port int

	workers  []*worker
	acceptor *reactor.Poller
	wg       sync.WaitGroup
	stopping chan struct{}
	stopOnce sync.Once

	accepted   counter
	replies    counter
	bytesOut   counter
	notFound   counter
	badRequest counter
	connsOpen  counter
	idleCloses counter
}

// counter is a tiny atomic counter (avoids importing metrics here).
type counter struct{ v int64 }

func (c *counter) add(d int64) { atomicAdd(&c.v, d) }
func (c *counter) get() int64  { return atomicLoad(&c.v) }

// NewServer validates the configuration and binds the listener; call
// Start to begin serving.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lfd, port, err := reactor.Listen(cfg.Port, cfg.Backlog)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, lfd: lfd, port: port, stopping: make(chan struct{})}
	return s, nil
}

// Port returns the bound port.
func (s *Server) Port() int { return s.port }

// Addr returns the listen address.
func (s *Server) Addr() string { return fmt.Sprintf("127.0.0.1:%d", s.port) }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:   s.accepted.get(),
		Replies:    s.replies.get(),
		BytesOut:   s.bytesOut.get(),
		NotFound:   s.notFound.get(),
		BadRequest: s.badRequest.get(),
		ConnsOpen:  s.connsOpen.get(),
		IdleCloses: s.idleCloses.get(),
	}
}

// Start launches the acceptor and worker threads.
func (s *Server) Start() error {
	ap, err := reactor.NewPoller(64)
	if err != nil {
		return err
	}
	s.acceptor = ap
	if err := ap.Add(s.lfd, true, false); err != nil {
		ap.Close()
		return err
	}
	for i := 0; i < s.cfg.Workers; i++ {
		w, err := newWorker(s)
		if err != nil {
			ap.Close()
			for _, prev := range s.workers {
				prev.poller.Close()
			}
			return err
		}
		s.workers = append(s.workers, w)
	}
	// Date-header ticker: one refresh per second, server-wide.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-s.stopping:
				return
			case now := <-t.C:
				httpwire.RefreshDate(now)
			}
		}
	}()
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.loop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Stop shuts the server down and waits for all threads to exit.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		s.acceptor.Wakeup()
		for _, w := range s.workers {
			w.poller.Wakeup()
		}
	})
	s.wg.Wait()
}

// acceptLoop is the acceptor thread: it blocks in readiness selection on
// the listener and hands accepted fds to workers round-robin — the same
// split the paper's nio server uses (one acceptor + N workers).
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer s.acceptor.Close()
	defer reactor.CloseFD(s.lfd)
	// The loop blocks in raw epoll_wait, which parks an OS thread; pin
	// the goroutine so it owns that thread outright (a reactor thread in
	// the paper's sense) instead of bouncing through scheduler handoffs.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	rr := 0
	for {
		select {
		case <-s.stopping:
			return
		default:
		}
		evs, err := s.acceptor.Wait(-1)
		if err != nil {
			return
		}
		_ = evs
		for {
			fd, done, err := reactor.Accept(s.lfd)
			if err != nil {
				return // listener closed
			}
			if done {
				break
			}
			s.accepted.add(1)
			w := s.workers[rr%len(s.workers)]
			rr++
			w.give(fd)
		}
	}
}

// conn is the per-connection state owned by exactly one worker.
type conn struct {
	fd     int
	parser httpwire.Parser
	// out is the pending response byte queue: each element is written
	// non-blockingly; when the socket fills we keep the offset and wait
	// for writability.
	out      [][]byte
	outOff   int
	writeArm bool // EPOLLOUT currently requested
	closing  bool // close once out drains (400 or Connection: close)
	replies  int64
	// lastActive is when the connection last made progress; the idle
	// sweeper (only armed when Config.IdleTimeout > 0) compares it.
	lastActive time.Time
}

// worker is one reactor thread.
type worker struct {
	srv    *Server
	poller *reactor.Poller
	conns  map[int]*conn
	inbox  chan int
	buf    []byte
	reqs   []*httpwire.Request
}

func newWorker(s *Server) (*worker, error) {
	p, err := reactor.NewPoller(1024)
	if err != nil {
		return nil, err
	}
	return &worker{
		srv:    s,
		poller: p,
		conns:  make(map[int]*conn),
		inbox:  make(chan int, 4096),
		buf:    make([]byte, s.cfg.ReadBuf),
	}, nil
}

// give transfers an accepted fd to this worker (called from the acceptor
// thread; Selector.wakeup semantics).
func (w *worker) give(fd int) {
	select {
	case w.inbox <- fd:
		w.poller.Wakeup()
	default:
		// Inbox overflow: shed the connection rather than block the
		// acceptor; this mirrors a full pending-registration queue.
		reactor.CloseFD(fd)
	}
}

// loop is the worker thread body: a classic reactor loop.
func (w *worker) loop() {
	defer w.srv.wg.Done()
	defer w.shutdown()
	// Dedicated reactor thread (see acceptLoop).
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	// With an idle timeout configured, the selector wait is bounded so
	// the worker can sweep idle connections (Selector.select(timeout)).
	waitMs := -1
	if d := w.srv.cfg.IdleTimeout; d > 0 {
		waitMs = int(d.Milliseconds() / 2)
		if waitMs < 10 {
			waitMs = 10
		}
	}
	for {
		w.drainInbox()
		select {
		case <-w.srv.stopping:
			return
		default:
		}
		evs, err := w.poller.Wait(waitMs)
		if err != nil {
			return
		}
		if w.srv.cfg.IdleTimeout > 0 {
			w.sweepIdle()
		}
		for _, ev := range evs {
			c, ok := w.conns[ev.FD]
			if !ok {
				continue
			}
			if ev.Hangup {
				w.closeConn(c)
				continue
			}
			if ev.Readable {
				w.readable(c)
			}
			if c2, still := w.conns[ev.FD]; still && c2 == c && ev.Writable {
				w.writable(c)
			}
		}
	}
}

func (w *worker) shutdown() {
	for _, c := range w.conns {
		reactor.CloseFD(c.fd)
		w.srv.connsOpen.add(-1)
	}
	w.conns = nil
	w.poller.Close()
}

func (w *worker) drainInbox() {
	for {
		select {
		case fd := <-w.inbox:
			c := &conn{fd: fd, lastActive: time.Now()}
			if err := w.poller.Add(fd, true, false); err != nil {
				reactor.CloseFD(fd)
				continue
			}
			w.conns[fd] = c
			w.srv.connsOpen.add(1)
		default:
			return
		}
	}
}

// readable drains the socket and serves every parsed request.
func (w *worker) readable(c *conn) {
	c.lastActive = time.Now()
	for {
		n, eof, again, err := reactor.Read(c.fd, w.buf)
		if err != nil || eof {
			w.closeConn(c)
			return
		}
		if again {
			break
		}
		w.reqs = w.reqs[:0]
		reqs, perr := c.parser.Feed(w.reqs, w.buf[:n])
		w.reqs = reqs
		for _, req := range reqs {
			w.serve(c, req)
		}
		if perr != nil {
			w.srv.badRequest.add(1)
			c.out = append(c.out, httpwire.AppendResponseHeader(nil, 400, "text/plain", 0, false))
			c.closing = true
			break
		}
	}
	w.flush(c)
}

// serve appends one response to the connection's output queue.
func (w *worker) serve(c *conn, req *httpwire.Request) {
	switch {
	case req.Method != "GET" && req.Method != "HEAD":
		c.out = append(c.out, httpwire.AppendResponseHeader(nil, 501, "text/plain", 0, req.KeepAlive))
	default:
		w.serveStore(c, req)
	}
	c.replies++
	w.srv.replies.add(1)
	if !req.KeepAlive {
		c.closing = true
	}
}

// serveStore resolves the path against the store and queues 200/404.
func (w *worker) serveStore(c *conn, req *httpwire.Request) {
	body, ctype, ok := w.srv.cfg.Store.Get(req.Path)
	if !ok {
		w.srv.notFound.add(1)
		c.out = append(c.out, httpwire.AppendResponseHeader(nil, 404, "text/plain", 0, req.KeepAlive))
	} else {
		c.out = append(c.out, httpwire.AppendResponseHeader(nil, 200, ctype, int64(len(body)), req.KeepAlive))
		if req.Method == "GET" && len(body) > 0 {
			c.out = append(c.out, body)
		}
	}
}

// flush writes queued output until the socket would block, then toggles
// write interest accordingly — the NIO write-readiness pattern.
func (w *worker) flush(c *conn) {
	for len(c.out) > 0 {
		head := c.out[0][c.outOff:]
		n, again, err := reactor.Write(c.fd, head)
		if err != nil {
			w.closeConn(c)
			return
		}
		w.srv.bytesOut.add(int64(n))
		if n == len(head) {
			c.out[0] = nil
			c.out = c.out[1:]
			c.outOff = 0
			continue
		}
		c.outOff += n
		if again || n < len(head) {
			if !c.writeArm {
				c.writeArm = true
				_ = w.poller.Modify(c.fd, true, true)
			}
			return
		}
	}
	// Drained.
	if c.closing {
		w.closeConn(c)
		return
	}
	if c.writeArm {
		c.writeArm = false
		_ = w.poller.Modify(c.fd, true, false)
	}
}

// writable continues a blocked flush.
func (w *worker) writable(c *conn) { w.flush(c) }

// sweepIdle force-closes connections idle past the configured timeout,
// with an RST — the recycling policy of the thread-pool world, here only
// as an opt-in ablation knob.
func (w *worker) sweepIdle() {
	deadline := time.Now().Add(-w.srv.cfg.IdleTimeout)
	for _, c := range w.conns {
		if len(c.out) == 0 && c.lastActive.Before(deadline) {
			w.srv.idleCloses.add(1)
			w.resetConn(c)
		}
	}
}

// resetConn tears a connection down with an RST.
func (w *worker) resetConn(c *conn) {
	if _, ok := w.conns[c.fd]; !ok {
		return
	}
	delete(w.conns, c.fd)
	w.poller.Remove(c.fd)
	reactor.CloseWithReset(c.fd)
	w.srv.connsOpen.add(-1)
}

func (w *worker) closeConn(c *conn) {
	if _, ok := w.conns[c.fd]; !ok {
		return
	}
	delete(w.conns, c.fd)
	w.poller.Remove(c.fd)
	reactor.CloseFD(c.fd)
	w.srv.connsOpen.add(-1)
}
