//go:build linux

package core

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/docroot"
	"repro/internal/httpwire"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/reactor"
)

// Config parameterizes the event-driven server.
type Config struct {
	// Port to listen on (0 picks a free port; see Server.Port).
	Port int
	// Workers is the number of reactor worker threads (the paper's key
	// knob: 1–2 suffice on a uniprocessor, 2 on the 4-way SMP).
	Workers int
	// Backlog is the listen(2) backlog.
	Backlog int
	// ReadBuf is the per-read buffer size.
	ReadBuf int
	// Store serves the content from memory. Required unless Docroot is
	// set.
	Store Store
	// Docroot, when non-nil, serves real files from disk through the
	// bounded content cache instead of Store: cache hits are written
	// from memory, misses are delivered zero-copy with non-blocking
	// sendfile(2) from the reactor loop, and conditional GETs
	// (If-None-Match / If-Modified-Since) are answered with 304.
	Docroot *docroot.Root
	// IdleTimeout, when positive, disconnects connections with no
	// activity for this long — the policy a thread-pool server is
	// *forced* to adopt to recycle threads. The event-driven
	// architecture does not need it (a paper headline), so the default
	// is 0 = never; the knob exists for the live ablation that shows
	// the reset errors appear with the policy, not the architecture.
	IdleTimeout time.Duration
	// HeaderTimeout, when positive, bounds how long a connection may
	// take to deliver a complete request once one has begun (and how
	// long a fresh connection may take to send its first). Distinct
	// from IdleTimeout: an idle keep-alive connection between requests
	// is free to linger, but a peer that dribbles header bytes — a
	// slowloris — is reset when the clock runs out, so it cannot pin
	// parser buffers forever. 0 disables the guard.
	HeaderTimeout time.Duration
	// MaxConns, when positive, caps concurrently open connections:
	// excess accepts are answered with an immediate 503 and closed
	// (counted in Stats.Shed) instead of queuing without bound — the
	// *hard ceiling* for the connection-flood regime. 0 = unlimited.
	MaxConns int
	// Admission, when non-nil, is the adaptive overload controller: it
	// is consulted on every accept (before the MaxConns ceiling), and
	// fed the accept-to-first-response latency of each admitted
	// connection so its AIMD loop can hold the configured p95 target.
	// Refused connections are shed with 503 + Retry-After + close.
	Admission *overload.Controller
	// Watchdog, when non-nil, monitors the acceptor and every reactor
	// worker for wedged loops: each thread registers a heartbeat at
	// Start and brackets its work with Begin/End, so a handler that
	// hangs the loop is flagged within roughly one watchdog interval.
	// The watchdog is caller-owned (it may be shared across servers)
	// and is not stopped by Stop.
	Watchdog *overload.Watchdog
	// HandlerFault, when non-nil, injects faults into request handling
	// (see Fault) — the hook the robustness tests drive panics and
	// wedges through. nil in production.
	HandlerFault FaultFunc
	// Obs, when non-nil, is the live observability plane: every
	// connection's lifecycle (accept, queue-wait, parse, handler,
	// first-byte, write, close/shed/panic) is traced into its ring and
	// the four phase latencies feed its histograms, all read live by the
	// admin endpoint. Every recording site is behind this nil check, so
	// a nil Obs costs nothing on the hot path.
	Obs *obs.Plane
}

// DefaultConfig returns the paper's best uniprocessor configuration.
func DefaultConfig(store Store) Config {
	return Config{
		Workers: 1,
		Backlog: 1024,
		ReadBuf: 16 << 10,
		Store:   store,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("core: Workers must be positive, got %d", c.Workers)
	case c.Backlog <= 0:
		return fmt.Errorf("core: Backlog must be positive, got %d", c.Backlog)
	case c.ReadBuf < 256:
		return fmt.Errorf("core: ReadBuf must be at least 256, got %d", c.ReadBuf)
	case c.Store == nil && c.Docroot == nil:
		return fmt.Errorf("core: a Store or a Docroot is required")
	case c.Port < 0 || c.Port > 65535:
		return fmt.Errorf("core: invalid port %d", c.Port)
	case c.IdleTimeout < 0:
		return fmt.Errorf("core: negative IdleTimeout %v", c.IdleTimeout)
	case c.HeaderTimeout < 0:
		return fmt.Errorf("core: negative HeaderTimeout %v", c.HeaderTimeout)
	case c.MaxConns < 0:
		return fmt.Errorf("core: negative MaxConns %d", c.MaxConns)
	}
	return nil
}

// Stats are the server's counters (all atomic; safe to read live).
type Stats struct {
	Accepted   int64
	Replies    int64
	BytesOut   int64
	NotFound   int64
	BadRequest int64
	ConnsOpen  int64
	IdleCloses int64
	// Shed counts connections refused with a 503 by MaxConns admission
	// control.
	Shed int64
	// HeaderTimeouts counts connections reset for failing to deliver a
	// complete request within HeaderTimeout (slowloris defense).
	HeaderTimeouts int64
	// NotModified counts 304 replies to conditional GETs (docroot only).
	NotModified int64
	// SendfileBytes counts body bytes delivered zero-copy via
	// sendfile(2); BytesOut includes them.
	SendfileBytes int64
	// HandlerPanics counts handler panics that were isolated to their
	// connection (best-effort 500 + close) instead of killing the
	// process.
	HandlerPanics int64
	// AcceptEMFILE counts accept attempts refused by the kernel for
	// descriptor exhaustion (EMFILE/ENFILE) and absorbed by the
	// reserve-descriptor recovery instead of killing the acceptor.
	AcceptEMFILE int64
	// AcceptBackoffs counts backoff waits taken by the accept gate
	// after resource-exhausted accepts (instead of hot-spinning on a
	// level-triggered listener that stays readable).
	AcceptBackoffs int64
	// WriteStalls counts ENOBUFS write failures absorbed by re-arming
	// write interest instead of tearing the connection down.
	WriteStalls int64
	// WriteResets counts connections torn down by a peer reset or
	// broken pipe mid-response (distinct from generic write errors).
	WriteResets int64
	// SendfileFallbacks counts sendfile(2) failures recovered by
	// switching the in-flight response to buffered delivery from the
	// same resume offset — the response bytes stay correct.
	SendfileFallbacks int64
}

// Server is the live event-driven web server.
type Server struct {
	cfg  Config
	lfd  int
	port int

	workers   []*worker
	acceptor  *reactor.Poller
	wg        sync.WaitGroup
	stopping  chan struct{}
	stopOnce  sync.Once
	draining  chan struct{}
	drainOnce sync.Once

	accepted       counter
	replies        counter
	bytesOut       counter
	notFound       counter
	badRequest     counter
	connsOpen      counter
	idleCloses     counter
	shed           counter
	headerTimeouts counter
	notModified    counter
	sendfileBytes  counter
	handlerPanics  counter

	acceptEMFILE      counter
	acceptBackoffs    counter
	writeStalls       counter
	writeResets       counter
	sendfileFallbacks counter

	// reserveFD is one descriptor held on /dev/null purely so the
	// acceptor can close it to free a slot when accept(2) reports
	// EMFILE, accept-and-503 the pending connection, and re-arm.
	// Owned by the acceptor thread once Start has run.
	reserveFD int
}

// counter is a tiny atomic counter (avoids importing metrics here).
type counter struct{ v int64 }

func (c *counter) add(d int64) { atomicAdd(&c.v, d) }
func (c *counter) get() int64  { return atomicLoad(&c.v) }

// NewServer validates the configuration and binds the listener; call
// Start to begin serving.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lfd, port, err := reactor.Listen(cfg.Port, cfg.Backlog)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		lfd:       lfd,
		port:      port,
		stopping:  make(chan struct{}),
		draining:  make(chan struct{}),
		reserveFD: openReserve(),
	}
	return s, nil
}

// openReserve opens the fd-exhaustion reserve descriptor (see
// Server.reserveFD). A failure to open it (-1) only disables the
// recovery, never the server.
func openReserve() int {
	fd, err := syscall.Open("/dev/null", syscall.O_RDONLY|syscall.O_CLOEXEC, 0)
	if err != nil {
		return -1
	}
	return fd
}

// Port returns the bound port.
func (s *Server) Port() int { return s.port }

// Addr returns the listen address.
func (s *Server) Addr() string { return fmt.Sprintf("127.0.0.1:%d", s.port) }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:       s.accepted.get(),
		Replies:        s.replies.get(),
		BytesOut:       s.bytesOut.get(),
		NotFound:       s.notFound.get(),
		BadRequest:     s.badRequest.get(),
		ConnsOpen:      s.connsOpen.get(),
		IdleCloses:     s.idleCloses.get(),
		Shed:           s.shed.get(),
		HeaderTimeouts: s.headerTimeouts.get(),
		NotModified:    s.notModified.get(),
		SendfileBytes:  s.sendfileBytes.get(),
		HandlerPanics:  s.handlerPanics.get(),

		AcceptEMFILE:      s.acceptEMFILE.get(),
		AcceptBackoffs:    s.acceptBackoffs.get(),
		WriteStalls:       s.writeStalls.get(),
		WriteResets:       s.writeResets.get(),
		SendfileFallbacks: s.sendfileFallbacks.get(),
	}
}

// Start launches the acceptor and worker threads.
func (s *Server) Start() error {
	ap, err := reactor.NewPoller(64)
	if err != nil {
		return err
	}
	s.acceptor = ap
	if err := ap.Add(s.lfd, true, false); err != nil {
		ap.Close()
		return err
	}
	for i := 0; i < s.cfg.Workers; i++ {
		w, err := newWorker(s, i)
		if err != nil {
			ap.Close()
			for _, prev := range s.workers {
				prev.poller.Close()
			}
			return err
		}
		s.workers = append(s.workers, w)
	}
	// Date-header ticker: one refresh per second, server-wide.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-s.stopping:
				return
			case now := <-t.C:
				httpwire.RefreshDate(now)
			}
		}
	}()
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.loop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Stop shuts the server down and waits for all threads to exit. Safe to
// call before Start: the bound listener is closed so the fd does not
// leak, and nothing is waited on.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		if s.acceptor == nil {
			// Never started: no acceptor owns the listen fd (or the
			// reserve) yet, so they must be closed here or they leak.
			reactor.CloseFD(s.lfd)
			if s.reserveFD >= 0 {
				reactor.CloseFD(s.reserveFD)
				s.reserveFD = -1
			}
			return
		}
		s.acceptor.Wakeup()
		for _, w := range s.workers {
			w.poller.Wakeup()
		}
	})
	s.wg.Wait()
}

// Drain gracefully shuts the server down: it stops accepting, closes
// idle connections immediately, lets every in-flight response finish
// flushing (up to timeout), and then stops. It reports whether all
// connections drained before the deadline; on false, the stragglers were
// cut off by Stop. During the drain no new requests are read — pending
// output is the only work left.
func (s *Server) Drain(timeout time.Duration) bool {
	s.drainOnce.Do(func() {
		close(s.draining)
		if s.acceptor != nil {
			s.acceptor.Wakeup()
			for _, w := range s.workers {
				w.poller.Wakeup()
			}
		}
	})
	drained := false
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.connsOpen.get() == 0 {
			drained = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Stop()
	return drained
}

// acceptLoop is the acceptor thread: it blocks in readiness selection on
// the listener and hands accepted fds to workers round-robin — the same
// split the paper's nio server uses (one acceptor + N workers).
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer s.acceptor.Close()
	defer reactor.CloseFD(s.lfd)
	defer func() {
		if s.reserveFD >= 0 {
			reactor.CloseFD(s.reserveFD)
			s.reserveFD = -1
		}
	}()
	// The loop blocks in raw epoll_wait, which parks an OS thread; pin
	// the goroutine so it owns that thread outright (a reactor thread in
	// the paper's sense) instead of bouncing through scheduler handoffs.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	var hb *overload.Heartbeat
	if wd := s.cfg.Watchdog; wd != nil {
		hb = wd.Register("core-acceptor")
	}
	rr := 0
	backoff := time.Duration(0)
	for {
		select {
		case <-s.stopping:
			return
		case <-s.draining:
			return // drain: stop accepting; workers finish in-flight work
		default:
		}
		evs, err := s.acceptor.Wait(-1)
		if err != nil {
			return
		}
		_ = evs
		if hb != nil {
			hb.Begin()
		}
		for {
			fd, done, err := reactor.Accept(s.lfd)
			if err != nil {
				if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) {
					// Descriptor exhaustion: recover via the reserve, then
					// back off. The listener stays readable (level-
					// triggered) while the table is full, so retrying
					// immediately would spin the acceptor dry; the gate
					// trades accept latency for CPU the workers need to
					// finish responses and free descriptors.
					s.acceptEMFILE.add(1)
					s.recoverFDExhaustion()
					if backoff = s.acceptGate(hb, backoff); backoff < 0 {
						return // stopping
					}
					break
				}
				if errors.Is(err, syscall.ENOBUFS) || errors.Is(err, syscall.ENOMEM) {
					// Transient kernel memory pressure: nothing to free on
					// our side, just pace the retries.
					if backoff = s.acceptGate(hb, backoff); backoff < 0 {
						return
					}
					break
				}
				return // listener closed
			}
			if done {
				break
			}
			if fd < 0 {
				continue // transient (ECONNABORTED): the peer gave up first
			}
			backoff = 0
			s.accepted.add(1)
			// Adaptive admission first: the controller's token bucket
			// paces accepts against its latency target. Shed clients are
			// told when to come back.
			if ac := s.cfg.Admission; ac != nil && !ac.Admit() {
				s.shed.add(1)
				if pl := s.cfg.Obs; pl != nil {
					pl.Record(0, obs.Shed, 0)
				}
				shedConn(fd, ac.RetryAfterSeconds())
				continue
			}
			// MaxConns stays as the hard ceiling above the controller:
			// connsOpen is incremented here, on the single acceptor
			// thread, so the cap cannot be raced past.
			if mc := s.cfg.MaxConns; mc > 0 && s.connsOpen.get() >= int64(mc) {
				s.shed.add(1)
				if pl := s.cfg.Obs; pl != nil {
					pl.Record(0, obs.Shed, 0)
				}
				shedConn(fd, shedRetryAfterSec)
				continue
			}
			s.connsOpen.add(1)
			w := s.workers[rr%len(s.workers)]
			rr++
			w.give(fd)
		}
		if hb != nil {
			hb.End()
		}
	}
}

// shedRetryAfterSec is the Retry-After advertised on sheds not governed
// by an admission controller (the static MaxConns ceiling).
const shedRetryAfterSec = 1

// shedConn answers an over-limit accept with a best-effort 503 — with
// Retry-After and Connection: close, so a well-behaved client backs off
// instead of hammering — and an immediate close. The socket is fresh, so
// the non-blocking write of the short header virtually always lands in
// the empty send buffer.
func shedConn(fd int, retryAfterSec int) {
	resp := httpwire.AppendResponseHeaderExtra(nil, 503, "text/plain", 0, false,
		httpwire.Header{Name: "Retry-After", Value: strconv.Itoa(retryAfterSec)})
	_, _, _ = reactor.Write(fd, resp)
	reactor.CloseFD(fd)
}

// docrootPressureEvictions is how many cached entries (and so shared
// file descriptors) the acceptor asks the docroot to give back per
// EMFILE event — enough to make real room, small enough not to dump a
// warm cache over one transient spike.
const docrootPressureEvictions = 8

// recoverFDExhaustion is the reserve-descriptor dance: close the
// reserve to free one slot, accept the connection the kernel is
// holding, answer it 503 + Retry-After so the client backs off
// instead of timing out in silence, close it, and re-open the
// reserve. Without this, the pending connection would sit in the
// accept queue until a descriptor freed by chance. When a docroot is
// configured, the cache is also asked to shed a few entries — cached
// content pins file descriptors, and under EMFILE giving those back
// attacks the exhaustion itself rather than just the symptom.
func (s *Server) recoverFDExhaustion() {
	if dr := s.cfg.Docroot; dr != nil {
		dr.ShedFDs(docrootPressureEvictions)
	}
	if s.reserveFD < 0 {
		return
	}
	reactor.CloseFD(s.reserveFD)
	s.reserveFD = -1
	fd, done, err := reactor.Accept(s.lfd)
	if err == nil && !done && fd >= 0 {
		s.shed.add(1)
		if pl := s.cfg.Obs; pl != nil {
			pl.Record(0, obs.Shed, 0)
		}
		shedConn(fd, shedRetryAfterSec)
	}
	s.reserveFD = openReserve()
}

// Accept-gate backoff bounds: exponential from 5ms, capped at 250ms,
// reset to zero by any successful accept.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 250 * time.Millisecond
)

// acceptGate pauses the acceptor after a resource-exhausted accept,
// doubling the pause up to the cap. It returns the next backoff to
// use, or a negative duration if the server is stopping. The
// heartbeat span is closed across the pause — a gated acceptor is
// parked, not wedged, and must not trip the watchdog.
func (s *Server) acceptGate(hb *overload.Heartbeat, backoff time.Duration) time.Duration {
	if backoff < acceptBackoffMin {
		backoff = acceptBackoffMin
	} else if backoff *= 2; backoff > acceptBackoffMax {
		backoff = acceptBackoffMax
	}
	s.acceptBackoffs.add(1)
	if hb != nil {
		hb.End()
	}
	defer func() {
		if hb != nil {
			hb.Begin()
		}
	}()
	select {
	case <-s.stopping:
		return -1
	case <-s.draining:
		return -1
	case <-time.After(backoff):
		return backoff
	}
}

// outSeg is one element of a connection's pending output: either a byte
// slice (headers, in-memory bodies) or a file range delivered zero-copy
// with sendfile(2). A file segment pins its docroot entry — and so the
// shared fd — until the range is fully sent or the connection dies.
type outSeg struct {
	buf []byte
	// ent is non-nil for a sendfile segment; off is the next unsent
	// file offset (advanced by the kernel on every call, so it is always
	// the resume point after a partial write) and end is one past the
	// last byte.
	ent *docroot.Entry
	off int64
	end int64
	// fallback flips a file segment from sendfile(2) to buffered
	// delivery after the kernel refuses the fast path (EINVAL/EIO):
	// each pass re-reads the file at off and writes it, so the
	// response bytes stay exact across the switch and across partial
	// writes. off/end keep their meaning; sendfile is never retried on
	// this segment.
	fallback bool
}

// conn is the per-connection state owned by exactly one worker.
//
//nio:loop-owned
type conn struct {
	fd     int
	parser httpwire.Parser
	// out is the pending response segment queue: each segment is written
	// non-blockingly; when the socket fills we keep the position and
	// wait for writability.
	out      []outSeg
	outOff   int  // sent bytes of the head segment's buf
	writeArm bool // EPOLLOUT currently requested
	closing  bool // close once out drains (400 or Connection: close)
	closed   bool // torn down; output must never be queued again
	replies  int64
	// lastActive is when the connection last made progress; the idle
	// sweeper (only armed when Config.IdleTimeout > 0) compares it.
	lastActive time.Time
	// acceptedAt is when the connection was handed to this worker;
	// observed flips once the accept-to-first-response latency has been
	// reported to the admission controller (once per connection).
	acceptedAt time.Time
	observed   bool
	// headerStart, when non-zero, is when the connection started owing
	// us a complete request: set at accept and whenever a partial
	// request is buffered, cleared once a request completes and nothing
	// partial remains. The header sweeper (armed when
	// Config.HeaderTimeout > 0) resets connections that exceed it.
	headerStart time.Time
	// Observability-plane state, only maintained when Config.Obs is set:
	// the plane-assigned connection id, the first-byte-of-request and
	// handler-start stamps the phase clocks run from, the serve-complete
	// stamp the write phase closes against, and whether the first
	// response byte has been traced.
	obsID        uint64
	reqStart     time.Time
	handlerStart time.Time
	serveDone    time.Time
	firstByte    bool
}

// worker is one reactor thread.
type worker struct {
	srv    *Server
	poller *reactor.Poller
	// conns is this loop's connection table — the state reactor
	// sharding partitions, so it must never be touched off-loop.
	//nio:loop-owned
	conns map[int]*conn
	inbox chan pendingConn
	//nio:loop-owned
	buf []byte
	// fbuf is the lazily-allocated scratch for buffered sendfile
	// fallback (never aliased by the parser, unlike buf).
	//nio:loop-owned
	fbuf []byte
	//nio:loop-owned
	reqs []*httpwire.Request
	// draining is set once the server enters Drain: no new reads, flush
	// pending output, close as connections empty.
	//nio:loop-owned
	draining bool
	// hb is this reactor thread's watchdog heartbeat (nil when no
	// watchdog is configured). Spans bracket work, not the poller wait,
	// so a parked-but-healthy loop is never flagged.
	hb *overload.Heartbeat
	// loopTicks counts event-loop iterations so the invariant build can
	// amortize its O(conns) interest-set audit instead of paying it on
	// every pass through the hot loop.
	//nio:loop-owned
	loopTicks uint64
}

func newWorker(s *Server, idx int) (*worker, error) {
	p, err := reactor.NewPoller(1024)
	if err != nil {
		return nil, err
	}
	w := &worker{
		srv:    s,
		poller: p,
		conns:  make(map[int]*conn),
		inbox:  make(chan pendingConn, 4096),
		buf:    make([]byte, s.cfg.ReadBuf),
	}
	if wd := s.cfg.Watchdog; wd != nil {
		w.hb = wd.Register(fmt.Sprintf("core-worker-%d", idx))
	}
	return w, nil
}

// pendingConn is an accepted fd in flight to a worker, stamped with its
// accept time so the admission controller's latency clock covers the
// inbox wait as well as the event-loop lag.
type pendingConn struct {
	fd int
	at time.Time
}

// give transfers an accepted fd to this worker (called from the acceptor
// thread; Selector.wakeup semantics). The acceptor has already counted
// the connection in connsOpen, so every failure path must uncount it.
func (w *worker) give(fd int) {
	select {
	case w.inbox <- pendingConn{fd: fd, at: time.Now()}:
		w.poller.Wakeup()
	default:
		// Inbox overflow: shed the connection rather than block the
		// acceptor; this mirrors a full pending-registration queue.
		reactor.CloseFD(fd)
		w.srv.connsOpen.add(-1)
	}
}

// loop is the worker thread body: a classic reactor loop.
//
//nio:loop
func (w *worker) loop() {
	defer w.srv.wg.Done()
	defer w.shutdown()
	// Dedicated reactor thread (see acceptLoop).
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	// With an idle or header timeout configured, the selector wait is
	// bounded so the worker can sweep offending connections
	// (Selector.select(timeout)).
	waitMs := -1
	sweep := w.srv.cfg.IdleTimeout
	if ht := w.srv.cfg.HeaderTimeout; ht > 0 && (sweep == 0 || ht < sweep) {
		sweep = ht
	}
	if sweep > 0 {
		waitMs = int(sweep.Milliseconds() / 2)
		if waitMs < 10 {
			waitMs = 10
		}
	}
	for {
		if w.hb != nil {
			w.hb.Begin()
		}
		w.drainInbox()
		if invariant.Enabled {
			// The full interest-set audit is O(conns); sample it so the
			// invariant build keeps enough throughput for the perf-gated
			// tests to stay meaningful.
			if w.loopTicks%64 == 0 {
				w.assertInterest()
			}
			w.loopTicks++
		}
		select {
		case <-w.srv.stopping:
			return
		default:
		}
		if !w.draining {
			select {
			case <-w.srv.draining:
				w.beginDrain()
			default:
			}
		}
		if w.draining && len(w.conns) == 0 {
			return // drained: every in-flight response has flushed
		}
		// The poller wait is a legitimate park, not work: close the
		// heartbeat span so an idle loop is never mistaken for a wedge.
		if w.hb != nil {
			w.hb.End()
		}
		evs, err := w.poller.Wait(waitMs)
		if err != nil {
			return
		}
		if w.hb != nil {
			w.hb.Begin()
		}
		if w.srv.cfg.IdleTimeout > 0 {
			w.sweepIdle()
		}
		if w.srv.cfg.HeaderTimeout > 0 && !w.draining {
			w.sweepHeaders()
		}
		for _, ev := range evs {
			c, ok := w.conns[ev.FD]
			if !ok {
				continue
			}
			if ev.Hangup {
				w.closeConn(c)
				continue
			}
			if ev.Readable && !w.draining {
				w.readable(c)
			}
			if c2, still := w.conns[ev.FD]; still && c2 == c && ev.Writable {
				w.writable(c)
			}
		}
	}
}

// assertInterest checks the reactor's connection table against the
// poller's interest-set shadow — only under -tags invariants, where the
// shadow is real. Every registered connection must be in the kernel's
// interest set, and the set must hold exactly the connections plus the
// wakeup pipe; drift either way means events for a connection the
// worker no longer owns, or a connection that can never wake again.
func (w *worker) assertInterest() {
	for fd := range w.conns {
		invariant.Assertf(w.poller.HasInterest(fd),
			"core: conn fd %d in table but missing from epoll interest set", fd)
	}
	invariant.Assertf(w.poller.InterestCount() == len(w.conns)+1,
		"core: epoll interest set has %d fds, want %d conns + wakeup pipe",
		w.poller.InterestCount(), len(w.conns))
}

// beginDrain flips the worker into drain mode: idle connections close
// immediately; connections with queued output stop reading (their read
// interest is dropped) and close once their responses flush.
func (w *worker) beginDrain() {
	w.draining = true
	for _, c := range w.conns {
		if len(c.out) == 0 {
			w.closeConn(c)
			continue
		}
		c.closing = true
		c.writeArm = true
		_ = w.poller.Modify(c.fd, false, true)
	}
}

func (w *worker) shutdown() {
	for _, c := range w.conns {
		reactor.CloseFD(c.fd)
		w.srv.connsOpen.add(-1)
		if pl := w.srv.cfg.Obs; pl != nil && c.obsID != 0 {
			pl.Record(c.obsID, obs.Close, 0)
		}
		releaseOut(c)
	}
	w.conns = nil
	// Connections handed over but never registered still hold a
	// connsOpen slot; release them too.
	for {
		select {
		case p := <-w.inbox:
			reactor.CloseFD(p.fd)
			w.srv.connsOpen.add(-1)
		default:
			w.poller.Close()
			return
		}
	}
}

func (w *worker) drainInbox() {
	for {
		select {
		case p := <-w.inbox:
			if w.draining {
				// Raced in just as the drain began: shed it.
				reactor.CloseFD(p.fd)
				w.srv.connsOpen.add(-1)
				continue
			}
			now := time.Now()
			c := &conn{fd: p.fd, lastActive: now, headerStart: now, acceptedAt: p.at}
			if err := w.poller.Add(p.fd, true, false); err != nil {
				reactor.CloseFD(p.fd)
				w.srv.connsOpen.add(-1)
				continue
			}
			w.conns[p.fd] = c
			if pl := w.srv.cfg.Obs; pl != nil {
				// Queue-wait on the reactor is the inbox ride from the
				// acceptor to this worker — the lag an overloaded event
				// loop accrues before a connection is even registered.
				c.obsID = pl.NextConnID()
				pl.Record(c.obsID, obs.Accept, 0)
				pl.Record(c.obsID, obs.QueueWait, now.Sub(p.at))
			}
		default:
			return
		}
	}
}

// readable drains the socket and serves every parsed request.
func (w *worker) readable(c *conn) {
	pl := w.srv.cfg.Obs
	c.lastActive = time.Now()
	for {
		n, eof, again, err := reactor.Read(c.fd, w.buf)
		if err != nil || eof {
			w.closeConn(c)
			return
		}
		if again {
			break
		}
		if pl != nil && n > 0 && c.reqStart.IsZero() {
			c.reqStart = time.Now()
			pl.Record(c.obsID, obs.HeaderRead, 0)
		}
		w.reqs = w.reqs[:0]
		reqs, perr := c.parser.Feed(w.reqs, w.buf[:n])
		w.reqs = reqs
		panicked := false
		for _, req := range reqs {
			if pl != nil {
				now := time.Now()
				pl.Record(c.obsID, obs.Parse, now.Sub(c.reqStart))
				// Pipelined followers in the same batch parse from here,
				// so their parse phase reflects only their own cost.
				c.reqStart = now
				c.handlerStart = now
			}
			if !w.serveSafe(c, req) {
				panicked = true
				if pl != nil {
					pl.Record(c.obsID, obs.Panic, 0)
				}
				break
			}
			if pl != nil {
				// Recorded after serve bumps Stats.Replies, so at any
				// instant the handler-phase count never exceeds replies —
				// the internal-consistency contract the admin scrapers
				// assert under load.
				now := time.Now()
				pl.Record(c.obsID, obs.Handler, now.Sub(c.handlerStart))
				c.serveDone = now
			}
		}
		if panicked {
			// The isolation path queued a 500 and marked the connection
			// closing; skip further reads and let flush deliver it.
			break
		}
		if perr != nil {
			w.srv.badRequest.add(1)
			c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 400, "text/plain", 0, false)})
			c.closing = true
			break
		}
	}
	// Header clock: a buffered partial request keeps (or starts) the
	// clock; a clean boundary stops it — between requests only the idle
	// policy applies.
	if c.parser.Pending() {
		if c.headerStart.IsZero() {
			c.headerStart = c.lastActive
		}
	} else {
		c.headerStart = time.Time{}
		c.reqStart = time.Time{}
	}
	w.flush(c)
}

// serveSafe serves one request with panic isolation: a panicking handler
// costs its own connection a best-effort 500 and a close — never the
// process, and never the worker's other connections. It reports whether
// the connection may continue serving pipelined requests.
func (w *worker) serveSafe(c *conn, req *httpwire.Request) (ok bool) {
	mark := len(c.out)
	defer func() {
		if r := recover(); r != nil {
			// Drop whatever the handler partially queued — releasing any
			// docroot references it pinned — and answer with a 500 that
			// closes the connection.
			for i := mark; i < len(c.out); i++ {
				if c.out[i].ent != nil {
					c.out[i].ent.Release()
					c.out[i].ent = nil
				}
			}
			c.out = append(c.out[:mark], outSeg{buf: httpwire.AppendResponseHeader(nil, 500, "text/plain", 0, false)})
			c.closing = true
			c.replies++
			w.srv.replies.add(1)
			w.srv.handlerPanics.add(1)
			ok = false
		}
	}()
	w.serve(c, req)
	return true
}

// applyFault executes an injected fault on the reactor thread — exactly
// where handler work runs in this architecture, so a Delay stalls the
// owning loop (the architecture's honest cost model for handler work)
// and a Wedge is precisely what the watchdog exists to flag.
func (w *worker) applyFault(f Fault) {
	if f.Delay > 0 {
		time.Sleep(f.Delay) //nio:ok loopblock -- injected fault: stalling the loop is the point
	}
	if f.Wedge != nil {
		select { //nio:ok loopblock -- injected wedge: the watchdog test drives this
		case <-f.Wedge:
		case <-w.srv.stopping:
		}
	}
	if f.Panic {
		panic("core: injected handler panic")
	}
}

// serve appends one response to the connection's output queue.
func (w *worker) serve(c *conn, req *httpwire.Request) {
	if invariant.Enabled {
		invariant.Assertf(!c.closed, "core: response queued on closed conn fd %d", c.fd)
	}
	if ff := w.srv.cfg.HandlerFault; ff != nil {
		w.applyFault(ff(req.Path))
	}
	switch {
	case req.Method != "GET" && req.Method != "HEAD":
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 501, "text/plain", 0, req.KeepAlive)})
	case w.srv.cfg.Docroot != nil:
		w.serveDocroot(c, req)
	default:
		w.serveStore(c, req)
	}
	c.replies++
	w.srv.replies.add(1)
	if !req.KeepAlive {
		c.closing = true
	}
}

// serveStore resolves the path against the store and queues 200/404.
func (w *worker) serveStore(c *conn, req *httpwire.Request) {
	body, ctype, ok := w.srv.cfg.Store.Get(req.Path)
	if !ok {
		w.srv.notFound.add(1)
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 404, "text/plain", 0, req.KeepAlive)})
	} else {
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 200, ctype, int64(len(body)), req.KeepAlive)})
		if req.Method == "GET" && len(body) > 0 {
			c.out = append(c.out, outSeg{buf: body})
		}
	}
}

// serveDocroot resolves the path against the disk-backed docroot and
// queues 200/304/404. Bodies cached in memory are queued as byte
// segments (buffered copy); everything else becomes a sendfile segment
// holding a reference to the entry's shared fd.
func (w *worker) serveDocroot(c *conn, req *httpwire.Request) {
	ent, err := w.srv.cfg.Docroot.Get(req.Path)
	if err != nil {
		w.srv.notFound.add(1)
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 404, "text/plain", 0, req.KeepAlive)})
		return
	}
	if httpwire.NotModified(req, ent.ETag, ent.ModTime) {
		w.srv.notModified.add(1)
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeaderValidators(
			nil, 304, ent.ContentType, 0, req.KeepAlive, ent.ETag, ent.LastModified)})
		ent.Release()
		return
	}
	c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeaderValidators(
		nil, 200, ent.ContentType, ent.Size, req.KeepAlive, ent.ETag, ent.LastModified)})
	if req.Method != "GET" || ent.Size == 0 {
		ent.Release()
		return
	}
	if body := ent.Body(); body != nil {
		// Buffered path: the immutable body slice outlives the entry, so
		// the reference can be dropped immediately.
		c.out = append(c.out, outSeg{buf: body})
		ent.Release()
		return
	}
	// Zero-copy path: the segment owns the reference until fully sent.
	c.out = append(c.out, outSeg{ent: ent, off: 0, end: ent.Size})
}

// sendfileChunk bounds one sendfile call so a single huge file cannot
// monopolize the reactor thread: after each chunk the loop re-checks
// for EAGAIN and other connections get their turn on the next wait.
const sendfileChunk = 512 << 10

// flush writes queued output until the socket would block, then toggles
// write interest accordingly — the NIO write-readiness pattern. Byte
// segments go through write(2) (resume point c.outOff); file segments
// go through sendfile(2), whose kernel-advanced offset is its own
// resume point, so a response interrupted mid-file continues exactly
// where the socket buffer filled.
//
//nio:hot
func (w *worker) flush(c *conn) {
	if invariant.Enabled {
		invariant.Assertf(!c.closed, "core: flush on closed conn fd %d", c.fd)
	}
	pl := w.srv.cfg.Obs
	for len(c.out) > 0 {
		seg := &c.out[0]
		if seg.ent != nil && !seg.fallback {
			max := sendfileChunk
			if rem := seg.end - seg.off; int64(max) > rem {
				max = int(rem)
			}
			n, again, err := reactor.Sendfile(c.fd, seg.ent.FD(), &seg.off, max)
			if err != nil {
				if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
					// The peer is gone; nothing to deliver to.
					w.srv.writeResets.add(1)
					w.closeConn(c)
					return
				}
				// Anything else (EINVAL/EIO: the fs or the kernel refusing
				// the fast path) downgrades this segment to buffered
				// delivery from the same resume offset — a failing
				// sendfile(2) never advances *off, so not one response
				// byte is skipped or repeated.
				w.srv.sendfileFallbacks.add(1)
				seg.fallback = true
				continue
			}
			w.srv.bytesOut.add(int64(n))
			w.srv.sendfileBytes.add(int64(n))
			if pl != nil && n > 0 && !c.firstByte {
				c.firstByte = true
				pl.Record(c.obsID, obs.FirstByte, time.Since(c.acceptedAt))
			}
			if seg.off >= seg.end {
				seg.ent.Release()
				c.out[0] = outSeg{}
				c.out = c.out[1:]
				continue
			}
			if again || n == 0 {
				w.armWrite(c)
				return
			}
			continue // partial progress without EAGAIN: keep pushing
		}
		if seg.ent != nil {
			// Buffered fallback for a failed sendfile segment: read the
			// next chunk at the resume offset and push it through the
			// ordinary non-blocking write path. A partial write just
			// advances off; the next pass re-reads from there, so
			// idempotence is free.
			if !w.flushFallback(c, seg, pl) {
				return
			}
			continue
		}
		head := seg.buf[c.outOff:]
		n, again, err := reactor.Write(c.fd, head)
		if err != nil {
			if errors.Is(err, syscall.ENOBUFS) {
				// Transient kernel buffer exhaustion is a stall, not a
				// failure: keep the queue, re-arm write interest, retry
				// when the loop next signals writability.
				w.srv.writeStalls.add(1)
				w.armWrite(c)
				return
			}
			if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
				w.srv.writeResets.add(1)
			}
			w.closeConn(c)
			return
		}
		w.srv.bytesOut.add(int64(n))
		if pl != nil && n > 0 && !c.firstByte {
			c.firstByte = true
			pl.Record(c.obsID, obs.FirstByte, time.Since(c.acceptedAt))
		}
		if n == len(head) {
			c.out[0] = outSeg{}
			c.out = c.out[1:]
			c.outOff = 0
			continue
		}
		c.outOff += n
		if again || n < len(head) {
			w.armWrite(c)
			return
		}
	}
	// Drained.
	if pl != nil && !c.serveDone.IsZero() {
		// The write phase closes when the queue drains: for pipelined
		// batches this is one record per batch, clocked from the last
		// serve — the honest cost of pushing the batch out the socket.
		pl.Record(c.obsID, obs.WriteComplete, time.Since(c.serveDone))
		c.serveDone = time.Time{}
	}
	w.observeFirst(c)
	if c.closing {
		w.closeConn(c)
		return
	}
	if c.writeArm {
		c.writeArm = false
		_ = w.poller.Modify(c.fd, true, false)
	}
}

// fallbackChunk bounds one buffered-fallback read+write so a degraded
// response cannot monopolize the reactor thread any more than a
// healthy sendfile one can.
const fallbackChunk = 64 << 10

// flushFallback pushes one chunk of a downgraded file segment (see
// outSeg.fallback). It reports whether flush may continue with the
// queue; false means the connection was torn down or the socket
// blocked (write interest armed) and flush must return.
func (w *worker) flushFallback(c *conn, seg *outSeg, pl *obs.Plane) bool {
	if w.fbuf == nil {
		w.fbuf = make([]byte, fallbackChunk)
	}
	chunk := w.fbuf
	if rem := seg.end - seg.off; rem < int64(len(chunk)) {
		chunk = chunk[:rem]
	}
	rn, rerr := seg.ent.ReadAt(chunk, seg.off)
	if rn == 0 {
		// Cannot even read the file any more: the response cannot be
		// completed honestly, so the connection must die rather than
		// deliver a short body that looks complete.
		_ = rerr
		w.closeConn(c)
		return false
	}
	n, again, err := reactor.Write(c.fd, chunk[:rn])
	if err != nil {
		if errors.Is(err, syscall.ENOBUFS) {
			w.srv.writeStalls.add(1)
			w.armWrite(c)
			return false
		}
		if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
			w.srv.writeResets.add(1)
		}
		w.closeConn(c)
		return false
	}
	seg.off += int64(n)
	w.srv.bytesOut.add(int64(n))
	if pl != nil && n > 0 && !c.firstByte {
		c.firstByte = true
		pl.Record(c.obsID, obs.FirstByte, time.Since(c.acceptedAt))
	}
	if seg.off >= seg.end {
		seg.ent.Release()
		c.out[0] = outSeg{}
		c.out = c.out[1:]
		return true
	}
	if again || n < rn {
		w.armWrite(c)
		return false
	}
	return true
}

// observeFirst feeds the admission controller the connection's
// accept-to-first-response latency, once, when its first response has
// fully left the socket. First-response latency captures the event-loop
// lag an overloaded reactor accrues — the signal the AIMD loop steers by.
func (w *worker) observeFirst(c *conn) {
	if c.observed || c.replies == 0 {
		return
	}
	c.observed = true
	if ac := w.srv.cfg.Admission; ac != nil {
		ac.Observe(time.Since(c.acceptedAt))
	}
}

// armWrite enables EPOLLOUT for a connection whose socket buffer is
// full.
func (w *worker) armWrite(c *conn) {
	if !c.writeArm {
		c.writeArm = true
		_ = w.poller.Modify(c.fd, true, true)
	}
}

// writable continues a blocked flush.
func (w *worker) writable(c *conn) { w.flush(c) }

// sweepIdle force-closes connections idle past the configured timeout,
// with an RST — the recycling policy of the thread-pool world, here only
// as an opt-in ablation knob.
func (w *worker) sweepIdle() {
	deadline := time.Now().Add(-w.srv.cfg.IdleTimeout)
	for _, c := range w.conns {
		if len(c.out) == 0 && c.lastActive.Before(deadline) {
			w.srv.idleCloses.add(1)
			w.resetConn(c)
		}
	}
}

// sweepHeaders resets connections that have owed a complete request for
// longer than HeaderTimeout — the slowloris defense: dribbled header
// bytes reset lastActive but not headerStart, so a dribbler cannot
// outrun this sweep the way it outruns an idle timeout.
func (w *worker) sweepHeaders() {
	deadline := time.Now().Add(-w.srv.cfg.HeaderTimeout)
	for _, c := range w.conns {
		if !c.headerStart.IsZero() && c.headerStart.Before(deadline) {
			w.srv.headerTimeouts.add(1)
			w.resetConn(c)
		}
	}
}

// resetConn tears a connection down with an RST.
func (w *worker) resetConn(c *conn) {
	if _, ok := w.conns[c.fd]; !ok {
		return
	}
	delete(w.conns, c.fd)
	w.poller.Remove(c.fd)
	reactor.CloseWithReset(c.fd)
	c.closed = true
	if pl := w.srv.cfg.Obs; pl != nil && c.obsID != 0 {
		pl.Record(c.obsID, obs.Close, 0)
	}
	w.uncount()
	releaseOut(c)
}

func (w *worker) closeConn(c *conn) {
	if _, ok := w.conns[c.fd]; !ok {
		return
	}
	delete(w.conns, c.fd)
	w.poller.Remove(c.fd)
	reactor.CloseFD(c.fd)
	c.closed = true
	if pl := w.srv.cfg.Obs; pl != nil && c.obsID != 0 {
		pl.Record(c.obsID, obs.Close, 0)
	}
	w.uncount()
	releaseOut(c)
}

// uncount gives a torn-down connection's connsOpen slot back.
func (w *worker) uncount() {
	w.srv.connsOpen.add(-1)
	if invariant.Enabled {
		invariant.Assertf(w.srv.connsOpen.get() >= 0,
			"core: connsOpen went negative (%d)", w.srv.connsOpen.get())
	}
}

// StatsFields renders a Stats snapshot in the admin endpoint's stable
// field order. The order is part of the /stats text contract (see the
// golden-file tests); append new counters at the end.
func StatsFields(st Stats) []obs.Field {
	return []obs.Field{
		{Name: "accepted", Value: st.Accepted},
		{Name: "replies", Value: st.Replies},
		{Name: "bytes_out", Value: st.BytesOut},
		{Name: "not_found", Value: st.NotFound},
		{Name: "bad_request", Value: st.BadRequest},
		{Name: "conns_open", Value: st.ConnsOpen},
		{Name: "idle_closes", Value: st.IdleCloses},
		{Name: "shed", Value: st.Shed},
		{Name: "header_timeouts", Value: st.HeaderTimeouts},
		{Name: "not_modified", Value: st.NotModified},
		{Name: "sendfile_bytes", Value: st.SendfileBytes},
		{Name: "handler_panics", Value: st.HandlerPanics},
		{Name: "accept_emfile", Value: st.AcceptEMFILE},
		{Name: "accept_backoffs", Value: st.AcceptBackoffs},
		{Name: "write_stalls", Value: st.WriteStalls},
		{Name: "write_resets", Value: st.WriteResets},
		{Name: "sendfile_fallbacks", Value: st.SendfileFallbacks},
	}
}

// releaseOut drops the docroot references held by unsent sendfile
// segments when a connection dies mid-response, so shared fds are not
// pinned by dead connections.
func releaseOut(c *conn) {
	for i := range c.out {
		if c.out[i].ent != nil {
			c.out[i].ent.Release()
			c.out[i].ent = nil
		}
	}
	c.out = nil
}
